//! Failure-injection integration tests: message loss and churn.
//!
//! The paper's testbed is lossless and churn-free; these tests check the
//! *robustness claims peer sampling inherits from gossip* — the protocol
//! keeps working under lossy links, and departed nodes leave both views
//! and sample lists (Brahms' probe validation).

use raptee_net::NodeId;
use raptee_sim::{run_scenario, Scenario, Simulation};

fn base() -> Scenario {
    Scenario {
        n: 200,
        byzantine_fraction: 0.10,
        trusted_fraction: 0.10,
        view_size: 14,
        sample_size: 14,
        rounds: 100,
        tail_window: 12,
        seed: 777,
        ..Scenario::default()
    }
}

#[test]
fn protocol_survives_heavy_message_loss() {
    let mut s = base();
    s.message_loss = 0.30;
    let rounds = s.rounds;
    let r = run_scenario(s);
    // Slower, noisier — but functional: pollution bounded, series complete.
    assert_eq!(r.rounds, rounds);
    assert!(r.resilience > 0.0 && r.resilience < 0.95);
    let lossless = run_scenario(base());
    // Loss must not make things *better* for the adversary by an order
    // of magnitude, nor collapse the protocol.
    assert!((r.resilience - lossless.resilience).abs() < 0.3);
}

#[test]
fn crashed_nodes_leave_views() {
    let mut s = base();
    s.crash_fraction = 0.20;
    s.crash_round = 30;
    let byz = s.byzantine_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    // Collect one crashed and count its references among survivors.
    let crashed: Vec<u64> = (byz..s.n)
        .filter(|&i| !sim.is_alive(NodeId(i as u64)))
        .map(|i| i as u64)
        .collect();
    assert!(!crashed.is_empty(), "the crash batch must have hit someone");
    let mut stale_refs = 0usize;
    let mut survivors = 0usize;
    for i in byz..s.n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        survivors += 1;
        let node = sim.node(id).unwrap();
        stale_refs += node
            .brahms()
            .view()
            .ids()
            .filter(|v| crashed.contains(&v.0))
            .count();
    }
    // 70 rounds after the crash, stale links are rare: each survivor
    // holds far fewer than one crashed reference on average.
    let per_node = stale_refs as f64 / survivors as f64;
    assert!(
        per_node < 1.0,
        "views must shed crashed nodes: {per_node:.2} stale refs/node"
    );
}

#[test]
fn sampler_validation_purges_dead_samples() {
    let mut with_validation = base();
    with_validation.crash_fraction = 0.25;
    with_validation.crash_round = 20;
    with_validation.sampler_validation_period = 5;
    let byz = with_validation.byzantine_count();
    let mut sim = Simulation::new(with_validation.clone());
    for _ in 0..with_validation.rounds {
        sim.run_round();
    }
    let mut dead_samples = 0usize;
    let mut total_samples = 0usize;
    for i in byz..with_validation.n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        let node = sim.node(id).unwrap();
        for s_id in node.brahms().sampler().samples() {
            total_samples += 1;
            if s_id.index() >= byz && !sim.is_alive(s_id) {
                dead_samples += 1;
            }
        }
    }
    let dead_share = dead_samples as f64 / total_samples.max(1) as f64;
    assert!(
        dead_share < 0.10,
        "validation must purge dead samples: {dead_share:.3} still dead"
    );
}

#[test]
fn without_validation_dead_samples_linger() {
    // Negative control for the test above: with validation disabled, the
    // min-wise samplers keep their dead minima forever.
    let mut s = base();
    s.crash_fraction = 0.25;
    s.crash_round = 20;
    s.sampler_validation_period = 0;
    let byz = s.byzantine_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    let mut dead = 0usize;
    let mut total = 0usize;
    for i in byz..s.n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        for s_id in sim.node(id).unwrap().brahms().sampler().samples() {
            total += 1;
            if s_id.index() >= byz && !sim.is_alive(s_id) {
                dead += 1;
            }
        }
    }
    let share = dead as f64 / total.max(1) as f64;
    assert!(
        share > 0.10,
        "without validation the sample lists stay polluted by the departed: {share:.3}"
    );
}

#[test]
fn crashed_trusted_peers_leave_directories() {
    let mut s = base();
    s.trusted_fraction = 0.20;
    s.crash_fraction = 0.30;
    s.crash_round = 40;
    let byz = s.byzantine_count();
    let trusted_n = s.trusted_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    for i in byz..byz + trusted_n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        let node = sim.node(id).unwrap();
        for peer in node.directory().ids() {
            // Directory TTL (30 rounds) plus timeout-on-contact clears
            // dead peers well within the 60 post-crash rounds.
            assert!(
                sim.is_alive(peer),
                "directory of trusted node {i} still lists crashed {peer}"
            );
        }
    }
}

#[test]
fn determinism_holds_under_failures() {
    let mut s = base();
    s.message_loss = 0.15;
    s.crash_fraction = 0.10;
    s.crash_round = 25;
    s.sampler_validation_period = 7;
    let a = run_scenario(s.clone());
    let b = run_scenario(s);
    assert_eq!(a, b);
}
