//! Failure-injection integration tests: message loss and churn.
//!
//! The paper's testbed is lossless and churn-free; these tests check the
//! *robustness claims peer sampling inherits from gossip* — the protocol
//! keeps working under lossy links, and departed nodes leave both views
//! and sample lists (Brahms' probe validation).

use raptee_net::NodeId;
use raptee_sim::{run_scenario, ChurnSchedule, Scenario, Simulation};

fn base() -> Scenario {
    Scenario {
        n: 200,
        byzantine_fraction: 0.10,
        trusted_fraction: 0.10,
        view_size: 14,
        sample_size: 14,
        rounds: 100,
        tail_window: 12,
        seed: 777,
        ..Scenario::default()
    }
}

#[test]
fn protocol_survives_heavy_message_loss() {
    let mut s = base();
    s.message_loss = 0.30;
    let rounds = s.rounds;
    let r = run_scenario(s);
    // Slower, noisier — but functional: pollution bounded, series complete.
    assert_eq!(r.rounds, rounds);
    assert!(r.resilience > 0.0 && r.resilience < 0.95);
    let lossless = run_scenario(base());
    // Loss must not make things *better* for the adversary by an order
    // of magnitude, nor collapse the protocol.
    assert!((r.resilience - lossless.resilience).abs() < 0.3);
}

#[test]
fn crashed_nodes_leave_views() {
    let mut s = base();
    s.churn = ChurnSchedule::one_shot(0.20, 30);
    let byz = s.byzantine_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    // Collect one crashed and count its references among survivors.
    let crashed: Vec<u64> = (byz..s.n)
        .filter(|&i| !sim.is_alive(NodeId(i as u64)))
        .map(|i| i as u64)
        .collect();
    assert!(!crashed.is_empty(), "the crash batch must have hit someone");
    let mut stale_refs = 0usize;
    let mut survivors = 0usize;
    for i in byz..s.n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        survivors += 1;
        let node = sim.node(id).unwrap();
        stale_refs += node
            .brahms()
            .view()
            .ids()
            .filter(|v| crashed.contains(&v.0))
            .count();
    }
    // 70 rounds after the crash, stale links are rare: each survivor
    // holds far fewer than one crashed reference on average.
    let per_node = stale_refs as f64 / survivors as f64;
    assert!(
        per_node < 1.0,
        "views must shed crashed nodes: {per_node:.2} stale refs/node"
    );
}

#[test]
fn sampler_validation_purges_dead_samples() {
    let mut with_validation = base();
    with_validation.churn = ChurnSchedule::one_shot(0.25, 20);
    with_validation.sampler_validation_period = 5;
    let byz = with_validation.byzantine_count();
    let mut sim = Simulation::new(with_validation.clone());
    for _ in 0..with_validation.rounds {
        sim.run_round();
    }
    let mut dead_samples = 0usize;
    let mut total_samples = 0usize;
    for i in byz..with_validation.n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        let node = sim.node(id).unwrap();
        for s_id in node.brahms().sampler().samples() {
            total_samples += 1;
            if s_id.index() >= byz && !sim.is_alive(s_id) {
                dead_samples += 1;
            }
        }
    }
    let dead_share = dead_samples as f64 / total_samples.max(1) as f64;
    assert!(
        dead_share < 0.10,
        "validation must purge dead samples: {dead_share:.3} still dead"
    );
}

#[test]
fn without_validation_dead_samples_linger() {
    // Negative control for the test above: with validation disabled, the
    // min-wise samplers keep their dead minima forever.
    let mut s = base();
    s.churn = ChurnSchedule::one_shot(0.25, 20);
    s.sampler_validation_period = 0;
    let byz = s.byzantine_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    let mut dead = 0usize;
    let mut total = 0usize;
    for i in byz..s.n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        for s_id in sim.node(id).unwrap().brahms().sampler().samples() {
            total += 1;
            if s_id.index() >= byz && !sim.is_alive(s_id) {
                dead += 1;
            }
        }
    }
    let share = dead as f64 / total.max(1) as f64;
    assert!(
        share > 0.10,
        "without validation the sample lists stay polluted by the departed: {share:.3}"
    );
}

#[test]
fn crashed_trusted_peers_leave_directories() {
    let mut s = base();
    s.trusted_fraction = 0.20;
    s.churn = ChurnSchedule::one_shot(0.30, 40);
    let byz = s.byzantine_count();
    let trusted_n = s.trusted_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    for i in byz..byz + trusted_n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        let node = sim.node(id).unwrap();
        for peer in node.directory().ids() {
            // Directory TTL (30 rounds) plus timeout-on-contact clears
            // dead peers well within the 60 post-crash rounds.
            assert!(
                sim.is_alive(peer),
                "directory of trusted node {i} still lists crashed {peer}"
            );
        }
    }
}

#[test]
fn determinism_holds_under_failures() {
    let mut s = base();
    s.message_loss = 0.15;
    s.churn = ChurnSchedule::one_shot(0.10, 25);
    s.sampler_validation_period = 7;
    let a = run_scenario(s.clone());
    let b = run_scenario(s);
    assert_eq!(a, b);
}

#[test]
fn rejoining_nodes_beat_permanent_departure() {
    // The PR's acceptance property: under the same crash schedule, a
    // population whose crashed nodes restart and rebootstrap ends the
    // run strictly cleaner than one where every crash is permanent —
    // rejoined correct nodes dilute the adversary's view share again.
    let mut dying = base();
    dying.churn = ChurnSchedule::steady(0.01, 0.0);
    let mut rejoining = dying.clone();
    rejoining.churn.restart_rate = 0.5;
    let dead_end = run_scenario(dying);
    let healed = run_scenario(rejoining.clone());
    let final_share = |r: &raptee_sim::RunResult| *r.byz_share_series.last().unwrap();
    assert!(
        final_share(&healed) < final_share(&dead_end),
        "rejoin must improve final pollution: {} vs {}",
        final_share(&healed),
        final_share(&dead_end)
    );
    // And the recovery family reports the healing process.
    let rec = healed.recovery.expect("dynamic churn tracks recovery");
    assert!(rec.restarts > 0 && rec.recovered > 0);
    let ttr = rec.mean_time_to_recover.expect("someone re-stabilised");
    assert!(ttr >= 1.0 && ttr < rejoining.rounds as f64);
    assert!(
        rec.availability > dead_end.recovery.expect("tracked").availability,
        "restarts must raise availability"
    );
}

#[test]
fn warm_rejoin_probes_out_stale_view_entries() {
    // Warm rejoiners keep their pre-crash view (minus a forced
    // staleness penalty); Brahms probe revalidation must still purge
    // the entries that died while they were down.
    let mut s = base();
    s.churn = ChurnSchedule::steady(0.02, 0.3);
    s.churn.rejoin = raptee_sim::RejoinPolicy::Warm;
    s.sampler_validation_period = 5;
    let byz = s.byzantine_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    let mut stale = 0usize;
    let mut live_nodes = 0usize;
    for i in byz..s.n {
        let id = NodeId(i as u64);
        if !sim.is_alive(id) {
            continue;
        }
        live_nodes += 1;
        stale += sim
            .node(id)
            .unwrap()
            .brahms()
            .view()
            .ids()
            .filter(|v| v.index() >= byz && !sim.is_alive(*v))
            .count();
    }
    assert!(live_nodes > 0);
    let per_node = stale as f64 / live_nodes as f64;
    assert!(
        per_node < 2.0,
        "continuous churn with warm rejoin must keep views fresh: {per_node:.2} stale refs/node"
    );
}
