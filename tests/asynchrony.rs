//! Asynchrony-equivalence suite for the event-driven network model.
//!
//! Three layers:
//!
//! 1. **Zero-latency equivalence** — the event engine in its all-zero
//!    configuration (constant-0 latency, synchronized round timers, no
//!    partitions, full reachability) must reproduce the round engine
//!    *bit-for-bit* on every pinned golden scenario. This is the
//!    license for sharing one protocol core between both engines: the
//!    delivery substrate is provably the only thing that changes.
//! 2. **A pollution effect the round model cannot express** — a
//!    partition-and-heal run whose held-then-released message burst
//!    trips the flood defences and delays convergence, visible in the
//!    substrate counters and the pollution series.
//! 3. **Scheduler properties** (via the proptest shim) — `(time, seq)`
//!    pop order is invariant under insertion order, nothing crosses an
//!    active cut, and healed partitions drop no message forever.

use proptest::prelude::*;
use raptee_net::{NodeId, NodeIdx};
use raptee_sim::event::{EventNet, Lane, PullGate};
use raptee_sim::{
    AttackStrategy, ChurnSchedule, DiscoveryMode, EventEngine, EventNetConfig, EventQueue,
    LatencyModel, NetRunStats, NetworkModel, PartitionWindow, Protocol, Scenario, Simulation,
};

// ---------------------------------------------------------------------
// The golden scenarios (mirrors tests/determinism.rs).

fn base(protocol: Protocol) -> Scenario {
    Scenario {
        n: 150,
        byzantine_fraction: 0.1,
        trusted_fraction: 0.1,
        view_size: 12,
        sample_size: 12,
        rounds: 60,
        tail_window: 10,
        protocol,
        seed: 0xD5EED,
        ..Scenario::default()
    }
}

fn churn_scenario() -> Scenario {
    let mut s = base(Protocol::Raptee);
    s.message_loss = 0.1;
    s.churn = ChurnSchedule::one_shot(0.15, 20);
    s.sampler_validation_period = 5;
    s.identification_attack = true;
    s
}

fn basalt_targeted_scenario() -> Scenario {
    let mut s = base(Protocol::Brahms).basalt_variant(10);
    s.attack = AttackStrategy::Targeted {
        victim_fraction: 0.2,
        focus: 0.6,
    };
    s.message_loss = 0.05;
    s
}

fn mixed_raptee_basalt_tee_scenario() -> Scenario {
    let mut s = base(Protocol::Raptee).half_and_half(
        Protocol::Raptee,
        Protocol::BasaltTee {
            view_size: 12,
            rotation_interval: 15,
            wlist_ttl: 8,
        },
    );
    s.churn = ChurnSchedule::one_shot(0.1, 25);
    s.sampler_validation_period = 5;
    s
}

fn sketch_scenario() -> Scenario {
    let mut s = base(Protocol::Raptee);
    s.discovery = DiscoveryMode::Sketch;
    s.rounds = 120;
    s
}

fn event_partition_scenario() -> Scenario {
    base(Protocol::Raptee).with_network(EventNetConfig {
        latency: LatencyModel::Uniform { min: 50, max: 600 },
        partitions: vec![PartitionWindow {
            start: 10,
            end: 25,
            boundary: 75,
        }],
        ..EventNetConfig::default()
    })
}

// ---------------------------------------------------------------------
// 1. Zero-latency equivalence: event engine ≡ round engine, bit for bit.

/// Runs `scenario` under both engines and asserts the event engine in
/// the equivalence configuration reproduces the round engine exactly —
/// every metric, every series value, every per-segment result.
fn assert_equivalent(name: &str, scenario: Scenario) {
    let round = Simulation::new(scenario.clone()).run();
    let mut event = EventEngine::new(scenario.evented_zero_latency()).run();
    assert_eq!(
        event.net,
        Some(NetRunStats::default()),
        "{name}: the zero-latency substrate must route nothing through the queue"
    );
    assert_eq!(
        event.virtual_ticks,
        round.rounds as u64 * 1_000,
        "{name}: event time advances in whole synchronized rounds"
    );
    // The only fields allowed to differ are the substrate's own.
    event.net = round.net;
    event.virtual_ticks = round.virtual_ticks;
    assert_eq!(
        event, round,
        "{name}: zero-latency event run diverged from the round engine"
    );
}

#[test]
fn zero_latency_matches_rounds_brahms() {
    assert_equivalent("brahms", base(Protocol::Brahms).brahms_baseline());
}

#[test]
fn zero_latency_matches_rounds_raptee() {
    assert_equivalent("raptee", base(Protocol::Raptee));
}

#[test]
fn zero_latency_matches_rounds_basalt() {
    assert_equivalent("basalt", base(Protocol::Brahms).basalt_variant(15));
}

#[test]
fn zero_latency_matches_rounds_raptee_under_churn() {
    assert_equivalent("raptee-churn", churn_scenario());
}

#[test]
fn zero_latency_matches_rounds_basalt_targeted() {
    assert_equivalent("basalt-targeted", basalt_targeted_scenario());
}

#[test]
fn zero_latency_matches_rounds_sketch_discovery() {
    assert_equivalent("raptee-sketch", sketch_scenario());
}

#[test]
fn zero_latency_matches_rounds_mixed_population() {
    assert_equivalent(
        "mixed-raptee-basalt-tee",
        mixed_raptee_basalt_tee_scenario(),
    );
}

// ---------------------------------------------------------------------
// 2. The partition effect the round model cannot express.

#[test]
fn partition_heal_burst_is_inexpressible_in_the_round_model() {
    // Same protocol scenario, two substrates. The round model has no
    // notion of messages *in flight*: a cut-then-heal either looks like
    // uniform loss (messages vanish) or like nothing. Only the event
    // model can hold fifteen rounds of cross-cut traffic and then
    // release it as one burst at the heal.
    let round = Simulation::new(base(Protocol::Raptee)).run();
    let event = Simulation::new(event_partition_scenario()).run();
    let net = event.net.expect("event run reports substrate counters");

    // The substrate held real traffic at the cut and released all of
    // it — healed partitions drop nothing.
    assert!(net.partition_held > 0, "the cut must hold cross-cut pushes");
    assert_eq!(
        net.partition_held, net.partition_released,
        "every message held at the cut must release at the heal"
    );
    assert!(
        net.refused_pulls > 0,
        "fresh cross-cut pulls during the window must be refused"
    );

    // The observable protocol-level effect: the heal-release burst
    // floods receivers with stale pushes and trips the per-round push
    // rate defence far beyond anything the synchronous run shows.
    assert!(
        event.floods_detected > 10 * round.floods_detected.max(1),
        "heal burst must spike flood detections ({} vs {})",
        event.floods_detected,
        round.floods_detected
    );

    // And it delays convergence: the pollution series needs visibly
    // longer to settle than the uninterrupted run.
    let (ev_stab, rd_stab) = (
        event
            .stability_round
            .expect("partitioned run still settles"),
        round.stability_round.expect("baseline settles"),
    );
    assert!(
        ev_stab > rd_stab,
        "partition must delay stability ({ev_stab} vs {rd_stab})"
    );

    // The series themselves diverge while the cut is active: the two
    // population halves see different gossip, so the mean Byzantine
    // share walks away from the synchronous trajectory.
    let max_window_gap = (10..25)
        .map(|r| (event.byz_share_series[r] - round.byz_share_series[r]).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_window_gap > 0.02,
        "pollution series must diverge during the cut (max gap {max_window_gap:.4})"
    );
}

// ---------------------------------------------------------------------
// 3. Scheduler properties (proptest shim).

/// A substrate-only scenario: 100 actors, event network `cfg`.
fn harness(rounds: usize, cfg: EventNetConfig) -> EventNet {
    let scenario = Scenario {
        n: 100,
        rounds,
        network: NetworkModel::Events(cfg),
        ..Scenario::default()
    };
    EventNet::from_scenario(&scenario).expect("an Events scenario builds a substrate")
}

/// The partition window shared by the substrate properties.
fn cut_5_to_20_at_50() -> PartitionWindow {
    PartitionWindow {
        start: 5,
        end: 20,
        boundary: 50,
    }
}

proptest! {
    /// Pop order is exactly ascending `(time, seq)` — independent of
    /// insertion order, with the payload riding its key.
    #[test]
    fn queue_order_is_time_seq_under_insertion_permutations(
        times in proptest::collection::vec(0u64..64, 1..32),
        rot in 0usize..32,
    ) {
        let n = times.len();
        // Distinct keys by construction: seq is the entry index.
        let entries: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        let mut natural = EventQueue::new();
        let mut rotated = EventQueue::new();
        let mut reversed = EventQueue::new();
        for &(t, s) in &entries {
            natural.push_raw(t, s, s);
        }
        for k in 0..n {
            let (t, s) = entries[(k + rot) % n];
            rotated.push_raw(t, s, s);
        }
        for &(t, s) in entries.iter().rev() {
            reversed.push_raw(t, s, s);
        }
        let pop_all = |q: &mut EventQueue<u64>| -> Vec<(u64, u64, u64)> {
            std::iter::from_fn(|| q.pop()).collect()
        };
        let (a, b, c) = (pop_all(&mut natural), pop_all(&mut rotated), pop_all(&mut reversed));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        for w in a.windows(2) {
            prop_assert!(
                (w[0].0, w[0].1) < (w[1].0, w[1].1),
                "pops must ascend strictly in (time, seq)"
            );
        }
        for &(_, s, payload) in &a {
            prop_assert_eq!(s, payload, "payloads must ride their keys");
        }
    }

    /// A push across an active cut is never delivered before the heal,
    /// and always delivered after it.
    #[test]
    fn no_push_delivery_across_an_active_cut(
        src in 0usize..50,
        dst in 50usize..90,
        sent in 5usize..15,
        latency in 0u64..3_000,
    ) {
        let rounds = 30;
        let mut net = harness(rounds, EventNetConfig {
            latency: LatencyModel::Constant(latency),
            partitions: vec![cut_5_to_20_at_50()],
            ..EventNetConfig::default()
        });
        let inline = net.send_push(sent, src, dst, NodeId(src as u64), Lane::Honest);
        prop_assert!(!inline, "a cross-cut push must never deliver inline");
        prop_assert_eq!(net.stats().partition_held, 1);

        let mut survivors = Vec::new();
        let mut delivered_at = None;
        for r in 0..rounds {
            net.begin_round(r);
            survivors.clear();
            net.drain_due_pushes(Lane::Honest, &mut survivors);
            if survivors
                .iter()
                .any(|&(d, adv)| d == dst as u32 && adv == NodeIdx(src as u32))
            {
                delivered_at = Some(r);
                break;
            }
        }
        let r = delivered_at.expect("a healed partition never drops the message");
        prop_assert!(r >= 20, "delivered in round {} with the cut still active", r);
        prop_assert_eq!(net.stats().partition_released, 1);
    }

    /// Fresh pulls refuse across the active cut and go through once the
    /// window closes.
    #[test]
    fn pulls_refuse_across_the_cut_and_resume_at_the_heal(
        req in 0usize..50,
        tgt in 50usize..100,
        in_window in 5usize..20,
        after_heal in 20usize..30,
    ) {
        let mut net = harness(30, EventNetConfig {
            partitions: vec![cut_5_to_20_at_50()],
            ..EventNetConfig::default()
        });
        prop_assert_eq!(net.gate_pull(in_window, req, tgt), PullGate::Refused);
        prop_assert_eq!(net.stats().refused_pulls, 1);
        prop_assert_eq!(net.gate_pull(after_heal, req, tgt), PullGate::Inline);
    }

    /// Aggregate no-loss law: over an arbitrary cross-population send
    /// schedule, every message held at the cut is released at the heal
    /// and nothing is still in flight once the run outlives the window.
    #[test]
    fn healed_partitions_release_every_held_message(
        sends in proptest::collection::vec(
            (0usize..100, 0usize..100, 0usize..25),
            1..40,
        ),
        latency in 0u64..1_500,
    ) {
        let rounds = 40;
        let mut net = harness(rounds, EventNetConfig {
            latency: LatencyModel::Constant(latency),
            partitions: vec![cut_5_to_20_at_50()],
            ..EventNetConfig::default()
        });
        let mut schedule = sends.clone();
        schedule.sort_by_key(|&(_, _, r)| r);
        let mut cursor = 0;
        let mut survivors = Vec::new();
        for r in 0..rounds {
            net.begin_round(r);
            survivors.clear();
            net.drain_due_pushes(Lane::Honest, &mut survivors);
            while cursor < schedule.len() && schedule[cursor].2 == r {
                let (s, d, _) = schedule[cursor];
                net.send_push(r, s, d, NodeId(s as u64), Lane::Honest);
                cursor += 1;
            }
        }
        let stats = net.finish();
        prop_assert_eq!(
            stats.partition_held, stats.partition_released,
            "the heal must release every held message"
        );
        prop_assert_eq!(
            stats.in_flight_at_end, 0,
            "rounds 25..40 give every message time to land"
        );
    }
}
