//! Integration tests for the verifiable audit layer (PR 9): merkle view
//! commitments, challenger replay, conviction and quarantine.
//!
//! The structural guarantee under test: a conviction requires a merkle
//! opening *inconsistent with the target's own chained commitment*.
//! Unavailability — crash, churn, partition, certificate expiry — only
//! ever yields a decaying `Suspected`, so correct nodes are never
//! convicted, no matter how hostile the substrate.

use raptee_net::NodeId;
use raptee_sim::{
    run_scenario, AuditConfig, ChurnSchedule, EventNetConfig, LatencyModel, PartitionWindow,
    Protocol, RejoinPolicy, Scenario, Simulation,
};

fn base() -> Scenario {
    Scenario {
        n: 200,
        byzantine_fraction: 0.10,
        trusted_fraction: 0.10,
        view_size: 14,
        sample_size: 14,
        rounds: 100,
        tail_window: 12,
        seed: 0xAD17,
        audit: Some(AuditConfig::with_budget(6)),
        ..Scenario::default()
    }
}

#[test]
fn audit_detects_byzantine_nodes() {
    let s = base();
    let byz = s.byzantine_count() as u64;
    let rounds = s.rounds;
    let r = run_scenario(s);
    let a = r
        .audit
        .expect("audit stats must be reported when audits are on");
    // Draws that land on already-quarantined targets are skipped (the
    // beacon slot is still consumed), so issuance is capped by, not
    // equal to, budget x rounds.
    assert!(a.audits_issued > 0 && a.audits_issued <= 6 * rounds as u64);
    assert!(a.audits_answered <= a.audits_issued);
    assert!(
        a.detected_byzantine > 0,
        "a 6-audits/round challenger must catch equivocators over 100 rounds"
    );
    assert!(
        a.detected_byzantine <= byz,
        "cannot detect more Byzantine nodes than exist"
    );
    assert_eq!(
        a.false_accusations, 0,
        "convictions require proof inconsistency; correct nodes always verify"
    );
    assert_eq!(a.convictions, a.detected_byzantine);
    assert!(
        a.mean_detection_latency.is_some(),
        "detections happened, so the latency average must be reported"
    );
    assert!(
        a.commitments_recorded > 0,
        "the trusted tier commits every round"
    );
    assert_eq!(a.quarantine_series.len(), rounds);
    assert!(
        a.quarantine_series.windows(2).all(|w| w[0] <= w[1]),
        "quarantine only grows: convictions are permanent"
    );
    assert_eq!(
        u64::from(*a.quarantine_series.last().unwrap()),
        a.convictions,
        "final quarantine size equals total convictions"
    );
}

#[test]
fn audit_off_reports_nothing_and_never_draws_the_beacon() {
    let mut s = base();
    s.audit = None;
    let rounds = s.rounds;
    let mut sim = Simulation::new(s);
    for _ in 0..rounds {
        sim.run_round();
    }
    assert_eq!(
        sim.audit_beacon_draws(),
        0,
        "audit-off runs must never touch the beacon stream (goldens depend on it)"
    );
}

#[test]
fn correct_nodes_are_never_convicted_under_churn_partitions_and_loss() {
    // The nastiest availability mix the substrate can produce: steady
    // crash/restart churn, a mid-run partition, latency spread, message
    // loss and duplicates. Every honest node that goes dark mid-audit is
    // at worst Suspected — and suspicion decays after the grace window.
    let mut s = base();
    s.message_loss = 0.10;
    s.churn = ChurnSchedule::steady(0.01, 0.3);
    s.churn.rejoin = RejoinPolicy::Warm;
    let mut s = s.with_network(EventNetConfig {
        latency: LatencyModel::Uniform { min: 50, max: 600 },
        round_ticks: 1000,
        jitter: 150,
        partitions: vec![PartitionWindow {
            start: 25,
            end: 45,
            boundary: 100,
        }],
        duplicate_rate: 0.05,
        ..EventNetConfig::default()
    });
    s.audit = Some(AuditConfig {
        budget: 8,
        grace: 6,
    });
    let byz = s.byzantine_count();
    let rounds = s.rounds;
    let mut sim = Simulation::new(s.clone());
    for _ in 0..rounds {
        sim.run_round();
    }
    for i in byz..s.n {
        assert!(
            !sim.is_quarantined(NodeId(i as u64)),
            "correct node {i} was convicted under churn + partition + loss"
        );
    }
    let a = run_scenario(s).audit.unwrap();
    assert_eq!(a.false_accusations, 0);
    assert!(
        a.suspected > 0,
        "with crashes and a partition some audits must have gone unanswered"
    );
}

#[test]
fn detection_latency_decreases_with_budget() {
    let latency_at = |budget: usize| {
        let mut s = base();
        s.audit = Some(AuditConfig::with_budget(budget));
        let a = run_scenario(s).audit.unwrap();
        (
            a.mean_detection_latency.expect("detections must happen"),
            a.detected_byzantine,
        )
    };
    let (slow, found_slow) = latency_at(2);
    let (fast, found_fast) = latency_at(12);
    assert!(
        fast < slow,
        "a 6x audit budget must find equivocators sooner: {fast:.1} vs {slow:.1} rounds"
    );
    assert!(found_fast >= found_slow);
}

#[test]
fn quarantine_cleans_views_relative_to_audit_off() {
    // Convicted Byzantine identities are purged from every honest view
    // and blocked from re-entering via pulls and pushes, so the polluted
    // view share can only improve on the audit-off run of the same seed.
    let mut off = base();
    off.audit = None;
    let audited = run_scenario(base());
    let unaudited = run_scenario(off);
    assert!(
        audited.resilience < unaudited.resilience,
        "quarantine must lower view pollution: {} (audited) vs {} (off)",
        audited.resilience,
        unaudited.resilience
    );
}

#[test]
fn cold_rejoin_restarts_commitment_chains_warm_keeps_them() {
    let chains_restarted = |rejoin: RejoinPolicy| {
        let mut s = base();
        s.rounds = 120;
        s.churn = ChurnSchedule::steady(0.03, 0.5);
        s.churn.rejoin = rejoin;
        run_scenario(s).audit.unwrap().chain_restarts
    };
    assert!(
        chains_restarted(RejoinPolicy::Cold) > 0,
        "cold rejoin wipes state, so a recommitting trusted node restarts its chain"
    );
    assert_eq!(
        chains_restarted(RejoinPolicy::Warm),
        0,
        "warm rejoin resumes the kept state and extends the existing chain"
    );
}

#[test]
fn hybrid_and_basalt_tee_populations_support_audits() {
    // BasaltTee uniform population.
    let mut s = base();
    s.protocol = Protocol::BasaltTee {
        view_size: 14,
        rotation_interval: 15,
        wlist_ttl: 8,
    };
    let a = run_scenario(s).audit.unwrap();
    assert!(a.detected_byzantine > 0);
    assert_eq!(a.false_accusations, 0);

    // Mixed RAPTEE / BasaltTee split, with the proactive trusted
    // directory refresh exercising the cross-segment trusted exchange.
    let mut s = base().half_and_half(
        Protocol::Raptee,
        Protocol::BasaltTee {
            view_size: 14,
            rotation_interval: 15,
            wlist_ttl: 8,
        },
    );
    s.audit = Some(AuditConfig::with_budget(6));
    s.trusted_directory_refresh = 5;
    let first = run_scenario(s.clone());
    let second = run_scenario(s);
    let a = first.audit.as_ref().unwrap();
    assert!(a.detected_byzantine > 0);
    assert_eq!(a.false_accusations, 0);
    assert_eq!(first, second, "audited mixed runs must stay deterministic");
}

#[test]
#[should_panic(expected = "trusted tier")]
fn audit_requires_a_trusted_tier() {
    let mut s = base();
    s.protocol = Protocol::Brahms;
    s.trusted_fraction = 0.0;
    s.validate();
}

#[test]
#[should_panic(expected = "attest_ttl >= grace")]
fn audit_grace_must_fit_inside_the_attestation_ttl() {
    let mut s = base();
    s.attest_ttl = 5;
    s.audit = Some(AuditConfig {
        budget: 4,
        grace: 10,
    });
    s.validate();
}
