//! Targeted-attack integration tests — Brahms' defence (iv).
//!
//! The original Brahms paper proves that the *balanced* attack maximises
//! the adversary's system-wide representation, and that history sampling
//! lets targeted victims self-heal instead of being isolated. These
//! tests reproduce both facts and show the role of `γ` (the
//! history-sample weight) in the defence.

use raptee_net::NodeId;
use raptee_sim::{run_scenario, AttackStrategy, Scenario, Simulation};

fn base() -> Scenario {
    Scenario {
        n: 250,
        byzantine_fraction: 0.15,
        trusted_fraction: 0.0,
        view_size: 14,
        sample_size: 14,
        rounds: 120,
        tail_window: 15,
        seed: 4242,
        ..Scenario::default()
    }
}

fn targeted(victim_fraction: f64, focus: f64) -> AttackStrategy {
    AttackStrategy::Targeted {
        victim_fraction,
        focus,
    }
}

/// Mean Byzantine share in the views of the victim prefix vs the rest.
fn victim_vs_rest(s: &Scenario, victim_fraction: f64) -> (f64, f64) {
    let byz = s.byzantine_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    let victims_end = byz + (((s.n - byz) as f64) * victim_fraction).round() as usize;
    let share = |i: usize| {
        let node = sim.node(NodeId(i as u64)).unwrap();
        let v = node.brahms().view();
        v.ids().filter(|id| id.index() < byz).count() as f64 / v.len().max(1) as f64
    };
    let victims: Vec<f64> = (byz..victims_end).map(share).collect();
    let rest: Vec<f64> = (victims_end..s.n).map(share).collect();
    (
        victims.iter().sum::<f64>() / victims.len() as f64,
        rest.iter().sum::<f64>() / rest.len() as f64,
    )
}

#[test]
fn targeted_victims_are_more_polluted_but_not_isolated() {
    let mut s = base();
    s.attack = targeted(0.05, 0.8);
    let (victim_share, rest_share) = victim_vs_rest(&s, 0.05);
    assert!(
        victim_share > rest_share,
        "focused pushes must bias the victims: victims {victim_share:.3} vs rest {rest_share:.3}"
    );
    assert!(
        victim_share < 0.995,
        "history sampling must prevent complete isolation: {victim_share:.3}"
    );
}

#[test]
fn sample_lists_resist_targeted_flooding() {
    // Defence (iv)'s foundation: the min-wise sample list is the
    // self-healing reservoir — even when a victim's *view* is heavily
    // biased by focused pushes, its *sample list* stays markedly less
    // Byzantine, because repetition buys the adversary nothing against
    // min-wise sampling. ("Once some correct ID becomes the permanent
    // sample of the node under attack ... the threat of isolation is
    // eliminated.")
    let mut s = base();
    s.attack = targeted(0.05, 0.9);
    let byz = s.byzantine_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    let victims_end = byz + (((s.n - byz) as f64) * 0.05).round() as usize;
    let mut view_shares = Vec::new();
    let mut sample_shares = Vec::new();
    for i in byz..victims_end {
        let node = sim.node(NodeId(i as u64)).unwrap();
        let v = node.brahms().view();
        view_shares
            .push(v.ids().filter(|id| id.index() < byz).count() as f64 / v.len().max(1) as f64);
        sample_shares.push(
            node.brahms()
                .sampler()
                .fraction_matching(|id| id.index() < byz),
        );
    }
    let view_mean = view_shares.iter().sum::<f64>() / view_shares.len() as f64;
    let sample_mean = sample_shares.iter().sum::<f64>() / sample_shares.len() as f64;
    // Despite receiving the overwhelming majority of the adversary's
    // pushes, the victims' sample lists stay close to the fair Byzantine
    // share f = 15% — min-wise sampling is repetition-blind. (Their
    // *views* are protected by the flood detector, which blocks renewal
    // during the heaviest rounds.)
    assert!(
        sample_mean < 2.0 * 0.15,
        "victim sample lists must stay near the fair share: {sample_mean:.3}"
    );
    assert!(
        view_mean < 0.9,
        "victim views must not be fully captured: {view_mean:.3}"
    );
}

#[test]
fn balanced_attack_maximises_systemwide_damage() {
    // The Brahms optimality result: concentrating the budget lowers the
    // adversary's *system-wide* representation compared to balancing.
    let balanced = run_scenario(base());
    let mut focused = base();
    focused.attack = targeted(0.05, 0.8);
    let targeted_run = run_scenario(focused);
    assert!(
        targeted_run.resilience <= balanced.resilience + 0.02,
        "targeting must not beat the balanced optimum system-wide: \
         targeted {:.3} vs balanced {:.3}",
        targeted_run.resilience,
        balanced.resilience
    );
}

#[test]
fn flood_detector_fires_harder_under_targeting() {
    let balanced = run_scenario(base());
    let mut focused = base();
    focused.attack = targeted(0.05, 0.9);
    let targeted_run = run_scenario(focused);
    // The victims now receive far more pushes than expected, so the
    // per-node flood detector (defence (ii)) trips more often.
    assert!(
        targeted_run.floods_detected >= balanced.floods_detected,
        "targeting should trip at least as many floods: {} vs {}",
        targeted_run.floods_detected,
        balanced.floods_detected
    );
}

#[test]
fn targeted_attack_is_deterministic() {
    let mut s = base();
    s.attack = targeted(0.10, 0.5);
    s.rounds = 40;
    assert_eq!(run_scenario(s.clone()), run_scenario(s));
}
