//! Cross-crate property-based tests on the protocol invariants.
//!
//! These complement the per-crate proptest suites with properties that
//! only make sense once several layers are composed.

use proptest::prelude::*;
use raptee::wire::Message;
use raptee::{EvictionPolicy, RapteeConfig, RapteeNode};
use raptee_brahms::BrahmsConfig;
use raptee_crypto::auth::AuthOutcome;
use raptee_crypto::SecretKey;
use raptee_net::{NodeId, SecureChannel};
use raptee_sim::event::{EventNet, PullGate};
use raptee_sim::{
    AdaptiveCoordinator, Discovery, EventNetConfig, LatencyModel, NetworkModel, RetryConfig,
    Scenario,
};

fn config(view: usize, eviction: EvictionPolicy) -> RapteeConfig {
    RapteeConfig {
        brahms: BrahmsConfig::paper_defaults(view, view),
        eviction,
    }
}

fn event_net(cfg: EventNetConfig, rounds: usize) -> EventNet {
    let scenario = Scenario {
        n: 100,
        rounds,
        network: NetworkModel::Events(cfg),
        ..Scenario::default()
    };
    scenario.validate();
    EventNet::from_scenario(&scenario).expect("events model")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two trusted nodes always authenticate regardless of nonce draws
    /// and node identities; any other pairing never does.
    #[test]
    fn handshake_depends_only_on_keys(
        seed_a in 0u64..5000,
        seed_b in 0u64..5000,
        id_a in 0u64..1000,
        id_b in 1000u64..2000,
        trusted_pair in any::<bool>(),
    ) {
        let boot: Vec<NodeId> = (5000..5010).map(NodeId).collect();
        let cfg = config(8, EvictionPolicy::adaptive());
        let group = SecretKey::from_seed(42);
        let (mut a, mut b) = if trusted_pair {
            (
                RapteeNode::new_trusted(NodeId(id_a), cfg.clone(), &boot, seed_a, group.clone()),
                RapteeNode::new_trusted(NodeId(id_b), cfg, &boot, seed_b, group),
            )
        } else {
            (
                RapteeNode::new_trusted(NodeId(id_a), cfg.clone(), &boot, seed_a, group),
                RapteeNode::new_untrusted(NodeId(id_b), cfg, &boot, seed_b),
            )
        };
        let (oa, ob) = RapteeNode::run_handshake(&mut a, &mut b);
        prop_assert_eq!(oa, ob, "verdicts always agree");
        let expected = if trusted_pair { AuthOutcome::Trusted } else { AuthOutcome::Untrusted };
        prop_assert_eq!(oa, expected);
    }

    /// Eviction never admits more pulled IDs than were recorded, never
    /// evicts trusted-swap IDs, and reports a consistent count.
    #[test]
    fn eviction_accounting_is_consistent(
        rate in 0.0f64..=1.0,
        untrusted_ids in proptest::collection::vec(100u64..10_000, 0..120),
        seed in 0u64..1000,
    ) {
        let boot: Vec<NodeId> = (50..60).map(NodeId).collect();
        let cfg = config(10, EvictionPolicy::Fixed(rate));
        let mut node = RapteeNode::new_trusted(
            NodeId(1),
            cfg,
            &boot,
            seed,
            SecretKey::from_seed(7),
        );
        node.plan_round();
        let ids: Vec<NodeId> = untrusted_ids.iter().copied().map(NodeId).collect();
        node.record_untrusted_pull(&ids);
        let outcome = node.finish_round();
        prop_assert_eq!(outcome.evicted + outcome.admitted_pulled, ids.len());
        prop_assert!((outcome.eviction_rate - rate).abs() < 1e-12);
        if rate == 0.0 {
            prop_assert_eq!(outcome.evicted, 0);
        }
        if rate == 1.0 {
            prop_assert_eq!(outcome.admitted_pulled, 0);
        }
    }

    /// The trusted swap preserves view invariants and capacity on both
    /// sides for arbitrary disjoint bootstrap sets.
    #[test]
    fn trusted_swap_preserves_invariants(
        boot_a in proptest::collection::btree_set(100u64..200, 4..12),
        boot_b in proptest::collection::btree_set(300u64..400, 4..12),
        seed in 0u64..1000,
    ) {
        let cfg = config(12, EvictionPolicy::adaptive());
        let key = SecretKey::from_seed(3);
        let ba: Vec<NodeId> = boot_a.into_iter().map(NodeId).collect();
        let bb: Vec<NodeId> = boot_b.into_iter().map(NodeId).collect();
        let mut a = RapteeNode::new_trusted(NodeId(1), cfg.clone(), &ba, seed, key.clone());
        let mut b = RapteeNode::new_trusted(NodeId(2), cfg, &bb, seed ^ 1, key);
        a.plan_round();
        b.plan_round();
        RapteeNode::trusted_swap(&mut a, &mut b);
        for node in [&a, &b] {
            prop_assert!(node.brahms().view().invariants_hold());
            prop_assert!(node.brahms().view().len() <= 12);
            prop_assert!(node.directory().invariants_hold());
        }
        // Directories now reference each other.
        prop_assert!(a.directory().contains(NodeId(2)));
        prop_assert!(b.directory().contains(NodeId(1)));
    }

    /// The HLL-sketched discovery counter stays within its stated
    /// relative-error bound of the exact bitset counter for arbitrary
    /// insertion sequences (duplicates included — both sides must be
    /// idempotent). m = 256 registers give a ~6.5 % standard error; the
    /// bound below is ~3σ plus absolute slack for near-empty rows.
    #[test]
    fn sketched_discovery_tracks_exact_counts(
        idxs in proptest::collection::vec(0u64..5_000, 0..800),
        row_count in 1u64..4,
    ) {
        let rows = row_count as usize;
        let universe = 5_000;
        let mut exact = Discovery::new(rows, universe, false);
        let mut sketch = Discovery::new(rows, universe, true);
        prop_assert!(!exact.is_sketch());
        prop_assert!(sketch.is_sketch());
        for (k, &idx) in idxs.iter().enumerate() {
            let row = k % rows;
            exact.insert(row, idx as usize);
            sketch.insert(row, idx as usize);
        }
        for row in 0..rows {
            let truth = exact.count(row) as f64;
            let est = sketch.count(row) as f64;
            let bound = (0.20 * truth).max(2.0);
            prop_assert!(
                (est - truth).abs() <= bound,
                "row {}: sketch estimate {} vs exact {} exceeds the ±20% bound",
                row, est, truth
            );
        }
    }

    /// The bounded-backoff retry loop never issues more than
    /// `max_retries` extra attempts per gated pull, whatever the latency
    /// regime — and the global counter is exactly the sum of the
    /// per-pull deltas.
    #[test]
    fn retry_cap_is_never_exceeded(
        max_retries in 0u32..4,
        base_backoff in 1u64..800,
        latency in 0u64..6_000,
        pairs in proptest::collection::vec((10usize..55, 55usize..100), 1..40),
    ) {
        let mut net = event_net(
            EventNetConfig {
                latency: LatencyModel::Constant(latency),
                retry: RetryConfig { max_retries, base_backoff },
                ..EventNetConfig::default()
            },
            40,
        );
        net.begin_round(0);
        let mut issued = 0u64;
        for (req, tgt) in pairs {
            let before = net.stats().retries_issued;
            let gate = net.gate_pull(0, req, tgt);
            let delta = net.stats().retries_issued - before;
            prop_assert!(
                delta <= u64::from(max_retries),
                "one pull issued {} retries past the cap {}", delta, max_retries
            );
            issued += delta;
            if matches!(gate, PullGate::Deferred { .. }) {
                // The responder never materialises an answer here.
                net.drop_pending_copies();
            }
        }
        prop_assert_eq!(net.stats().retries_issued, issued);
    }

    /// Nonce dedup is airtight: whatever the duplicate/reorder injector
    /// does, every queued exchange is applied exactly once and every
    /// extra delivered copy is counted as suppressed.
    #[test]
    fn duplicates_are_never_double_applied(
        duplicate_rate in 0.0f64..1.0,
        reorder in 0u64..500,
        answers in proptest::collection::vec((0u32..45, 100u64..200), 1..30),
    ) {
        let rounds = 6;
        let mut net = event_net(
            EventNetConfig {
                duplicate_rate,
                reorder_jitter: reorder,
                ..EventNetConfig::default()
            },
            rounds,
        );
        for (ci, from) in &answers {
            net.queue_answer(1, false, *ci, NodeId(*from), vec![NodeId(7)]);
        }
        let mut delivered = 0usize;
        let mut applied = std::collections::HashMap::new();
        for r in 0..rounds {
            net.begin_round(r);
            let due = net.take_due_answers();
            delivered += due.len();
            for a in &due {
                if net.accept_answer(a.nonce) {
                    *applied.entry(a.nonce).or_insert(0u32) += 1;
                }
            }
            net.restore_due_answers(due);
        }
        prop_assert_eq!(applied.len(), answers.len(), "every exchange lands");
        prop_assert!(applied.values().all(|&c| c == 1), "each applied exactly once");
        prop_assert_eq!(
            net.stats().duplicates_suppressed as usize,
            delivered - answers.len(),
            "every extra copy is a suppressed duplicate"
        );
    }

    /// Wire messages survive an encrypted round trip through the secure
    /// channel for arbitrary views and nonces.
    #[test]
    fn encrypted_wire_roundtrip(
        ids in proptest::collection::vec(any::<u64>(), 0..100),
        base_seed in any::<u64>(),
        from in 0u64..100,
        to in 100u64..200,
    ) {
        let msg = Message::PullAnswer { ids: ids.into_iter().map(NodeId).collect() };
        let base = SecretKey::from_seed(base_seed);
        let mut tx = SecureChannel::new(&base, NodeId(from), NodeId(to));
        let mut rx = SecureChannel::new(&base, NodeId(from), NodeId(to));
        let ct = tx.seal_from_initiator(&msg.encode());
        let decoded = Message::decode(&rx.open_from_initiator(&ct)).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// The adaptive adversary never mints budget: whatever reward
    /// sequence the bandit observes, each round's per-arm allocation
    /// sums to exactly the lawful budget it was handed.
    #[test]
    fn adaptive_allocations_conserve_the_budget(
        arm_count in 1usize..12,
        budget in 0usize..10_000,
        rewards in proptest::collection::vec(0.0f64..1.5, 1..60),
    ) {
        let mut bandit = AdaptiveCoordinator::new(arm_count);
        for reward in rewards {
            let allocation = bandit.allocate(budget);
            prop_assert_eq!(allocation.len(), arm_count);
            prop_assert_eq!(allocation.iter().sum::<usize>(), budget);
            let arm = bandit.choose();
            prop_assert_eq!(allocation[arm], budget,
                "the whole budget rides the chosen arm");
            bandit.reward(arm, reward);
        }
    }
}
