//! Chi-square uniformity regression for the Brahms sampling component.
//!
//! The headline Brahms property — the foundation of defence (iv) and of
//! RAPTEE's history sample — is that the min-wise sample list converges
//! to a *uniform* random sample of the distinct IDs ever streamed through
//! the node, no matter how biased the stream. These workspace-level
//! regressions pin that claim down statistically: a full `l2` sampler
//! array digests a heavily repeated adversarial ID mix and the resulting
//! cross-run sample distribution must pass the `raptee_util::chi`
//! goodness-of-fit test at the 1 % significance level, under fixed seeds
//! so a regression cannot hide behind run-to-run noise.

use raptee_net::NodeId;
use raptee_sampler::SamplerArray;
use raptee_util::chi::chi_square_uniform;
use raptee_util::rng::Xoshiro256StarStar;

/// The adversarial stream of the Brahms model: a handful of Byzantine
/// IDs repeated relentlessly, honest IDs seen once each. `l2`
/// independent samplers digest it; the pooled samples across many
/// independently seeded arrays must stay uniform over the *distinct*
/// population.
#[test]
fn adversarial_repetition_mix_is_sampled_uniformly() {
    const UNIVERSE: u64 = 60;
    const BYZANTINE: u64 = 10; // IDs 0..10 are the flooded minority
    const L2: usize = 40;
    const ARRAYS: usize = 120;
    const FLOOD_FACTOR: usize = 200;

    let mut rng = Xoshiro256StarStar::seed_from_u64(0xBA5A17);
    let mut counts = vec![0u64; UNIVERSE as usize];
    for _ in 0..ARRAYS {
        let mut arr = SamplerArray::new(L2, &mut rng);
        // Interleave flood and honest traffic the way rounds deliver it:
        // the Byzantine prefix saturates the stream between every honest
        // observation.
        for honest in BYZANTINE..UNIVERSE {
            for _ in 0..FLOOD_FACTOR / ((UNIVERSE - BYZANTINE) as usize) {
                for byz in 0..BYZANTINE {
                    arr.observe(NodeId(byz));
                }
            }
            arr.observe(NodeId(honest));
        }
        // One more flood burst after the last honest ID.
        for _ in 0..FLOOD_FACTOR {
            for byz in 0..BYZANTINE {
                arr.observe(NodeId(byz));
            }
        }
        for id in arr.samples() {
            counts[id.index()] += 1;
        }
    }

    let total: u64 = counts.iter().sum();
    assert_eq!(
        total,
        (ARRAYS * L2) as u64,
        "every sampler must hold a sample"
    );
    let test = chi_square_uniform(&counts);
    assert!(
        test.is_uniform(),
        "sample distribution failed the 1% chi-square test: statistic {:.2} vs critical {:.2} \
         (counts {counts:?})",
        test.statistic,
        test.critical_1pct
    );
    // And the flooded minority must not be over-represented beyond its
    // fair share by more than the chi-square tolerance already enforces:
    // sanity-check the aggregate directly.
    let byz_samples: u64 = counts[..BYZANTINE as usize].iter().sum();
    let byz_share = byz_samples as f64 / total as f64;
    let fair = BYZANTINE as f64 / UNIVERSE as f64;
    assert!(
        byz_share < 1.5 * fair,
        "flooding bought over-representation: {byz_share:.3} vs fair {fair:.3}"
    );
}

/// The same property holds when the adversarial mix arrives *before* any
/// honest ID — the order-blindness that makes bootstrap poisoning
/// ineffective against the sample list.
#[test]
fn poisoned_bootstrap_mix_is_sampled_uniformly() {
    const UNIVERSE: u64 = 50;
    const L2: usize = 50;
    const ARRAYS: usize = 100;

    let mut rng = Xoshiro256StarStar::seed_from_u64(0x0B007);
    let mut counts = vec![0u64; UNIVERSE as usize];
    for _ in 0..ARRAYS {
        let mut arr = SamplerArray::new(L2, &mut rng);
        // Adversarial prefix: IDs 0..5, ten thousand observations total.
        for _ in 0..2000 {
            for byz in 0..5 {
                arr.observe(NodeId(byz));
            }
        }
        // Honest tail, once each.
        arr.observe_all((5..UNIVERSE).map(NodeId));
        for id in arr.samples() {
            counts[id.index()] += 1;
        }
    }
    let test = chi_square_uniform(&counts);
    assert!(
        test.is_uniform(),
        "bootstrap-poisoned distribution failed chi-square: {:.2} vs {:.2}",
        test.statistic,
        test.critical_1pct
    );
}
