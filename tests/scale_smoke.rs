//! Memory-budget smoke for the large-population engine.
//!
//! A reduced-round, sketch-discovery run at N=100,000 must complete
//! and keep the process' peak RSS inside the budget documented in
//! README.md's "Scale profiles" section. This guards the compact-ID
//! arenas and the HLL discovery sketches against memory regressions at
//! scale: an accidental fallback to exact bitsets (≈ 1.1 GiB of
//! discovery state alone at this population) or a reintroduced
//! per-(node,node) structure blows the budget immediately.
//!
//! Expensive (tens of seconds in release) — ignored by default and run
//! explicitly by the CI `scale-smoke` job with `-- --ignored`.

use raptee_sim::{Protocol, Scenario, Simulation};

/// Peak resident set size in KiB from `/proc/self/status` (Linux).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

/// The documented budget: 1 GiB for the whole test process at
/// N=100,000 (README.md "Scale profiles"). Measured ≈ 0.25 GiB on the
/// reference machine — per-node protocol state (views, samplers,
/// secure channels; ≈ 2.5 KiB/node) plus the discovery sketches at
/// 256 B/node. The headroom absorbs allocator and platform variance,
/// not growth: an exact-bitset fallback alone would add ≈ 1.1 GiB, and
/// a reintroduced per-node seen-cache/dense-membership bitset
/// (O(N²) bits in aggregate — the exact regression this PR removed)
/// ≈ 1.2 GiB; either trips the gate immediately.
const BUDGET_KIB: u64 = 1024 * 1024;

#[test]
#[ignore = "scale smoke (~1 min in release): run explicitly, see the CI scale-smoke job"]
fn hundred_thousand_node_sketch_run_fits_memory_budget() {
    let scenario = Scenario {
        n: 100_000,
        view_size: 16,
        sample_size: 16,
        rounds: 6,
        tail_window: 5,
        protocol: Protocol::Raptee,
        ..Scenario::default()
    };
    assert!(
        scenario.sketch_discovery(),
        "100,000 actors must auto-select sketched discovery"
    );
    let result = Simulation::new(scenario).run();
    assert!(
        result.resilience.is_finite() && result.resilience > 0.0,
        "the run must produce a real pollution measurement, got {}",
        result.resilience
    );
    assert_eq!(result.byz_share_series.len(), 6);
    if let Some(peak) = peak_rss_kib() {
        assert!(
            peak <= BUDGET_KIB,
            "peak RSS {peak} KiB exceeds the documented {BUDGET_KIB} KiB budget \
             (README.md \"Scale profiles\")"
        );
        println!("scale smoke: peak RSS {peak} KiB (budget {BUDGET_KIB} KiB)");
    } else {
        println!("scale smoke: no /proc/self/status; RSS budget not checked");
    }
}
