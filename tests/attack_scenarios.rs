//! Integration tests for the paper's Section VI attack analyses, plus
//! the BASALT head-to-head the paper only discusses qualitatively.

use raptee::EvictionPolicy;
use raptee_net::NodeId;
use raptee_sim::{run_scenario, runner, AttackStrategy, Scenario, Simulation};

fn base() -> Scenario {
    Scenario {
        n: 250,
        byzantine_fraction: 0.20,
        trusted_fraction: 0.10,
        view_size: 14,
        sample_size: 14,
        rounds: 100,
        tail_window: 12,
        seed: 555,
        ..Scenario::default()
    }
}

#[test]
fn identification_attack_yields_bounded_quality() {
    let mut s = base();
    s.identification_attack = true;
    let rounds = s.rounds;
    let r = run_scenario(s);
    let ident = r.identification.expect("attack enabled");
    assert!((0.0..=1.0).contains(&ident.precision));
    assert!((0.0..=1.0).contains(&ident.recall));
    assert!((0.0..=1.0).contains(&ident.f1));
    assert!(ident.round < rounds);
}

#[test]
fn higher_eviction_is_more_detectable() {
    // Section VI-A: eviction is the statistical shadow the adversary
    // hunts. Aggregated over repetitions, ER-100% must expose trusted
    // nodes at least as much as ER-0%.
    let run = |er: f64| {
        let mut s = base();
        s.identification_attack = true;
        s.trusted_fraction = 0.20;
        s.eviction = EvictionPolicy::Fixed(er);
        runner::run_repeated(&s, 3)
    };
    let low = run(0.0);
    let high = run(1.0);
    assert!(
        high.ident_f1 >= low.ident_f1,
        "ER-100% should be at least as detectable as ER-0%: {} vs {}",
        high.ident_f1,
        low.ident_f1
    );
}

#[test]
fn adaptive_eviction_is_not_trivially_detectable() {
    let mut s = base();
    s.identification_attack = true;
    s.trusted_fraction = 0.01;
    s.eviction = EvictionPolicy::adaptive();
    let agg = runner::run_repeated(&s, 3);
    // Paper Section VII: with t = 1% the attacker identifies less than
    // 10% of trusted nodes with low precision. Our reduced scale keeps
    // the same character: low precision at tiny t.
    assert!(
        agg.ident_precision < 0.5,
        "adaptive at t=1% must not be precisely identifiable: {}",
        agg.ident_precision
    );
}

#[test]
fn injection_attack_does_not_destroy_resilience() {
    // Section VI-B: view-poisoned trusted nodes run correct code and
    // self-heal; the attack has "little to no impact".
    let clean = runner::run_repeated(&base(), 2);
    let mut attacked_scenario = base();
    attacked_scenario.injected_poisoned_fraction = 0.05;
    let attacked = runner::run_repeated(&attacked_scenario, 2);
    // Allow a modest degradation margin, but rule out collapse.
    assert!(
        attacked.resilience < clean.resilience + 0.08,
        "5% poisoned trusted nodes must not collapse resilience: clean {:.3}, attacked {:.3}",
        clean.resilience,
        attacked.resilience
    );
}

#[test]
fn injected_nodes_self_heal() {
    use raptee_net::NodeId;
    use raptee_sim::Simulation;
    let mut s = base();
    s.injected_poisoned_fraction = 0.04;
    let byz = s.byzantine_count();
    let mut sim = Simulation::new(s.clone());
    // At round 0 the injected nodes' views are 100% Byzantine.
    let injected_id = NodeId(s.n as u64);
    let poisoned_share = |sim: &Simulation| {
        let node = sim.node(injected_id).unwrap();
        let v = node.brahms().view();
        v.ids().filter(|id| id.index() < byz).count() as f64 / v.len().max(1) as f64
    };
    assert!(
        poisoned_share(&sim) > 0.99,
        "bootstrap must be fully poisoned"
    );
    for _ in 0..s.rounds {
        sim.run_round();
    }
    let healed = poisoned_share(&sim);
    assert!(
        healed < 0.8,
        "the injected node must shed most of its poison: still {healed:.2} Byzantine"
    );
}

#[test]
fn small_injection_can_even_help_at_small_t() {
    // Fig. 13a: with t = 1% and moderate f, added (genuine, if poisoned)
    // trusted nodes reinforce the trusted tier. We assert the weaker,
    // robust form: injection at low f does not hurt by more than noise.
    let mut clean = base();
    clean.trusted_fraction = 0.01;
    clean.byzantine_fraction = 0.10;
    let c = runner::run_repeated(&clean, 3);
    let mut attacked = clean.clone();
    attacked.injected_poisoned_fraction = 0.05;
    let a = runner::run_repeated(&attacked, 3);
    assert!(
        a.resilience < c.resilience + 0.05,
        "low-f injection must not meaningfully hurt: clean {:.3}, attacked {:.3}",
        c.resilience,
        a.resilience
    );
}

#[test]
fn basalt_undercuts_brahms_under_balanced_attack_at_f10() {
    // The fig_basalt_comparison headline at the paper's smallest f: with
    // 10 % Byzantine nodes running the balanced push attack and fully
    // poisoned pull answers, BASALT's ranked hit-counter views hold the
    // steady-state Byzantine in-view share measurably below plain Brahms
    // — no trusted hardware involved.
    let mut brahms_scenario = base().brahms_baseline();
    brahms_scenario.byzantine_fraction = 0.10;
    let basalt_scenario = brahms_scenario.basalt_variant(30);
    let brahms = runner::run_repeated(&brahms_scenario, 2);
    let basalt = runner::run_repeated(&basalt_scenario, 2);
    assert!(
        basalt.resilience < brahms.resilience - 0.05,
        "BASALT must measurably undercut Brahms at f=10%: basalt {:.3} vs brahms {:.3}",
        basalt.resilience,
        brahms.resilience
    );
    // And it stays in the vicinity of the adversary's population share —
    // the BASALT bound — rather than merely below Brahms.
    assert!(
        basalt.resilience < 0.25,
        "BASALT must hold near the f=10% fair share: {:.3}",
        basalt.resilience
    );
}

/// Mean Byzantine share in the victim prefix's views at the end of a
/// targeted-attack run (victims are the first `victim_fraction` of the
/// correct nodes, matching the engine's deterministic victim set).
fn targeted_victim_share(s: &Scenario, victim_fraction: f64) -> f64 {
    let byz = s.byzantine_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    let victims_end = byz + (((s.n - byz) as f64) * victim_fraction).round() as usize;
    let shares: Vec<f64> = (byz..victims_end)
        .map(|i| {
            let id = NodeId(i as u64);
            if let Some(node) = sim.node(id) {
                let v = node.brahms().view();
                v.ids().filter(|id| id.index() < byz).count() as f64 / v.len().max(1) as f64
            } else if let Some(node) = sim.basalt(id) {
                node.view().fraction_matching(|id| id.index() < byz)
            } else {
                panic!("victim {id} is not a correct node");
            }
        })
        .collect();
    shares.iter().sum::<f64>() / shares.len() as f64
}

#[test]
fn basalt_resists_targeted_attack_better_than_brahms() {
    // Satellite criterion: under the Targeted strategy the victim
    // subset's Byzantine in-view share stays below the plain-Brahms
    // baseline measured in the same test. Brahms protects victims with
    // history sampling and the flood detector; BASALT's seeded ranking
    // makes the focused budget outright worthless, which must show as a
    // strictly lower victim pollution.
    let mut s = base().brahms_baseline();
    s.byzantine_fraction = 0.15;
    s.attack = AttackStrategy::Targeted {
        victim_fraction: 0.05,
        focus: 0.8,
    };
    let brahms_victims = targeted_victim_share(&s, 0.05);
    let basalt_victims = targeted_victim_share(&s.basalt_variant(30), 0.05);
    assert!(
        basalt_victims < brahms_victims,
        "targeted victims must fare better under BASALT: basalt {basalt_victims:.3} vs \
         brahms {brahms_victims:.3}"
    );
    assert!(
        basalt_victims < 0.5,
        "BASALT victims must stay far from isolation: {basalt_victims:.3}"
    );
}

#[test]
fn identification_without_trusted_nodes_finds_nothing() {
    let mut s = base().brahms_baseline();
    s.identification_attack = true;
    let r = run_scenario(s);
    if let Some(ident) = r.identification {
        assert_eq!(ident.recall, 0.0, "no trusted nodes exist to find");
        assert_eq!(ident.precision, 0.0);
    }
}
