//! End-to-end integration tests spanning every crate: provisioning →
//! nodes → simulation → metrics.

use raptee::EvictionPolicy;
use raptee_net::NodeId;
use raptee_sim::{run_scenario, runner, Protocol, Scenario, Simulation};

fn base() -> Scenario {
    Scenario {
        n: 250,
        byzantine_fraction: 0.15,
        trusted_fraction: 0.10,
        view_size: 14,
        sample_size: 14,
        rounds: 120,
        tail_window: 15,
        seed: 1234,
        ..Scenario::default()
    }
}

#[test]
fn full_raptee_run_beats_brahms() {
    let raptee = run_scenario(base());
    let brahms = run_scenario(base().brahms_baseline());
    assert!(
        raptee.resilience < brahms.resilience,
        "RAPTEE {:.3} must beat Brahms {:.3}",
        raptee.resilience,
        brahms.resilience
    );
    // Both keep the adversary below full control and above zero.
    for r in [&raptee, &brahms] {
        assert!(r.resilience > 0.05 && r.resilience < 0.95);
        assert_eq!(r.rounds, 120);
        assert_eq!(r.byz_share_series.len(), 120);
    }
}

#[test]
fn improvement_grows_with_trusted_fraction() {
    let brahms = runner::run_repeated(&base().brahms_baseline(), 2);
    let mut last = -100.0;
    for t in [0.05, 0.20, 0.50] {
        let mut s = base();
        s.trusted_fraction = t;
        let agg = runner::run_repeated(&s, 2);
        let imp = runner::resilience_improvement_pct(&brahms, &agg);
        assert!(
            imp > last - 3.0,
            "improvement should not collapse as t grows: t={t}, imp={imp:.1}%, prev={last:.1}%"
        );
        last = imp.max(last);
    }
    assert!(
        last > 10.0,
        "t=50% must yield a double-digit improvement, got {last:.1}%"
    );
}

#[test]
fn resilience_rises_with_byzantine_fraction() {
    let mut previous = 0.0;
    for f in [0.10, 0.20, 0.30] {
        let mut s = base().brahms_baseline();
        s.byzantine_fraction = f;
        let r = run_scenario(s);
        assert!(
            r.resilience > previous,
            "pollution must grow with f: f={f} gave {:.3}, previous {:.3}",
            r.resilience,
            previous
        );
        // Superlinear over-representation: the adversary always controls
        // more view share than its node share.
        assert!(
            r.resilience > f,
            "over-representation at f={f}: {:.3}",
            r.resilience
        );
        previous = r.resilience;
    }
}

#[test]
fn trusted_views_are_cleaner_than_honest_views() {
    let s = base();
    let byz = s.byzantine_count();
    let trusted_n = s.trusted_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..s.rounds {
        sim.run_round();
    }
    let share = |idx: usize| {
        let node = sim.node(NodeId(idx as u64)).unwrap();
        let v = node.brahms().view();
        v.ids().filter(|id| id.index() < byz).count() as f64 / v.len() as f64
    };
    let trusted_mean: f64 = (byz..byz + trusted_n).map(share).sum::<f64>() / trusted_n as f64;
    let honest_mean: f64 =
        (byz + trusted_n..s.n).map(share).sum::<f64>() / (s.n - byz - trusted_n) as f64;
    assert!(
        trusted_mean < honest_mean,
        "eviction must keep trusted views cleaner: trusted {trusted_mean:.3} vs honest {honest_mean:.3}"
    );
}

#[test]
fn trusted_nodes_discover_each_other() {
    let s = base();
    let byz = s.byzantine_count();
    let trusted_n = s.trusted_count();
    let mut sim = Simulation::new(s.clone());
    for _ in 0..60 {
        sim.run_round();
    }
    // After 60 rounds, trusted directories hold a healthy share of the
    // trusted population.
    let mut total = 0usize;
    for i in byz..byz + trusted_n {
        let node = sim.node(NodeId(i as u64)).unwrap();
        assert!(node.is_trusted());
        total += node.directory().len();
    }
    let mean = total as f64 / trusted_n as f64;
    assert!(
        mean >= 1.0,
        "trusted nodes must have met at least one sibling on average, got {mean:.2}"
    );
    // And the directory never contains non-trusted nodes.
    for i in byz..byz + trusted_n {
        let node = sim.node(NodeId(i as u64)).unwrap();
        for id in node.directory().ids() {
            assert!(
                sim.is_trusted(id),
                "directory of {i} contains non-trusted {id}"
            );
        }
    }
}

#[test]
fn runs_are_deterministic_across_protocols() {
    for protocol in [Protocol::Brahms, Protocol::Raptee] {
        let mut s = base();
        s.protocol = protocol;
        s.rounds = 40;
        let a = run_scenario(s.clone());
        let b = run_scenario(s);
        assert_eq!(a, b, "{protocol:?} must be deterministic");
    }
}

#[test]
fn eviction_policy_ordering_at_convergence() {
    // Stronger eviction keeps trusted nodes cleaner; adaptive sits
    // between its bounds.
    let mut resiliences = Vec::new();
    for policy in [
        EvictionPolicy::Fixed(0.0),
        EvictionPolicy::adaptive(),
        EvictionPolicy::Fixed(1.0),
    ] {
        let mut s = base();
        s.eviction = policy;
        resiliences.push(runner::run_repeated(&s, 2).resilience);
    }
    assert!(
        resiliences[2] < resiliences[0],
        "full eviction must beat none: {resiliences:?}"
    );
}

#[test]
fn flood_detection_fires_under_attack() {
    let r = run_scenario(base());
    assert!(
        r.floods_detected > 0,
        "the balanced push attack must occasionally trip the detector"
    );
}

#[test]
fn total_evicted_scales_with_rate() {
    let mut low = base();
    low.eviction = EvictionPolicy::Fixed(0.2);
    let mut high = base();
    high.eviction = EvictionPolicy::Fixed(0.8);
    let r_low = run_scenario(low);
    let r_high = run_scenario(high);
    assert!(
        r_high.total_evicted > r_low.total_evicted,
        "80% eviction must drop more IDs than 20%: {} vs {}",
        r_high.total_evicted,
        r_low.total_evicted
    );
}
