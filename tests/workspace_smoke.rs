//! Workspace wiring smoke test.
//!
//! Exercises every re-export the root meta-crate promises
//! (`raptee_repro::raptee::…` and friends) and runs quickstart-grade
//! logic end-to-end, so a broken manifest — a dropped member, a renamed
//! lib, a missing dependency edge — fails `cargo test -q` instead of
//! only `cargo run --example quickstart`.

use raptee_repro::raptee::{
    provisioning, EvictionPolicy, PeerSamplingService, RapteeConfig, RapteeNode,
};
use raptee_repro::raptee_brahms::BrahmsConfig;
use raptee_repro::raptee_crypto::SecretKey;
use raptee_repro::raptee_net::NodeId;
use raptee_repro::raptee_sim::{runner, Protocol, Scenario};

/// Every member crate is reachable through the meta-crate. A pure
/// link-time check: if any `pub use` in `src/lib.rs` loses its backing
/// dependency, this stops compiling.
#[test]
fn all_reexports_resolve() {
    let _id: raptee_repro::raptee_net::NodeId = NodeId(7);
    let _cfg: raptee_repro::raptee_brahms::BrahmsConfig = BrahmsConfig::paper_defaults(8, 8);
    let _key: raptee_repro::raptee_crypto::SecretKey = SecretKey::from_bytes([1u8; 32]);
    let _ev: raptee_repro::raptee::EvictionPolicy = EvictionPolicy::adaptive();
    let _sc: raptee_repro::raptee_sim::Scenario = Scenario::default();
    let _sampler = raptee_repro::raptee_sampler::Sampler::new(0x5EED);
    let _hist = raptee_repro::raptee_util::hist::Histogram::new(0.0, 1.0, 10);
    let _gossip_view = raptee_repro::raptee_gossip::View::new(NodeId(0), 8);
    let _overhead = raptee_repro::raptee_tee::SgxOverheadModel::paper_table1();
    let _usage = raptee_repro::cli::USAGE;
    let _sps = raptee_repro::raptee_sps::SpsConfig::with_view_size(8);
}

/// Quickstart part 1: provision a trusted node through attestation and
/// consume the node-level API.
#[test]
fn provisioned_trusted_node_serves_peers() {
    let mut attestation = provisioning::new_attestation_service(2024);
    attestation.certify_platform(1);
    let key = provisioning::provision_trusted_key(&mut attestation, 1)
        .expect("genuine enclave on a certified platform attests");

    let config = RapteeConfig {
        brahms: BrahmsConfig::paper_defaults(20, 20),
        eviction: EvictionPolicy::adaptive(),
    };
    let bootstrap: Vec<NodeId> = (1..=20).map(NodeId).collect();
    let mut node = RapteeNode::new_trusted(NodeId(0), config, &bootstrap, 42, key);
    assert!(node.is_trusted());
    assert_eq!(node.current_view().len(), 20);
    let peer = node.next_peer().expect("bootstrap provides peers");
    assert!(
        bootstrap.contains(&peer),
        "samples come from the bootstrap view"
    );
}

/// Quickstart part 2, shrunk to test scale: a full RAPTEE run beats the
/// Brahms baseline on the same workload.
#[test]
fn raptee_beats_brahms_baseline_end_to_end() {
    let scenario = Scenario {
        n: 150,
        byzantine_fraction: 0.10,
        trusted_fraction: 0.10,
        view_size: 12,
        sample_size: 12,
        rounds: 100,
        protocol: Protocol::Raptee,
        seed: 7,
        ..Scenario::default()
    };
    let raptee = runner::run_scenario(scenario.clone());
    let brahms = runner::run_scenario(scenario.brahms_baseline());
    assert!(
        raptee.resilience > 0.0 && raptee.resilience < 1.0,
        "resilience is a fraction, got {}",
        raptee.resilience
    );
    assert!(
        raptee.resilience < brahms.resilience,
        "RAPTEE ({:.3}) should hold fewer Byzantine IDs than Brahms ({:.3})",
        raptee.resilience,
        brahms.resilience
    );
}

/// The CLI argument parser reached through the meta-crate works on a
/// representative command line.
#[test]
fn cli_parses_through_meta_crate() {
    let args = raptee_repro::cli::Args::parse(
        ["run", "--n", "150", "--f", "0.2", "--eviction", "adaptive"]
            .iter()
            .map(|s| s.to_string()),
    );
    match args {
        Ok(a) => assert_eq!(a.command, "run"),
        Err(e) => panic!("expected parse success, got {e:?}"),
    }
}
