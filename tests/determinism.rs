//! Determinism regression suite.
//!
//! The performance work (allocation-free round engine, sampler
//! seen-cache, batched delivery, work-stealing sweeps) is only valid if
//! it is *observationally invisible*: identical seeds must keep yielding
//! bit-identical [`RunResult`]s. Three layers of protection:
//!
//! 1. **Golden fingerprints** — the exact metric bits produced by the
//!    pre-optimization engine (captured at the seed commit for five
//!    scenarios spanning Brahms / RAPTEE / BASALT, churn, loss,
//!    validation, identification and targeted attacks). Any change to
//!    an RNG draw, a delivery order that matters, or a metric fold
//!    breaks these constants.
//! 2. **Run-to-run identity** — the same scenario twice in one process.
//! 3. **Thread-count invariance** — repetition/sweep aggregates under 1
//!    worker vs several (through the rayon shim's scoped override), so
//!    the work-stealing scheduler provably cannot leak schedule
//!    dependence into results.

use raptee_sim::{
    runner, AdversaryMode, AttackStrategy, AuditConfig, ChurnSchedule, DiscoveryMode,
    EventNetConfig, LatencyModel, PartitionWindow, Protocol, Reachability, RejoinPolicy,
    RetryConfig, RunResult, Scenario, SegmentSpec, Simulation,
};

/// A compact, bit-exact fingerprint of a [`RunResult`].
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    resilience_bits: u64,
    series_hash: u64,
    discovery: Option<usize>,
    mean_discovery_bits: Option<u64>,
    stability: Option<usize>,
    spread_stability: Option<usize>,
    floods: u64,
    evicted: u64,
    rotations: u64,
}

fn fingerprint(r: &RunResult) -> Fingerprint {
    let series_hash = r
        .byz_share_series
        .iter()
        .fold(0u64, |acc, v| acc.rotate_left(7) ^ v.to_bits());
    Fingerprint {
        resilience_bits: r.resilience.to_bits(),
        series_hash,
        discovery: r.discovery_round,
        mean_discovery_bits: r.mean_discovery_round.map(f64::to_bits),
        stability: r.stability_round,
        spread_stability: r.spread_stability_round,
        floods: r.floods_detected,
        evicted: r.total_evicted,
        rotations: r.seed_rotations,
    }
}

fn base(protocol: Protocol) -> Scenario {
    Scenario {
        n: 150,
        byzantine_fraction: 0.1,
        trusted_fraction: 0.1,
        view_size: 12,
        sample_size: 12,
        rounds: 60,
        tail_window: 10,
        protocol,
        seed: 0xD5EED,
        ..Scenario::default()
    }
}

fn churn_scenario() -> Scenario {
    let mut s = base(Protocol::Raptee);
    s.message_loss = 0.1;
    s.churn = ChurnSchedule::one_shot(0.15, 20);
    s.sampler_validation_period = 5;
    s.identification_attack = true;
    s
}

fn basalt_targeted_scenario() -> Scenario {
    let mut s = base(Protocol::Brahms).basalt_variant(10);
    s.attack = AttackStrategy::Targeted {
        victim_fraction: 0.2,
        focus: 0.6,
    };
    s.message_loss = 0.05;
    s
}

/// Mixed population #1: Brahms + plain BASALT halves under message
/// loss — the two un-hardened protocols sharing one adversary.
fn mixed_brahms_basalt_scenario() -> Scenario {
    let mut s = base(Protocol::Brahms).brahms_baseline().half_and_half(
        Protocol::Brahms,
        Protocol::Basalt {
            view_size: 12,
            rotation_interval: 15,
        },
    );
    s.message_loss = 0.05;
    s
}

/// Mixed population #2: RAPTEE + BASALT+TEE halves, both with trusted
/// tiers (t = 10 % split across the segments), under churn.
fn mixed_raptee_basalt_tee_scenario() -> Scenario {
    let mut s = base(Protocol::Raptee).half_and_half(
        Protocol::Raptee,
        Protocol::BasaltTee {
            view_size: 12,
            rotation_interval: 15,
            wlist_ttl: 8,
        },
    );
    s.churn = ChurnSchedule::one_shot(0.1, 25);
    s.sampler_validation_period = 5;
    s
}

/// LIFT under loss: hub-score-weighted replacement on the ranked
/// engine lane, pinned with the same workload knobs as the BASALT
/// golden so family-level drift is easy to spot.
fn lift_scenario() -> Scenario {
    let mut s = base(Protocol::Brahms).lift_variant(15);
    s.message_loss = 0.05;
    s
}

/// Honeybee under loss: verifiable random walks (live waiting-list
/// quarantine on the endpoints) on the same workload.
fn honeybee_scenario() -> Scenario {
    let mut s = base(Protocol::Brahms).honeybee_variant(4);
    s.message_loss = 0.05;
    s
}

/// The adaptive adversary on the two-family mixed population: the UCB
/// coordinator re-aims the lawful budget across (segment, strategy)
/// arms each round. Pinned so the bandit's deterministic choice
/// sequence is part of the golden surface.
fn adaptive_mixed_scenario() -> Scenario {
    let mut s = mixed_brahms_basalt_scenario();
    s.adversary_mode = AdversaryMode::Adaptive;
    s
}

/// The sketch-discovery determinism scenario: the raptee golden
/// scenario with HLL sketches forced on (well below the automatic
/// crossover, so exact-mode goldens are untouched). Runs longer than
/// `base` because the 60-round exact run only crosses the 75 %
/// discovery target in its final rounds — a few percent of sketch
/// estimation error must not push the crossing off the end of the run.
fn sketch_scenario() -> Scenario {
    let mut s = base(Protocol::Raptee);
    s.discovery = DiscoveryMode::Sketch;
    s.rounds = 120;
    s
}

/// Event family #1 (latency-only): the raptee golden scenario on the
/// event engine with log-normal per-link latency and desynchronised
/// round timers — a realistic WAN where a tail of answers and pushes
/// crosses round boundaries.
fn event_latency_scenario() -> Scenario {
    base(Protocol::Raptee).with_network(EventNetConfig {
        latency: LatencyModel::LogNormal {
            mu: 6.2,
            sigma: 0.8,
            cap: 5_000,
        },
        round_ticks: 1_000,
        jitter: 200,
        ..EventNetConfig::default()
    })
}

/// Event family #2 (partition-and-heal): a clean cut through the
/// population for 15 rounds mid-run; held messages release at the heal.
fn event_partition_scenario() -> Scenario {
    base(Protocol::Raptee).with_network(EventNetConfig {
        latency: LatencyModel::Uniform { min: 50, max: 600 },
        partitions: vec![PartitionWindow {
            start: 10,
            end: 25,
            boundary: 75,
        }],
        ..EventNetConfig::default()
    })
}

/// Event family #3 (NAT eclipse): 40 % of the correct population behind
/// NAT-like asymmetric reachability — unsolicited inbound pushes bounce
/// unless the receiver recently contacted the sender, starving the
/// natted tail of honest pushes while pulls (outbound) still work.
fn event_nat_eclipse_scenario() -> Scenario {
    base(Protocol::Raptee).with_network(EventNetConfig {
        latency: LatencyModel::Constant(100),
        reachability: Reachability::Nat {
            fraction: 0.4,
            hole_ttl: 3,
        },
        ..EventNetConfig::default()
    })
}

/// Robustness family #1 (this PR): steady churn with warm-rejoin
/// restarts riding on the lognormal-latency event substrate, with
/// bounded-backoff retries and a duplicate/reorder fault injector — the
/// full dynamic-membership surface in one pinned run.
fn event_churn_recovery_scenario() -> Scenario {
    let mut s = base(Protocol::Raptee).with_network(EventNetConfig {
        latency: LatencyModel::LogNormal {
            mu: 6.2,
            sigma: 0.8,
            cap: 5_000,
        },
        round_ticks: 1_000,
        jitter: 200,
        retry: RetryConfig {
            max_retries: 2,
            base_backoff: 250,
        },
        duplicate_rate: 0.1,
        reorder_jitter: 50,
        ..EventNetConfig::default()
    });
    s.churn = ChurnSchedule::steady(0.02, 0.4);
    s.churn.rejoin = RejoinPolicy::Warm;
    s
}

/// Robustness family #2 (this PR): attestation certificates expiring on
/// a 15-round TTL over the 10 % trusted tier — degraded nodes act
/// untrusted until re-attestation heals them.
fn trusted_expiry_scenario() -> Scenario {
    let mut s = base(Protocol::Raptee);
    s.attest_ttl = 15;
    s
}

/// Audit family (PR 9): the NAT-eclipse substrate with the verifiable
/// audit layer switched on and gentle warm-rejoin churn — commitments,
/// challenger sampling, conviction/quarantine and the churn interaction
/// (re-commits after restarts) in one pinned run.
fn audit_eclipse_scenario() -> Scenario {
    let mut s = event_nat_eclipse_scenario();
    s.audit = Some(AuditConfig {
        budget: 4,
        grace: 8,
    });
    s.churn = ChurnSchedule::steady(0.01, 0.4);
    s.churn.rejoin = RejoinPolicy::Warm;
    s
}

/// Asserts `scenario` still produces the exact metric bits the
/// pre-optimization engine produced, and that a second run agrees.
fn assert_golden(name: &str, scenario: Scenario, golden: Fingerprint) {
    let a = Simulation::new(scenario.clone()).run();
    let b = Simulation::new(scenario).run();
    assert_eq!(a, b, "{name}: same-seed runs must be identical");
    assert_eq!(
        fingerprint(&a),
        golden,
        "{name}: RunResult diverged from the seed-commit engine"
    );
}

// Golden constants captured from the engine BEFORE the perf rewrite
// (PR 2 state), at the scenarios above.

#[test]
fn golden_brahms() {
    assert_golden(
        "brahms",
        base(Protocol::Brahms).brahms_baseline(),
        Fingerprint {
            resilience_bits: 0x3fda3ddc203b4efa,
            series_hash: 0x977d282f517c692,
            discovery: None,
            mean_discovery_bits: None,
            stability: Some(11),
            spread_stability: None,
            floods: 1,
            evicted: 0,
            rotations: 0,
        },
    );
}

#[test]
fn golden_raptee() {
    assert_golden(
        "raptee",
        base(Protocol::Raptee),
        Fingerprint {
            resilience_bits: 0x3fd942da9bc93fe8,
            series_hash: 0xcf5597f0420987a6,
            discovery: None,
            mean_discovery_bits: Some(4633423779339946151),
            stability: Some(12),
            spread_stability: None,
            floods: 4,
            evicted: 21465,
            rotations: 0,
        },
    );
}

#[test]
fn golden_basalt() {
    assert_golden(
        "basalt",
        base(Protocol::Brahms).basalt_variant(15),
        Fingerprint {
            resilience_bits: 0x3fc09fcb68cd4e41,
            series_hash: 0xa9cc604284e88158,
            discovery: None,
            mean_discovery_bits: Some(4618751561592782251),
            stability: Some(12),
            spread_stability: None,
            floods: 0,
            evicted: 0,
            rotations: 540,
        },
    );
}

#[test]
fn golden_raptee_under_churn_loss_validation_and_identification() {
    assert_golden(
        "raptee-churn",
        churn_scenario(),
        Fingerprint {
            resilience_bits: 0x3fd910204974809e,
            series_hash: 0x1bccb30147a4c96f,
            discovery: None,
            mean_discovery_bits: None,
            stability: Some(35),
            spread_stability: None,
            floods: 0,
            evicted: 16960,
            rotations: 0,
        },
    );
}

#[test]
fn golden_basalt_under_targeted_attack_and_loss() {
    assert_golden(
        "basalt-targeted",
        basalt_targeted_scenario(),
        Fingerprint {
            resilience_bits: 0x3fc12b5caa69f096,
            series_hash: 0x7ae0846b13676301,
            discovery: Some(51),
            mean_discovery_bits: Some(4619542959363840151),
            stability: Some(10),
            spread_stability: None,
            floods: 0,
            evicted: 0,
            rotations: 810,
        },
    );
}

// Golden constants for the PR 5 mixed-population engine, captured at
// its introduction commit. The *uniform* goldens above pin the
// segmented engine indirectly too: a single-segment population must be
// bit-identical to them (see
// `mixed_single_segment_population_matches_uniform_engine`).

#[test]
fn golden_mixed_brahms_basalt() {
    assert_golden(
        "mixed-brahms-basalt",
        mixed_brahms_basalt_scenario(),
        Fingerprint {
            resilience_bits: 0x3fc9cda0a95bb63b,
            series_hash: 0x448d08372a1e1020,
            discovery: None,
            mean_discovery_bits: Some(4627133993233927481),
            stability: Some(3),
            spread_stability: None,
            floods: 6,
            evicted: 0,
            rotations: 268,
        },
    );
    // Per-segment pollution is part of the pinned surface as well.
    let r = Simulation::new(mixed_brahms_basalt_scenario()).run();
    let seg_bits: Vec<u64> = r.segments.iter().map(|s| s.resilience.to_bits()).collect();
    assert_eq!(seg_bits, vec![0x3fd1c93ab62af98b, 0x3fbfc6f0f89ce953]);
    assert_eq!(r.segments[0].protocol, Protocol::Brahms);
    assert!(
        r.segments[1].resilience < r.segments[0].resilience,
        "the BASALT half must stay cleaner than the Brahms half"
    );
}

#[test]
fn golden_mixed_raptee_basalt_tee() {
    assert_golden(
        "mixed-raptee-basalt-tee",
        mixed_raptee_basalt_tee_scenario(),
        Fingerprint {
            resilience_bits: 0x3fcab0a1c4d4b6d5,
            series_hash: 0xc5d4b56bfa25dadf,
            discovery: None,
            mean_discovery_bits: Some(4626768043502488254),
            stability: Some(6),
            spread_stability: None,
            floods: 3,
            evicted: 12690,
            rotations: 250,
        },
    );
    let r = Simulation::new(mixed_raptee_basalt_tee_scenario()).run();
    let seg_bits: Vec<u64> = r.segments.iter().map(|s| s.resilience.to_bits()).collect();
    assert_eq!(seg_bits, vec![0x3fd267dd24c3b6aa, 0x3fc0bc035b7d0ff2]);
}

// Golden constant for the sketch-discovery engine (this PR), captured
// at its introduction commit. Sketches touch nothing but the discovery
// counters — `sketch_mode_only_moves_discovery_metrics` below proves
// the non-discovery metrics stay bit-identical to an exact run of the
// same scenario.

#[test]
fn golden_sketch_raptee() {
    assert_golden(
        "raptee-sketch",
        sketch_scenario(),
        Fingerprint {
            resilience_bits: 0x3fd88874ce99e6f6,
            series_hash: 0xfeb9f7ed8dbcc980,
            discovery: None,
            mean_discovery_bits: Some(4634281981934209955),
            stability: Some(11),
            spread_stability: None,
            floods: 4,
            evicted: 41893,
            rotations: 0,
        },
    );
}

// Golden constants for the LIFT / Honeybee protocol families and the
// adaptive adversary (this PR), captured at their introduction commit.
// The pre-existing goldens above are untouched by construction: with
// `AdversaryMode::Static` and a non-ranked or BASALT protocol the new
// code paths consume zero RNG draws.

#[test]
fn golden_lift() {
    assert_golden(
        "lift",
        lift_scenario(),
        Fingerprint {
            resilience_bits: 4588185012371869861,
            series_hash: 8344924728755860859,
            discovery: Some(4),
            mean_discovery_bits: Some(4612898595231693904),
            stability: Some(9),
            spread_stability: Some(9),
            floods: 0,
            evicted: 0,
            rotations: 0,
        },
    );
}

#[test]
fn golden_honeybee() {
    assert_golden(
        "honeybee",
        honeybee_scenario(),
        Fingerprint {
            resilience_bits: 4595063843802712798,
            series_hash: 1628966297862320722,
            discovery: Some(8),
            mean_discovery_bits: Some(4614639924362755912),
            stability: Some(15),
            spread_stability: None,
            floods: 0,
            evicted: 0,
            rotations: 0,
        },
    );
}

#[test]
fn golden_adaptive_mixed() {
    assert_golden(
        "adaptive-mixed",
        adaptive_mixed_scenario(),
        Fingerprint {
            resilience_bits: 4596544877487963725,
            series_hash: 9871653851333298584,
            discovery: None,
            mean_discovery_bits: Some(4627340315227848702),
            stability: Some(1),
            spread_stability: None,
            floods: 9,
            evicted: 0,
            rotations: 268,
        },
    );
    // The adaptive coordinator must *move the needle* relative to the
    // same mixed population under the static balanced split — its whole
    // point is concentrating the budget where pollution sticks.
    let adaptive = Simulation::new(adaptive_mixed_scenario()).run();
    let static_run = Simulation::new(mixed_brahms_basalt_scenario()).run();
    assert!(
        adaptive.resilience > static_run.resilience,
        "adaptive ({}) must out-pollute the static proportional split ({})",
        adaptive.resilience,
        static_run.resilience
    );
}

#[test]
fn sketch_mode_only_moves_discovery_metrics() {
    // Sketches replace the discovery counters and nothing else, so
    // every non-discovery metric matches the exact run bit-for-bit and
    // the discovery estimate stays within the HLL error envelope.
    let mut exact_scenario = sketch_scenario();
    exact_scenario.discovery = DiscoveryMode::Auto; // 150 actors → exact
    let exact = Simulation::new(exact_scenario).run();
    let sketched = Simulation::new(sketch_scenario()).run();
    assert_eq!(
        exact.resilience.to_bits(),
        sketched.resilience.to_bits(),
        "resilience must not depend on the discovery representation"
    );
    assert_eq!(exact.byz_share_series, sketched.byz_share_series);
    assert_eq!(exact.stability_round, sketched.stability_round);
    assert_eq!(exact.total_evicted, sketched.total_evicted);
    assert_eq!(exact.floods_detected, sketched.floods_detected);
    match (exact.mean_discovery_round, sketched.mean_discovery_round) {
        (Some(e), Some(s)) => {
            let bound = (0.20 * e).max(1.5);
            assert!(
                (e - s).abs() <= bound,
                "sketched mean discovery round {s} strays more than ±{bound:.2} from exact {e}"
            );
        }
        (e, s) => panic!("both modes must report a discovery round, got {e:?} vs {s:?}"),
    }
}

#[test]
fn mixed_single_segment_population_matches_uniform_engine() {
    // The property the segmented engine is built around: a population
    // spec whose single segment covers 100 % of the correct nodes must
    // be *bit-identical* to the uniform single-protocol path — same RNG
    // draw order end to end, for every protocol family and under
    // churn/loss/validation.
    let scenarios: [(&str, Scenario); 6] = [
        ("brahms", base(Protocol::Brahms).brahms_baseline()),
        ("raptee", base(Protocol::Raptee)),
        ("basalt", base(Protocol::Brahms).basalt_variant(15)),
        ("lift", lift_scenario()),
        ("honeybee", honeybee_scenario()),
        ("raptee-churn", {
            let mut s = churn_scenario();
            // Mixed mode forbids the identification attack; everything
            // else (loss, churn, sampler validation) carries over.
            s.identification_attack = false;
            s
        }),
    ];
    for (name, uniform) in scenarios {
        let correct = uniform.n - uniform.byzantine_count();
        let mixed = Scenario {
            population: vec![SegmentSpec {
                protocol: uniform.protocol,
                count: correct,
            }],
            ..uniform.clone()
        };
        let a = Simulation::new(uniform).run();
        let b = Simulation::new(mixed).run();
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{name}: single-segment population diverged from the uniform engine"
        );
        assert_eq!(
            a.byz_share_series, b.byz_share_series,
            "{name}: full series must match"
        );
        assert_eq!(
            a.segments[0].resilience.to_bits(),
            b.segments[0].resilience.to_bits(),
            "{name}: the single segment must report the combined resilience"
        );
    }
}

#[test]
fn single_run_identical_across_intra_run_thread_counts() {
    // PR 4's phase-parallel engine shards the plan and apply phases of
    // ONE run across workers. The schedule must be invisible: the same
    // scenario at RAYON_NUM_THREADS ∈ {1, 2, 4} (via the shim's scoped
    // override) must produce bit-identical RunResults for all three
    // protocols and each attack type, including churn/loss/validation
    // and the deferred Byzantine pull-answer replay.
    let scenarios: [(&str, Scenario); 17] = [
        ("brahms", base(Protocol::Brahms).brahms_baseline()),
        ("raptee", base(Protocol::Raptee)),
        ("basalt", base(Protocol::Brahms).basalt_variant(15)),
        ("lift", lift_scenario()),
        ("honeybee", honeybee_scenario()),
        ("raptee-churn", churn_scenario()),
        ("basalt-targeted", basalt_targeted_scenario()),
        ("adaptive-mixed", adaptive_mixed_scenario()),
        ("mixed-brahms-basalt", mixed_brahms_basalt_scenario()),
        (
            "mixed-raptee-basalt-tee",
            mixed_raptee_basalt_tee_scenario(),
        ),
        ("raptee-sketch", sketch_scenario()),
        ("event-latency", event_latency_scenario()),
        ("event-partition", event_partition_scenario()),
        ("event-nat-eclipse", event_nat_eclipse_scenario()),
        ("event-churn-recovery", event_churn_recovery_scenario()),
        ("trusted-expiry", trusted_expiry_scenario()),
        ("audit-eclipse", audit_eclipse_scenario()),
    ];
    for (name, scenario) in scenarios {
        let serial = rayon::with_num_threads(1, || Simulation::new(scenario.clone()).run());
        for threads in [2, 4] {
            let parallel =
                rayon::with_num_threads(threads, || Simulation::new(scenario.clone()).run());
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&parallel),
                "{name}: single-run results must match at {threads} intra-run threads"
            );
            assert_eq!(
                serial, parallel,
                "{name}: full RunResult must match at {threads} intra-run threads"
            );
        }
    }
}

#[test]
fn repetitions_identical_across_thread_counts() {
    // One scenario per protocol; the repetition loop is the rayon-shim
    // surface, so aggregates must not depend on the worker count.
    for scenario in [
        base(Protocol::Brahms).brahms_baseline(),
        base(Protocol::Raptee),
        base(Protocol::Brahms).basalt_variant(15),
    ] {
        let serial = rayon::with_num_threads(1, || runner::run_repeated(&scenario, 3));
        for threads in [2, 4] {
            let parallel = rayon::with_num_threads(threads, || runner::run_repeated(&scenario, 3));
            assert_eq!(
                serial, parallel,
                "{:?}: aggregates must match at {threads} threads",
                scenario.protocol
            );
        }
    }
}

// Golden constants for the dynamic-membership engine (this PR),
// captured at its introduction commit. Beyond the usual fingerprint
// each run pins its recovery family — the new observable surface.

/// Hashes a per-round f64 series the same way the fingerprint does.
fn series_hash(series: &[f64]) -> u64 {
    series
        .iter()
        .fold(0u64, |acc, v| acc.rotate_left(7) ^ v.to_bits())
}

#[test]
fn golden_event_churn_recovery() {
    assert_golden(
        "event-churn-recovery",
        event_churn_recovery_scenario(),
        Fingerprint {
            resilience_bits: 0x3fd98445e3a0cece,
            series_hash: 0x66de0f1926767bfb,
            discovery: None,
            mean_discovery_bits: None,
            stability: Some(19),
            spread_stability: None,
            floods: 1,
            evicted: 0x4d20,
            rotations: 0,
        },
    );
    let r = Simulation::new(event_churn_recovery_scenario()).run();
    assert_eq!(
        r.net,
        Some(raptee_sim::NetRunStats {
            late_deliveries: 68930,
            partition_held: 0,
            partition_released: 0,
            nat_blocked: 0,
            refused_pulls: 0,
            in_flight_at_end: 1288,
            retries_issued: 35460,
            duplicates_suppressed: 35063,
            nonce_evictions: 22527,
        }),
        "substrate counters diverged from the introduction commit"
    );
    let rec = r.recovery.expect("dynamic churn pins recovery stats");
    assert_eq!(rec.availability.to_bits(), 0x3fee4c1acd0d86e4);
    assert_eq!((rec.crashes, rec.restarts, rec.recovered), (163, 154, 96));
    assert_eq!(
        rec.mean_time_to_recover.map(f64::to_bits),
        Some(0x40276aaaaaaaaaab),
        "mean TTR ≈ 11.7 rounds at the introduction commit"
    );
    assert_eq!(rec.trusted_live_fraction.len(), 60);
    assert_eq!(series_hash(&rec.trusted_live_fraction), 0xd31a1b9070e26651);
}

#[test]
fn golden_trusted_expiry() {
    assert_golden(
        "trusted-expiry",
        trusted_expiry_scenario(),
        Fingerprint {
            resilience_bits: 0x3fd8b12bb080a020,
            series_hash: 0x89fa4474b0cbf2f,
            discovery: None,
            mean_discovery_bits: Some(0x404d27999999999a),
            stability: Some(11),
            spread_stability: None,
            floods: 7,
            evicted: 0x6069,
            rotations: 0,
        },
    );
    let r = Simulation::new(trusted_expiry_scenario()).run();
    let rec = r.recovery.expect("attestation expiry pins recovery stats");
    // No churn: every node-round is live and nothing restarts.
    assert_eq!(rec.availability.to_bits(), 1.0f64.to_bits());
    assert_eq!((rec.crashes, rec.restarts, rec.recovered), (0, 0, 0));
    assert_eq!(rec.mean_time_to_recover, None);
    // The degradation/heal cycle: the tier starts whole, dips to 73 %
    // live-and-attested, and the exact per-round trace is pinned.
    assert_eq!(rec.trusted_live_fraction.len(), 60);
    assert_eq!(
        rec.trusted_live_fraction
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .to_bits(),
        (11.0f64 / 15.0).to_bits()
    );
    assert_eq!(series_hash(&rec.trusted_live_fraction), 0xa031a18827913f9);
}

#[test]
fn sweep_grid_identical_across_thread_counts() {
    let mut template = base(Protocol::Raptee);
    template.rounds = 25;
    template.tail_window = 5;
    let fs = [0.1, 0.2];
    let ts = [0.05, 0.2];
    let serial = rayon::with_num_threads(1, || runner::sweep_grid(&template, &fs, &ts, 1));
    let stolen = rayon::with_num_threads(4, || runner::sweep_grid(&template, &fs, &ts, 1));
    assert_eq!(serial.baselines, stolen.baselines);
    assert_eq!(serial.grid, stolen.grid);
}

// Golden constants for the event-driven network model (this PR),
// captured at its introduction commit. Each run also pins the
// delivery-substrate counters — the event engine's observable surface
// beyond the protocol metrics.

/// Asserts the substrate counters of one event-family golden run.
fn assert_golden_net(name: &str, scenario: Scenario, net: raptee_sim::NetRunStats) {
    let r = Simulation::new(scenario).run();
    assert_eq!(
        r.net,
        Some(net),
        "{name}: substrate counters diverged from the introduction commit"
    );
    assert_eq!(r.virtual_ticks, 60_000, "{name}: 60 rounds × 1000 ticks");
}

#[test]
fn golden_event_latency() {
    assert_golden(
        "event-latency",
        event_latency_scenario(),
        Fingerprint {
            resilience_bits: 0x3fd68944a9645797,
            series_hash: 0x4ee7b463bfe737f3,
            discovery: None,
            mean_discovery_bits: Some(0x4049339f656f1825),
            stability: Some(16),
            spread_stability: None,
            floods: 2,
            evicted: 0x53b7,
            rotations: 0,
        },
    );
    assert_golden_net(
        "event-latency",
        event_latency_scenario(),
        raptee_sim::NetRunStats {
            late_deliveries: 36088,
            partition_held: 0,
            partition_released: 0,
            nat_blocked: 0,
            refused_pulls: 0,
            in_flight_at_end: 859,
            retries_issued: 0,
            duplicates_suppressed: 0,
            nonce_evictions: 24792,
        },
    );
}

#[test]
fn golden_event_partition() {
    assert_golden(
        "event-partition",
        event_partition_scenario(),
        Fingerprint {
            resilience_bits: 0x3fd88ab80af8fadb,
            series_hash: 0xf78584275a77e646,
            discovery: None,
            mean_discovery_bits: Some(0x404aaf0329161f9c),
            stability: Some(37),
            spread_stability: None,
            floods: 124,
            evicted: 0x4efd,
            rotations: 0,
        },
    );
    assert_golden_net(
        "event-partition",
        event_partition_scenario(),
        raptee_sim::NetRunStats {
            late_deliveries: 5946,
            partition_held: 3510,
            // Every held message releases at the heal — none dropped.
            partition_released: 3510,
            nat_blocked: 0,
            refused_pulls: 2769,
            in_flight_at_end: 46,
            retries_issued: 0,
            duplicates_suppressed: 0,
            nonce_evictions: 2369,
        },
    );
}

#[test]
fn golden_event_nat_eclipse() {
    assert_golden(
        "event-nat-eclipse",
        event_nat_eclipse_scenario(),
        Fingerprint {
            resilience_bits: 0x3fe00554ecdfa5aa,
            series_hash: 0xa780f3bf8a789193,
            discovery: None,
            mean_discovery_bits: None,
            stability: Some(11),
            spread_stability: None,
            floods: 1,
            evicted: 0x3b6c,
            rotations: 0,
        },
    );
    assert_golden_net(
        "event-nat-eclipse",
        event_nat_eclipse_scenario(),
        raptee_sim::NetRunStats {
            late_deliveries: 0,
            partition_held: 0,
            partition_released: 0,
            nat_blocked: 12477,
            refused_pulls: 0,
            in_flight_at_end: 0,
            retries_issued: 0,
            duplicates_suppressed: 0,
            nonce_evictions: 0,
        },
    );
    // The eclipse story the fingerprint encodes: the round-model raptee
    // golden converges near 0.395 pollution; behind 40 % NAT the same
    // scenario converges near 0.50 — starving natted nodes of honest
    // pushes hands the adversary a materially larger view share.
    let natted = f64::from_bits(0x3fe00554ecdfa5aa);
    let open = f64::from_bits(0x3fd942da9bc93fe8);
    assert!(natted > open + 0.05);
}

// Golden constants for the verifiable audit layer (PR 9), captured at
// its introduction commit: the protocol fingerprint plus the full
// AuditStats family — the challenger's observable surface.

#[test]
fn golden_audit_eclipse() {
    assert_golden(
        "audit-eclipse",
        audit_eclipse_scenario(),
        Fingerprint {
            resilience_bits: 0x3fbdc9175d75ca2a,
            series_hash: 0xfdeea7fe103682f7,
            discovery: None,
            mean_discovery_bits: None,
            stability: Some(57),
            spread_stability: None,
            floods: 10,
            evicted: 12407,
            rotations: 0,
        },
    );
    let r = Simulation::new(audit_eclipse_scenario()).run();
    let a = r.audit.expect("the audit layer is on, stats must report");
    let series_hash = a
        .quarantine_series
        .iter()
        .fold(0u64, |acc, &v| acc.rotate_left(7) ^ u64::from(v));
    assert_eq!(
        (
            a.audits_issued,
            a.audits_answered,
            a.cleared,
            a.suspected,
            a.convictions,
            a.false_accusations,
            a.detected_byzantine,
            a.mean_detection_latency.map(f64::to_bits),
            a.commitments_recorded,
            a.chain_restarts,
            a.quarantine_series.len(),
            series_hash,
        ),
        (
            231u64,
            227u64,
            216u64,
            4u64,
            11u64,
            0u64,
            11u64,
            // ≈ 24.09 rounds from activity to conviction at budget 4.
            Some(0x40381745d1745d17),
            891u64,
            0u64,
            60usize,
            0xd162244893257efb,
        ),
        "audit-eclipse: AuditStats diverged from the introduction commit"
    );
}
