//! Cross-crate cryptographic integration: the real handshake over the
//! simulated network, wire indistinguishability, and the crypto-shortcut
//! equivalence the large sweeps rely on.

use raptee::{provisioning, EvictionPolicy, RapteeConfig, RapteeNode};
use raptee_brahms::BrahmsConfig;
use raptee_crypto::auth::{AuthChallenge, AuthConfirm, AuthOutcome, AuthResponse};
use raptee_net::{MessageMeter, Network, NodeId};
use raptee_sim::{run_scenario, Scenario};

fn cfg() -> RapteeConfig {
    RapteeConfig {
        brahms: BrahmsConfig::paper_defaults(8, 8),
        eviction: EvictionPolicy::adaptive(),
    }
}

fn boot() -> Vec<NodeId> {
    (10..18).map(NodeId).collect()
}

/// Wire messages for the authentication exchange.
#[derive(Debug, Clone)]
enum AuthMsg {
    Challenge(AuthChallenge),
    Response(AuthResponse),
    Confirm(AuthConfirm),
}

impl MessageMeter for AuthMsg {
    fn kind(&self) -> &'static str {
        match self {
            AuthMsg::Challenge(_) => "auth-challenge",
            AuthMsg::Response(_) => "auth-response",
            AuthMsg::Confirm(_) => "auth-confirm",
        }
    }
    fn size_bytes(&self) -> usize {
        match self {
            AuthMsg::Challenge(_) => 16,
            AuthMsg::Response(_) => 48,
            AuthMsg::Confirm(_) => 32,
        }
    }
}

/// Runs the four-step handshake through `Network` inboxes instead of
/// in-process calls, and returns both verdicts plus the observed wire
/// trace.
fn handshake_over_network(
    a: &mut RapteeNode,
    b: &mut RapteeNode,
) -> (AuthOutcome, AuthOutcome, Vec<&'static str>) {
    let mut net: Network<AuthMsg> = Network::new(64, 9);
    net.install_tap();
    let (na, nb) = (a.id(), b.id());

    let (challenge, a_pending) = a.auth_initiate();
    net.send(na, nb, AuthMsg::Challenge(challenge));
    let challenge = match net.take_inbox(nb).pop().unwrap().payload {
        AuthMsg::Challenge(c) => c,
        other => panic!("expected challenge, got {other:?}"),
    };
    let (response, b_pending) = b.auth_respond(&challenge);
    net.send(nb, na, AuthMsg::Response(response));
    let response = match net.take_inbox(na).pop().unwrap().payload {
        AuthMsg::Response(r) => r,
        other => panic!("expected response, got {other:?}"),
    };
    let (a_outcome, confirm) = a.auth_finish_initiator(&a_pending, &response);
    net.send(na, nb, AuthMsg::Confirm(confirm));
    let confirm = match net.take_inbox(nb).pop().unwrap().payload {
        AuthMsg::Confirm(c) => c,
        other => panic!("expected confirm, got {other:?}"),
    };
    let b_outcome = b.auth_finish_responder(&b_pending, &confirm);
    let trace = net
        .tap()
        .unwrap()
        .records()
        .iter()
        .map(|r| r.kind)
        .collect();
    (a_outcome, b_outcome, trace)
}

#[test]
fn provisioned_handshake_over_the_network() {
    let mut service = provisioning::new_attestation_service(42);
    service.certify_platform(1);
    service.certify_platform(2);
    let k1 = provisioning::provision_trusted_key(&mut service, 1).unwrap();
    let k2 = provisioning::provision_trusted_key(&mut service, 2).unwrap();
    let mut a = RapteeNode::new_trusted(NodeId(1), cfg(), &boot(), 1, k1);
    let mut b = RapteeNode::new_trusted(NodeId(2), cfg(), &boot(), 2, k2);
    let (oa, ob, _) = handshake_over_network(&mut a, &mut b);
    assert_eq!(oa, AuthOutcome::Trusted);
    assert_eq!(ob, AuthOutcome::Trusted);
}

#[test]
fn wire_trace_is_identical_for_trusted_and_untrusted_handshakes() {
    // The eavesdropper's view (message kinds, sizes, order) must not
    // reveal whether a handshake concluded Trusted.
    let key = raptee_crypto::SecretKey::from_seed(7);
    let mut t1 = RapteeNode::new_trusted(NodeId(1), cfg(), &boot(), 1, key.clone());
    let mut t2 = RapteeNode::new_trusted(NodeId(2), cfg(), &boot(), 2, key);
    let (_, _, trusted_trace) = handshake_over_network(&mut t1, &mut t2);

    let mut u1 = RapteeNode::new_untrusted(NodeId(3), cfg(), &boot(), 3);
    let mut u2 = RapteeNode::new_untrusted(NodeId(4), cfg(), &boot(), 4);
    let (ou1, ou2, untrusted_trace) = handshake_over_network(&mut u1, &mut u2);
    assert_eq!(ou1, AuthOutcome::Untrusted);
    assert_eq!(ou2, AuthOutcome::Untrusted);
    assert_eq!(
        trusted_trace, untrusted_trace,
        "wire patterns must be indistinguishable"
    );
}

#[test]
fn real_crypto_simulation_matches_shortcut_qualitatively() {
    // The sweeps use a role-based shortcut instead of running 4 HMAC
    // messages per pull. This test runs the full crypto path end-to-end
    // and checks the protocol outcome is the same phenomenon (the RNG
    // streams differ, so we compare converged metrics, not bit-equality).
    let mut with_crypto = Scenario {
        n: 120,
        byzantine_fraction: 0.15,
        trusted_fraction: 0.15,
        view_size: 12,
        sample_size: 12,
        rounds: 60,
        tail_window: 10,
        seed: 31,
        real_crypto_handshakes: true,
        ..Scenario::default()
    };
    let crypto_run = run_scenario(with_crypto.clone());
    with_crypto.real_crypto_handshakes = false;
    let shortcut_run = run_scenario(with_crypto);
    assert!(
        (crypto_run.resilience - shortcut_run.resilience).abs() < 0.15,
        "crypto and shortcut runs must agree: {:.3} vs {:.3}",
        crypto_run.resilience,
        shortcut_run.resilience
    );
    assert!(crypto_run.total_evicted > 0);
}

#[test]
fn group_key_is_required_for_trusted_tier() {
    // A node with a random key (adversary without attestation) cannot
    // join the trusted tier even if it *claims* to be trusted — the
    // handshake fails against genuinely provisioned nodes.
    let mut service = provisioning::new_attestation_service(42);
    service.certify_platform(1);
    let genuine_key = provisioning::provision_trusted_key(&mut service, 1).unwrap();
    let mut genuine = RapteeNode::new_trusted(NodeId(1), cfg(), &boot(), 1, genuine_key);
    // Adversary guesses/derives its own key.
    let fake_key = raptee_crypto::SecretKey::from_seed(0xBAD);
    let mut impostor = RapteeNode::new_trusted(NodeId(2), cfg(), &boot(), 2, fake_key);
    let (o1, o2) = RapteeNode::run_handshake(&mut genuine, &mut impostor);
    assert_eq!(o1, AuthOutcome::Untrusted);
    assert_eq!(o2, AuthOutcome::Untrusted);
}
