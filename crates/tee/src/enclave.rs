//! Simulated enclave runtime.
//!
//! An [`Enclave`] is identified by the [`Measurement`] of its code — the
//! SGX `MRENCLAVE` analogue, computed here as the SHA-256 of the code
//! bytes. The runtime enforces the two properties RAPTEE depends on:
//!
//! 1. **Integrity** — the measurement is derived from the code; running
//!    different code yields a different measurement, which the attestation
//!    service will refuse to provision.
//! 2. **Confidentiality** — secrets provisioned after attestation live in
//!    sealed state and can only be read back by an enclave with the same
//!    measurement (sealing is keyed by measurement and a per-platform
//!    sealing key).

use raptee_crypto::hmac::derive_key;
use raptee_crypto::key::SecretKey;
use raptee_crypto::sha256::Sha256;
use std::collections::HashMap;

/// The SGX `MRENCLAVE` analogue: SHA-256 of the enclave code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Measures a code blob.
    pub fn of_code(code: &[u8]) -> Self {
        Measurement(Sha256::digest(code))
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

/// Errors reported by the enclave runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// A sealed blob was produced by a different enclave identity or
    /// platform and cannot be unsealed here.
    SealMismatch,
    /// The group key has not been provisioned yet.
    NotProvisioned,
}

impl std::fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveError::SealMismatch => write!(f, "sealed data does not match enclave identity"),
            EnclaveError::NotProvisioned => write!(f, "enclave has no provisioned group key"),
        }
    }
}

impl std::error::Error for EnclaveError {}

/// A simulated SGX enclave instance.
///
/// # Examples
///
/// ```
/// use raptee_tee::enclave::Enclave;
/// let enclave = Enclave::load(b"raptee trusted code v1", 0xDEAD);
/// assert_eq!(enclave.measurement(), Enclave::load(b"raptee trusted code v1", 1).measurement());
/// ```
#[derive(Debug, Clone)]
pub struct Enclave {
    measurement: Measurement,
    platform_seal_key: [u8; 32],
    group_key: Option<SecretKey>,
    sealed_store: HashMap<String, Vec<u8>>,
    monotonic_counter: u64,
}

impl Enclave {
    /// Loads enclave `code` on a platform identified by `platform_id`
    /// (which determines the platform sealing key, like SGX's fused key).
    pub fn load(code: &[u8], platform_id: u64) -> Self {
        Self {
            measurement: Measurement::of_code(code),
            platform_seal_key: derive_key(&platform_id.to_le_bytes(), "platform-seal", &[]),
            group_key: None,
            sealed_store: HashMap::new(),
            monotonic_counter: 0,
        }
    }

    /// The enclave's code measurement.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Stores the group key after a successful attestation round-trip.
    /// Called by the provisioning path in [`crate::attestation`].
    pub fn provision_group_key(&mut self, key: SecretKey) {
        self.group_key = Some(key);
    }

    /// Returns the provisioned group key.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::NotProvisioned`] before attestation completed.
    pub fn group_key(&self) -> Result<&SecretKey, EnclaveError> {
        self.group_key.as_ref().ok_or(EnclaveError::NotProvisioned)
    }

    /// Whether the enclave holds the group key.
    pub fn is_provisioned(&self) -> bool {
        self.group_key.is_some()
    }

    /// Seals `data` under this enclave's identity; only an enclave with the
    /// same measurement on the same platform can unseal it. The seal is an
    /// encrypt-then-MAC construction over the derived sealing key.
    pub fn seal(&mut self, name: &str, data: &[u8]) {
        let seal_key = self.sealing_key();
        let nonce = self.next_nonce();
        let ct = seal_key.encrypt(&nonce, data);
        let mut blob = nonce.to_vec();
        blob.extend_from_slice(&ct);
        let tag = derive_key(seal_key.as_bytes(), "seal-mac", &blob);
        blob.extend_from_slice(&tag);
        self.sealed_store.insert(name.to_string(), blob);
    }

    /// Unseals a previously sealed blob.
    ///
    /// # Errors
    ///
    /// [`EnclaveError::SealMismatch`] if the blob is absent, truncated, or
    /// its MAC does not verify under this enclave's sealing key.
    pub fn unseal(&self, name: &str) -> Result<Vec<u8>, EnclaveError> {
        let blob = self
            .sealed_store
            .get(name)
            .ok_or(EnclaveError::SealMismatch)?;
        self.unseal_blob(blob)
    }

    /// Unseals a raw blob (e.g. migrated from another enclave instance).
    ///
    /// # Errors
    ///
    /// [`EnclaveError::SealMismatch`] when the blob was not sealed by an
    /// identical enclave identity on this platform.
    pub fn unseal_blob(&self, blob: &[u8]) -> Result<Vec<u8>, EnclaveError> {
        if blob.len() < 12 + 32 {
            return Err(EnclaveError::SealMismatch);
        }
        let seal_key = self.sealing_key();
        let (body, tag) = blob.split_at(blob.len() - 32);
        let expected = derive_key(seal_key.as_bytes(), "seal-mac", body);
        if !raptee_crypto::key::constant_time_eq(&expected, tag) {
            return Err(EnclaveError::SealMismatch);
        }
        let (nonce_bytes, ct) = body.split_at(12);
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(nonce_bytes);
        Ok(seal_key.decrypt(&nonce, ct))
    }

    /// Exports a sealed blob for external storage (simulating sealed files
    /// on the untrusted host).
    pub fn export_sealed(&self, name: &str) -> Option<&[u8]> {
        self.sealed_store.get(name).map(Vec::as_slice)
    }

    /// Monotonic counter, incremented on each read — the SGX anti-rollback
    /// primitive (used by the sealing nonce schedule).
    pub fn counter(&self) -> u64 {
        self.monotonic_counter
    }

    fn sealing_key(&self) -> SecretKey {
        SecretKey::from_bytes(derive_key(
            &self.platform_seal_key,
            "sealing",
            &self.measurement.0,
        ))
    }

    fn next_nonce(&mut self) -> [u8; 12] {
        self.monotonic_counter += 1;
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.monotonic_counter.to_le_bytes());
        nonce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODE: &[u8] = b"raptee trusted node code v1.0";

    #[test]
    fn measurement_is_code_determined() {
        let a = Enclave::load(CODE, 1);
        let b = Enclave::load(CODE, 2);
        let c = Enclave::load(b"tampered code", 1);
        assert_eq!(a.measurement(), b.measurement());
        assert_ne!(a.measurement(), c.measurement());
    }

    #[test]
    fn measurement_display_is_short_hex() {
        let m = Measurement::of_code(CODE);
        let s = format!("{m}");
        assert_eq!(s.chars().count(), 17, "8 hex bytes + ellipsis: {s}");
    }

    #[test]
    fn unprovisioned_group_key_errors() {
        let e = Enclave::load(CODE, 1);
        assert_eq!(e.group_key().unwrap_err(), EnclaveError::NotProvisioned);
        assert!(!e.is_provisioned());
    }

    #[test]
    fn provisioning_stores_key() {
        let mut e = Enclave::load(CODE, 1);
        e.provision_group_key(SecretKey::from_seed(99));
        assert!(e.is_provisioned());
        assert_eq!(e.group_key().unwrap(), &SecretKey::from_seed(99));
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let mut e = Enclave::load(CODE, 1);
        e.seal("view", b"some view state");
        assert_eq!(e.unseal("view").unwrap(), b"some view state");
    }

    #[test]
    fn seal_missing_name_errors() {
        let e = Enclave::load(CODE, 1);
        assert_eq!(e.unseal("nope").unwrap_err(), EnclaveError::SealMismatch);
    }

    #[test]
    fn sealed_blob_bound_to_measurement() {
        let mut genuine = Enclave::load(CODE, 1);
        genuine.seal("secret", b"group material");
        let blob = genuine.export_sealed("secret").unwrap().to_vec();
        // Different code, same platform: must not unseal.
        let imposter = Enclave::load(b"evil code", 1);
        assert_eq!(
            imposter.unseal_blob(&blob).unwrap_err(),
            EnclaveError::SealMismatch
        );
        // Same code, same platform: unseals fine.
        let sibling = Enclave::load(CODE, 1);
        assert_eq!(sibling.unseal_blob(&blob).unwrap(), b"group material");
    }

    #[test]
    fn sealed_blob_bound_to_platform() {
        let mut e1 = Enclave::load(CODE, 1);
        e1.seal("secret", b"data");
        let blob = e1.export_sealed("secret").unwrap().to_vec();
        let e2 = Enclave::load(CODE, 2);
        assert_eq!(
            e2.unseal_blob(&blob).unwrap_err(),
            EnclaveError::SealMismatch
        );
    }

    #[test]
    fn truncated_blob_rejected() {
        let e = Enclave::load(CODE, 1);
        assert_eq!(
            e.unseal_blob(&[0u8; 10]).unwrap_err(),
            EnclaveError::SealMismatch
        );
    }

    #[test]
    fn tampered_blob_rejected() {
        let mut e = Enclave::load(CODE, 1);
        e.seal("secret", b"data");
        let mut blob = e.export_sealed("secret").unwrap().to_vec();
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        assert_eq!(
            e.unseal_blob(&blob).unwrap_err(),
            EnclaveError::SealMismatch
        );
    }

    #[test]
    fn counter_increases_with_seals() {
        let mut e = Enclave::load(CODE, 1);
        let before = e.counter();
        e.seal("a", b"1");
        e.seal("b", b"2");
        assert_eq!(e.counter(), before + 2);
    }
}
