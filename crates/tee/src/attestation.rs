//! Simulated remote attestation and group-key provisioning.
//!
//! Plays the role of Intel's attestation service in the paper's trust
//! model: "we trust Intel for the certification of genuine SGX-enabled
//! CPUs, and we assume that the code running inside enclaves is properly
//! attested before being provided with secrets."
//!
//! The flow mirrors EPID/DCAP attestation shrunk to its essentials:
//!
//! 1. A platform produces a [`Quote`] over its enclave's measurement,
//!    authenticated with a per-platform key that the service can verify
//!    (standing in for the CPU-fused EPID key certified by Intel).
//! 2. The [`AttestationService`] checks the quote signature and compares
//!    the measurement with the expected RAPTEE trusted-code measurement.
//! 3. On success it returns the group key, which the caller installs into
//!    the enclave ([`Enclave::provision_group_key`]).
//!
//! The adversary can buy SGX platforms (so it can obtain *valid quotes for
//! genuine code*) but cannot forge a quote for modified code — exactly the
//! capability split the paper's Section VI-B injection attack assumes.

use crate::enclave::{Enclave, Measurement};
use raptee_crypto::hmac::hmac_sha256;
use raptee_crypto::key::{constant_time_eq, SecretKey};

/// An attestation quote: the platform's claim that an enclave with
/// `measurement` runs on a genuine platform `platform_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Identity of the quoting platform (certified by "Intel").
    pub platform_id: u64,
    /// Measurement of the enclave being attested.
    pub measurement: Measurement,
    /// Freshness nonce chosen by the verifier.
    pub nonce: [u8; 16],
    /// Platform signature over (platform_id, measurement, nonce) —
    /// modelled as an HMAC under the platform's certified key.
    pub signature: [u8; 32],
}

/// Errors returned by the attestation service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationError {
    /// The platform is not in the certified-platform registry.
    UnknownPlatform,
    /// The platform's certification has been revoked (EPID group
    /// revocation / a compromised CPU pulled from the registry).
    RevokedPlatform,
    /// The quote signature does not verify.
    BadSignature,
    /// The enclave measurement is not the expected RAPTEE trusted code.
    WrongMeasurement,
    /// The nonce does not match the challenge issued by the service.
    StaleNonce,
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttestationError::UnknownPlatform => "platform is not certified",
            AttestationError::RevokedPlatform => "platform certification has been revoked",
            AttestationError::BadSignature => "quote signature verification failed",
            AttestationError::WrongMeasurement => "enclave measurement is not the expected code",
            AttestationError::StaleNonce => "attestation nonce is stale or unknown",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AttestationError {}

/// A time-bounded attestation certificate: the service's statement that
/// `platform_id` attested genuine code at `issued_round`, trustworthy
/// until `expires_round` (exclusive). Real attestation collateral ages
/// the same way — TCB info and QE identity carry validity windows — and
/// a relying party must treat an expired certificate exactly like no
/// certificate until the platform re-attests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Certificate {
    /// The attested platform.
    pub platform_id: u64,
    /// Round the attestation completed.
    pub issued_round: u64,
    /// First round the certificate is no longer valid.
    pub expires_round: u64,
}

impl Certificate {
    /// Whether the certificate still vouches for the platform at
    /// `round`.
    pub fn valid_at(&self, round: u64) -> bool {
        round < self.expires_round
    }
}

/// The group-key provisioning service.
///
/// # Examples
///
/// ```
/// use raptee_tee::{AttestationService, Enclave};
/// use raptee_crypto::SecretKey;
///
/// let code = b"raptee trusted code";
/// let mut service = AttestationService::new(
///     raptee_tee::enclave::Measurement::of_code(code),
///     SecretKey::from_seed(7),
/// );
/// service.certify_platform(1001);
///
/// let mut enclave = Enclave::load(code, 1001);
/// let nonce = service.challenge();
/// let quote = AttestationService::quote(1001, &enclave, nonce);
/// let key = service.attest(&quote).expect("genuine enclave attests");
/// enclave.provision_group_key(key);
/// assert!(enclave.is_provisioned());
/// ```
#[derive(Debug)]
pub struct AttestationService {
    expected: Measurement,
    group_key: SecretKey,
    certified_platforms: Vec<u64>,
    revoked_platforms: Vec<u64>,
    issued_nonces: Vec<[u8; 16]>,
    nonce_counter: u64,
}

impl AttestationService {
    /// Creates a service that provisions `group_key` to enclaves whose
    /// measurement equals `expected`.
    pub fn new(expected: Measurement, group_key: SecretKey) -> Self {
        Self {
            expected,
            group_key,
            certified_platforms: Vec::new(),
            revoked_platforms: Vec::new(),
            issued_nonces: Vec::new(),
            nonce_counter: 0,
        }
    }

    /// Registers a platform as genuine (the "Intel certifies CPUs" step).
    pub fn certify_platform(&mut self, platform_id: u64) {
        if !self.certified_platforms.contains(&platform_id) {
            self.certified_platforms.push(platform_id);
        }
    }

    /// Revokes a platform's certification: every future attestation
    /// from it fails with [`AttestationError::RevokedPlatform`], and
    /// relying parties must stop trusting its outstanding certificates.
    /// Revocation is permanent — re-certifying does not clear it.
    pub fn revoke_platform(&mut self, platform_id: u64) {
        if !self.revoked_platforms.contains(&platform_id) {
            self.revoked_platforms.push(platform_id);
        }
    }

    /// Whether a platform's certification has been revoked.
    pub fn is_revoked(&self, platform_id: u64) -> bool {
        self.revoked_platforms.contains(&platform_id)
    }

    /// Issues a fresh challenge nonce the platform must quote over.
    pub fn challenge(&mut self) -> [u8; 16] {
        self.nonce_counter += 1;
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&self.nonce_counter.to_le_bytes());
        self.issued_nonces.push(nonce);
        nonce
    }

    /// Produces a quote on behalf of `platform_id` for `enclave` — the
    /// operation the platform's quoting enclave performs. Free function so
    /// simulations can quote without borrowing the service.
    pub fn quote(platform_id: u64, enclave: &Enclave, nonce: [u8; 16]) -> Quote {
        let signature = Self::platform_sign(platform_id, enclave.measurement(), nonce);
        Quote {
            platform_id,
            measurement: enclave.measurement(),
            nonce,
            signature,
        }
    }

    /// Verifies a quote and, on success, releases the group key.
    ///
    /// # Errors
    ///
    /// See [`AttestationError`] for the four rejection cases.
    pub fn attest(&mut self, quote: &Quote) -> Result<SecretKey, AttestationError> {
        if self.is_revoked(quote.platform_id) {
            return Err(AttestationError::RevokedPlatform);
        }
        if !self.certified_platforms.contains(&quote.platform_id) {
            return Err(AttestationError::UnknownPlatform);
        }
        let pos = self
            .issued_nonces
            .iter()
            .position(|n| n == &quote.nonce)
            .ok_or(AttestationError::StaleNonce)?;
        let expected_sig = Self::platform_sign(quote.platform_id, quote.measurement, quote.nonce);
        if !constant_time_eq(&expected_sig, &quote.signature) {
            return Err(AttestationError::BadSignature);
        }
        if quote.measurement != self.expected {
            return Err(AttestationError::WrongMeasurement);
        }
        self.issued_nonces.swap_remove(pos);
        Ok(self.group_key.clone())
    }

    /// Verifies a quote and, on success, issues a time-bounded
    /// [`Certificate`] alongside the group key: valid from `now` for
    /// `ttl` rounds. This is also the *renewal* path — an expired
    /// platform simply runs the full challenge/quote/attest flow again
    /// and receives a fresh certificate.
    ///
    /// # Errors
    ///
    /// See [`AttestationError`].
    pub fn attest_certified(
        &mut self,
        quote: &Quote,
        now: u64,
        ttl: u64,
    ) -> Result<(SecretKey, Certificate), AttestationError> {
        let key = self.attest(quote)?;
        Ok((
            key,
            Certificate {
                platform_id: quote.platform_id,
                issued_round: now,
                expires_round: now.saturating_add(ttl),
            },
        ))
    }

    /// The platform attestation key — in real SGX a CPU-fused secret whose
    /// public part Intel certifies. Deterministic per platform so both the
    /// quoting side and the service derive the same key.
    fn platform_sign(platform_id: u64, measurement: Measurement, nonce: [u8; 16]) -> [u8; 32] {
        let key = raptee_crypto::hmac::derive_key(&platform_id.to_le_bytes(), "platform-epid", &[]);
        let mut msg = Vec::with_capacity(8 + 32 + 16);
        msg.extend_from_slice(&platform_id.to_le_bytes());
        msg.extend_from_slice(&measurement.0);
        msg.extend_from_slice(&nonce);
        hmac_sha256(&key, &msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODE: &[u8] = b"raptee trusted node code v1.0";

    fn service() -> AttestationService {
        let mut s = AttestationService::new(Measurement::of_code(CODE), SecretKey::from_seed(42));
        s.certify_platform(1);
        s
    }

    #[test]
    fn genuine_enclave_attests_and_gets_key() {
        let mut s = service();
        let enclave = Enclave::load(CODE, 1);
        let nonce = s.challenge();
        let quote = AttestationService::quote(1, &enclave, nonce);
        let key = s.attest(&quote).unwrap();
        assert_eq!(key, SecretKey::from_seed(42));
    }

    #[test]
    fn modified_code_rejected() {
        let mut s = service();
        let evil = Enclave::load(b"modified raptee code", 1);
        let nonce = s.challenge();
        let quote = AttestationService::quote(1, &evil, nonce);
        assert_eq!(
            s.attest(&quote).unwrap_err(),
            AttestationError::WrongMeasurement
        );
    }

    #[test]
    fn uncertified_platform_rejected() {
        let mut s = service();
        let enclave = Enclave::load(CODE, 999);
        let nonce = s.challenge();
        let quote = AttestationService::quote(999, &enclave, nonce);
        assert_eq!(
            s.attest(&quote).unwrap_err(),
            AttestationError::UnknownPlatform
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let mut s = service();
        let enclave = Enclave::load(CODE, 1);
        let nonce = s.challenge();
        let mut quote = AttestationService::quote(1, &enclave, nonce);
        quote.signature[0] ^= 1;
        assert_eq!(
            s.attest(&quote).unwrap_err(),
            AttestationError::BadSignature
        );
    }

    #[test]
    fn lying_about_measurement_breaks_signature() {
        // A certified but malicious platform cannot claim the genuine
        // measurement for evil code: the platform signature covers the
        // real measurement produced by the quoting enclave.
        let mut s = service();
        let evil = Enclave::load(b"evil", 1);
        let nonce = s.challenge();
        let mut quote = AttestationService::quote(1, &evil, nonce);
        quote.measurement = Measurement::of_code(CODE); // lie
        assert_eq!(
            s.attest(&quote).unwrap_err(),
            AttestationError::BadSignature
        );
    }

    #[test]
    fn nonce_cannot_be_replayed() {
        let mut s = service();
        let enclave = Enclave::load(CODE, 1);
        let nonce = s.challenge();
        let quote = AttestationService::quote(1, &enclave, nonce);
        assert!(s.attest(&quote).is_ok());
        // Second use of the same nonce fails.
        assert_eq!(s.attest(&quote).unwrap_err(), AttestationError::StaleNonce);
    }

    #[test]
    fn certificates_expire_and_renew() {
        let mut s = service();
        let enclave = Enclave::load(CODE, 1);
        let nonce = s.challenge();
        let quote = AttestationService::quote(1, &enclave, nonce);
        let (_, cert) = s.attest_certified(&quote, 10, 5).unwrap();
        assert_eq!(cert.platform_id, 1);
        assert!(cert.valid_at(10) && cert.valid_at(14));
        assert!(!cert.valid_at(15), "expiry round is exclusive");
        // Renewal is a fresh attestation: new nonce, new window.
        let nonce = s.challenge();
        let quote = AttestationService::quote(1, &enclave, nonce);
        let (_, renewed) = s.attest_certified(&quote, 15, 5).unwrap();
        assert_eq!(renewed.issued_round, 15);
        assert!(renewed.valid_at(19) && !renewed.valid_at(20));
    }

    #[test]
    fn revoked_platform_cannot_reattest() {
        let mut s = service();
        let enclave = Enclave::load(CODE, 1);
        let nonce = s.challenge();
        assert!(s
            .attest(&AttestationService::quote(1, &enclave, nonce))
            .is_ok());
        s.revoke_platform(1);
        assert!(s.is_revoked(1));
        let nonce = s.challenge();
        assert_eq!(
            s.attest(&AttestationService::quote(1, &enclave, nonce))
                .unwrap_err(),
            AttestationError::RevokedPlatform
        );
        // Re-certifying does not clear the revocation.
        s.certify_platform(1);
        let nonce = s.challenge();
        assert_eq!(
            s.attest_certified(&AttestationService::quote(1, &enclave, nonce), 0, 10)
                .unwrap_err(),
            AttestationError::RevokedPlatform
        );
    }

    #[test]
    fn adversary_purchased_platform_gets_key_only_for_genuine_code() {
        // Section VI-B: the adversary buys SGX hardware. It can attest the
        // *genuine* code (and then only feed it poisoned views), but not
        // its own code.
        let mut s = service();
        s.certify_platform(666); // adversary-owned but genuine CPU
        let genuine = Enclave::load(CODE, 666);
        let nonce = s.challenge();
        assert!(s
            .attest(&AttestationService::quote(666, &genuine, nonce))
            .is_ok());
        let evil = Enclave::load(b"evil raptee", 666);
        let nonce = s.challenge();
        assert_eq!(
            s.attest(&AttestationService::quote(666, &evil, nonce))
                .unwrap_err(),
            AttestationError::WrongMeasurement
        );
    }
}
