//! Merkle commitments over per-round view digests.
//!
//! The audit layer (PR 9) needs every trusted-tier node to *commit* to
//! its view each round so a challenger can later demand an opening of
//! any view slot and check it against the committed root. Two builders
//! share one root definition:
//!
//! * [`MerkleTree`] — the fixed-shape tree: leaves are padded to the
//!   next power of two with a domain-separated empty digest, so the
//!   shape (and therefore the root) of a view of `k` entries is a pure
//!   function of the leaf sequence. Supports openings
//!   ([`MerkleTree::open`]) and verification ([`verify`]).
//! * [`IncrementalMerkle`] — a streaming builder keeping only the
//!   `O(log n)` perfect-subtree peaks; [`IncrementalMerkle::root`]
//!   pads with the same empty-subtree ladder and folds, so it equals
//!   the fixed-shape root over the same leaves without ever holding
//!   the full tree. Used where views are folded slot-by-slot.
//!
//! Hashing is domain-separated ([`leaf_hash`] prefixes `0x00`, interior
//! nodes `0x01`, the empty pad `0x02`) so a leaf can never be
//! reinterpreted as an interior node — the classic second-preimage
//! defence.
//!
//! [`ViewCommitment`] chains the per-round roots: each commitment binds
//! `(round, root)` to the digest of its predecessor, so a node cannot
//! rewrite history without breaking every later link. A cold-rejoining
//! node restarts its chain from the genesis `prev` (all zeroes); a warm
//! rejoin continues where it left off.

use raptee_crypto::sha256::{Digest, Sha256, DIGEST_LEN};

/// The all-zero digest used as the genesis `prev` link of a commitment
/// chain.
pub const GENESIS: Digest = [0u8; DIGEST_LEN];

/// Hashes one leaf payload (domain tag `0x00`).
pub fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

/// Hashes one interior node from its children (domain tag `0x01`).
fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// The empty-subtree digest at `level` (level 0 = the padding leaf,
/// domain tag `0x02`). A short ladder — views are tiny — recomputed on
/// demand.
fn empty_at(level: usize) -> Digest {
    let mut d = Sha256::digest(&[0x02]);
    for _ in 0..level {
        d = node_hash(&d, &d);
    }
    d
}

/// An opening of one leaf: its index and the sibling digests from the
/// leaf's level up to (excluding) the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the opened leaf in the committed sequence.
    pub index: usize,
    /// Sibling digest per level, leaf level first.
    pub siblings: Vec<Digest>,
}

/// Verifies that `leaf` (already leaf-hashed) sits at `proof.index`
/// under `root`.
pub fn verify(root: &Digest, leaf: &Digest, proof: &MerkleProof) -> bool {
    let mut acc = *leaf;
    let mut idx = proof.index;
    for sib in &proof.siblings {
        acc = if idx & 1 == 0 {
            node_hash(&acc, sib)
        } else {
            node_hash(sib, &acc)
        };
        idx >>= 1;
    }
    idx == 0 && acc == *root
}

/// Fixed-shape merkle tree over a leaf-digest sequence, padded to the
/// next power of two with the empty-leaf digest.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = padded leaves, last level = `[root]`.
    levels: Vec<Vec<Digest>>,
    /// Number of real (unpadded) leaves.
    len: usize,
}

impl MerkleTree {
    /// Builds the tree from already-hashed leaves. An empty sequence
    /// commits to the empty-leaf digest.
    pub fn from_leaves(leaves: &[Digest]) -> Self {
        let len = leaves.len();
        let width = len.next_power_of_two().max(1);
        let mut level: Vec<Digest> = Vec::with_capacity(width);
        level.extend_from_slice(leaves);
        level.resize(width, empty_at(0));
        let mut levels = vec![level];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let next: Vec<Digest> = prev
                .chunks_exact(2)
                .map(|pair| node_hash(&pair[0], &pair[1]))
                .collect();
            levels.push(next);
        }
        Self { levels, len }
    }

    /// Builds the tree from raw leaf payloads ([`leaf_hash`] applied).
    pub fn from_payloads<T: AsRef<[u8]>>(payloads: &[T]) -> Self {
        let leaves: Vec<Digest> = payloads.iter().map(|p| leaf_hash(p.as_ref())).collect();
        Self::from_leaves(&leaves)
    }

    /// Number of real leaves committed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree commits to zero leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// Opens the leaf at `index` (must be `< len`).
    pub fn open(&self, index: usize) -> MerkleProof {
        assert!(index < self.len.max(1), "opening past the committed leaves");
        let mut siblings = Vec::with_capacity(self.levels.len() - 1);
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            siblings.push(level[idx ^ 1]);
            idx >>= 1;
        }
        MerkleProof { index, siblings }
    }
}

/// Streaming merkle builder: keeps one digest per perfect-subtree peak
/// (binary carry chain), merging eagerly, so memory is `O(log n)`.
#[derive(Debug, Clone, Default)]
pub struct IncrementalMerkle {
    /// `peaks[i]` = root of a perfect subtree of `2^i` leaves, `None`
    /// when that bit of `len` is clear.
    peaks: Vec<Option<Digest>>,
    len: usize,
}

impl IncrementalMerkle {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one already-hashed leaf.
    pub fn push(&mut self, leaf: Digest) {
        let mut carry = leaf;
        let mut level = 0;
        loop {
            if level == self.peaks.len() {
                self.peaks.push(None);
            }
            match self.peaks[level].take() {
                None => {
                    self.peaks[level] = Some(carry);
                    break;
                }
                Some(existing) => {
                    carry = node_hash(&existing, &carry);
                    level += 1;
                }
            }
        }
        self.len += 1;
    }

    /// Appends one raw payload ([`leaf_hash`] applied).
    pub fn push_payload(&mut self, payload: &[u8]) {
        self.push(leaf_hash(payload));
    }

    /// Leaves appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no leaves were appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed-shape root: pads the partial subtrees with the
    /// empty-subtree ladder and folds the peaks, matching
    /// [`MerkleTree::from_leaves`] over the same sequence.
    pub fn root(&self) -> Digest {
        // Fold peaks lowest-first. A lower peak covers *later* leaves
        // than a higher one, so when pairing it sits on the right; the
        // accumulator is right-padded with empty subtrees until it
        // reaches the next peak's level.
        let mut acc: Option<(Digest, usize)> = None;
        for (level, peak) in self.peaks.iter().enumerate() {
            let Some(p) = peak else { continue };
            acc = Some(match acc {
                None => (*p, level),
                Some((mut a, mut a_level)) => {
                    while a_level < level {
                        a = node_hash(&a, &empty_at(a_level));
                        a_level += 1;
                    }
                    (node_hash(p, &a), level + 1)
                }
            });
        }
        acc.map(|(d, _)| d).unwrap_or_else(|| empty_at(0))
    }
}

/// One round's chained view commitment: the merkle `root` of the view,
/// the `round` it was taken in, and the digest of the previous
/// commitment (or [`GENESIS`] at the chain start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewCommitment {
    /// Round the view was committed in.
    pub round: u64,
    /// Merkle root over the view's leaf digests.
    pub root: Digest,
    /// Digest of the previous commitment in the chain ([`GENESIS`] for
    /// the first link after boot or a cold rejoin).
    pub prev: Digest,
}

impl ViewCommitment {
    /// Starts a chain (or restarts it after a cold rejoin).
    pub fn genesis(round: u64, root: Digest) -> Self {
        Self {
            round,
            root,
            prev: GENESIS,
        }
    }

    /// Chains a new commitment onto `prev`.
    pub fn chained(prev: &ViewCommitment, round: u64, root: Digest) -> Self {
        Self {
            round,
            root,
            prev: prev.digest(),
        }
    }

    /// The commitment's own digest (what the next link's `prev` binds).
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(&[0x03]);
        h.update(&self.round.to_le_bytes());
        h.update(&self.root);
        h.update(&self.prev);
        h.finalize()
    }

    /// Whether `next` is a valid successor of `self` (later round,
    /// `prev` binds this commitment).
    pub fn links_to(&self, next: &ViewCommitment) -> bool {
        next.round > self.round && next.prev == self.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n as u64).map(|i| i.to_le_bytes().to_vec()).collect()
    }

    #[test]
    fn roots_differ_by_content_and_order() {
        let a = MerkleTree::from_payloads(&payloads(4));
        let mut swapped = payloads(4);
        swapped.swap(1, 2);
        let b = MerkleTree::from_payloads(&swapped);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn every_leaf_opens_and_verifies() {
        for n in 1..=9 {
            let tree = MerkleTree::from_payloads(&payloads(n));
            for i in 0..n {
                let proof = tree.open(i);
                let leaf = leaf_hash(&(i as u64).to_le_bytes());
                assert!(verify(&tree.root(), &leaf, &proof), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn any_single_leaf_tamper_is_detected() {
        // Property: for every leaf position and every byte flip, the
        // tampered leaf fails against the committed root.
        for n in [1usize, 3, 4, 7, 8] {
            let tree = MerkleTree::from_payloads(&payloads(n));
            for i in 0..n {
                let proof = tree.open(i);
                let mut data = (i as u64).to_le_bytes();
                for byte in 0..data.len() {
                    data[byte] ^= 0xA5;
                    let tampered = leaf_hash(&data);
                    assert!(
                        !verify(&tree.root(), &tampered, &proof),
                        "tamper must be detected: n={n} i={i} byte={byte}"
                    );
                    data[byte] ^= 0xA5;
                }
            }
        }
    }

    #[test]
    fn proof_verifies_iff_leaf_in_committed_view() {
        let n = 6;
        let tree = MerkleTree::from_payloads(&payloads(n));
        // Every committed leaf verifies at its own index...
        for i in 0..n {
            let leaf = leaf_hash(&(i as u64).to_le_bytes());
            assert!(verify(&tree.root(), &leaf, &tree.open(i)));
            // ...and at no other index.
            for j in (0..n).filter(|&j| j != i) {
                assert!(!verify(&tree.root(), &leaf, &tree.open(j)));
            }
        }
        // A leaf outside the committed view verifies nowhere.
        let foreign = leaf_hash(&999u64.to_le_bytes());
        for i in 0..n {
            assert!(!verify(&tree.root(), &foreign, &tree.open(i)));
        }
    }

    #[test]
    fn proof_against_wrong_root_fails() {
        let tree = MerkleTree::from_payloads(&payloads(5));
        let other = MerkleTree::from_payloads(&payloads(6));
        let leaf = leaf_hash(&2u64.to_le_bytes());
        assert!(!verify(&other.root(), &leaf, &tree.open(2)));
    }

    #[test]
    fn truncated_proof_fails() {
        let tree = MerkleTree::from_payloads(&payloads(8));
        let mut proof = tree.open(5);
        proof.siblings.pop();
        let leaf = leaf_hash(&5u64.to_le_bytes());
        assert!(!verify(&tree.root(), &leaf, &proof));
    }

    #[test]
    fn incremental_matches_fixed_shape() {
        for n in 0..=17 {
            let ps = payloads(n);
            let fixed = MerkleTree::from_payloads(&ps);
            let mut inc = IncrementalMerkle::new();
            for p in &ps {
                inc.push_payload(p);
            }
            assert_eq!(inc.root(), fixed.root(), "n={n}");
            assert_eq!(inc.len(), n);
        }
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let a = MerkleTree::from_leaves(&[]);
        let b = IncrementalMerkle::new();
        assert_eq!(a.root(), b.root());
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn commitment_chain_links_and_breaks() {
        let t0 = MerkleTree::from_payloads(&payloads(4));
        let t1 = MerkleTree::from_payloads(&payloads(5));
        let c0 = ViewCommitment::genesis(0, t0.root());
        let c1 = ViewCommitment::chained(&c0, 1, t1.root());
        assert_eq!(c0.prev, GENESIS);
        assert!(c0.links_to(&c1));
        // Rewriting the earlier root breaks the link.
        let mut forged = c0;
        forged.root = t1.root();
        assert!(!forged.links_to(&c1));
        // A same-round successor is rejected.
        let same = ViewCommitment::chained(&c0, 0, t1.root());
        assert!(!c0.links_to(&same));
    }
}
