//! SGX cycle-overhead model (paper Table I).
//!
//! The paper instruments the five peer-sampling functions of the trusted
//! node, measures their CPU-cycle cost on real SGX NUCs vs an emulated
//! build, and then calibrates the 10,000-node emulation by adding "a
//! random delay that depends on the mean CPU-cycle overhead and follows
//! its standard deviation". This module encodes Table I verbatim and
//! reproduces that calibration: [`SgxOverheadModel::sample_overhead`]
//! draws a Gaussian around the measured mean.

use raptee_util::rng::Xoshiro256StarStar;

/// The five instrumented peer-sampling functions of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PeerSamplingFunction {
    /// Answering/issuing a pull request.
    PullRequest,
    /// Sending a push message.
    PushMessage,
    /// The trusted view-swap exchange.
    TrustedCommunications,
    /// Recomputing the sample list (the `l2` samplers).
    SampleListComputation,
    /// Renewing the dynamic view from pushes/pulls/history.
    DynamicViewComputation,
}

impl PeerSamplingFunction {
    /// All five functions in Table I row order.
    pub const ALL: [PeerSamplingFunction; 5] = [
        PeerSamplingFunction::PullRequest,
        PeerSamplingFunction::PushMessage,
        PeerSamplingFunction::TrustedCommunications,
        PeerSamplingFunction::SampleListComputation,
        PeerSamplingFunction::DynamicViewComputation,
    ];

    /// The row label used in Table I.
    pub fn label(self) -> &'static str {
        match self {
            PeerSamplingFunction::PullRequest => "Pull request",
            PeerSamplingFunction::PushMessage => "Push message",
            PeerSamplingFunction::TrustedCommunications => "Trusted communications",
            PeerSamplingFunction::SampleListComputation => "Sample list comput.",
            PeerSamplingFunction::DynamicViewComputation => "Dynamic view comput.",
        }
    }
}

/// One row of Table I, in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    /// Cost outside SGX ("Standard" column).
    pub standard_cycles: u64,
    /// Cost inside SGX ("SGX" column).
    pub sgx_cycles: u64,
    /// Mean overhead (`sgx - standard`).
    pub mean_overhead: u64,
    /// Relative standard deviation of the overhead (e.g. `0.03` for 3 %).
    pub rel_std_dev: f64,
}

/// Execution profile for a trusted node in the large-scale emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionProfile {
    /// Plain execution; no enclave cost (untrusted nodes, or the
    /// "Standard" column of Table I).
    Standard,
    /// Emulated SGX: each trusted function pays the calibrated overhead.
    EmulatedSgx,
}

/// The Table I calibration model.
///
/// # Examples
///
/// ```
/// use raptee_tee::overhead::{SgxOverheadModel, PeerSamplingFunction};
/// use raptee_util::rng::Xoshiro256StarStar;
///
/// let model = SgxOverheadModel::paper_table1();
/// let row = model.row(PeerSamplingFunction::PullRequest);
/// assert_eq!(row.standard_cycles, 15_623);
/// assert_eq!(row.sgx_cycles, 18_593);
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let cycles = model.sample_overhead(PeerSamplingFunction::PullRequest, &mut rng);
/// assert!(cycles > 2_000 && cycles < 4_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SgxOverheadModel {
    rows: [OverheadRow; 5],
}

impl SgxOverheadModel {
    /// The published Table I values.
    pub fn paper_table1() -> Self {
        let row = |standard: u64, sgx: u64, mean: u64, rel: f64| OverheadRow {
            standard_cycles: standard,
            sgx_cycles: sgx,
            mean_overhead: mean,
            rel_std_dev: rel,
        };
        Self {
            rows: [
                row(15_623, 18_593, 2_970, 0.03), // Pull request
                row(7_521, 9_182, 1_661, 0.03),   // Push message
                row(9_845, 11_516, 1_671, 0.03),  // Trusted communications
                row(13_024, 15_364, 2_340, 0.04), // Sample list comput.
                row(12_457, 15_076, 2_619, 0.02), // Dynamic view comput.
            ],
        }
    }

    /// Builds a model from externally measured rows (e.g. from re-running
    /// the Table I micro-benchmark on local hardware).
    ///
    /// # Panics
    ///
    /// Panics if any row is inconsistent (`sgx < standard`, or a negative
    /// relative deviation).
    pub fn from_rows(rows: [OverheadRow; 5]) -> Self {
        for r in &rows {
            assert!(
                r.sgx_cycles >= r.standard_cycles,
                "SGX cost below standard cost"
            );
            assert!(r.rel_std_dev >= 0.0, "negative standard deviation");
        }
        Self { rows }
    }

    /// Returns one Table I row.
    pub fn row(&self, func: PeerSamplingFunction) -> OverheadRow {
        self.rows[Self::index(func)]
    }

    /// Samples the calibrated overhead for one invocation of `func`:
    /// a Gaussian with the measured mean and relative standard deviation,
    /// truncated at zero (cycle counts cannot be negative).
    pub fn sample_overhead(&self, func: PeerSamplingFunction, rng: &mut Xoshiro256StarStar) -> u64 {
        let row = self.row(func);
        let mean = row.mean_overhead as f64;
        let sd = mean * row.rel_std_dev;
        let draw = mean + sd * gaussian(rng);
        draw.max(0.0).round() as u64
    }

    /// Total simulated cycles for one invocation of `func` under `profile`:
    /// standard cost, plus the sampled overhead when emulating SGX.
    pub fn cycles(
        &self,
        func: PeerSamplingFunction,
        profile: ExecutionProfile,
        rng: &mut Xoshiro256StarStar,
    ) -> u64 {
        let base = self.row(func).standard_cycles;
        match profile {
            ExecutionProfile::Standard => base,
            ExecutionProfile::EmulatedSgx => base + self.sample_overhead(func, rng),
        }
    }

    /// Expected enclave cycle overhead of one protocol round for a
    /// trusted node issuing `pulls` pull exchanges, `pushes` push
    /// messages and `swaps` trusted communications (mean overheads, no
    /// sampling — the deterministic budget number the hybrid
    /// BASALT+TEE comparison reports next to its resilience figures).
    /// The per-round view and sample recomputations are charged once
    /// each.
    pub fn expected_round_overhead(&self, pulls: usize, pushes: usize, swaps: usize) -> u64 {
        let mean = |f: PeerSamplingFunction| self.row(f).mean_overhead;
        mean(PeerSamplingFunction::PullRequest) * pulls as u64
            + mean(PeerSamplingFunction::PushMessage) * pushes as u64
            + mean(PeerSamplingFunction::TrustedCommunications) * swaps as u64
            + mean(PeerSamplingFunction::SampleListComputation)
            + mean(PeerSamplingFunction::DynamicViewComputation)
    }

    fn index(func: PeerSamplingFunction) -> usize {
        match func {
            PeerSamplingFunction::PullRequest => 0,
            PeerSamplingFunction::PushMessage => 1,
            PeerSamplingFunction::TrustedCommunications => 2,
            PeerSamplingFunction::SampleListComputation => 3,
            PeerSamplingFunction::DynamicViewComputation => 4,
        }
    }
}

impl Default for SgxOverheadModel {
    fn default() -> Self {
        Self::paper_table1()
    }
}

/// Standard normal draw via the Box–Muller transform.
fn gaussian(rng: &mut Xoshiro256StarStar) -> f64 {
    // Avoid u1 == 0 exactly (log of zero).
    let u1 = (rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use raptee_util::stats::OnlineStats;

    #[test]
    fn table1_rows_match_paper() {
        let m = SgxOverheadModel::paper_table1();
        let expect = [
            (15_623u64, 18_593u64, 2_970u64, 0.03),
            (7_521, 9_182, 1_661, 0.03),
            (9_845, 11_516, 1_671, 0.03),
            (13_024, 15_364, 2_340, 0.04),
            (12_457, 15_076, 2_619, 0.02),
        ];
        for (func, (std_c, sgx, mean, rel)) in PeerSamplingFunction::ALL.into_iter().zip(expect) {
            let r = m.row(func);
            assert_eq!(r.standard_cycles, std_c, "{}", func.label());
            assert_eq!(r.sgx_cycles, sgx);
            assert_eq!(r.mean_overhead, mean);
            assert!((r.rel_std_dev - rel).abs() < 1e-12);
        }
    }

    #[test]
    fn sampled_overheads_match_calibration() {
        let m = SgxOverheadModel::paper_table1();
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for func in PeerSamplingFunction::ALL {
            let row = m.row(func);
            let stats: OnlineStats = (0..20_000)
                .map(|_| m.sample_overhead(func, &mut rng) as f64)
                .collect();
            let mean = row.mean_overhead as f64;
            assert!(
                (stats.mean() - mean).abs() / mean < 0.01,
                "{}: sampled mean {} vs calibrated {}",
                func.label(),
                stats.mean(),
                mean
            );
            let sd = mean * row.rel_std_dev;
            assert!(
                (stats.sample_std_dev() - sd).abs() / sd < 0.05,
                "{}: sampled sd {} vs calibrated {}",
                func.label(),
                stats.sample_std_dev(),
                sd
            );
        }
    }

    #[test]
    fn profile_costs() {
        let m = SgxOverheadModel::paper_table1();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let std_cost = m.cycles(
            PeerSamplingFunction::PushMessage,
            ExecutionProfile::Standard,
            &mut rng,
        );
        assert_eq!(std_cost, 7_521);
        let sgx_cost = m.cycles(
            PeerSamplingFunction::PushMessage,
            ExecutionProfile::EmulatedSgx,
            &mut rng,
        );
        assert!(sgx_cost > std_cost);
    }

    #[test]
    fn mean_overhead_consistent_with_columns() {
        // Table I's "mean overhead" column should be close to sgx-standard
        // (the published table rounds independently; allow small slack).
        let m = SgxOverheadModel::paper_table1();
        for func in PeerSamplingFunction::ALL {
            let r = m.row(func);
            let diff = r.sgx_cycles - r.standard_cycles;
            assert!(
                (diff as i64 - r.mean_overhead as i64).abs() <= 10,
                "{}: {} vs {}",
                func.label(),
                diff,
                r.mean_overhead
            );
        }
    }

    #[test]
    fn expected_round_overhead_sums_table_means() {
        let m = SgxOverheadModel::paper_table1();
        // 4 pulls + 4 pushes + 1 swap + the two per-round recomputations.
        let expected = 4 * 2_970 + 4 * 1_661 + 1_671 + 2_340 + 2_619;
        assert_eq!(m.expected_round_overhead(4, 4, 1), expected);
        // A node doing nothing still pays the round recomputations.
        assert_eq!(m.expected_round_overhead(0, 0, 0), 2_340 + 2_619);
    }

    #[test]
    #[should_panic(expected = "below standard")]
    fn inconsistent_rows_rejected() {
        let bad = OverheadRow {
            standard_cycles: 100,
            sgx_cycles: 50,
            mean_overhead: 0,
            rel_std_dev: 0.0,
        };
        SgxOverheadModel::from_rows([bad; 5]);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let stats: OnlineStats = (0..100_000).map(|_| gaussian(&mut rng)).collect();
        assert!(stats.mean().abs() < 0.02, "mean {}", stats.mean());
        assert!((stats.sample_std_dev() - 1.0).abs() < 0.02);
    }
}
