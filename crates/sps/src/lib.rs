//! Secure Peer Sampling (SPS) — the detection/blacklisting baseline.
//!
//! Jesi, Montresor & van Steen (Computer Networks 2010) secure
//! gossip-based peer sampling with a *detection* mechanism: each node
//! watches the stream of identifiers it receives, flags IDs that are
//! statistically over-represented (the signature of a hub/poisoning
//! attack) and blacklists them. The RAPTEE paper positions SPS as
//! related work and notes its weakness: "this protocol remains
//! vulnerable to rapid flooding attack as correct nodes cannot identify
//! and blacklist attackers before being overwhelmed by them and
//! isolated."
//!
//! This crate implements a faithful simplification — framework gossip
//! plus frequency-based detection — together with a small population
//! driver and the two adversary profiles that make the comparison with
//! Brahms meaningful:
//!
//! * **slow flooding**: few malicious IDs, heavily repeated — exactly
//!   what the detector is built for; SPS holds.
//! * **rapid flooding**: the full malicious identity space pushed at
//!   once, each ID staying under the detection threshold; SPS is
//!   overwhelmed, which Brahms' min-wise sampling and push limiting
//!   survive (see `benches/baseline_sps_flooding.rs` and
//!   `tests/baselines.rs`).

use raptee_gossip::exchange::{integrate, prepare_buffer, select_partner, GossipConfig};
use raptee_gossip::protocols::cyclon;
use raptee_gossip::view::{View, ViewEntry};
use raptee_net::NodeId;
use raptee_util::rng::Xoshiro256StarStar;
use std::collections::HashMap;

/// Detection parameters of an SPS node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpsConfig {
    /// Underlying gossip configuration (view size, H/S, selection).
    pub gossip: GossipConfig,
    /// Sliding-window length (rounds) of the frequency statistics.
    pub window: usize,
    /// An ID is blacklisted when its observed frequency exceeds
    /// `threshold ×` the uniform expectation over the window.
    pub threshold: f64,
}

impl SpsConfig {
    /// A reasonable default instantiation over Cyclon-style gossip
    /// (balanced in-degree keeps honest hubs from looking like
    /// flooders).
    pub fn with_view_size(c: usize) -> Self {
        Self {
            gossip: cyclon(c),
            window: 20,
            threshold: 6.0,
        }
    }

    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics when the window is zero or the threshold is not above 1.
    pub fn validate(&self) {
        self.gossip.validate();
        assert!(self.window > 0, "detection window must be positive");
        assert!(self.threshold > 1.0, "detection threshold must exceed 1");
    }
}

/// One SPS node: a framework view plus the over-representation detector.
#[derive(Debug, Clone)]
pub struct SpsNode {
    view: View,
    config: SpsConfig,
    /// Per-round observation counts, oldest first.
    history: Vec<HashMap<NodeId, u32>>,
    blacklist: Vec<NodeId>,
    total_observed: u64,
}

impl SpsNode {
    /// Creates a node bootstrapped from `bootstrap`.
    pub fn new(id: NodeId, config: SpsConfig, bootstrap: &[NodeId]) -> Self {
        config.validate();
        let mut view = View::new(id, config.gossip.view_size);
        for &b in bootstrap {
            view.insert_fresh(b);
        }
        Self {
            view,
            config,
            history: Vec::new(),
            blacklist: Vec::new(),
            total_observed: 0,
        }
    }

    /// The node's view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The node's blacklist.
    pub fn blacklist(&self) -> &[NodeId] {
        &self.blacklist
    }

    /// Whether `id` is blacklisted.
    pub fn is_blacklisted(&self, id: NodeId) -> bool {
        self.blacklist.contains(&id)
    }

    /// Observes one round's received entries, updates the detector and
    /// returns the entries that survive filtering (not blacklisted).
    pub fn filter_incoming(&mut self, incoming: &[ViewEntry]) -> Vec<ViewEntry> {
        // Record observations.
        let mut round_counts: HashMap<NodeId, u32> = HashMap::new();
        for e in incoming {
            *round_counts.entry(e.id).or_insert(0) += 1;
            self.total_observed += 1;
        }
        self.history.push(round_counts);
        if self.history.len() > self.config.window {
            self.history.remove(0);
        }
        // Re-derive the blacklist: an ID whose windowed frequency exceeds
        // threshold × uniform expectation is flagged.
        let mut totals: HashMap<NodeId, u32> = HashMap::new();
        let mut window_total = 0u64;
        for round in &self.history {
            for (&id, &c) in round {
                *totals.entry(id).or_insert(0) += c;
                window_total += c as u64;
            }
        }
        if window_total > 0 && totals.len() > 1 {
            // Robust expectation: the *median* per-ID count. A mean would
            // be inflated by the flooder's own mass (self-shadowing),
            // letting heavy repetition of one ID slip under the bar.
            let mut counts: Vec<u32> = totals.values().copied().collect();
            counts.sort_unstable();
            let expected = counts[counts.len() / 2] as f64;
            for (&id, &c) in &totals {
                if c as f64 > self.config.threshold * expected.max(1.0)
                    && !self.blacklist.contains(&id)
                {
                    self.blacklist.push(id);
                }
            }
        }
        // Purge blacklisted IDs from the view and the incoming batch.
        let blacklist = &self.blacklist;
        self.view.retain(|e| !blacklist.contains(&e.id));
        incoming
            .iter()
            .copied()
            .filter(|e| !blacklist.contains(&e.id))
            .collect()
    }
}

/// What a population actor is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Correct,
    Malicious,
}

/// The adversary's flooding profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flooding {
    /// Repeat a small core of malicious IDs — detectable.
    Slow {
        /// Number of distinct malicious IDs advertised.
        core: usize,
    },
    /// Spread the whole malicious identity space evenly so every ID stays
    /// under the detection threshold — the attack SPS cannot stop.
    Rapid,
}

/// A self-contained SPS population under a flooding adversary.
#[derive(Debug)]
pub struct SpsPopulation {
    nodes: Vec<Option<SpsNode>>,
    roles: Vec<Role>,
    config: SpsConfig,
    flooding: Flooding,
    rng: Xoshiro256StarStar,
    rounds: u64,
}

impl SpsPopulation {
    /// Builds `n` nodes, the first `malicious` of which are adversarial,
    /// each bootstrapped with a uniform membership sample.
    pub fn new(
        n: usize,
        malicious: usize,
        config: SpsConfig,
        flooding: Flooding,
        seed: u64,
    ) -> Self {
        config.validate();
        assert!(malicious < n, "need at least one correct node");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let all: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let nodes: Vec<Option<SpsNode>> = (0..n)
            .map(|i| {
                if i < malicious {
                    None
                } else {
                    let boot = rng.sample(&all, config.gossip.view_size + 2);
                    Some(SpsNode::new(NodeId(i as u64), config, &boot))
                }
            })
            .collect();
        let roles = (0..n)
            .map(|i| {
                if i < malicious {
                    Role::Malicious
                } else {
                    Role::Correct
                }
            })
            .collect();
        Self {
            nodes,
            roles,
            config,
            flooding,
            rng,
            rounds: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    fn malicious_count(&self) -> usize {
        self.roles.iter().filter(|r| **r == Role::Malicious).count()
    }

    /// The adversary's reply buffer under the configured profile.
    fn malicious_buffer(&mut self) -> Vec<ViewEntry> {
        let m = self.malicious_count();
        let len = self.config.gossip.exchange_len();
        let ids: Vec<NodeId> = match self.flooding {
            Flooding::Slow { core } => (0..core.clamp(1, m) as u64).map(NodeId).collect(),
            Flooding::Rapid => (0..m as u64).map(NodeId).collect(),
        };
        (0..len)
            .map(|_| ViewEntry::fresh(ids[self.rng.index(ids.len())]))
            .collect()
    }

    /// Runs one gossip round: correct nodes exchange views; any contact
    /// with a malicious node returns a flooded buffer.
    pub fn run_round(&mut self) {
        let n = self.nodes.len();
        let mut order: Vec<usize> = (0..n).collect();
        self.rng.shuffle(&mut order);
        for i in order {
            if self.roles[i] == Role::Malicious {
                continue;
            }
            // Active thread of node i.
            let Some(node) = self.nodes[i].as_mut() else {
                continue;
            };
            node.view.increase_age();
            let Some(partner) = select_partner(&node.view, &self.config.gossip, &mut self.rng)
            else {
                continue;
            };
            let p = partner.index();
            if p == i || p >= n {
                continue;
            }
            if self.roles[p] == Role::Malicious {
                // The adversary replies with a flooded buffer; it ignores
                // what it receives.
                let cfg = self.config.gossip;
                let request = {
                    let node = self.nodes[i].as_mut().expect("checked correct");
                    prepare_buffer(&mut node.view, &cfg, &mut self.rng)
                };
                drop(request);
                let reply = self.malicious_buffer();
                let node = self.nodes[i].as_mut().expect("checked correct");
                let admitted = node.filter_incoming(&reply);
                integrate(&mut node.view, &admitted, &cfg, &mut self.rng);
            } else {
                // Correct ↔ correct exchange with detection on both ends.
                let cfg = self.config.gossip;
                let (a, b) = Self::two(&mut self.nodes, i, p);
                let buf_a = prepare_buffer(&mut a.view, &cfg, &mut self.rng);
                let buf_b = prepare_buffer(&mut b.view, &cfg, &mut self.rng);
                let admitted_b = b.filter_incoming(&buf_a);
                integrate(&mut b.view, &admitted_b, &cfg, &mut self.rng);
                let admitted_a = a.filter_incoming(&buf_b);
                integrate(&mut a.view, &admitted_a, &cfg, &mut self.rng);
            }
        }
        self.rounds += 1;
    }

    /// Runs `k` rounds.
    pub fn run_rounds(&mut self, k: usize) {
        for _ in 0..k {
            self.run_round();
        }
    }

    /// Mean malicious share in correct views.
    pub fn malicious_view_share(&self) -> f64 {
        let m = self.malicious_count();
        let mut total = 0.0;
        let mut count = 0usize;
        for node in self.nodes.iter().flatten() {
            let v = node.view();
            if v.is_empty() {
                continue;
            }
            let bad = v.ids().filter(|id| id.index() < m).count();
            total += bad as f64 / v.len() as f64;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Mean blacklist coverage: fraction of malicious IDs blacklisted,
    /// averaged over correct nodes.
    pub fn blacklist_coverage(&self) -> f64 {
        let m = self.malicious_count().max(1);
        let mut total = 0.0;
        let mut count = 0usize;
        for node in self.nodes.iter().flatten() {
            let bad = node.blacklist.iter().filter(|id| id.index() < m).count();
            total += bad as f64 / m as f64;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Fraction of *correct* IDs wrongly blacklisted (collateral damage),
    /// averaged over correct nodes.
    pub fn false_positive_rate(&self) -> f64 {
        let m = self.malicious_count();
        let correct_total = (self.nodes.len() - m).max(1);
        let mut total = 0.0;
        let mut count = 0usize;
        for node in self.nodes.iter().flatten() {
            let fp = node.blacklist.iter().filter(|id| id.index() >= m).count();
            total += fp as f64 / correct_total as f64;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    fn two(nodes: &mut [Option<SpsNode>], a: usize, b: usize) -> (&mut SpsNode, &mut SpsNode) {
        assert_ne!(a, b);
        let (x, y, swapped) = if a < b { (a, b, false) } else { (b, a, true) };
        let (lo, hi) = nodes.split_at_mut(y);
        let first = lo[x].as_mut().expect("caller checked role");
        let second = hi[0].as_mut().expect("caller checked role");
        if swapped {
            (second, first)
        } else {
            (first, second)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SpsConfig {
        SpsConfig::with_view_size(10)
    }

    #[test]
    fn config_validation() {
        config().validate();
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn threshold_must_exceed_one() {
        let mut c = config();
        c.threshold = 0.9;
        c.validate();
    }

    #[test]
    fn detector_flags_over_represented_ids() {
        let mut node = SpsNode::new(NodeId(0), config(), &[NodeId(1), NodeId(2)]);
        // Rounds dominated by one ID; the rest uniform.
        for _ in 0..10 {
            let mut batch: Vec<ViewEntry> = (10..15).map(|i| ViewEntry::fresh(NodeId(i))).collect();
            batch.extend((0..10).map(|_| ViewEntry::fresh(NodeId(99))));
            node.filter_incoming(&batch);
        }
        assert!(node.is_blacklisted(NodeId(99)));
        assert!(!node.is_blacklisted(NodeId(10)));
    }

    #[test]
    fn filtered_batch_excludes_blacklisted() {
        let mut node = SpsNode::new(NodeId(0), config(), &[]);
        for _ in 0..10 {
            let batch: Vec<ViewEntry> = (0..10).map(|_| ViewEntry::fresh(NodeId(99))).collect();
            node.filter_incoming(&batch);
        }
        // 99 is now blacklisted (it is virtually the only observed ID
        // once others appear).
        let mut probe: Vec<ViewEntry> = vec![ViewEntry::fresh(NodeId(99))];
        probe.extend((1..8).map(|i| ViewEntry::fresh(NodeId(i))));
        let admitted = node.filter_incoming(&probe);
        if node.is_blacklisted(NodeId(99)) {
            assert!(admitted.iter().all(|e| e.id != NodeId(99)));
        }
    }

    #[test]
    fn blacklisted_ids_leave_the_view() {
        let mut node = SpsNode::new(NodeId(0), config(), &[NodeId(99), NodeId(1)]);
        assert!(node.view().contains(NodeId(99)));
        for _ in 0..10 {
            let mut batch: Vec<ViewEntry> = (10..15).map(|i| ViewEntry::fresh(NodeId(i))).collect();
            batch.extend((0..10).map(|_| ViewEntry::fresh(NodeId(99))));
            node.filter_incoming(&batch);
        }
        assert!(node.is_blacklisted(NodeId(99)));
        assert!(!node.view().contains(NodeId(99)));
    }

    #[test]
    fn slow_flooding_is_contained() {
        let mut pop = SpsPopulation::new(200, 20, config(), Flooding::Slow { core: 2 }, 7);
        pop.run_rounds(60);
        assert!(
            pop.blacklist_coverage() > 0.0,
            "the repeated core must get blacklisted somewhere"
        );
        let share = pop.malicious_view_share();
        assert!(
            share < 0.3,
            "slow flooding must be contained by detection: {share:.3}"
        );
    }

    #[test]
    fn rapid_flooding_overwhelms_sps() {
        let mut pop = SpsPopulation::new(200, 20, config(), Flooding::Rapid, 7);
        pop.run_rounds(60);
        let share = pop.malicious_view_share();
        // 10% malicious nodes end up far over-represented: the detector
        // cannot lock onto any single ID.
        assert!(
            share > 0.3,
            "rapid flooding must overwhelm the detector: {share:.3}"
        );
    }

    #[test]
    fn rapid_beats_slow_for_the_adversary() {
        let slow = {
            let mut pop = SpsPopulation::new(150, 15, config(), Flooding::Slow { core: 2 }, 3);
            pop.run_rounds(50);
            pop.malicious_view_share()
        };
        let rapid = {
            let mut pop = SpsPopulation::new(150, 15, config(), Flooding::Rapid, 3);
            pop.run_rounds(50);
            pop.malicious_view_share()
        };
        assert!(
            rapid > slow,
            "rapid flooding must serve the adversary better: rapid {rapid:.3} vs slow {slow:.3}"
        );
    }

    #[test]
    fn false_positives_stay_low_in_calm_runs() {
        let mut pop = SpsPopulation::new(150, 0, config(), Flooding::Rapid, 11);
        pop.run_rounds(50);
        assert!(
            pop.false_positive_rate() < 0.05,
            "honest gossip must rarely be blacklisted: {:.4}",
            pop.false_positive_rate()
        );
    }

    #[test]
    #[should_panic(expected = "correct node")]
    fn all_malicious_population_rejected() {
        SpsPopulation::new(10, 10, config(), Flooding::Rapid, 1);
    }
}
