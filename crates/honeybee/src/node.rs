//! The Honeybee node state machine.
//!
//! One protocol round, driven by the caller exactly like the Brahms,
//! BASALT and LIFT state machines so all of them slot into the same
//! engine:
//!
//! ```text
//! node.plan_round_into(&mut pushes, &mut pulls)
//! ... deliver pushes (rate-limited) → receiver.record_push(sender)
//! ... answer pulls: responder.pull_answer_into(&mut reply)
//!                 → requester.record_pull_answer(responder, &reply)
//! report = node.finish_round()        // walk timeouts
//! ```
//!
//! Every pull this node issues is one step of a **verifiable random
//! walk** ([`WalkTranscript`]): the answer is folded into a SHA-256
//! commitment chain, and the chain head picks the next hop. A walk that
//! reaches `walk_length` hops is replayed end-to-end; a verified
//! endpoint is the protocol's unbiased sample, quarantined on the
//! shared BASALT waiting list ([`WaitingList`]) until a direct probe
//! confirms it is reachable. A transcript that fails verification
//! convicts its final responder — the node quarantines the peer and
//! discards the walk.

use crate::config::HoneybeeConfig;
use crate::walk::WalkTranscript;
use raptee_basalt::wlist::{WaitingList, WlistReport};
use raptee_net::NodeId;
use raptee_util::rng::Xoshiro256StarStar;

/// What happened when a round was finalised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoneybeeRoundReport {
    /// Walks that reached full length and verified this round.
    pub completed: usize,
    /// Walks rejected this round (transcript verification failed).
    pub rejected: usize,
    /// Walks abandoned this round (frontier never answered in time).
    pub expired: usize,
    /// Rounds finalised so far (including this one).
    pub round: u64,
}

/// One in-flight walk: its committed transcript, the hop currently
/// being pulled, and the round the frontier was last advanced.
#[derive(Debug, Clone)]
struct ActiveWalk {
    transcript: WalkTranscript,
    frontier: NodeId,
    last_progress: u64,
}

/// A Honeybee node: bounded view + in-flight verifiable walks +
/// endpoint quarantine + deterministic RNG.
///
/// # Examples
///
/// ```
/// use raptee_honeybee::{HoneybeeConfig, HoneybeeNode};
/// use raptee_net::NodeId;
///
/// let cfg = HoneybeeConfig::for_view(10, 3);
/// let bootstrap: Vec<NodeId> = (1..=10).map(NodeId).collect();
/// let mut node = HoneybeeNode::new(NodeId(0), cfg, &bootstrap, 42);
/// let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
/// node.plan_round_into(&mut pushes, &mut pulls);
/// assert_eq!(pushes.len(), cfg.push_count);
/// assert!(!pulls.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct HoneybeeNode {
    id: NodeId,
    config: HoneybeeConfig,
    rng: Xoshiro256StarStar,
    rounds: u64,
    /// The current view: up to `view_size` distinct IDs. Admission is
    /// reservoir-style — verified (and probed) walk endpoints replace a
    /// uniform slot, keeping the view a sample of endpoints.
    view: Vec<NodeId>,
    /// In-flight walks, at most `pull_count` of them.
    walks: Vec<ActiveWalk>,
    /// Quarantine for verified endpoints (and push hearsay) awaiting a
    /// reachability probe — the shared BASALT waiting list.
    wlist: WaitingList,
    /// Endpoints that cleared quarantine and await view admission (the
    /// wlist drain callback cannot reach the RNG, so admission is
    /// two-phase: collect here, admit in [`HoneybeeNode::finish_round`]).
    admitted_pending: Vec<NodeId>,
    completed_this_round: usize,
    rejected_this_round: usize,
    walks_completed: u64,
    walks_rejected: u64,
}

impl HoneybeeNode {
    /// Creates a node whose view starts as (up to `view_size` of) the
    /// bootstrap sample.
    pub fn new(id: NodeId, config: HoneybeeConfig, bootstrap: &[NodeId], seed: u64) -> Self {
        config.validate();
        let mut node = Self {
            id,
            config,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            rounds: 0,
            view: Vec::with_capacity(config.view_size),
            walks: Vec::new(),
            wlist: WaitingList::new(config.wlist_ttl, config.wlist_probe),
            admitted_pending: Vec::new(),
            completed_this_round: 0,
            rejected_this_round: 0,
            walks_completed: 0,
            walks_rejected: 0,
        };
        for &b in bootstrap {
            node.admit(b);
        }
        node
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol parameters.
    pub fn config(&self) -> &HoneybeeConfig {
        &self.config
    }

    /// Rounds finalised so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The current view.
    pub fn view(&self) -> &[NodeId] {
        &self.view
    }

    /// Whether `id` currently occupies a view slot.
    pub fn contains(&self, id: NodeId) -> bool {
        self.view.contains(&id)
    }

    /// In-flight walks.
    pub fn active_walks(&self) -> usize {
        self.walks.len()
    }

    /// Walks completed (verified) over the node's lifetime.
    pub fn walks_completed(&self) -> u64 {
        self.walks_completed
    }

    /// Walks rejected (verification failed) over the node's lifetime.
    pub fn walks_rejected(&self) -> u64 {
        self.walks_rejected
    }

    /// Hearsay/endpoint candidates currently quarantined.
    pub fn wlist_len(&self) -> usize {
        self.wlist.len()
    }

    /// Records an incoming push. A push is unverified hearsay — it goes
    /// to the quarantine, never straight into the view.
    pub fn record_push(&mut self, advertised: NodeId) {
        if self.wlist.is_enabled() {
            self.wlist.enqueue(self.id, advertised, self.rounds);
        } else {
            self.admit(advertised);
        }
    }

    /// Answers a pull request: the current view.
    pub fn pull_answer(&self) -> Vec<NodeId> {
        self.view.clone()
    }

    /// [`HoneybeeNode::pull_answer`] into a caller-owned buffer (cleared
    /// first) — the engine's pull loop reuses one reply buffer for the
    /// whole round.
    pub fn pull_answer_into(&mut self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(&self.view);
    }

    /// Records a pull answer, advancing the walk whose frontier is
    /// `responder`: the answer is folded into the transcript's
    /// commitment chain and the chain head picks the next hop. A walk
    /// reaching full length is replayed ([`WalkTranscript::verify`]);
    /// its endpoint is quarantined for probing on success, its final
    /// responder quarantined as a peer on failure. Answers matching no
    /// walk (stale or duplicate) are treated as push hearsay from the
    /// responder.
    pub fn record_pull_answer(&mut self, responder: NodeId, ids: &[NodeId]) {
        let Some(pos) = self.walks.iter().position(|w| w.frontier == responder) else {
            self.record_push(responder);
            return;
        };
        if ids.is_empty() {
            self.walks.remove(pos); // dead end: nothing to hop to
            return;
        }
        let walk = &mut self.walks[pos];
        walk.transcript.extend(responder, ids);
        walk.last_progress = self.rounds;
        if walk.transcript.len() < self.config.walk_length {
            walk.frontier = walk
                .transcript
                .next_hop()
                .expect("non-empty answers commit a hop");
            return;
        }
        let walk = self.walks.remove(pos);
        if walk.transcript.verify() {
            self.completed_this_round += 1;
            self.walks_completed += 1;
            let endpoint = walk
                .transcript
                .endpoint()
                .expect("full-length transcripts have an endpoint");
            if self.wlist.is_enabled() {
                self.wlist.enqueue(self.id, endpoint, self.rounds);
            } else {
                self.admit(endpoint);
            }
        } else {
            self.rejected_this_round += 1;
            self.walks_rejected += 1;
            self.quarantine(responder);
        }
    }

    /// Chooses this round's targets into caller-owned buffers (cleared
    /// and refilled): `push_count` uniform view draws, and one pull per
    /// walk — in-flight frontiers first, then fresh walks (origin-bound
    /// nonce from the node RNG) started from uniform view members until
    /// the `pull_count` budget is spent.
    pub fn plan_round_into(&mut self, pushes: &mut Vec<NodeId>, pulls: &mut Vec<NodeId>) {
        pushes.clear();
        pulls.clear();
        if self.view.is_empty() && self.walks.is_empty() {
            return;
        }
        if !self.view.is_empty() {
            for _ in 0..self.config.push_count {
                pushes.push(self.view[self.rng.index(self.view.len())]);
            }
        }
        for walk in self.walks.iter().take(self.config.pull_count) {
            pulls.push(walk.frontier);
        }
        while pulls.len() < self.config.pull_count && !self.view.is_empty() {
            let start = self.view[self.rng.index(self.view.len())];
            let nonce = self.rng.next_u64();
            self.walks.push(ActiveWalk {
                transcript: WalkTranscript::new(self.id, nonce),
                frontier: start,
                last_progress: self.rounds,
            });
            pulls.push(start);
        }
    }

    /// Probes quarantined candidates (walk endpoints and push hearsay):
    /// up to `wlist_probe` contact attempts, `is_alive` deciding
    /// success. Reachable candidates are staged for view admission at
    /// the next [`HoneybeeNode::finish_round`].
    pub fn drain_wlist(&mut self, is_alive: impl FnMut(NodeId) -> bool) -> WlistReport {
        let pending = &mut self.admitted_pending;
        self.wlist.drain(self.rounds, is_alive, |id| {
            pending.push(id);
        })
    }

    /// Quarantines `id` as a peer: evicts it from the view, purges its
    /// pending wlist/admission entries, and abandons every walk that
    /// passed through it (its transcript is tainted evidence). Returns
    /// the number of view slots vacated.
    pub fn quarantine(&mut self, id: NodeId) -> usize {
        self.wlist.purge(id);
        self.admitted_pending.retain(|&p| p != id);
        self.walks
            .retain(|w| w.frontier != id && !w.transcript.steps.iter().any(|s| s.responder == id));
        let before = self.view.len();
        self.view.retain(|&v| v != id);
        before - self.view.len()
    }

    /// Finalises the round: admits probed endpoints into the view,
    /// abandons timed-out walks, and reports this round's walk totals.
    pub fn finish_round(&mut self) -> HoneybeeRoundReport {
        self.rounds += 1;
        while let Some(id) = self.admitted_pending.pop() {
            self.admit(id);
        }
        let timeout = self.config.walk_timeout as u64;
        let now = self.rounds;
        let before = self.walks.len();
        self.walks.retain(|w| now - w.last_progress < timeout);
        let expired = before - self.walks.len();
        let report = HoneybeeRoundReport {
            completed: self.completed_this_round,
            rejected: self.rejected_this_round,
            expired,
            round: self.rounds,
        };
        self.completed_this_round = 0;
        self.rejected_this_round = 0;
        report
    }

    /// Cold rejoin after a crash–restart: fresh RNG, view, walks and
    /// quarantine, re-bootstrapped from `bootstrap` — only identity and
    /// the lifetime counters survive.
    pub fn rejoin_cold(&mut self, bootstrap: &[NodeId], seed: u64) {
        self.rng = Xoshiro256StarStar::seed_from_u64(seed);
        self.view.clear();
        self.walks.clear();
        self.wlist.clear();
        self.admitted_pending.clear();
        self.completed_this_round = 0;
        self.rejected_this_round = 0;
        for &b in bootstrap {
            self.admit(b);
        }
    }

    /// Warm rejoin after a crash–restart: the view survives, but every
    /// in-flight walk and unverified quarantine entry is stale evidence
    /// and is discarded. Returns the number of walks abandoned.
    pub fn rejoin_warm(&mut self) -> usize {
        let dropped = self.walks.len();
        self.walks.clear();
        self.wlist.clear();
        self.admitted_pending.clear();
        self.completed_this_round = 0;
        self.rejected_this_round = 0;
        dropped
    }

    /// Reservoir-style view admission: dedup, fill while below capacity,
    /// then replace a uniform slot.
    fn admit(&mut self, id: NodeId) {
        if id == self.id || self.view.contains(&id) {
            return;
        }
        if self.view.len() < self.config.view_size {
            self.view.push(id);
            return;
        }
        let slot = self.rng.index(self.view.len());
        self.view[slot] = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    fn node(view: usize, walk: usize) -> HoneybeeNode {
        HoneybeeNode::new(
            NodeId(0),
            HoneybeeConfig::for_view(view, walk),
            &ids(1..40),
            7,
        )
    }

    #[test]
    fn bootstrap_fills_view() {
        let n = node(10, 3);
        assert_eq!(n.view().len(), 10);
    }

    #[test]
    fn empty_bootstrap_plans_nothing() {
        let mut n = HoneybeeNode::new(NodeId(0), HoneybeeConfig::for_view(10, 3), &[], 7);
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        assert!(pushes.is_empty());
        assert!(pulls.is_empty());
    }

    #[test]
    fn planning_starts_walks() {
        let mut n = node(10, 3);
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        assert_eq!(pushes.len(), 4); // round(0.4·10)
        assert_eq!(pulls.len(), 4);
        assert_eq!(n.active_walks(), 4, "each pull slot carries a walk");
        for t in &pulls {
            assert!(n.contains(*t), "fresh walks start at view members");
        }
    }

    /// Drives `n` for one round against an honest oracle in which every
    /// node answers with `answer`.
    fn run_round(n: &mut HoneybeeNode, answer: &[NodeId]) -> HoneybeeRoundReport {
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        for responder in pulls {
            n.record_pull_answer(responder, answer);
        }
        n.drain_wlist(|_| true);
        n.finish_round()
    }

    #[test]
    fn walks_complete_and_endpoints_are_admitted() {
        let mut n = node(10, 3);
        let answer = ids(100..110);
        let mut completed = 0;
        for _ in 0..20 {
            completed += run_round(&mut n, &answer).completed;
        }
        assert!(completed > 0, "3-hop walks finish within 20 rounds");
        assert_eq!(n.walks_completed(), completed as u64);
        assert_eq!(n.walks_rejected(), 0, "honest answers always verify");
        // Verified, probed endpoints (members of the answer set) made it
        // into the view.
        assert!(
            n.view().iter().any(|id| (100..110).contains(&id.0)),
            "endpoints reach the view through the quarantine"
        );
    }

    #[test]
    fn unprobed_endpoints_stay_out_of_the_view() {
        let mut n = node(10, 1); // 1-hop walks verify immediately
        let answer = ids(100..110);
        for _ in 0..10 {
            let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
            n.plan_round_into(&mut pushes, &mut pulls);
            for responder in pulls {
                n.record_pull_answer(responder, &answer);
            }
            n.drain_wlist(|_| false); // every probe fails
            n.finish_round();
        }
        assert!(
            !n.view().iter().any(|id| (100..110).contains(&id.0)),
            "unreachable endpoints are never admitted"
        );
    }

    #[test]
    fn pushes_are_quarantined_hearsay() {
        let mut n = node(10, 3);
        n.record_push(NodeId(500));
        assert!(!n.contains(NodeId(500)));
        assert_eq!(n.wlist_len(), 1);
        n.drain_wlist(|_| true);
        n.finish_round();
        assert!(n.contains(NodeId(500)), "probed hearsay is admitted");
    }

    #[test]
    fn dead_end_answers_abort_the_walk() {
        let mut n = node(10, 3);
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        let walks = n.active_walks();
        n.record_pull_answer(pulls[0], &[]);
        assert_eq!(n.active_walks(), walks - 1);
    }

    #[test]
    fn stalled_walks_expire() {
        let mut n = node(10, 3);
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        assert!(n.active_walks() > 0);
        let timeout = n.config().walk_timeout;
        let mut expired = 0;
        for _ in 0..=timeout {
            // Never answer: frontiers stall until the timeout hits.
            expired += n.finish_round().expired;
        }
        assert!(expired > 0);
        assert_eq!(n.active_walks(), 0);
    }

    #[test]
    fn quarantine_drops_tainted_walks() {
        let mut n = node(10, 3);
        let answer = ids(100..110);
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        let visited = pulls[0];
        n.record_pull_answer(visited, &answer);
        assert!(n.active_walks() > 0);
        n.quarantine(visited);
        assert!(
            !n.walks
                .iter()
                .any(|w| w.transcript.steps.iter().any(|s| s.responder == visited)),
            "walks through a convicted peer are discarded"
        );
        assert!(!n.contains(visited));
    }

    #[test]
    fn cold_rejoin_matches_a_freshly_bootstrapped_node() {
        let mut n = node(10, 3);
        run_round(&mut n, &ids(100..110));
        let boot = ids(1000..1030);
        n.rejoin_cold(&boot, 31337);
        let mut fresh = HoneybeeNode::new(NodeId(0), *n.config(), &boot, 31337);
        assert_eq!(n.view(), fresh.view());
        assert_eq!(n.wlist_len(), 0);
        assert_eq!(n.active_walks(), 0);
        let (mut p1, mut q1, mut p2, mut q2) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        n.plan_round_into(&mut p1, &mut q1);
        fresh.plan_round_into(&mut p2, &mut q2);
        assert_eq!((p1, q1), (p2, q2));
    }

    #[test]
    fn warm_rejoin_abandons_walks_but_keeps_the_view() {
        let mut n = node(10, 3);
        let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
        n.plan_round_into(&mut pushes, &mut pulls);
        let view_before = n.view().to_vec();
        let dropped = n.rejoin_warm();
        assert!(dropped > 0, "in-flight walks are stale evidence");
        assert_eq!(n.active_walks(), 0);
        assert_eq!(n.view(), view_before.as_slice());
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut n = node(10, 3);
            for _ in 0..10 {
                run_round(&mut n, &ids(100..120));
            }
            let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
            n.plan_round_into(&mut pushes, &mut pulls);
            (pushes, pulls, n.view().to_vec())
        };
        assert_eq!(mk(), mk());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::walk::WalkTranscript;
    use proptest::prelude::*;

    fn honest_walk(hops: usize, nonce: u64) -> WalkTranscript {
        let mut t = WalkTranscript::new(NodeId(1), nonce);
        let mut next = NodeId(7);
        for k in 0..hops {
            let answers: Vec<NodeId> = (0..5).map(|i| NodeId(10 * (k as u64 + 1) + i)).collect();
            t.extend(next, &answers);
            next = t.next_hop().expect("non-empty answers commit a hop");
        }
        t
    }

    proptest! {
        /// Any single tampered step — responder, one answer entry, or
        /// the stored digest — makes the transcript fail verification.
        #[test]
        fn single_step_tampering_is_always_detected(
            hops in 1usize..8,
            nonce in 0u64..10_000,
            step_sel in 0usize..8,
            field in 0usize..3,
            delta in 1u64..1_000_000,
        ) {
            let mut t = honest_walk(hops, nonce);
            prop_assert!(t.verify(), "honest transcripts verify");
            let step = step_sel % hops;
            match field {
                0 => t.steps[step].responder =
                    NodeId(t.steps[step].responder.0 ^ delta),
                1 => {
                    let slot = step_sel % t.steps[step].answers.len();
                    t.steps[step].answers[slot] =
                        NodeId(t.steps[step].answers[slot].0 ^ delta);
                }
                _ => t.steps[step].commit[(delta % 32) as usize] ^=
                    (delta % 255) as u8 + 1,
            }
            prop_assert!(!t.verify(), "tampered step {step} must be rejected");
        }

        /// The Honeybee view never exceeds its configured size, never
        /// holds duplicates, and never holds the node's own ID — under
        /// arbitrary push/answer interleavings.
        #[test]
        fn view_stays_distinct_and_bounded(
            events in proptest::collection::vec((0u64..200, 0u64..200), 0..200),
            seed in 0u64..10_000,
        ) {
            let mut n = HoneybeeNode::new(
                NodeId(0),
                HoneybeeConfig::for_view(8, 2),
                &(1..=8).map(NodeId).collect::<Vec<_>>(),
                seed,
            );
            let (mut pushes, mut pulls) = (Vec::new(), Vec::new());
            for (a, b) in events {
                n.record_push(NodeId(a));
                n.plan_round_into(&mut pushes, &mut pulls);
                for responder in pulls.clone() {
                    n.record_pull_answer(responder, &[NodeId(b), NodeId(a)]);
                }
                n.drain_wlist(|id| id.0 % 3 != 0);
                n.finish_round();
            }
            prop_assert!(n.view().len() <= 8);
            let mut sorted = n.view().to_vec();
            sorted.sort_unstable();
            let mut dedup = sorted.clone();
            dedup.dedup();
            prop_assert_eq!(sorted, dedup);
            prop_assert!(!n.contains(NodeId(0)));
        }
    }
}
