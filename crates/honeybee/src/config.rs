//! Honeybee protocol parameters.

/// Parameters of a Honeybee node.
///
/// The defaults mirror the message budget of the Brahms/RAPTEE, BASALT
/// and LIFT scenarios so head-to-head comparisons spend the same
/// bandwidth: `push_count` and `pull_count` are both `round(0.4·v)` —
/// the `α·l1`/`β·l1` split `BrahmsConfig` uses at equal view sizes (and
/// therefore the same per-identity rate-limiter budget). Each pull slot
/// carries one random-walk step, so `pull_count` also bounds the number
/// of concurrently active walks.
///
/// # Examples
///
/// ```
/// use raptee_honeybee::HoneybeeConfig;
/// let cfg = HoneybeeConfig::for_view(20, 5);
/// assert_eq!(cfg.view_size, 20);
/// assert_eq!(cfg.walk_length, 5);
/// assert_eq!(cfg.push_count, 8);
/// cfg.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoneybeeConfig {
    /// Number of view slots `v`.
    pub view_size: usize,
    /// Hops per random walk. Longer walks mix better (endpoints closer
    /// to the stationary distribution) but take more rounds to finish.
    pub walk_length: usize,
    /// Push messages sent per round (own ID advertised to view peers).
    pub push_count: usize,
    /// Pull requests sent per round; each carries one walk step, so this
    /// also caps the concurrently active walks.
    pub pull_count: usize,
    /// Rounds a walk may stall (its frontier never answering) before it
    /// is abandoned.
    pub walk_timeout: usize,
    /// Rounds a verified walk endpoint survives on the admission
    /// waiting list before being dropped unverified; `0` disables the
    /// quarantine and admits verified endpoints immediately.
    pub wlist_ttl: usize,
    /// Waiting-list candidates probed (contacted) per round.
    pub wlist_probe: usize,
}

impl HoneybeeConfig {
    /// Brahms-budget-parity configuration for a view of `view_size`
    /// slots running `walk_length`-hop walks, with the endpoint
    /// quarantine enabled at a TTL comfortably above the walk timeout.
    pub fn for_view(view_size: usize, walk_length: usize) -> Self {
        let fanout = ((0.4 * view_size as f64).round() as usize).max(1);
        let cfg = Self {
            view_size,
            walk_length,
            push_count: fanout,
            pull_count: fanout,
            walk_timeout: walk_length * 2 + 8,
            wlist_ttl: walk_length * 2 + 8,
            wlist_probe: fanout,
        };
        cfg.validate();
        cfg
    }

    /// Checks parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics when any size is zero or an enabled waiting list has no
    /// probe budget.
    pub fn validate(&self) {
        assert!(self.view_size > 0, "Honeybee view size must be positive");
        assert!(self.walk_length > 0, "walk length must be positive");
        assert!(self.push_count > 0, "push count must be positive");
        assert!(self.pull_count > 0, "pull count must be positive");
        assert!(self.walk_timeout > 0, "walk timeout must be positive");
        assert!(
            self.wlist_ttl == 0 || self.wlist_probe > 0,
            "an enabled wlist needs a positive probe budget"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_view_matches_brahms_budget() {
        let cfg = HoneybeeConfig::for_view(16, 5);
        assert_eq!(cfg.push_count, 6); // round(0.4·16) = α·l1 at l1=16
        assert_eq!(cfg.pull_count, 6);
        assert!(cfg.wlist_ttl > 0, "endpoint quarantine on by default");
        assert!(cfg.walk_timeout > 2 * cfg.walk_length);
    }

    #[test]
    fn tiny_views_keep_positive_fanout() {
        let cfg = HoneybeeConfig::for_view(1, 1);
        assert_eq!(cfg.push_count, 1);
        assert_eq!(cfg.pull_count, 1);
    }

    #[test]
    #[should_panic(expected = "view size must be positive")]
    fn zero_view_rejected() {
        HoneybeeConfig::for_view(0, 5);
    }

    #[test]
    #[should_panic(expected = "walk length must be positive")]
    fn zero_walk_rejected() {
        HoneybeeConfig::for_view(10, 0);
    }

    #[test]
    #[should_panic(expected = "probe budget")]
    fn enabled_wlist_without_probe_rejected() {
        HoneybeeConfig {
            wlist_probe: 0,
            ..HoneybeeConfig::for_view(8, 3)
        }
        .validate();
    }
}
