//! Honeybee verifiable-random-walk peer sampling.
//!
//! A deterministic reconstruction of the verifiable-walk idea behind
//! **Honeybee**-style Byzantine-tolerant sampling (see PAPERS.md):
//! instead of merging whole views (Brahms) or ranking candidates
//! (BASALT, LIFT), each node samples peers by running bounded-length
//! **random walks** over the overlay and admitting only walk endpoints
//! — which approximate the stationary (uniform) distribution — into its
//! view. What makes the walks Byzantine-tolerant is that they are
//! *committed and replayable*:
//!
//! * every walk step folds the responder and its answer set into a
//!   SHA-256 **commitment chain** ([`WalkTranscript`], built on
//!   `raptee-crypto`), and the chain head *is* the next-hop choice — no
//!   party can steer the walk without breaking a digest;
//! * a completed walk is **verified end-to-end** before its endpoint
//!   counts: every stored commitment is recomputed and every visited
//!   hop checked against the previous step's committed choice; any
//!   single tampered step is detected ([`WalkTranscript::verify`]);
//! * verified endpoints still pass through the shared BASALT
//!   **waiting-list quarantine** (`raptee_basalt::WaitingList`) — a
//!   direct reachability probe — before touching the view, and a
//!   transcript that fails verification convicts its responder
//!   ([`HoneybeeNode::quarantine`]).
//!
//! The crate mirrors the caller-owned-delivery shape of the other
//! protocol crates: a [`HoneybeeNode`] plans pushes and pulls (each
//! pull is one walk step), the `raptee-sim` engine interposes its rate
//! limiter, message loss and adversary, and `finish_round` handles walk
//! timeouts — which is what lets the simulator run `Protocol::Honeybee`
//! as a drop-in fifth protocol family.

pub mod config;
pub mod node;
pub mod walk;

pub use config::HoneybeeConfig;
pub use node::{HoneybeeNode, HoneybeeRoundReport};
pub use walk::{WalkStep, WalkTranscript};
