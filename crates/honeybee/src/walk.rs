//! Hash-committed random-walk transcripts.
//!
//! A Honeybee walk is a chain of pull exchanges. The walker records each
//! step — who answered and what IDs they offered — under a running
//! SHA-256 commitment, and **the commitment itself chooses the next
//! hop**: hop `k+1` is `answers[commit_k mod |answers|]`. Neither the
//! walker nor any responder can steer the walk without changing the
//! digests, so a transcript is *verifiable*: replaying the chain from
//! the origin checks both that every recorded commitment matches the
//! recorded data and that every hop actually taken was the committed
//! choice. Tampering with any single step — responder, answer set, or
//! stored digest — breaks the chain from that step onward.

use raptee_crypto::sha256::{Digest, Sha256};
use raptee_net::NodeId;

/// One recorded walk step: `responder` answered with `answers`, folding
/// the exchange into the running commitment `commit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkStep {
    /// The peer that answered this step's pull (the hop being visited).
    pub responder: NodeId,
    /// The IDs the responder offered (its view at answer time).
    pub answers: Vec<NodeId>,
    /// Running commitment after folding this step in:
    /// `H(prev_commit ‖ responder ‖ answers)`.
    pub commit: Digest,
}

/// A verifiable walk transcript: origin, nonce and the committed steps.
///
/// # Examples
///
/// ```
/// use raptee_honeybee::WalkTranscript;
/// use raptee_net::NodeId;
///
/// let mut t = WalkTranscript::new(NodeId(1), 42);
/// t.extend(NodeId(7), &[NodeId(3), NodeId(9)]);
/// assert!(t.verify());
/// assert!(t.next_hop().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkTranscript {
    /// The walking node.
    pub origin: NodeId,
    /// Per-walk nonce: distinct walks from one origin commit differently
    /// even over identical answers.
    pub nonce: u64,
    /// The committed steps, oldest first.
    pub steps: Vec<WalkStep>,
}

/// `H("honeybee-walk" ‖ origin ‖ nonce)` — the chain's genesis digest.
fn seed_commit(origin: NodeId, nonce: u64) -> Digest {
    let mut h = Sha256::new();
    h.update(b"honeybee-walk");
    h.update(&origin.to_bytes());
    h.update(&nonce.to_le_bytes());
    h.finalize()
}

/// `H(prev ‖ responder ‖ answers)` — one chain link.
fn step_commit(prev: &Digest, responder: NodeId, answers: &[NodeId]) -> Digest {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(&responder.to_bytes());
    for id in answers {
        h.update(&id.to_bytes());
    }
    h.finalize()
}

/// The committed hop choice: `answers[commit mod |answers|]`.
fn committed_choice(commit: &Digest, answers: &[NodeId]) -> Option<NodeId> {
    if answers.is_empty() {
        return None;
    }
    let draw = u64::from_le_bytes(commit[..8].try_into().expect("digest holds 8 bytes"));
    Some(answers[(draw % answers.len() as u64) as usize])
}

impl WalkTranscript {
    /// An empty transcript for a walk `origin` starts under `nonce`.
    pub fn new(origin: NodeId, nonce: u64) -> Self {
        Self {
            origin,
            nonce,
            steps: Vec::new(),
        }
    }

    /// Hops recorded so far.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no hop has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The current head of the commitment chain.
    pub fn head_commit(&self) -> Digest {
        self.steps
            .last()
            .map(|s| s.commit)
            .unwrap_or_else(|| seed_commit(self.origin, self.nonce))
    }

    /// Folds one exchange into the chain: `responder` answered with
    /// `answers`.
    pub fn extend(&mut self, responder: NodeId, answers: &[NodeId]) {
        let commit = step_commit(&self.head_commit(), responder, answers);
        self.steps.push(WalkStep {
            responder,
            answers: answers.to_vec(),
            commit,
        });
    }

    /// The hop the chain head commits the walk to take next (`None`
    /// before the first step or after an empty answer).
    pub fn next_hop(&self) -> Option<NodeId> {
        let last = self.steps.last()?;
        committed_choice(&last.commit, &last.answers)
    }

    /// The walk's sample: the hop committed by the final step.
    pub fn endpoint(&self) -> Option<NodeId> {
        self.next_hop()
    }

    /// Replays the whole chain from the origin: every stored commitment
    /// must match the recomputed one, and every visited responder (from
    /// step 2 on) must be exactly the hop the previous step committed
    /// to. Any single tampered step — responder, answer set or digest —
    /// fails verification.
    pub fn verify(&self) -> bool {
        let mut prev = seed_commit(self.origin, self.nonce);
        let mut committed_next: Option<NodeId> = None;
        for step in &self.steps {
            if let Some(expected) = committed_next {
                if step.responder != expected {
                    return false; // walker strayed from the committed hop
                }
            }
            if step_commit(&prev, step.responder, &step.answers) != step.commit {
                return false; // recorded digest does not match the data
            }
            committed_next = committed_choice(&step.commit, &step.answers);
            prev = step.commit;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    /// An honest walk: each step's responder is the previous committed
    /// hop.
    fn honest_walk(hops: usize) -> WalkTranscript {
        let mut t = WalkTranscript::new(NodeId(1), 42);
        let mut next = NodeId(7);
        for k in 0..hops {
            let answers = ids(10 * (k as u64 + 1)..10 * (k as u64 + 1) + 5);
            t.extend(next, &answers);
            next = t.next_hop().expect("non-empty answers commit a hop");
        }
        t
    }

    #[test]
    fn honest_walks_verify() {
        for hops in 1..6 {
            let t = honest_walk(hops);
            assert_eq!(t.len(), hops);
            assert!(t.verify());
            assert!(t.endpoint().is_some());
        }
    }

    #[test]
    fn empty_transcript_verifies_trivially() {
        let t = WalkTranscript::new(NodeId(1), 0);
        assert!(t.verify());
        assert_eq!(t.endpoint(), None);
    }

    #[test]
    fn tampered_answer_set_fails() {
        let mut t = honest_walk(4);
        t.steps[1].answers[0] = NodeId(999_999);
        assert!(!t.verify());
    }

    #[test]
    fn tampered_responder_fails() {
        let mut t = honest_walk(4);
        t.steps[2].responder = NodeId(999_999);
        assert!(!t.verify());
    }

    #[test]
    fn tampered_digest_fails() {
        let mut t = honest_walk(4);
        t.steps[3].commit[0] ^= 1;
        assert!(!t.verify());
    }

    #[test]
    fn swapped_nonce_fails() {
        let mut t = honest_walk(3);
        t.nonce ^= 1;
        assert!(!t.verify(), "the chain is rooted in origin and nonce");
    }

    #[test]
    fn off_committed_path_fails() {
        // Recompute digests consistently but visit the *wrong* hop at
        // step 2: the chain itself is well-formed, yet the walk strayed
        // from what step 1 committed to.
        let mut t = WalkTranscript::new(NodeId(1), 42);
        t.extend(NodeId(7), &ids(10..15));
        let committed = t.next_hop().unwrap();
        let stray = ids(10..15).into_iter().find(|&i| i != committed).unwrap();
        t.extend(stray, &ids(20..25));
        assert!(!t.verify());
    }

    #[test]
    fn distinct_nonces_commit_differently() {
        let a = WalkTranscript::new(NodeId(1), 1).head_commit();
        let b = WalkTranscript::new(NodeId(1), 2).head_commit();
        assert_ne!(a, b);
    }
}
