//! The Brahms sampling component.
//!
//! Brahms maintains, next to its gossip-fed dynamic view, a *sample list*
//! `S` of `l2` entries that converges to a uniform random sample of all
//! IDs ever streamed through the node — regardless of how biased the
//! stream is. The trick is min-wise independent permutations (Broder et
//! al., JCSS 2000): each [`Sampler`] draws a random hash function at
//! initialisation and remembers the ID with the smallest hash seen so
//! far. Because the hash is fixed *before* the stream arrives, every
//! distinct ID has the same chance of being the minimum, no matter how
//! often the adversary repeats its own IDs — over-representation in the
//! stream buys the adversary nothing.
//!
//! The sample list's *history sample* is what lets Brahms self-heal from
//! targeted attacks (defence (iv) in the paper), and RAPTEE additionally
//! protects it at trusted nodes by filtering what enters the stream
//! (Byzantine eviction).
//!
//! [`SamplerArray`] packages `l2` independent samplers with the probe
//! based *validation* of the original Brahms paper: sampled nodes are
//! periodically pinged and a dead sample causes its sampler to re-draw a
//! fresh hash function, so departed nodes eventually leave `S`.

use raptee_net::NodeId;
use raptee_util::bitset::{IdSet, DENSE_ID_LIMIT};
use raptee_util::rng::{mix64, Xoshiro256StarStar};

/// The ID pre-mix shared by every sampler hash: `h_seed(id) =
/// mix64(seed ^ premix(id))`. Computing it once per observed ID halves
/// the work of feeding an ID through all `l2` samplers.
#[inline]
fn premix(id: NodeId) -> u64 {
    mix64(id.0.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// A single min-wise sampler: remembers the streamed ID minimising a
/// randomly drawn hash function.
///
/// # Examples
///
/// ```
/// use raptee_sampler::Sampler;
/// use raptee_net::NodeId;
///
/// let mut s = Sampler::new(7);
/// s.observe(NodeId(1));
/// s.observe(NodeId(2));
/// let first = s.sample().unwrap();
/// // Feeding the same IDs again cannot change the sample.
/// s.observe(NodeId(1));
/// s.observe(NodeId(2));
/// assert_eq!(s.sample(), Some(first));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    seed: u64,
    best_hash: u64,
    sample: Option<NodeId>,
}

impl Sampler {
    /// Creates a sampler with a hash function drawn from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            best_hash: u64::MAX,
            sample: None,
        }
    }

    /// The keyed hash `h_seed(id)` — a SplitMix64-finalizer construction
    /// approximating a min-wise independent family.
    #[inline]
    pub fn hash(&self, id: NodeId) -> u64 {
        mix64(self.seed ^ premix(id))
    }

    /// Feeds one ID through the sampler.
    pub fn observe(&mut self, id: NodeId) {
        self.observe_premixed(id, premix(id));
    }

    /// [`Sampler::observe`] with the ID's [`premix`] already computed —
    /// the [`SamplerArray`] hot path shares one premix across all `l2`
    /// samplers.
    #[inline]
    fn observe_premixed(&mut self, id: NodeId, pre: u64) {
        let h = mix64(self.seed ^ pre);
        if h < self.best_hash {
            self.best_hash = h;
            self.sample = Some(id);
        }
    }

    /// The current sample, if any ID was observed.
    pub fn sample(&self) -> Option<NodeId> {
        self.sample
    }

    /// Re-initialises with a fresh hash function, forgetting the current
    /// sample (Brahms' reaction to a failed validation probe).
    pub fn reinit(&mut self, new_seed: u64) {
        *self = Sampler::new(new_seed);
    }
}

/// The full sampling component: `l2` independent samplers.
///
/// # Examples
///
/// ```
/// use raptee_sampler::SamplerArray;
/// use raptee_net::NodeId;
/// use raptee_util::rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let mut s = SamplerArray::new(16, &mut rng);
/// for i in 0..100 {
///     s.observe(NodeId(i));
/// }
/// assert_eq!(s.samples().len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct SamplerArray {
    samplers: Vec<Sampler>,
    /// Dense IDs every sampler has already observed since its last
    /// (re-)initialisation. Min-wise sampling is invariant under
    /// repetition, so a cached ID can skip the whole hash loop — after
    /// the gossip stream converges this eliminates nearly all sampler
    /// work. Any sampler reset ([`SamplerArray::validate`]) clears the
    /// cache, restoring the conservative invariant that a cached ID has
    /// been seen by *every* live hash function.
    seen: IdSet,
    /// IDs at or above this bound bypass the seen-cache (they take the
    /// full hash loop, which is always correct — just slower on
    /// repeats). Defaults to [`DENSE_ID_LIMIT`]; million-node
    /// populations lower it to 0 via
    /// [`SamplerArray::limit_seen_cache`], because a per-node cache of
    /// `max_id/64` words is an O(N²/64) memory bill at that scale.
    seen_limit: usize,
}

impl SamplerArray {
    /// Creates `l2` samplers with independent hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `l2` is zero.
    pub fn new(l2: usize, rng: &mut Xoshiro256StarStar) -> Self {
        assert!(l2 > 0, "sampler array needs at least one sampler");
        Self {
            samplers: (0..l2).map(|_| Sampler::new(rng.next_u64())).collect(),
            seen: IdSet::new(),
            seen_limit: DENSE_ID_LIMIT,
        }
    }

    /// Caps the seen-cache to IDs below `limit` and *frees* the backing
    /// storage (the bitset words already span `max_id_seen / 8` bytes by
    /// the time a caller can cap a freshly-bootstrapped node — `clear`
    /// alone would keep that allocation alive). The cache is a pure
    /// optimisation — min-wise sampling is idempotent under repetition —
    /// so any limit, including 0 (cache disabled), leaves every sample
    /// unchanged. Large populations disable it to keep per-node memory
    /// O(l2) instead of O(max_id).
    pub fn limit_seen_cache(&mut self, limit: usize) {
        self.seen_limit = limit.min(DENSE_ID_LIMIT);
        self.seen = IdSet::new();
    }

    /// Number of samplers (`l2`).
    pub fn len(&self) -> usize {
        self.samplers.len()
    }

    /// True when the array holds no samplers (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.samplers.is_empty()
    }

    /// Feeds one ID to every sampler. Repeats of an already-seen ID are
    /// O(1): min-wise sampling cannot change on repetition, so the
    /// seen-cache short-circuits the hash loop.
    pub fn observe(&mut self, id: NodeId) {
        let idx = id.0 as usize;
        if idx < self.seen_limit && !self.seen.insert(idx) {
            return;
        }
        let pre = premix(id);
        for s in &mut self.samplers {
            s.observe_premixed(id, pre);
        }
    }

    /// Feeds a batch of IDs.
    pub fn observe_all<I: IntoIterator<Item = NodeId>>(&mut self, ids: I) {
        for id in ids {
            self.observe(id);
        }
    }

    /// The current sample list (one entry per sampler that has observed at
    /// least one ID). May contain duplicates across samplers — Brahms uses
    /// it as a multiset.
    pub fn samples(&self) -> Vec<NodeId> {
        self.samplers.iter().filter_map(Sampler::sample).collect()
    }

    /// [`SamplerArray::samples`] into a caller-owned buffer (cleared
    /// first) — the per-round history-sample path allocates nothing.
    pub fn samples_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.samplers.iter().filter_map(Sampler::sample));
    }

    /// Draws `k` entries uniformly from the sample list — the "history
    /// sample" feeding `γ·l1` entries of the view renewal.
    pub fn history_sample(&self, k: usize, rng: &mut Xoshiro256StarStar) -> Vec<NodeId> {
        let current = self.samples();
        if current.is_empty() {
            return Vec::new();
        }
        (0..k).map(|_| current[rng.index(current.len())]).collect()
    }

    /// Brahms validation: probes each current sample with `is_alive` and
    /// re-initialises the samplers whose sampled node is dead. Returns how
    /// many samplers were reset.
    pub fn validate<F: FnMut(NodeId) -> bool>(
        &mut self,
        mut is_alive: F,
        rng: &mut Xoshiro256StarStar,
    ) -> usize {
        let mut reset = 0;
        for s in &mut self.samplers {
            if let Some(id) = s.sample() {
                if !is_alive(id) {
                    s.reinit(rng.next_u64());
                    reset += 1;
                }
            }
        }
        if reset > 0 {
            // A fresh hash function has seen nothing: drop the seen-cache
            // so future streams reach it (repeats stay idempotent for the
            // untouched samplers).
            self.seen.clear();
        }
        reset
    }

    /// Fraction of samplers currently holding an ID for which `pred` is
    /// true — used by the experiment metrics (e.g. "how Byzantine is the
    /// sample list").
    pub fn fraction_matching<F: Fn(NodeId) -> bool>(&self, pred: F) -> f64 {
        let samples = self.samples();
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().filter(|&&id| pred(id)).count() as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_keeps_minimum() {
        let s0 = Sampler::new(42);
        // Find the argmin by brute force and check observe() agrees for
        // every prefix order.
        let ids: Vec<NodeId> = (0..50).map(NodeId).collect();
        let argmin = *ids.iter().min_by_key(|id| s0.hash(**id)).unwrap();
        let mut s = s0;
        for &id in &ids {
            s.observe(id);
        }
        assert_eq!(s.sample(), Some(argmin));
    }

    #[test]
    fn sampler_empty_is_none() {
        assert_eq!(Sampler::new(1).sample(), None);
    }

    #[test]
    fn repetition_does_not_bias() {
        // Adversary floods its ID a million times; an honest ID with a
        // smaller hash still wins.
        let s0 = Sampler::new(7);
        let honest = NodeId(1);
        let byz = NodeId(2);
        let (winner, loser) = if s0.hash(honest) < s0.hash(byz) {
            (honest, byz)
        } else {
            (byz, honest)
        };
        let mut s = s0;
        for _ in 0..1000 {
            s.observe(loser);
        }
        s.observe(winner);
        for _ in 0..1000 {
            s.observe(loser);
        }
        assert_eq!(s.sample(), Some(winner));
    }

    #[test]
    fn reinit_forgets() {
        let mut s = Sampler::new(1);
        s.observe(NodeId(5));
        s.reinit(2);
        assert_eq!(s.sample(), None);
    }

    #[test]
    fn array_basic_flow() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut arr = SamplerArray::new(8, &mut rng);
        assert_eq!(arr.len(), 8);
        assert!(arr.samples().is_empty());
        arr.observe_all((0..20).map(NodeId));
        assert_eq!(arr.samples().len(), 8);
    }

    #[test]
    fn history_sample_draws_from_samples() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut arr = SamplerArray::new(8, &mut rng);
        arr.observe_all((0..20).map(NodeId));
        let hs = arr.history_sample(5, &mut rng);
        assert_eq!(hs.len(), 5);
        let samples = arr.samples();
        assert!(hs.iter().all(|id| samples.contains(id)));
        // Empty array case.
        let empty = SamplerArray::new(4, &mut rng);
        assert!(empty.history_sample(5, &mut rng).is_empty());
    }

    #[test]
    fn validation_resets_dead_samples() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut arr = SamplerArray::new(32, &mut rng);
        arr.observe_all((0..100).map(NodeId));
        // Declare even IDs dead.
        let reset = arr.validate(|id| id.0 % 2 == 1, &mut rng);
        assert!(reset > 0, "some samples must have been even");
        // After re-observing only odd IDs, all samples are odd.
        arr.observe_all((0..100).filter(|i| i % 2 == 1).map(NodeId));
        assert!(arr.samples().iter().all(|id| id.0 % 2 == 1));
        assert_eq!(arr.samples().len(), 32);
    }

    #[test]
    fn seen_cache_is_observationally_invisible() {
        // A stream with heavy repetition must leave the array in exactly
        // the state of the deduplicated stream — and the cache must reach
        // the same samples as an uncached element-wise feed.
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let mut cached = SamplerArray::new(16, &mut rng);
        let mut reference = SamplerArray::new(16, &mut rng.clone());
        // Same hash functions: rebuild reference from identical seeds.
        reference.samplers.clone_from(&cached.samplers);
        for rep in 0..5 {
            for id in 0..200u64 {
                cached.observe(NodeId(id));
                if rep == 0 {
                    for s in &mut reference.samplers {
                        s.observe(NodeId(id));
                    }
                }
            }
        }
        assert_eq!(cached.samples(), reference.samples());
    }

    #[test]
    fn huge_ids_bypass_the_cache() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut arr = SamplerArray::new(8, &mut rng);
        let huge = NodeId(u64::MAX - 3);
        arr.observe(huge);
        arr.observe(huge); // repeat takes the uncached path; still idempotent
        assert!(arr.samples().iter().all(|&id| id == huge));
        assert!(
            arr.seen.is_empty(),
            "IDs beyond DENSE_ID_LIMIT must not grow the cache"
        );
    }

    #[test]
    fn validation_reset_clears_seen_cache() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut arr = SamplerArray::new(8, &mut rng);
        arr.observe_all((0..50).map(NodeId));
        assert!(!arr.seen.is_empty());
        // Kill everything: every sampler resets, the cache must drop so
        // re-observed IDs reach the fresh hash functions.
        let reset = arr.validate(|_| false, &mut rng);
        assert_eq!(reset, 8);
        assert!(arr.seen.is_empty());
        arr.observe_all((0..50).map(NodeId));
        assert_eq!(arr.samples().len(), 8, "fresh samplers re-filled");
    }

    #[test]
    fn disabled_seen_cache_is_observationally_invisible() {
        // With the cache limited to 0 every observe takes the full hash
        // loop; samples must match the cached array exactly, and the
        // cache must never allocate.
        let mut rng = Xoshiro256StarStar::seed_from_u64(33);
        let mut cached = SamplerArray::new(16, &mut rng);
        let mut uncached = cached.clone();
        uncached.limit_seen_cache(0);
        for rep in 0..3 {
            for id in 0..300u64 {
                let id = NodeId(id * (rep + 1) % 257);
                cached.observe(id);
                uncached.observe(id);
            }
        }
        assert_eq!(cached.samples(), uncached.samples());
        assert!(uncached.seen.is_empty());
        assert!(!cached.seen.is_empty());
    }

    #[test]
    fn fraction_matching() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut arr = SamplerArray::new(64, &mut rng);
        arr.observe_all((0..1000).map(NodeId));
        let frac = arr.fraction_matching(|id| id.0 < 500);
        assert!(frac > 0.3 && frac < 0.7, "roughly half: {frac}");
        let none = SamplerArray::new(4, &mut rng);
        assert_eq!(none.fraction_matching(|_| true), 0.0);
    }

    #[test]
    fn samples_are_uniform_chi_square() {
        // The headline Brahms property: across many independent samplers,
        // the sampled ID is uniform over the distinct stream content, even
        // when the stream itself is heavily biased.
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let universe = 50u64;
        let mut counts = vec![0u64; universe as usize];
        for _ in 0..200 {
            let mut arr = SamplerArray::new(50, &mut rng);
            // Biased stream: ID 0 appears 100x more often.
            for _ in 0..100 {
                arr.observe(NodeId(0));
            }
            arr.observe_all((0..universe).map(NodeId));
            for id in arr.samples() {
                counts[id.index()] += 1;
            }
        }
        let test = raptee_util::chi::chi_square_uniform(&counts);
        assert!(
            test.is_uniform(),
            "sample distribution not uniform: chi2 {} vs critical {}",
            test.statistic,
            test.critical_1pct
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_samplers_panics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        SamplerArray::new(0, &mut rng);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Stream order never affects the final sample.
        #[test]
        fn order_invariance(
            mut ids in proptest::collection::vec(0u64..1000, 1..100),
            seed in 0u64..10_000,
        ) {
            let mut forward = Sampler::new(seed);
            for &id in &ids {
                forward.observe(NodeId(id));
            }
            ids.reverse();
            let mut backward = Sampler::new(seed);
            for &id in &ids {
                backward.observe(NodeId(id));
            }
            prop_assert_eq!(forward.sample(), backward.sample());
        }

        /// The sample is always an element of the stream.
        #[test]
        fn sample_from_stream(
            ids in proptest::collection::vec(0u64..1000, 1..100),
            seed in 0u64..10_000,
        ) {
            let mut s = Sampler::new(seed);
            for &id in &ids {
                s.observe(NodeId(id));
            }
            let sample = s.sample().unwrap();
            prop_assert!(ids.contains(&sample.0));
        }

        /// Observing more IDs can only change the sample to a smaller hash.
        #[test]
        fn monotone_in_hash(
            first in proptest::collection::vec(0u64..1000, 1..50),
            second in proptest::collection::vec(0u64..1000, 1..50),
            seed in 0u64..10_000,
        ) {
            let mut s = Sampler::new(seed);
            for &id in &first {
                s.observe(NodeId(id));
            }
            let h1 = s.hash(s.sample().unwrap());
            for &id in &second {
                s.observe(NodeId(id));
            }
            let h2 = s.hash(s.sample().unwrap());
            prop_assert!(h2 <= h1);
        }
    }
}
