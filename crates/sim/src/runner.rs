//! Repetition, aggregation and parameter sweeps.
//!
//! The paper repeats every setup 10 times and reports means; its figures
//! sweep `f` (Byzantine share), `t` (trusted share) and the eviction
//! rate. This module provides those loops — rayon-parallel across
//! repetitions and grid points, deterministic per (scenario, repetition)
//! pair — plus the derived quantities the figures actually plot:
//! resilience improvement (%) and round overhead (%) relative to the
//! Brahms baseline at the same workload.

use crate::engine::Simulation;
use crate::metrics::RunResult;
use crate::scenario::Scenario;
use rayon::prelude::*;

/// Mean per-segment resilience across repetitions of one scenario (the
/// segment layout is identical in every repetition).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentAggregate {
    /// The protocol the segment ran.
    pub protocol: crate::scenario::Protocol,
    /// Correct nodes in the segment.
    pub nodes: usize,
    /// Mean converged Byzantine share in the segment's views.
    pub resilience: f64,
    /// Mean per-segment mean-discovery round among repetitions that
    /// reached it; `None` when none did.
    pub discovery_round: Option<f64>,
    /// Mean per-segment stability round among repetitions that reached
    /// it; `None` when none did.
    pub stability_round: Option<f64>,
}

/// Mean results across repetitions of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedResult {
    /// Mean converged Byzantine share in non-Byzantine views (`[0, 1]`).
    pub resilience: f64,
    /// Mean per-segment resilience (one entry per population segment;
    /// exactly one, equal to `resilience`, for uniform scenarios).
    pub segments: Vec<SegmentAggregate>,
    /// Mean discovery round among repetitions that reached discovery;
    /// `None` when none did.
    pub discovery_round: Option<f64>,
    /// Mean stability round among repetitions that reached stability.
    pub stability_round: Option<f64>,
    /// Mean best-identification precision/recall/F1 (0 when the attack
    /// was disabled).
    pub ident_precision: f64,
    /// See [`AggregatedResult::ident_precision`].
    pub ident_recall: f64,
    /// See [`AggregatedResult::ident_precision`].
    pub ident_f1: f64,
    /// Number of repetitions aggregated.
    pub repetitions: usize,
    /// Fraction of repetitions that reached discovery within the run.
    pub discovery_success: f64,
    /// Fraction of repetitions that reached stability within the run.
    pub stability_success: f64,
    /// Mean node availability (live node-rounds over scheduled
    /// node-rounds) across repetitions that tracked recovery metrics;
    /// `None` when churn and attestation expiry were both off.
    pub availability: Option<f64>,
    /// Mean time-to-recover in rounds across repetitions in which at
    /// least one restarted node re-stabilised; `None` when none did (or
    /// recovery tracking was off).
    pub time_to_recover: Option<f64>,
    /// Mean Byzantine detection latency (rounds from first activity to
    /// conviction) across repetitions in which the challenger convicted
    /// at least one Byzantine node; `None` when none did (or the audit
    /// layer was off).
    pub audit_detection_latency: Option<f64>,
    /// Mean convictions per repetition across repetitions that ran the
    /// audit layer; `None` when it was off.
    pub audit_convictions: Option<f64>,
    /// Mean false accusations (convictions of correct nodes — expected
    /// zero) per repetition across repetitions that ran the audit
    /// layer; `None` when it was off.
    pub audit_false_accusations: Option<f64>,
}

/// Runs one scenario once. Takes the scenario by value — repetition
/// loops and benches hand over their per-repetition copy instead of
/// cloning it again behind the call.
pub fn run_scenario(scenario: Scenario) -> RunResult {
    Simulation::new(scenario).run()
}

/// Runs `repetitions` independent repetitions (seeds derived from the
/// scenario seed) in parallel and aggregates.
///
/// # Panics
///
/// Panics if `repetitions` is zero.
pub fn run_repeated(scenario: &Scenario, repetitions: usize) -> AggregatedResult {
    assert!(repetitions > 0, "need at least one repetition");
    let results: Vec<RunResult> = (0..repetitions)
        .into_par_iter()
        .map(|rep| {
            let mut s = scenario.clone();
            s.seed = scenario.seed.wrapping_add(0x9E37_79B9 * (rep as u64 + 1));
            run_scenario(s)
        })
        .collect();
    aggregate(&results)
}

/// Aggregates a set of run results into means.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn aggregate(results: &[RunResult]) -> AggregatedResult {
    assert!(!results.is_empty(), "cannot aggregate zero results");
    let n = results.len() as f64;
    let resilience = results.iter().map(|r| r.resilience).sum::<f64>() / n;
    // Per-segment means: every repetition runs the same population spec,
    // so segment k lines up across results.
    let mean_of = |vals: Vec<f64>| {
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    let segments: Vec<SegmentAggregate> = results[0]
        .segments
        .iter()
        .enumerate()
        .map(|(k, seg)| SegmentAggregate {
            protocol: seg.protocol,
            nodes: seg.nodes,
            resilience: results
                .iter()
                .filter_map(|r| r.segments.get(k).map(|s| s.resilience))
                .sum::<f64>()
                / n,
            discovery_round: mean_of(
                results
                    .iter()
                    .filter_map(|r| r.segments.get(k).and_then(|s| s.mean_discovery_round))
                    .collect(),
            ),
            stability_round: mean_of(
                results
                    .iter()
                    .filter_map(|r| {
                        r.segments
                            .get(k)
                            .and_then(|s| s.stability_round.map(|x| x as f64))
                    })
                    .collect(),
            ),
        })
        .collect();
    // Prefer the paper-literal all-nodes round when reached; otherwise
    // fall back to the scale-robust mean-based round.
    let discovery: Vec<f64> = results
        .iter()
        .filter_map(|r| {
            r.discovery_round
                .map(|x| x as f64)
                .or(r.mean_discovery_round)
        })
        .collect();
    let stability: Vec<f64> = results
        .iter()
        .filter_map(|r| r.stability_round.map(|x| x as f64))
        .collect();
    let discovery_success = discovery.len() as f64 / n;
    let stability_success = stability.len() as f64 / n;
    let idents: Vec<_> = results.iter().filter_map(|r| r.identification).collect();
    let (ip, ir, if1) = if idents.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let m = idents.len() as f64;
        (
            idents.iter().map(|i| i.precision).sum::<f64>() / m,
            idents.iter().map(|i| i.recall).sum::<f64>() / m,
            idents.iter().map(|i| i.f1).sum::<f64>() / m,
        )
    };
    let availability = mean_of(
        results
            .iter()
            .filter_map(|r| r.recovery.as_ref().map(|rec| rec.availability))
            .collect(),
    );
    let time_to_recover = mean_of(
        results
            .iter()
            .filter_map(|r| r.recovery.as_ref().and_then(|rec| rec.mean_time_to_recover))
            .collect(),
    );
    let audit_detection_latency = mean_of(
        results
            .iter()
            .filter_map(|r| r.audit.as_ref().and_then(|a| a.mean_detection_latency))
            .collect(),
    );
    let audit_convictions = mean_of(
        results
            .iter()
            .filter_map(|r| r.audit.as_ref().map(|a| a.convictions as f64))
            .collect(),
    );
    let audit_false_accusations = mean_of(
        results
            .iter()
            .filter_map(|r| r.audit.as_ref().map(|a| a.false_accusations as f64))
            .collect(),
    );
    AggregatedResult {
        resilience,
        segments,
        discovery_round: mean_of(discovery),
        stability_round: mean_of(stability),
        ident_precision: ip,
        ident_recall: ir,
        ident_f1: if1,
        repetitions: results.len(),
        discovery_success,
        stability_success,
        availability,
        time_to_recover,
        audit_detection_latency,
        audit_convictions,
        audit_false_accusations,
    }
}

/// Resilience improvement (%) of `raptee` over `baseline` — "the
/// percentage drop in the number of Byzantine identifiers in the views of
/// correct nodes".
pub fn resilience_improvement_pct(baseline: &AggregatedResult, raptee: &AggregatedResult) -> f64 {
    if baseline.resilience <= 0.0 {
        return 0.0;
    }
    (baseline.resilience - raptee.resilience) / baseline.resilience * 100.0
}

/// Round overhead (%) of `raptee` relative to `baseline` for a metric
/// expressed in rounds (discovery or stability). `None` when either side
/// never reached the metric.
pub fn round_overhead_pct(baseline: Option<f64>, raptee: Option<f64>) -> Option<f64> {
    match (baseline, raptee) {
        (Some(b), Some(r)) if b > 0.0 => Some((r - b) / b * 100.0),
        _ => None,
    }
}

/// Runs a full (f, t) grid for one eviction policy — the shape of
/// Figs. 5–9 — in parallel. Returns `(f, t, raptee_result)` triples plus
/// a baseline per `f` value.
pub fn sweep_grid(
    template: &Scenario,
    byzantine_fractions: &[f64],
    trusted_fractions: &[f64],
    repetitions: usize,
) -> SweepResults {
    let baselines: Vec<(f64, AggregatedResult)> = byzantine_fractions
        .par_iter()
        .map(|&f| {
            let mut s = template.brahms_baseline();
            s.byzantine_fraction = f;
            (f, run_repeated(&s, repetitions))
        })
        .collect();
    let grid: Vec<(f64, f64, AggregatedResult)> = byzantine_fractions
        .iter()
        .flat_map(|&f| trusted_fractions.iter().map(move |&t| (f, t)))
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(f, t)| {
            let mut s = template.clone();
            s.byzantine_fraction = f;
            s.trusted_fraction = t;
            (f, t, run_repeated(&s, repetitions))
        })
        .collect();
    SweepResults { baselines, grid }
}

/// Output of [`sweep_grid`].
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Brahms baseline per Byzantine fraction.
    pub baselines: Vec<(f64, AggregatedResult)>,
    /// RAPTEE result per (f, t) grid point.
    pub grid: Vec<(f64, f64, AggregatedResult)>,
}

impl SweepResults {
    /// The baseline for Byzantine fraction `f`.
    pub fn baseline(&self, f: f64) -> Option<&AggregatedResult> {
        self.baselines
            .iter()
            .find(|(bf, _)| (bf - f).abs() < 1e-12)
            .map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::IdentificationResult;
    use crate::scenario::Protocol;

    fn tiny() -> Scenario {
        Scenario {
            n: 80,
            byzantine_fraction: 0.1,
            trusted_fraction: 0.05,
            view_size: 10,
            sample_size: 10,
            rounds: 25,
            tail_window: 5,
            seed: 7,
            ..Scenario::default()
        }
    }

    fn fake_result(resilience: f64, discovery: Option<usize>) -> RunResult {
        RunResult {
            resilience,
            discovery_round: discovery,
            mean_discovery_round: discovery.map(|d| d as f64),
            stability_round: discovery.map(|d| d + 5),
            spread_stability_round: None,
            byz_share_series: vec![resilience],
            identification: Some(IdentificationResult {
                precision: 0.5,
                recall: 0.25,
                f1: 1.0 / 3.0,
                round: 3,
            }),
            rounds: 10,
            floods_detected: 0,
            total_evicted: 0,
            seed_rotations: 0,
            segments: vec![crate::metrics::SegmentResult {
                protocol: Protocol::Raptee,
                nodes: 72,
                resilience,
                mean_discovery_round: discovery.map(|d| d as f64),
                stability_round: discovery.map(|d| d + 5),
                byz_share_series: vec![resilience],
            }],
            virtual_ticks: 10,
            net: None,
            recovery: None,
            audit: None,
        }
    }

    #[test]
    fn aggregate_means() {
        let agg = aggregate(&[fake_result(0.2, Some(10)), fake_result(0.4, None)]);
        assert!((agg.resilience - 0.3).abs() < 1e-12);
        assert_eq!(agg.discovery_round, Some(10.0));
        assert_eq!(agg.discovery_success, 0.5);
        assert_eq!(agg.repetitions, 2);
        assert!((agg.ident_precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_folds_recovery_metrics() {
        let quiet = fake_result(0.2, Some(10));
        let mut churned = fake_result(0.4, None);
        churned.recovery = Some(crate::metrics::RecoveryStats {
            availability: 0.9,
            crashes: 4,
            restarts: 3,
            recovered: 2,
            mean_time_to_recover: Some(12.0),
            trusted_live_fraction: Vec::new(),
        });
        let agg = aggregate(&[quiet.clone(), churned.clone()]);
        // Only repetitions that tracked recovery contribute to the mean.
        assert_eq!(agg.availability, Some(0.9));
        assert_eq!(agg.time_to_recover, Some(12.0));
        let off = aggregate(&[quiet]);
        assert_eq!(off.availability, None);
        assert_eq!(off.time_to_recover, None);
        // A tracked repetition where nothing re-stabilised yields an
        // availability mean but no TTR.
        churned.recovery.as_mut().unwrap().mean_time_to_recover = None;
        let agg = aggregate(&[churned]);
        assert_eq!(agg.availability, Some(0.9));
        assert_eq!(agg.time_to_recover, None);
    }

    #[test]
    fn aggregate_folds_audit_metrics() {
        let plain = fake_result(0.2, Some(10));
        let mut audited = fake_result(0.4, None);
        audited.audit = Some(crate::metrics::AuditStats {
            audits_issued: 40,
            audits_answered: 30,
            cleared: 25,
            suspected: 5,
            convictions: 10,
            false_accusations: 0,
            detected_byzantine: 10,
            mean_detection_latency: Some(8.0),
            quarantine_series: vec![0, 4, 10],
            commitments_recorded: 100,
            chain_restarts: 1,
        });
        let agg = aggregate(&[plain.clone(), audited.clone()]);
        // Only repetitions that ran the challenger contribute.
        assert_eq!(agg.audit_detection_latency, Some(8.0));
        assert_eq!(agg.audit_convictions, Some(10.0));
        assert_eq!(agg.audit_false_accusations, Some(0.0));
        let off = aggregate(&[plain]);
        assert_eq!(off.audit_detection_latency, None);
        assert_eq!(off.audit_convictions, None);
        assert_eq!(off.audit_false_accusations, None);
        // An audited repetition that convicted nothing still reports
        // conviction counts, just no latency.
        audited.audit.as_mut().unwrap().mean_detection_latency = None;
        audited.audit.as_mut().unwrap().convictions = 0;
        audited.audit.as_mut().unwrap().detected_byzantine = 0;
        let agg = aggregate(&[audited]);
        assert_eq!(agg.audit_detection_latency, None);
        assert_eq!(agg.audit_convictions, Some(0.0));
    }

    #[test]
    fn improvement_and_overhead_formulas() {
        let base = aggregate(&[fake_result(0.4, Some(100))]);
        let new = aggregate(&[fake_result(0.3, Some(110))]);
        let imp = resilience_improvement_pct(&base, &new);
        assert!((imp - 25.0).abs() < 1e-9);
        let ovh = round_overhead_pct(base.discovery_round, new.discovery_round).unwrap();
        assert!((ovh - 10.0).abs() < 1e-9);
        assert_eq!(round_overhead_pct(None, Some(1.0)), None);
        assert_eq!(round_overhead_pct(Some(0.0), Some(1.0)), None);
    }

    #[test]
    fn repeated_runs_aggregate() {
        let agg = run_repeated(&tiny(), 2);
        assert_eq!(agg.repetitions, 2);
        assert!(agg.resilience > 0.0 && agg.resilience < 1.0);
    }

    #[test]
    fn repeated_churn_runs_surface_availability() {
        let mut s = tiny();
        s.churn = crate::scenario::ChurnSchedule::steady(0.02, 0.4);
        let agg = run_repeated(&s, 2);
        let availability = agg.availability.expect("churn runs track availability");
        assert!(availability > 0.0 && availability < 1.0);
    }

    #[test]
    fn repeated_runs_are_reproducible() {
        let a = run_repeated(&tiny(), 2);
        let b = run_repeated(&tiny(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_covers_grid() {
        let mut template = tiny();
        template.protocol = Protocol::Raptee;
        let sweep = sweep_grid(&template, &[0.1, 0.2], &[0.01, 0.1], 1);
        assert_eq!(sweep.baselines.len(), 2);
        assert_eq!(sweep.grid.len(), 4);
        assert!(sweep.baseline(0.1).is_some());
        assert!(sweep.baseline(0.15).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_rejected() {
        run_repeated(&tiny(), 0);
    }

    #[test]
    #[should_panic(expected = "zero results")]
    fn aggregate_empty_rejected() {
        aggregate(&[]);
    }
}
