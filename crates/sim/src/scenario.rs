//! Experiment configuration.

use raptee::EvictionPolicy;

/// The adversary's push strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackStrategy {
    /// Spread faulty pushes evenly over all correct nodes — proved
    /// optimal for the system-wide objective in the Brahms paper, and
    /// the strategy used throughout the evaluation.
    Balanced,
    /// Dedicate `focus` of the push budget to a victim subset of
    /// `victim_fraction` of the correct nodes (the isolation attempt
    /// Brahms' history sampling defeats; exercised by the
    /// `ablation_gamma` analysis and the targeted-attack tests).
    Targeted {
        /// Fraction of correct nodes under focused attack.
        victim_fraction: f64,
        /// Fraction of the adversary's push budget aimed at them.
        focus: f64,
    },
}

/// Which protocol the non-Byzantine population runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Plain Brahms: no trusted nodes, no authentication, no eviction —
    /// the paper's baseline (Fig. 3).
    Brahms,
    /// RAPTEE: `t·N` trusted nodes with mutual auth, trusted
    /// communications and Byzantine eviction.
    Raptee,
    /// BASALT (Auvolat et al., PAPERS.md): ranked hit-counter views with
    /// periodic seed rotation — the purely algorithmic Byzantine-tolerant
    /// baseline. No trusted tier exists under this protocol.
    Basalt {
        /// Number of ranked view slots `v` (kept equal to
        /// [`Scenario::view_size`] for budget-parity comparisons).
        view_size: usize,
        /// Rounds between seed rotations (`0` disables rotation).
        rotation_interval: usize,
    },
}

/// One experimental setup, mirroring the paper's Section V-B: "An
/// experimental setup consists of selected proportions of Byzantine
/// nodes, f, and trusted nodes, t, and a fixed Byzantine eviction rate."
///
/// # Examples
///
/// ```
/// use raptee_sim::{Protocol, Scenario};
/// use raptee::EvictionPolicy;
///
/// let s = Scenario {
///     n: 500,
///     byzantine_fraction: 0.1,
///     trusted_fraction: 0.01,
///     eviction: EvictionPolicy::adaptive(),
///     protocol: Protocol::Raptee,
///     ..Scenario::default()
/// };
/// s.validate();
/// assert_eq!(s.byzantine_count(), 50);
/// assert_eq!(s.trusted_count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Total number of (original) nodes `N`.
    pub n: usize,
    /// Byzantine share `f` of the original population.
    pub byzantine_fraction: f64,
    /// Trusted share `t` of the original population (ignored under
    /// [`Protocol::Brahms`]).
    pub trusted_fraction: f64,
    /// Additional view-poisoned trusted nodes injected by the adversary,
    /// as a fraction of `n` (Section VI-B). They hold the genuine group
    /// key and run correct code, but bootstrap with all-Byzantine views.
    pub injected_poisoned_fraction: f64,
    /// The adversary's push strategy.
    pub attack: AttackStrategy,
    /// Eviction policy for trusted nodes.
    pub eviction: EvictionPolicy,
    /// Enable the trusted view-swap (Section IV-B). Disabling it while
    /// keeping eviction isolates the contribution of trusted
    /// communications — the `ablation_trusted_swap` bench.
    pub trusted_swap: bool,
    /// Brahms history-sample weight `γ` (paper default 0.2); `α = β =
    /// (1 − γ)/2`. Swept by the `ablation_gamma` bench to isolate the
    /// self-healing contribution.
    pub gamma: f64,
    /// Dynamic view size `l1`. The paper uses 200 at `N = 10,000` (2 %).
    pub view_size: usize,
    /// Sample list size `l2` (paper: equal to `l1`).
    pub sample_size: usize,
    /// Rounds per run (paper: 200).
    pub rounds: usize,
    /// Protocol selection.
    pub protocol: Protocol,
    /// Run the real four-message HMAC handshake for every pull
    /// (`true`), or the role-based shortcut whose equivalence is
    /// asserted by `tests/crypto_shortcut.rs` (`false`, default for
    /// large sweeps).
    pub real_crypto_handshakes: bool,
    /// Enable the trusted-node identification attack bookkeeping
    /// (Section VI-A); costs one extra observation pull per Byzantine
    /// node per round.
    pub identification_attack: bool,
    /// Identification threshold (paper: 0.1 maximises the adversary's
    /// outcome).
    pub identification_threshold: f64,
    /// Uniform message-loss probability applied to pushes and pull
    /// answers (failure injection; the paper's testbed is lossless).
    pub message_loss: f64,
    /// Fraction of *correct* nodes crashed at [`Scenario::crash_round`]
    /// (churn injection; exercises Brahms' probe-based sampler
    /// validation and the timeout handling of pulls).
    pub crash_fraction: f64,
    /// Round at which the crash batch happens.
    pub crash_round: usize,
    /// Run the sampler liveness validation every `k` rounds (0 disables).
    /// The original Brahms probes its samples so departed nodes leave
    /// the sample list.
    pub sampler_validation_period: usize,
    /// Push-flood threshold margin in standard deviations above `α·l1`.
    /// `0` keeps the paper-literal `α·l1` threshold (appropriate at the
    /// paper's view size, where `α·l1` already sits ≈ 4σ above the mean
    /// arrival rate); the reduced-scale default of `4.0` reproduces that
    /// same relative margin. See `BrahmsConfig::flood_threshold`.
    pub flood_slack_sigmas: f64,
    /// Rounds averaged at the end of the run for the resilience metric.
    pub tail_window: usize,
    /// Master seed; every repetition derives its own sub-seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            n: 1000,
            byzantine_fraction: 0.1,
            trusted_fraction: 0.01,
            injected_poisoned_fraction: 0.0,
            attack: AttackStrategy::Balanced,
            eviction: EvictionPolicy::adaptive(),
            trusted_swap: true,
            gamma: 0.2,
            view_size: 20,
            sample_size: 20,
            rounds: 120,
            protocol: Protocol::Raptee,
            real_crypto_handshakes: false,
            identification_attack: false,
            identification_threshold: 0.1,
            message_loss: 0.0,
            crash_fraction: 0.0,
            crash_round: 0,
            sampler_validation_period: 0,
            flood_slack_sigmas: 4.0,
            tail_window: 20,
            seed: 0x5A97EE,
        }
    }
}

impl Scenario {
    /// The paper's full-scale configuration: 10,000 nodes, view size 200,
    /// 200 rounds.
    pub fn paper_scale() -> Self {
        Self {
            n: 10_000,
            view_size: 200,
            sample_size: 200,
            rounds: 200,
            flood_slack_sigmas: 0.0, // paper-literal α·l1 threshold
            ..Self::default()
        }
    }

    /// Validates ranges and consistency.
    ///
    /// # Panics
    ///
    /// Panics when fractions leave `[0, 1]`, their sum exceeds 1, or any
    /// size is zero.
    pub fn validate(&self) {
        assert!(self.n > 1, "population must contain at least two nodes");
        for (name, v) in [
            ("byzantine_fraction", self.byzantine_fraction),
            ("trusted_fraction", self.trusted_fraction),
            (
                "injected_poisoned_fraction",
                self.injected_poisoned_fraction,
            ),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1]");
        }
        assert!(
            self.byzantine_fraction + self.trusted_fraction <= 1.0 + 1e-9,
            "byzantine + trusted fractions exceed the population"
        );
        assert!(
            self.view_size > 0 && self.sample_size > 0,
            "sizes must be positive"
        );
        assert!(self.rounds > 0, "must run at least one round");
        assert!(self.tail_window > 0, "tail window must be positive");
        assert!((0.0..1.0).contains(&self.gamma), "gamma must be in [0,1)");
        assert!(
            self.flood_slack_sigmas >= 0.0,
            "flood slack must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.message_loss),
            "message loss must be in [0,1]"
        );
        if let AttackStrategy::Targeted {
            victim_fraction,
            focus,
        } = self.attack
        {
            assert!(
                (0.0..=1.0).contains(&victim_fraction),
                "victim fraction must be in [0,1]"
            );
            assert!((0.0..=1.0).contains(&focus), "focus must be in [0,1]");
        }
        assert!(
            (0.0..1.0).contains(&self.crash_fraction),
            "crash fraction must be in [0,1)"
        );
        self.eviction.validate();
        assert!(
            (0.0..=1.0).contains(&self.identification_threshold),
            "identification threshold must be in [0,1]"
        );
        if let Protocol::Basalt { view_size, .. } = self.protocol {
            assert!(view_size > 0, "BASALT view size must be positive");
            assert!(
                self.injected_poisoned_fraction == 0.0,
                "trusted-node injection needs a trusted tier (RAPTEE only)"
            );
            assert!(
                !self.identification_attack,
                "the identification attack targets trusted nodes (RAPTEE only)"
            );
        }
    }

    /// Number of Byzantine nodes `⌊f·N⌋` (at least 1 when `f > 0`).
    pub fn byzantine_count(&self) -> usize {
        let b = (self.byzantine_fraction * self.n as f64).round() as usize;
        if self.byzantine_fraction > 0.0 {
            b.max(1)
        } else {
            0
        }
    }

    /// Number of trusted nodes `⌊t·N⌋` (at least 1 when `t > 0` and the
    /// protocol is RAPTEE; the paper's smallest setting is "1 % of
    /// SGX-capable devices"). Brahms and BASALT run no trusted tier.
    pub fn trusted_count(&self) -> usize {
        if self.protocol != Protocol::Raptee {
            return 0;
        }
        let t = (self.trusted_fraction * self.n as f64).round() as usize;
        if self.trusted_fraction > 0.0 {
            t.max(1)
        } else {
            0
        }
    }

    /// Number of injected view-poisoned trusted nodes (extra, on top of
    /// `n`).
    pub fn injected_count(&self) -> usize {
        (self.injected_poisoned_fraction * self.n as f64).round() as usize
    }

    /// Number of honest (non-Byzantine, untrusted) nodes.
    pub fn honest_count(&self) -> usize {
        self.n - self.byzantine_count() - self.trusted_count()
    }

    /// Total actors in the run, including injected nodes.
    pub fn total_actors(&self) -> usize {
        self.n + self.injected_count()
    }

    /// A copy of this scenario switched to the Brahms baseline (used to
    /// compute resilience improvement and round overheads).
    pub fn brahms_baseline(&self) -> Scenario {
        Scenario {
            protocol: Protocol::Brahms,
            trusted_fraction: 0.0,
            injected_poisoned_fraction: 0.0,
            identification_attack: false,
            ..self.clone()
        }
    }

    /// A copy of this scenario switched to BASALT at the same view size
    /// and workload (the algorithmic counterpart of
    /// [`Scenario::brahms_baseline`]): same `N`, `f`, rounds and message
    /// budget, no trusted tier, seeds rotated every `rotation_interval`
    /// rounds.
    pub fn basalt_variant(&self, rotation_interval: usize) -> Scenario {
        Scenario {
            protocol: Protocol::Basalt {
                view_size: self.view_size,
                rotation_interval,
            },
            trusted_fraction: 0.0,
            injected_poisoned_fraction: 0.0,
            identification_attack: false,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        Scenario::default().validate();
        Scenario::paper_scale().validate();
        assert_eq!(Scenario::paper_scale().n, 10_000);
    }

    #[test]
    fn counts_partition_population() {
        let s = Scenario {
            n: 1000,
            byzantine_fraction: 0.14,
            trusted_fraction: 0.05,
            ..Scenario::default()
        };
        assert_eq!(s.byzantine_count(), 140);
        assert_eq!(s.trusted_count(), 50);
        assert_eq!(s.honest_count(), 810);
        assert_eq!(
            s.byzantine_count() + s.trusted_count() + s.honest_count(),
            s.n
        );
    }

    #[test]
    fn tiny_fractions_round_up_to_one() {
        let s = Scenario {
            n: 50,
            byzantine_fraction: 0.001,
            trusted_fraction: 0.001,
            ..Scenario::default()
        };
        assert_eq!(s.byzantine_count(), 1);
        assert_eq!(s.trusted_count(), 1);
    }

    #[test]
    fn brahms_protocol_has_no_trusted_nodes() {
        let s = Scenario {
            trusted_fraction: 0.3,
            protocol: Protocol::Brahms,
            ..Scenario::default()
        };
        assert_eq!(s.trusted_count(), 0);
    }

    #[test]
    fn baseline_strips_raptee_features() {
        let s = Scenario {
            injected_poisoned_fraction: 0.1,
            identification_attack: true,
            ..Scenario::default()
        };
        let b = s.brahms_baseline();
        assert_eq!(b.protocol, Protocol::Brahms);
        assert_eq!(b.trusted_count(), 0);
        assert_eq!(b.injected_count(), 0);
        assert!(!b.identification_attack);
        // Workload knobs preserved.
        assert_eq!(b.n, s.n);
        assert_eq!(b.byzantine_fraction, s.byzantine_fraction);
        assert_eq!(b.seed, s.seed);
    }

    #[test]
    fn injected_are_extra_actors() {
        let s = Scenario {
            n: 100,
            injected_poisoned_fraction: 0.2,
            ..Scenario::default()
        };
        assert_eq!(s.injected_count(), 20);
        assert_eq!(s.total_actors(), 120);
    }

    #[test]
    fn basalt_variant_strips_trusted_tier() {
        let s = Scenario {
            trusted_fraction: 0.2,
            injected_poisoned_fraction: 0.1,
            identification_attack: true,
            ..Scenario::default()
        };
        let b = s.basalt_variant(30);
        b.validate();
        assert_eq!(
            b.protocol,
            Protocol::Basalt {
                view_size: s.view_size,
                rotation_interval: 30
            }
        );
        assert_eq!(b.trusted_count(), 0);
        assert_eq!(b.injected_count(), 0);
        assert!(!b.identification_attack);
        // Workload knobs preserved.
        assert_eq!(b.n, s.n);
        assert_eq!(b.byzantine_fraction, s.byzantine_fraction);
        assert_eq!(b.seed, s.seed);
    }

    #[test]
    #[should_panic(expected = "RAPTEE only")]
    fn basalt_rejects_injection_attack() {
        Scenario {
            injected_poisoned_fraction: 0.1,
            ..Scenario::default().basalt_variant(10)
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "view size must be positive")]
    fn basalt_zero_view_rejected() {
        Scenario {
            protocol: Protocol::Basalt {
                view_size: 0,
                rotation_interval: 10,
            },
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "exceed the population")]
    fn overfull_population_rejected() {
        Scenario {
            byzantine_fraction: 0.7,
            trusted_fraction: 0.5,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn negative_fraction_rejected() {
        Scenario {
            byzantine_fraction: -0.1,
            ..Scenario::default()
        }
        .validate();
    }
}
