//! Experiment configuration.

use crate::bitset::EXACT_DISCOVERY_THRESHOLD;
use raptee::EvictionPolicy;

/// How the engine tracks per-node discovery (see
/// [`crate::bitset::Discovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiscoveryMode {
    /// Exact bitsets up to [`EXACT_DISCOVERY_THRESHOLD`] total actors,
    /// HLL sketches above — the default, and what every committed golden
    /// scenario resolves to (they all sit below the threshold, on the
    /// byte-identical exact path).
    #[default]
    Auto,
    /// Force exact bitsets regardless of scale. Rejected by
    /// [`Scenario::validate`] above [`EXACT_FORCE_LIMIT`] actors, where
    /// the O(N²) matrix would exceed ~2 GiB.
    Exact,
    /// Force HLL sketches regardless of scale (estimated discovery
    /// counts, ~6.5 % relative standard error; O(N) memory).
    Sketch,
}

/// Hard cap for [`DiscoveryMode::Exact`]: above this many total actors
/// the exact matrix costs more than ~2 GiB (`(2^17)² / 8` bytes) and
/// validation rejects the forced-exact request.
pub const EXACT_FORCE_LIMIT: usize = 1 << 17;

/// The adversary's push strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackStrategy {
    /// Spread faulty pushes evenly over all correct nodes — proved
    /// optimal for the system-wide objective in the Brahms paper, and
    /// the strategy used throughout the evaluation.
    Balanced,
    /// Dedicate `focus` of the push budget to a victim subset of
    /// `victim_fraction` of the correct nodes (the isolation attempt
    /// Brahms' history sampling defeats; exercised by the
    /// `ablation_gamma` analysis and the targeted-attack tests).
    Targeted {
        /// Fraction of correct nodes under focused attack.
        victim_fraction: f64,
        /// Fraction of the adversary's push budget aimed at them.
        focus: f64,
    },
    /// Spread the budget evenly like [`AttackStrategy::Balanced`], but
    /// advertise distinct Byzantine identities round-robin instead of
    /// random draws — the coverage play that matters against ranked
    /// (BASALT/LIFT) and walk-sampled (Honeybee) views, where repeating
    /// an ID buys nothing. Against Brahms-family victims it degrades to
    /// a balanced attack with a different identity schedule.
    ForcePush,
}

/// How the adversary allocates its lawful budget across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdversaryMode {
    /// Run [`Scenario::attack`] unchanged every round (the evaluation
    /// default; every committed golden uses it).
    #[default]
    Static,
    /// Bandit-style adaptation: a deterministic UCB1 coordinator
    /// re-allocates the whole lawful budget each round across
    /// segment × strategy arms by observed per-round pollution yield
    /// (mean Byzantine view share). Draws nothing from any RNG stream,
    /// so switching it off leaves every existing run byte-identical.
    Adaptive,
}

/// Which protocol a (sub-)population of correct nodes runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Plain Brahms: no trusted nodes, no authentication, no eviction —
    /// the paper's baseline (Fig. 3).
    Brahms,
    /// RAPTEE: `t·N` trusted nodes with mutual auth, trusted
    /// communications and Byzantine eviction.
    Raptee,
    /// BASALT (Auvolat et al., PAPERS.md): ranked hit-counter views with
    /// periodic seed rotation — the purely algorithmic Byzantine-tolerant
    /// baseline. No trusted tier exists under this protocol.
    Basalt {
        /// Number of ranked view slots `v` (kept equal to
        /// [`Scenario::view_size`] for budget-parity comparisons).
        view_size: usize,
        /// Rounds between seed rotations (`0` disables rotation).
        rotation_interval: usize,
    },
    /// The BASALT+TEE hybrid: BASALT's ranked hit-counter views hardened
    /// with (a) the waiting-list / TTL anti-poisoning refinement for
    /// hearsay IDs, and (b) a trusted tier of `t·N` enclave-attested
    /// nodes (provisioned through the same `raptee-tee` attestation flow
    /// as RAPTEE) whose mutual exchanges bypass the waiting list.
    BasaltTee {
        /// Number of ranked view slots `v`.
        view_size: usize,
        /// Rounds between seed rotations (`0` disables rotation).
        rotation_interval: usize,
        /// Waiting-list TTL in rounds for hearsay candidates (`0`
        /// degrades to plain BASALT semantics plus the trusted tier).
        wlist_ttl: usize,
    },
    /// LIFT (see PAPERS.md): hub-score estimation over gossip exchanges
    /// with score-weighted neighbour replacement — nodes track how often
    /// each peer is advertised and probabilistically avoid hubs, so a
    /// flooding adversary marks its own identities as hubs and prices
    /// itself out of views. No trusted tier exists under this protocol.
    Lift {
        /// Number of view slots `v` (kept equal to
        /// [`Scenario::view_size`] for budget-parity comparisons).
        view_size: usize,
        /// Rounds between score fades (halving); `0` is rejected — an
        /// unfading score table grows without bound.
        fade_interval: usize,
    },
    /// Honeybee (see PAPERS.md): verifiable random walks with
    /// hash-committed transcripts (`raptee-crypto` SHA-256 chains);
    /// verified walk endpoints pass through the shared BASALT
    /// waiting-list quarantine before admission, and transcripts that
    /// fail verification convict their responder. No trusted tier exists
    /// under this protocol.
    Honeybee {
        /// Number of view slots `v`.
        view_size: usize,
        /// Hops per random walk.
        walk_length: usize,
    },
}

impl Protocol {
    /// Short CLI/report label.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::Brahms => "brahms",
            Protocol::Raptee => "raptee",
            Protocol::Basalt { .. } => "basalt",
            Protocol::BasaltTee { .. } => "basalt-tee",
            Protocol::Lift { .. } => "lift",
            Protocol::Honeybee { .. } => "honeybee",
        }
    }

    /// Whether this protocol runs BASALT-family ranked views (vs the
    /// Brahms/RAPTEE renewal family).
    pub fn is_basalt_family(&self) -> bool {
        matches!(self, Protocol::Basalt { .. } | Protocol::BasaltTee { .. })
    }

    /// Whether this protocol runs on the engine's ranked-family lane
    /// (caller-owned plan/exchange/finish delegation through
    /// [`crate::RankedNode`]): BASALT, BASALT+TEE, LIFT or Honeybee, as
    /// opposed to the Brahms/RAPTEE view-renewal family.
    pub fn is_ranked_family(&self) -> bool {
        matches!(
            self,
            Protocol::Basalt { .. }
                | Protocol::BasaltTee { .. }
                | Protocol::Lift { .. }
                | Protocol::Honeybee { .. }
        )
    }

    /// Whether a trusted tier exists under this protocol.
    pub fn supports_trusted(&self) -> bool {
        matches!(self, Protocol::Raptee | Protocol::BasaltTee { .. })
    }
}

/// One entry of a mixed-population specification: `count` correct nodes
/// running `protocol`. See [`Scenario::population`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSpec {
    /// The protocol this segment runs.
    pub protocol: Protocol,
    /// Number of correct nodes in the segment.
    pub count: usize,
}

/// Per-link latency distribution for the event-driven network model,
/// in virtual ticks (see [`EventNetConfig::round_ticks`]). Every link
/// draw is hash-derived from `(seed, src, dst)` — no shared RNG stream
/// is consumed, so enabling latency never perturbs the protocol RNG
/// draw order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks. `Constant(0)` is
    /// the asynchrony-equivalence configuration: deliveries land in the
    /// sending round and the event engine reproduces the round engine
    /// bit-for-bit.
    Constant(u64),
    /// Uniform in `[min, max]` ticks.
    Uniform {
        /// Inclusive lower bound.
        min: u64,
        /// Inclusive upper bound.
        max: u64,
    },
    /// Log-normal with the given location/scale of the underlying
    /// normal (the classic heavy-tailed WAN latency shape used by the
    /// BASALT and Honeybee evaluations), truncated at `cap` ticks so a
    /// tail draw cannot stall a message past the run.
    LogNormal {
        /// Location `μ` of `ln(latency)`.
        mu: f64,
        /// Scale `σ ≥ 0` of `ln(latency)`.
        sigma: f64,
        /// Hard upper truncation, in ticks (`> 0`).
        cap: u64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Constant(0)
    }
}

/// One network partition: for rounds in `[start, end)` no message
/// crosses the cut between actor indices `< boundary` (side A) and
/// `>= boundary` (side B). In-flight messages are held at the cut and
/// released when the partition heals — delayed, never dropped (loss is
/// the [`Scenario::message_loss`] model's job). New pull requests
/// across an active cut are refused at the sender (no connection, so no
/// message ever exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First partitioned round (inclusive).
    pub start: usize,
    /// Healing round (exclusive; the cut is down again from here).
    pub end: usize,
    /// Actor-index split point: side A is `index < boundary`.
    pub boundary: usize,
}

/// Who can reach whom, independent of partitions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Reachability {
    /// Everyone can open a connection to everyone (the round model's
    /// implicit assumption).
    #[default]
    Full,
    /// NAT-like asymmetric reachability: the last `fraction` of correct
    /// actors (by index) sit behind NATs. Inbound traffic to a NATted
    /// node is only delivered through a *hole* — a reverse path opened
    /// whenever the NATted node itself contacts a peer (push or pull),
    /// fresh for `hole_ttl` rounds. Pull answers always pass (the
    /// requester just contacted the responder). This is the
    /// hole-punching asymmetry that lets an adversary who gets into a
    /// victim's view amplify an eclipse: the victim keeps refreshing
    /// holes toward its (poisoned) view while random honest pushes
    /// bounce off the NAT.
    Nat {
        /// Fraction of *correct* actors behind NATs, in `[0, 1)`.
        fraction: f64,
        /// Rounds a punched hole stays open (`>= 1`).
        hole_ttl: usize,
    },
}

/// Bounded exponential-backoff retry policy for pull requests on the
/// event network. A pull whose connection is refused (an active cut, a
/// closed NAT) re-arms a deadline timer and tries again after
/// `base_backoff · 2^(attempt-1)` ticks plus deterministic hash-derived
/// jitter, up to `max_retries` extra attempts. The all-zero default
/// disables retries entirely and is draw-for-draw identical to the
/// pre-retry engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryConfig {
    /// Maximum retry attempts per pull beyond the first try (`0`
    /// disables retries).
    pub max_retries: u32,
    /// Backoff base in virtual ticks; attempt `k` waits
    /// `base_backoff · 2^(k-1)` plus jitter. Must be positive when
    /// `max_retries > 0`.
    pub base_backoff: u64,
}

/// Configuration of the event-driven delivery substrate.
#[derive(Debug, Clone, PartialEq)]
pub struct EventNetConfig {
    /// Per-link latency distribution.
    pub latency: LatencyModel,
    /// Virtual ticks per protocol round — the period of every node's
    /// round timer. A message sent in round `r` with latency `d` lands
    /// in round `(r·round_ticks + offset + d) / round_ticks`.
    pub round_ticks: u64,
    /// Maximum per-node round-timer offset (desynchronized clocks),
    /// hash-derived per node in `[0, jitter]`; must stay below
    /// `round_ticks`. `0` means all round timers fire in lockstep —
    /// required for the asynchrony-equivalence tests.
    pub jitter: u64,
    /// Partition/healing schedule (may overlap).
    pub partitions: Vec<PartitionWindow>,
    /// Asymmetric-reachability model.
    pub reachability: Reachability,
    /// Pull retry/timeout/backoff policy (all-zero default: off).
    pub retry: RetryConfig,
    /// Duplicate-delivery fault injector: probability that a pull
    /// answer is delivered twice (the second copy carries the same
    /// nonce, so the engine's dedup must suppress it). Hash-derived
    /// from a dedicated fault stream — protocol-visible latency draws
    /// are unperturbed, so a run differs from `0.0` only in net
    /// counters.
    pub duplicate_rate: f64,
    /// Reorder fault injector: extra hash-derived delay in
    /// `[0, reorder_jitter]` ticks added to duplicate copies, shuffling
    /// them against the original delivery order (`0` disables).
    pub reorder_jitter: u64,
}

impl Default for EventNetConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::Constant(0),
            round_ticks: 1000,
            jitter: 0,
            partitions: Vec::new(),
            reachability: Reachability::Full,
            retry: RetryConfig::default(),
            duplicate_rate: 0.0,
            reorder_jitter: 0,
        }
    }
}

/// Which delivery substrate drives the protocol cores.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum NetworkModel {
    /// The lockstep phase-parallel round engine (the default; exactly
    /// the pre-event-engine behavior).
    #[default]
    Rounds,
    /// The discrete-event engine: protocol messages become timed
    /// `Request`/`Reply` events ordered by `(time, seq)` on a
    /// deterministic binary heap, with per-link latency, partitions and
    /// NAT-like reachability. With the all-zero default config this
    /// reproduces the round engine bit-for-bit (`tests/asynchrony.rs`).
    Events(EventNetConfig),
}

/// How a restarted node rebuilds its protocol state when it rejoins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RejoinPolicy {
    /// Fresh bootstrap: a hash-derived seed view (as if re-provisioned
    /// from the bootstrap service) and reinitialised samplers — the
    /// node remembers nothing of its pre-crash state.
    #[default]
    Cold,
    /// Persisted state with a staleness penalty: the node keeps its
    /// pre-crash view and samples, but every entry is revalidated
    /// against liveness on rejoin (Brahms probe revalidation) and
    /// BASALT-family nodes are forced through an immediate seed
    /// rotation, so stale entries cost real view slots until purged.
    Warm,
}

/// A windowed churn burst: for rounds in `[start, end)` the per-round
/// crash probability is raised to `crash_rate` (a catastrophe window —
/// correlated failures like a datacenter outage or a flash crowd
/// departing at once).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnBurst {
    /// First burst round (inclusive).
    pub start: usize,
    /// End round (exclusive).
    pub end: usize,
    /// Per-round crash probability inside the window, in `[0, 1)`.
    pub crash_rate: f64,
}

/// The dynamic-membership schedule: hash-deterministic per-round
/// crash/restart processes over the correct population, plus the legacy
/// one-shot crash batch for backward compatibility. Every draw is
/// hash-derived from `(churn seed, round, node)` — no shared RNG stream
/// is consumed, so the all-off default leaves every golden byte-identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnSchedule {
    /// Legacy one-shot batch: fraction of correct nodes crashed at
    /// [`ChurnSchedule::crash_round`] (`0.0` disables). Uses the shared
    /// loss RNG exactly as the pre-churn engine did, preserving old
    /// fingerprints.
    pub crash_fraction: f64,
    /// Round at which the one-shot crash batch happens.
    pub crash_round: usize,
    /// Steady-state per-round crash probability for each live correct
    /// node, in `[0, 1)`.
    pub crash_rate: f64,
    /// Per-round restart probability for each crashed correct node, in
    /// `[0, 1]` (`0.0` means crashes are permanent, as before).
    pub restart_rate: f64,
    /// Catastrophe windows overriding the steady rate.
    pub bursts: Vec<ChurnBurst>,
    /// How restarted nodes rebuild their state.
    pub rejoin: RejoinPolicy,
}

impl ChurnSchedule {
    /// The legacy one-shot crash batch: `fraction` of correct nodes
    /// crash at `round`, permanently (compatibility constructor for the
    /// old `Scenario::{crash_fraction, crash_round}` fields).
    pub fn one_shot(fraction: f64, round: usize) -> Self {
        Self {
            crash_fraction: fraction,
            crash_round: round,
            ..Self::default()
        }
    }

    /// Continuous churn: per-round crash probability `crash_rate` for
    /// live nodes, per-round restart probability `restart_rate` for
    /// crashed ones.
    pub fn steady(crash_rate: f64, restart_rate: f64) -> Self {
        Self {
            crash_rate,
            restart_rate,
            ..Self::default()
        }
    }

    /// Whether any crash/restart process is configured at all.
    pub fn active(&self) -> bool {
        self.crash_fraction > 0.0
            || self.crash_rate > 0.0
            || self.restart_rate > 0.0
            || !self.bursts.is_empty()
    }

    /// Whether membership evolves beyond the legacy one-shot batch
    /// (steady rates, bursts, or restarts).
    pub fn dynamic(&self) -> bool {
        self.crash_rate > 0.0 || self.restart_rate > 0.0 || !self.bursts.is_empty()
    }

    /// The per-round crash probability at `round`: the maximum of the
    /// steady rate and every active burst window.
    pub fn crash_rate_at(&self, round: usize) -> f64 {
        self.bursts
            .iter()
            .filter(|b| (b.start..b.end).contains(&round))
            .map(|b| b.crash_rate)
            .fold(self.crash_rate, f64::max)
    }
}

/// Challenger configuration for the verifiable audit layer: every
/// round the challenger draws `budget` targets from its dedicated
/// randomness beacon, demands merkle openings of sampled view slots,
/// and issues verdicts (see `crate::audit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Audit challenges issued per round.
    pub budget: usize,
    /// Suspicion grace window in rounds: a `Suspected` verdict (missing
    /// or inadmissible opening — a crashed, churned-out or
    /// certificate-expired target) decays after this many rounds, so
    /// crash-recovery never escalates towards a conviction.
    pub grace: usize,
}

/// Default suspicion grace window (rounds).
pub const DEFAULT_AUDIT_GRACE: usize = 10;

impl AuditConfig {
    /// An audit configuration with the default grace window.
    pub fn with_budget(budget: usize) -> Self {
        Self {
            budget,
            grace: DEFAULT_AUDIT_GRACE,
        }
    }
}

/// One experimental setup, mirroring the paper's Section V-B: "An
/// experimental setup consists of selected proportions of Byzantine
/// nodes, f, and trusted nodes, t, and a fixed Byzantine eviction rate."
///
/// # Examples
///
/// ```
/// use raptee_sim::{Protocol, Scenario};
/// use raptee::EvictionPolicy;
///
/// let s = Scenario {
///     n: 500,
///     byzantine_fraction: 0.1,
///     trusted_fraction: 0.01,
///     eviction: EvictionPolicy::adaptive(),
///     protocol: Protocol::Raptee,
///     ..Scenario::default()
/// };
/// s.validate();
/// assert_eq!(s.byzantine_count(), 50);
/// assert_eq!(s.trusted_count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Total number of (original) nodes `N`.
    pub n: usize,
    /// Byzantine share `f` of the original population.
    pub byzantine_fraction: f64,
    /// Trusted share `t` of the original population (ignored under
    /// [`Protocol::Brahms`]).
    pub trusted_fraction: f64,
    /// Additional view-poisoned trusted nodes injected by the adversary,
    /// as a fraction of `n` (Section VI-B). They hold the genuine group
    /// key and run correct code, but bootstrap with all-Byzantine views.
    pub injected_poisoned_fraction: f64,
    /// The adversary's push strategy.
    pub attack: AttackStrategy,
    /// Eviction policy for trusted nodes.
    pub eviction: EvictionPolicy,
    /// Enable the trusted view-swap (Section IV-B). Disabling it while
    /// keeping eviction isolates the contribution of trusted
    /// communications — the `ablation_trusted_swap` bench.
    pub trusted_swap: bool,
    /// Brahms history-sample weight `γ` (paper default 0.2); `α = β =
    /// (1 − γ)/2`. Swept by the `ablation_gamma` bench to isolate the
    /// self-healing contribution.
    pub gamma: f64,
    /// Dynamic view size `l1`. The paper uses 200 at `N = 10,000` (2 %).
    pub view_size: usize,
    /// Sample list size `l2` (paper: equal to `l1`).
    pub sample_size: usize,
    /// Rounds per run (paper: 200).
    pub rounds: usize,
    /// Protocol selection for a *uniform* correct population (ignored
    /// when [`Scenario::population`] is non-empty).
    pub protocol: Protocol,
    /// Mixed-population specification: per-protocol counts of correct
    /// nodes, laid out contiguously after the Byzantine prefix in spec
    /// order. Empty (the default) means the whole correct population
    /// runs [`Scenario::protocol`]. When non-empty, the counts must sum
    /// to `n - byzantine_count()`, each protocol may appear at most
    /// once, and the RAPTEE-only attack toggles
    /// (`injected_poisoned_fraction`, `identification_attack`,
    /// `real_crypto_handshakes`) must stay off.
    pub population: Vec<SegmentSpec>,
    /// Run the real four-message HMAC handshake for every pull
    /// (`true`), or the role-based shortcut whose equivalence is
    /// asserted by `tests/crypto_shortcut.rs` (`false`, default for
    /// large sweeps).
    pub real_crypto_handshakes: bool,
    /// Enable the trusted-node identification attack bookkeeping
    /// (Section VI-A); costs one extra observation pull per Byzantine
    /// node per round.
    pub identification_attack: bool,
    /// Identification threshold (paper: 0.1 maximises the adversary's
    /// outcome).
    pub identification_threshold: f64,
    /// Uniform message-loss probability applied to pushes and pull
    /// answers (failure injection; the paper's testbed is lossless).
    pub message_loss: f64,
    /// Dynamic-membership schedule: one-shot crash batches, steady
    /// churn rates, catastrophe bursts and crash–recovery restarts
    /// (exercises Brahms' probe-based sampler validation, the timeout
    /// handling of pulls, and every protocol family's rejoin path).
    pub churn: ChurnSchedule,
    /// Attestation-certificate lifetime in rounds (`0` disables
    /// expiry). When positive, trusted nodes' certificates expire on a
    /// staggered schedule; an expired node degrades to untrusted
    /// behaviour (no trusted swaps or trusted pulls) until a
    /// re-attestation event heals it a few rounds later.
    pub attest_ttl: usize,
    /// Run the sampler liveness validation every `k` rounds (0 disables).
    /// The original Brahms probes its samples so departed nodes leave
    /// the sample list.
    pub sampler_validation_period: usize,
    /// Verifiable audit layer: `None` (the default) disables the
    /// challenger entirely — no commitments are taken and the audit
    /// beacon stream is never drawn from, so audit-off runs replay
    /// byte-for-byte. Requires a provisioned trusted tier.
    pub audit: Option<AuditConfig>,
    /// Proactive trusted-directory refresh period, in rounds (`0`
    /// disables — the default, preserving all golden fingerprints).
    /// When positive, the engine rebuilds a directory of live,
    /// certificate-valid trusted nodes every this-many rounds and
    /// BASALT-family trusted nodes perform one directory-driven
    /// trusted exchange per round — instead of relying on the
    /// opportunistic both-trusted pull encounters of the hybrid path.
    pub trusted_directory_refresh: usize,
    /// Push-flood threshold margin in standard deviations above `α·l1`.
    /// `0` keeps the paper-literal `α·l1` threshold (appropriate at the
    /// paper's view size, where `α·l1` already sits ≈ 4σ above the mean
    /// arrival rate); the reduced-scale default of `4.0` reproduces that
    /// same relative margin. See `BrahmsConfig::flood_threshold`.
    pub flood_slack_sigmas: f64,
    /// Rounds averaged at the end of the run for the resilience metric.
    pub tail_window: usize,
    /// Discovery-metric representation (exact bitsets vs HLL sketches).
    pub discovery: DiscoveryMode,
    /// Adversary budget scheduling: [`AdversaryMode::Static`] (the
    /// default) replays [`Scenario::attack`] every round;
    /// [`AdversaryMode::Adaptive`] layers a deterministic UCB1 bandit
    /// over segments × strategies, re-allocating the whole lawful budget
    /// each round by observed pollution yield.
    pub adversary_mode: AdversaryMode,
    /// Delivery substrate: lockstep rounds (default) or the
    /// discrete-event engine with latency, partitions and NAT-like
    /// reachability.
    pub network: NetworkModel,
    /// Master seed; every repetition derives its own sub-seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            n: 1000,
            byzantine_fraction: 0.1,
            trusted_fraction: 0.01,
            injected_poisoned_fraction: 0.0,
            attack: AttackStrategy::Balanced,
            eviction: EvictionPolicy::adaptive(),
            trusted_swap: true,
            gamma: 0.2,
            view_size: 20,
            sample_size: 20,
            rounds: 120,
            protocol: Protocol::Raptee,
            population: Vec::new(),
            real_crypto_handshakes: false,
            identification_attack: false,
            identification_threshold: 0.1,
            message_loss: 0.0,
            churn: ChurnSchedule::default(),
            attest_ttl: 0,
            sampler_validation_period: 0,
            audit: None,
            trusted_directory_refresh: 0,
            flood_slack_sigmas: 4.0,
            tail_window: 20,
            discovery: DiscoveryMode::Auto,
            adversary_mode: AdversaryMode::Static,
            network: NetworkModel::Rounds,
            seed: 0x5A97EE,
        }
    }
}

impl Scenario {
    /// The paper's full-scale configuration: 10,000 nodes, view size 200,
    /// 200 rounds.
    pub fn paper_scale() -> Self {
        Self {
            n: 10_000,
            view_size: 200,
            sample_size: 200,
            rounds: 200,
            flood_slack_sigmas: 0.0, // paper-literal α·l1 threshold
            ..Self::default()
        }
    }

    /// Validates ranges and consistency.
    ///
    /// # Panics
    ///
    /// Panics when fractions leave `[0, 1]`, their sum exceeds 1, or any
    /// size is zero.
    pub fn validate(&self) {
        assert!(self.n > 1, "population must contain at least two nodes");
        for (name, v) in [
            ("byzantine_fraction", self.byzantine_fraction),
            ("trusted_fraction", self.trusted_fraction),
            (
                "injected_poisoned_fraction",
                self.injected_poisoned_fraction,
            ),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1]");
        }
        assert!(
            self.byzantine_fraction + self.trusted_fraction <= 1.0 + 1e-9,
            "byzantine + trusted fractions exceed the population"
        );
        assert!(
            self.view_size > 0 && self.sample_size > 0,
            "sizes must be positive"
        );
        assert!(self.rounds > 0, "must run at least one round");
        assert!(self.tail_window > 0, "tail window must be positive");
        assert!((0.0..1.0).contains(&self.gamma), "gamma must be in [0,1)");
        assert!(
            self.flood_slack_sigmas >= 0.0,
            "flood slack must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.message_loss),
            "message loss must be in [0,1]"
        );
        if let AttackStrategy::Targeted {
            victim_fraction,
            focus,
        } = self.attack
        {
            assert!(
                (0.0..=1.0).contains(&victim_fraction),
                "victim fraction must be in [0,1]"
            );
            assert!((0.0..=1.0).contains(&focus), "focus must be in [0,1]");
        }
        self.validate_churn();
        assert!(
            self.attest_ttl == 0 || self.trusted_count() > 0,
            "attestation expiry needs a provisioned trusted tier"
        );
        self.validate_audit();
        assert!(
            self.trusted_directory_refresh == 0 || self.trusted_count() > 0,
            "the trusted-directory refresh needs a provisioned trusted tier"
        );
        self.eviction.validate();
        assert!(
            (0.0..=1.0).contains(&self.identification_threshold),
            "identification threshold must be in [0,1]"
        );
        assert!(
            self.discovery != DiscoveryMode::Exact || self.total_actors() <= EXACT_FORCE_LIMIT,
            "exact discovery forced at {} actors: the O(N²) matrix would exceed the \
             ~2 GiB guard (limit {EXACT_FORCE_LIMIT}); use DiscoveryMode::Auto or Sketch",
            self.total_actors()
        );
        if let NetworkModel::Events(net) = &self.network {
            self.validate_network(net);
        }
        if self.population.is_empty() {
            self.validate_protocol(self.protocol);
        } else {
            self.validate_population();
        }
    }

    /// Event-network consistency checks.
    fn validate_network(&self, net: &EventNetConfig) {
        assert!(net.round_ticks > 0, "round_ticks must be positive");
        assert!(
            net.jitter < net.round_ticks,
            "round-timer jitter must stay below one round period"
        );
        match net.latency {
            LatencyModel::Constant(_) => {}
            LatencyModel::Uniform { min, max } => {
                assert!(min <= max, "uniform latency needs min <= max");
            }
            LatencyModel::LogNormal { sigma, cap, .. } => {
                assert!(sigma >= 0.0, "log-normal sigma must be non-negative");
                assert!(cap > 0, "log-normal latency cap must be positive");
            }
        }
        for p in &net.partitions {
            assert!(
                p.start < p.end && p.end <= self.rounds,
                "partition windows need start < end <= rounds"
            );
            assert!(
                p.boundary <= self.total_actors(),
                "partition boundary exceeds the actor count"
            );
        }
        if let Reachability::Nat { fraction, hole_ttl } = net.reachability {
            assert!(
                (0.0..1.0).contains(&fraction),
                "NAT fraction must be in [0,1)"
            );
            assert!(hole_ttl >= 1, "NAT hole TTL must be at least one round");
        }
        assert!(
            net.retry.max_retries == 0 || net.retry.base_backoff > 0,
            "retry backoff base must be positive when retries are enabled"
        );
        assert!(
            (0.0..=1.0).contains(&net.duplicate_rate),
            "duplicate rate must be in [0,1]"
        );
        assert!(
            net.reorder_jitter == 0 || net.duplicate_rate > 0.0,
            "reorder jitter shuffles duplicate copies; it needs duplicate_rate > 0"
        );
    }

    /// Audit-layer consistency checks.
    fn validate_audit(&self) {
        let Some(audit) = &self.audit else { return };
        assert!(audit.budget > 0, "audit budget must be positive");
        assert!(audit.grace > 0, "audit grace window must be positive");
        assert!(
            self.trusted_count() > 0,
            "the audit layer needs a provisioned trusted tier (t > 0 under a TEE protocol)"
        );
        // Commitments expire with the attestation certificate: a TTL
        // shorter than the grace window would leave an honest node
        // certificate-less for longer than suspicion is allowed to
        // persist, making an expired-but-honest node indistinguishable
        // from an evasive one. Reject the combination outright.
        assert!(
            self.attest_ttl == 0 || self.attest_ttl >= audit.grace,
            "attestation TTL shorter than the audit grace window would make \
             expired-but-honest nodes convictable; use attest_ttl >= grace"
        );
    }

    /// Churn-schedule consistency checks.
    fn validate_churn(&self) {
        let churn = &self.churn;
        assert!(
            (0.0..1.0).contains(&churn.crash_fraction),
            "crash fraction must be in [0,1)"
        );
        assert!(
            churn.crash_fraction == 0.0 || churn.crash_round < self.rounds,
            "one-shot crash round must fall inside the run (crash_round < rounds)"
        );
        assert!(
            (0.0..1.0).contains(&churn.crash_rate),
            "steady churn crash rate must be in [0,1)"
        );
        assert!(
            (0.0..=1.0).contains(&churn.restart_rate),
            "restart rate must be in [0,1]"
        );
        for b in &churn.bursts {
            assert!(
                b.start < b.end && b.end <= self.rounds,
                "churn bursts need start < end <= rounds"
            );
            assert!(
                (0.0..1.0).contains(&b.crash_rate),
                "churn burst crash rate must be in [0,1)"
            );
        }
    }

    /// Per-protocol consistency checks shared by the uniform and mixed
    /// validation paths.
    fn validate_protocol(&self, protocol: Protocol) {
        match protocol {
            Protocol::Brahms | Protocol::Raptee => {}
            Protocol::Basalt { view_size, .. } => {
                assert!(view_size > 0, "BASALT view size must be positive");
                assert!(
                    self.injected_poisoned_fraction == 0.0,
                    "trusted-node injection needs a trusted tier (RAPTEE only)"
                );
                assert!(
                    !self.identification_attack,
                    "the identification attack targets trusted nodes (RAPTEE only)"
                );
            }
            Protocol::BasaltTee { view_size, .. } => {
                assert!(view_size > 0, "BASALT view size must be positive");
                assert!(
                    self.injected_poisoned_fraction == 0.0,
                    "trusted-node injection bootstraps poisoned Brahms views (RAPTEE only)"
                );
                assert!(
                    !self.identification_attack,
                    "the identification attack reads Brahms view statistics (RAPTEE only)"
                );
                assert!(
                    !self.real_crypto_handshakes,
                    "real handshakes are wired for the uniform Brahms-family pull path"
                );
            }
            Protocol::Lift {
                view_size,
                fade_interval,
            } => {
                assert!(view_size > 0, "LIFT view size must be positive");
                assert!(
                    fade_interval > 0,
                    "LIFT needs a positive fade interval (scores must decay)"
                );
                assert!(
                    self.injected_poisoned_fraction == 0.0,
                    "trusted-node injection needs a trusted tier (RAPTEE only)"
                );
                assert!(
                    !self.identification_attack,
                    "the identification attack targets trusted nodes (RAPTEE only)"
                );
            }
            Protocol::Honeybee {
                view_size,
                walk_length,
            } => {
                assert!(view_size > 0, "Honeybee view size must be positive");
                assert!(walk_length > 0, "Honeybee walk length must be positive");
                assert!(
                    self.injected_poisoned_fraction == 0.0,
                    "trusted-node injection needs a trusted tier (RAPTEE only)"
                );
                assert!(
                    !self.identification_attack,
                    "the identification attack targets trusted nodes (RAPTEE only)"
                );
            }
        }
    }

    /// Mixed-population consistency checks.
    fn validate_population(&self) {
        assert!(
            self.injected_poisoned_fraction == 0.0,
            "trusted-node injection is a uniform-RAPTEE attack (no mixed populations)"
        );
        assert!(
            !self.identification_attack,
            "the identification attack is a uniform-RAPTEE attack (no mixed populations)"
        );
        assert!(
            !self.real_crypto_handshakes,
            "real handshakes are wired for the uniform Brahms-family path only"
        );
        let mut sum = 0usize;
        for (i, seg) in self.population.iter().enumerate() {
            assert!(seg.count > 0, "population segments must be non-empty");
            self.validate_protocol(seg.protocol);
            assert!(
                !self.population[..i]
                    .iter()
                    .any(|s| std::mem::discriminant(&s.protocol)
                        == std::mem::discriminant(&seg.protocol)),
                "each protocol may appear at most once in a population spec"
            );
            sum += seg.count;
        }
        let correct = self.n - self.byzantine_count();
        assert_eq!(
            sum, correct,
            "population segment counts must sum to the correct population \
             (n - byzantine_count = {correct})"
        );
        // Like uniform Brahms/BASALT, a population without TEE-capable
        // segments simply ignores `trusted_fraction`; but where a tier
        // *can* exist, it must fit.
        let capacity: usize = self
            .population
            .iter()
            .filter(|s| s.protocol.supports_trusted())
            .map(|s| s.count)
            .sum();
        assert!(
            capacity == 0 || self.total_trusted_target() <= capacity,
            "trusted fraction exceeds the TEE-capable segment capacity"
        );
    }

    /// Number of Byzantine nodes `⌊f·N⌋` (at least 1 when `f > 0`).
    pub fn byzantine_count(&self) -> usize {
        let b = (self.byzantine_fraction * self.n as f64).round() as usize;
        if self.byzantine_fraction > 0.0 {
            b.max(1)
        } else {
            0
        }
    }

    /// The scenario-level trusted-tier target `⌊t·N⌋` (at least 1 when
    /// `t > 0`), before any capping to TEE-capable segment capacity.
    fn total_trusted_target(&self) -> usize {
        let t = (self.trusted_fraction * self.n as f64).round() as usize;
        if self.trusted_fraction > 0.0 {
            t.max(1)
        } else {
            0
        }
    }

    /// Number of trusted nodes `⌊t·N⌋` (at least 1 when `t > 0` and a
    /// TEE-capable protocol — RAPTEE or BasaltTee — runs somewhere; the
    /// paper's smallest setting is "1 % of SGX-capable devices"). Brahms
    /// and plain BASALT run no trusted tier. For mixed populations this
    /// is the sum of [`Scenario::segment_trusted_counts`].
    pub fn trusted_count(&self) -> usize {
        if self.population.is_empty() {
            if !self.protocol.supports_trusted() {
                return 0;
            }
            self.total_trusted_target()
        } else {
            self.segment_trusted_counts().iter().sum()
        }
    }

    /// The effective per-protocol layout of the correct population: the
    /// explicit [`Scenario::population`] spec when given, otherwise one
    /// segment of the whole correct population running
    /// [`Scenario::protocol`]. Segments occupy contiguous index ranges
    /// after the Byzantine prefix, in spec order.
    pub fn segments(&self) -> Vec<SegmentSpec> {
        if self.population.is_empty() {
            vec![SegmentSpec {
                protocol: self.protocol,
                count: self.n - self.byzantine_count(),
            }]
        } else {
            self.population.clone()
        }
    }

    /// Trusted-node counts per segment (aligned with
    /// [`Scenario::segments`]): the scenario-level target `round(t·N)`
    /// distributed over the TEE-capable segments proportionally to their
    /// sizes (floor shares first, then the remainder one-by-one in
    /// segment order), capped at segment capacity. Within a segment, the
    /// trusted nodes occupy the first indices — mirroring the uniform
    /// layout, where trusted nodes directly follow the Byzantine prefix.
    pub fn segment_trusted_counts(&self) -> Vec<usize> {
        let segs = self.segments();
        let mut out = vec![0usize; segs.len()];
        let capable: Vec<usize> = (0..segs.len())
            .filter(|&i| segs[i].protocol.supports_trusted())
            .collect();
        if capable.is_empty() {
            return out;
        }
        let cap_total: usize = capable.iter().map(|&i| segs[i].count).sum();
        let total = self.total_trusted_target().min(cap_total);
        let mut assigned = 0usize;
        for &i in &capable {
            out[i] = (total * segs[i].count / cap_total).min(segs[i].count);
            assigned += out[i];
        }
        let mut remainder = total - assigned;
        while remainder > 0 {
            let mut progressed = false;
            for &i in &capable {
                if remainder == 0 {
                    break;
                }
                if out[i] < segs[i].count {
                    out[i] += 1;
                    remainder -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Number of injected view-poisoned trusted nodes (extra, on top of
    /// `n`).
    pub fn injected_count(&self) -> usize {
        (self.injected_poisoned_fraction * self.n as f64).round() as usize
    }

    /// Number of honest (non-Byzantine, untrusted) nodes.
    pub fn honest_count(&self) -> usize {
        self.n - self.byzantine_count() - self.trusted_count()
    }

    /// Total actors in the run, including injected nodes.
    pub fn total_actors(&self) -> usize {
        self.n + self.injected_count()
    }

    /// Whether this run tracks discovery with HLL sketches (resolving
    /// [`DiscoveryMode::Auto`] against [`EXACT_DISCOVERY_THRESHOLD`]).
    pub fn sketch_discovery(&self) -> bool {
        match self.discovery {
            DiscoveryMode::Exact => false,
            DiscoveryMode::Sketch => true,
            DiscoveryMode::Auto => self.total_actors() > EXACT_DISCOVERY_THRESHOLD,
        }
    }

    /// A copy of this scenario switched to the Brahms baseline (used to
    /// compute resilience improvement and round overheads).
    pub fn brahms_baseline(&self) -> Scenario {
        Scenario {
            protocol: Protocol::Brahms,
            trusted_fraction: 0.0,
            injected_poisoned_fraction: 0.0,
            identification_attack: false,
            population: Vec::new(),
            ..self.clone()
        }
    }

    /// A copy of this scenario switched to BASALT at the same view size
    /// and workload (the algorithmic counterpart of
    /// [`Scenario::brahms_baseline`]): same `N`, `f`, rounds and message
    /// budget, no trusted tier, seeds rotated every `rotation_interval`
    /// rounds.
    pub fn basalt_variant(&self, rotation_interval: usize) -> Scenario {
        Scenario {
            protocol: Protocol::Basalt {
                view_size: self.view_size,
                rotation_interval,
            },
            trusted_fraction: 0.0,
            injected_poisoned_fraction: 0.0,
            identification_attack: false,
            population: Vec::new(),
            ..self.clone()
        }
    }

    /// A copy of this scenario switched to the BASALT+TEE hybrid at the
    /// same view size and workload: BASALT ranked views with the
    /// waiting-list refinement (`wlist_ttl` rounds of hearsay
    /// quarantine), plus this scenario's `trusted_fraction` of
    /// enclave-attested nodes whose mutual exchanges bypass the list.
    pub fn basalt_tee_variant(&self, rotation_interval: usize, wlist_ttl: usize) -> Scenario {
        Scenario {
            protocol: Protocol::BasaltTee {
                view_size: self.view_size,
                rotation_interval,
                wlist_ttl,
            },
            injected_poisoned_fraction: 0.0,
            identification_attack: false,
            real_crypto_handshakes: false,
            population: Vec::new(),
            ..self.clone()
        }
    }

    /// A copy of this scenario switched to LIFT at the same view size
    /// and workload: hub-score-weighted views with scores halved every
    /// `fade_interval` rounds, no trusted tier.
    pub fn lift_variant(&self, fade_interval: usize) -> Scenario {
        Scenario {
            protocol: Protocol::Lift {
                view_size: self.view_size,
                fade_interval,
            },
            trusted_fraction: 0.0,
            injected_poisoned_fraction: 0.0,
            identification_attack: false,
            population: Vec::new(),
            ..self.clone()
        }
    }

    /// A copy of this scenario switched to Honeybee at the same view
    /// size and workload: verifiable `walk_length`-hop random walks with
    /// quarantined endpoint admission, no trusted tier.
    pub fn honeybee_variant(&self, walk_length: usize) -> Scenario {
        Scenario {
            protocol: Protocol::Honeybee {
                view_size: self.view_size,
                walk_length,
            },
            trusted_fraction: 0.0,
            injected_poisoned_fraction: 0.0,
            identification_attack: false,
            population: Vec::new(),
            ..self.clone()
        }
    }

    /// A copy of this scenario running a mixed population: the correct
    /// nodes split over `segments` (counts must sum to
    /// `n - byzantine_count()`). RAPTEE-only attack toggles are cleared,
    /// as mixed mode forbids them.
    pub fn with_population(&self, segments: Vec<SegmentSpec>) -> Scenario {
        Scenario {
            population: segments,
            injected_poisoned_fraction: 0.0,
            identification_attack: false,
            real_crypto_handshakes: false,
            ..self.clone()
        }
    }

    /// A copy of this scenario moved onto the event-driven substrate
    /// with the given network configuration (everything else — seeds,
    /// protocol, attack — unchanged).
    pub fn with_network(&self, net: EventNetConfig) -> Scenario {
        Scenario {
            network: NetworkModel::Events(net),
            ..self.clone()
        }
    }

    /// A copy of this scenario on the event engine in its equivalence
    /// configuration: zero latency, no partitions, full reachability,
    /// synchronized round timers. `tests/asynchrony.rs` asserts this
    /// reproduces the round engine bit-for-bit.
    pub fn evented_zero_latency(&self) -> Scenario {
        self.with_network(EventNetConfig::default())
    }

    /// Convenience for an even two-protocol split of the correct
    /// population (the odd node goes to the first segment).
    pub fn half_and_half(&self, first: Protocol, second: Protocol) -> Scenario {
        let correct = self.n - self.byzantine_count();
        let half = correct / 2;
        self.with_population(vec![
            SegmentSpec {
                protocol: first,
                count: correct - half,
            },
            SegmentSpec {
                protocol: second,
                count: half,
            },
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        Scenario::default().validate();
        Scenario::paper_scale().validate();
        assert_eq!(Scenario::paper_scale().n, 10_000);
    }

    #[test]
    fn counts_partition_population() {
        let s = Scenario {
            n: 1000,
            byzantine_fraction: 0.14,
            trusted_fraction: 0.05,
            ..Scenario::default()
        };
        assert_eq!(s.byzantine_count(), 140);
        assert_eq!(s.trusted_count(), 50);
        assert_eq!(s.honest_count(), 810);
        assert_eq!(
            s.byzantine_count() + s.trusted_count() + s.honest_count(),
            s.n
        );
    }

    #[test]
    fn tiny_fractions_round_up_to_one() {
        let s = Scenario {
            n: 50,
            byzantine_fraction: 0.001,
            trusted_fraction: 0.001,
            ..Scenario::default()
        };
        assert_eq!(s.byzantine_count(), 1);
        assert_eq!(s.trusted_count(), 1);
    }

    #[test]
    fn brahms_protocol_has_no_trusted_nodes() {
        let s = Scenario {
            trusted_fraction: 0.3,
            protocol: Protocol::Brahms,
            ..Scenario::default()
        };
        assert_eq!(s.trusted_count(), 0);
    }

    #[test]
    fn baseline_strips_raptee_features() {
        let s = Scenario {
            injected_poisoned_fraction: 0.1,
            identification_attack: true,
            ..Scenario::default()
        };
        let b = s.brahms_baseline();
        assert_eq!(b.protocol, Protocol::Brahms);
        assert_eq!(b.trusted_count(), 0);
        assert_eq!(b.injected_count(), 0);
        assert!(!b.identification_attack);
        // Workload knobs preserved.
        assert_eq!(b.n, s.n);
        assert_eq!(b.byzantine_fraction, s.byzantine_fraction);
        assert_eq!(b.seed, s.seed);
    }

    #[test]
    fn injected_are_extra_actors() {
        let s = Scenario {
            n: 100,
            injected_poisoned_fraction: 0.2,
            ..Scenario::default()
        };
        assert_eq!(s.injected_count(), 20);
        assert_eq!(s.total_actors(), 120);
    }

    #[test]
    fn basalt_variant_strips_trusted_tier() {
        let s = Scenario {
            trusted_fraction: 0.2,
            injected_poisoned_fraction: 0.1,
            identification_attack: true,
            ..Scenario::default()
        };
        let b = s.basalt_variant(30);
        b.validate();
        assert_eq!(
            b.protocol,
            Protocol::Basalt {
                view_size: s.view_size,
                rotation_interval: 30
            }
        );
        assert_eq!(b.trusted_count(), 0);
        assert_eq!(b.injected_count(), 0);
        assert!(!b.identification_attack);
        // Workload knobs preserved.
        assert_eq!(b.n, s.n);
        assert_eq!(b.byzantine_fraction, s.byzantine_fraction);
        assert_eq!(b.seed, s.seed);
    }

    #[test]
    #[should_panic(expected = "RAPTEE only")]
    fn basalt_rejects_injection_attack() {
        Scenario {
            injected_poisoned_fraction: 0.1,
            ..Scenario::default().basalt_variant(10)
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "view size must be positive")]
    fn basalt_zero_view_rejected() {
        Scenario {
            protocol: Protocol::Basalt {
                view_size: 0,
                rotation_interval: 10,
            },
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    fn event_network_validates() {
        let s = Scenario::default().evented_zero_latency();
        s.validate();
        assert_eq!(
            s.network,
            NetworkModel::Events(EventNetConfig::default()),
            "equivalence config is the all-zero default"
        );
        Scenario::default()
            .with_network(EventNetConfig {
                latency: LatencyModel::LogNormal {
                    mu: 5.0,
                    sigma: 0.8,
                    cap: 4000,
                },
                jitter: 250,
                partitions: vec![PartitionWindow {
                    start: 10,
                    end: 30,
                    boundary: 500,
                }],
                reachability: Reachability::Nat {
                    fraction: 0.3,
                    hole_ttl: 3,
                },
                ..EventNetConfig::default()
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "jitter must stay below")]
    fn event_network_rejects_jitter_over_round() {
        Scenario::default()
            .with_network(EventNetConfig {
                round_ticks: 100,
                jitter: 100,
                ..EventNetConfig::default()
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "start < end <= rounds")]
    fn event_network_rejects_partition_past_run() {
        let s = Scenario::default();
        let rounds = s.rounds;
        s.with_network(EventNetConfig {
            partitions: vec![PartitionWindow {
                start: 5,
                end: rounds + 1,
                boundary: 10,
            }],
            ..EventNetConfig::default()
        })
        .validate();
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn event_network_rejects_inverted_uniform() {
        Scenario::default()
            .with_network(EventNetConfig {
                latency: LatencyModel::Uniform { min: 9, max: 3 },
                ..EventNetConfig::default()
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "NAT fraction")]
    fn event_network_rejects_full_nat() {
        Scenario::default()
            .with_network(EventNetConfig {
                reachability: Reachability::Nat {
                    fraction: 1.0,
                    hole_ttl: 2,
                },
                ..EventNetConfig::default()
            })
            .validate();
    }

    fn mixed(n: usize, f: f64, specs: &[(Protocol, usize)]) -> Scenario {
        Scenario {
            n,
            byzantine_fraction: f,
            population: specs
                .iter()
                .map(|&(protocol, count)| SegmentSpec { protocol, count })
                .collect(),
            ..Scenario::default()
        }
    }

    fn basalt_tee(view: usize) -> Protocol {
        Protocol::BasaltTee {
            view_size: view,
            rotation_interval: 15,
            wlist_ttl: 8,
        }
    }

    #[test]
    fn basalt_tee_variant_keeps_trusted_tier() {
        let s = Scenario {
            trusted_fraction: 0.2,
            ..Scenario::default()
        };
        let b = s.basalt_tee_variant(30, 10);
        b.validate();
        assert_eq!(
            b.protocol,
            Protocol::BasaltTee {
                view_size: s.view_size,
                rotation_interval: 30,
                wlist_ttl: 10
            }
        );
        assert_eq!(b.trusted_count(), 200, "the trusted tier survives");
        assert!(b.protocol.supports_trusted());
        assert!(b.protocol.is_basalt_family());
        assert_eq!(b.protocol.label(), "basalt-tee");
    }

    #[test]
    fn uniform_scenarios_are_one_segment() {
        let s = Scenario::default();
        let segs = s.segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].protocol, Protocol::Raptee);
        assert_eq!(segs[0].count, s.n - s.byzantine_count());
        assert_eq!(s.segment_trusted_counts(), vec![s.trusted_count()]);
    }

    #[test]
    fn mixed_population_validates_and_partitions() {
        let s = mixed(400, 0.1, &[(Protocol::Raptee, 180), (basalt_tee(20), 180)]);
        s.validate();
        assert_eq!(s.byzantine_count(), 40);
        let segs = s.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs.iter().map(|x| x.count).sum::<usize>(), 360);
    }

    #[test]
    fn trusted_tier_splits_proportionally_over_tee_segments() {
        let mut s = mixed(400, 0.1, &[(Protocol::Raptee, 180), (basalt_tee(20), 180)]);
        s.trusted_fraction = 0.1; // round(0.1·400) = 40 trusted total
        s.validate();
        assert_eq!(s.segment_trusted_counts(), vec![20, 20]);
        assert_eq!(s.trusted_count(), 40);

        // Brahms segments never take trusted nodes.
        let mut s = mixed(
            400,
            0.1,
            &[(Protocol::Brahms, 180), (Protocol::Raptee, 180)],
        );
        s.trusted_fraction = 0.1;
        s.validate();
        assert_eq!(s.segment_trusted_counts(), vec![0, 40]);

        // No TEE-capable segment → no trusted tier at all.
        let mut s = mixed(
            400,
            0.1,
            &[
                (Protocol::Brahms, 180),
                (
                    Protocol::Basalt {
                        view_size: 20,
                        rotation_interval: 15,
                    },
                    180,
                ),
            ],
        );
        s.trusted_fraction = 0.1;
        s.validate();
        assert_eq!(s.trusted_count(), 0);
    }

    #[test]
    fn trusted_remainder_lands_in_segment_order() {
        let mut s = mixed(100, 0.1, &[(Protocol::Raptee, 45), (basalt_tee(10), 45)]);
        s.trusted_fraction = 0.05; // 5 trusted over two 45-node segments
        s.validate();
        assert_eq!(s.segment_trusted_counts(), vec![3, 2]);
    }

    #[test]
    fn half_and_half_splits_correct_population() {
        let s = Scenario {
            n: 401,
            byzantine_fraction: 0.1,
            ..Scenario::default()
        }
        .half_and_half(Protocol::Raptee, basalt_tee(20));
        s.validate();
        let segs = s.segments();
        assert_eq!(segs[0].count + segs[1].count, 401 - s.byzantine_count());
        assert!(segs[0].count >= segs[1].count);
    }

    #[test]
    #[should_panic(expected = "sum to the correct population")]
    fn population_counts_must_sum() {
        mixed(400, 0.1, &[(Protocol::Raptee, 100), (basalt_tee(20), 100)]).validate();
    }

    #[test]
    #[should_panic(expected = "at most once")]
    fn duplicate_protocols_rejected() {
        mixed(
            400,
            0.1,
            &[(Protocol::Raptee, 180), (Protocol::Raptee, 180)],
        )
        .validate();
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_segment_rejected() {
        mixed(400, 0.1, &[(Protocol::Raptee, 0), (basalt_tee(20), 360)]).validate();
    }

    #[test]
    #[should_panic(expected = "no mixed populations")]
    fn mixed_rejects_identification_attack() {
        let mut s = mixed(
            400,
            0.1,
            &[(Protocol::Raptee, 180), (Protocol::Brahms, 180)],
        );
        s.identification_attack = true;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "RAPTEE only")]
    fn basalt_tee_rejects_injection() {
        let mut s = Scenario::default().basalt_tee_variant(15, 8);
        s.injected_poisoned_fraction = 0.1;
        s.validate();
    }

    #[test]
    fn baseline_and_variants_clear_population() {
        let s = mixed(400, 0.1, &[(Protocol::Raptee, 180), (basalt_tee(20), 180)]);
        assert!(s.brahms_baseline().population.is_empty());
        assert!(s.basalt_variant(15).population.is_empty());
        assert!(s.basalt_tee_variant(15, 8).population.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceed the population")]
    fn overfull_population_rejected() {
        Scenario {
            byzantine_fraction: 0.7,
            trusted_fraction: 0.5,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn negative_fraction_rejected() {
        Scenario {
            byzantine_fraction: -0.1,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    fn discovery_mode_resolves_by_scale() {
        let small = Scenario::default();
        assert_eq!(small.discovery, DiscoveryMode::Auto);
        assert!(!small.sketch_discovery(), "default scale stays exact");
        assert!(!Scenario::paper_scale().sketch_discovery());
        let huge = Scenario {
            n: 100_000,
            ..Scenario::default()
        };
        assert!(huge.sketch_discovery(), "auto switches above the threshold");
        let forced = Scenario {
            n: 100_000,
            discovery: DiscoveryMode::Sketch,
            ..Scenario::default()
        };
        forced.validate();
        assert!(forced.sketch_discovery());
        let forced_exact = Scenario {
            discovery: DiscoveryMode::Exact,
            ..Scenario::default()
        };
        forced_exact.validate();
        assert!(!forced_exact.sketch_discovery());
    }

    #[test]
    fn one_shot_churn_matches_legacy_fields() {
        let c = ChurnSchedule::one_shot(0.2, 30);
        assert_eq!(c.crash_fraction, 0.2);
        assert_eq!(c.crash_round, 30);
        assert!(c.active());
        assert!(!c.dynamic(), "a one-shot batch is not continuous churn");
        Scenario {
            churn: c,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    fn burst_overrides_steady_rate_inside_its_window() {
        let c = ChurnSchedule {
            crash_rate: 0.01,
            restart_rate: 0.2,
            bursts: vec![ChurnBurst {
                start: 10,
                end: 20,
                crash_rate: 0.3,
            }],
            ..ChurnSchedule::default()
        };
        assert!(c.active() && c.dynamic());
        assert_eq!(c.crash_rate_at(9), 0.01);
        assert_eq!(c.crash_rate_at(10), 0.3);
        assert_eq!(c.crash_rate_at(19), 0.3);
        assert_eq!(c.crash_rate_at(20), 0.01);
        Scenario {
            churn: c,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "crash_round < rounds")]
    fn one_shot_crash_past_the_run_rejected() {
        Scenario {
            churn: ChurnSchedule::one_shot(0.2, 120),
            rounds: 120,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "steady churn crash rate")]
    fn full_steady_crash_rate_rejected() {
        Scenario {
            churn: ChurnSchedule::steady(1.0, 0.5),
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "churn bursts need start < end <= rounds")]
    fn churn_burst_past_the_run_rejected() {
        Scenario {
            churn: ChurnSchedule {
                bursts: vec![ChurnBurst {
                    start: 100,
                    end: 200,
                    crash_rate: 0.2,
                }],
                ..ChurnSchedule::default()
            },
            rounds: 120,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "needs a provisioned trusted tier")]
    fn attest_ttl_requires_trusted_tier() {
        Scenario {
            attest_ttl: 20,
            protocol: Protocol::Brahms,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    fn attest_ttl_validates_with_trusted_tier() {
        Scenario {
            attest_ttl: 20,
            trusted_fraction: 0.1,
            ..Scenario::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "retry backoff base must be positive")]
    fn retry_without_backoff_base_rejected() {
        Scenario::default()
            .with_network(EventNetConfig {
                retry: RetryConfig {
                    max_retries: 3,
                    base_backoff: 0,
                },
                ..EventNetConfig::default()
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "needs duplicate_rate > 0")]
    fn reorder_without_duplicates_rejected() {
        Scenario::default()
            .with_network(EventNetConfig {
                reorder_jitter: 50,
                ..EventNetConfig::default()
            })
            .validate();
    }

    #[test]
    fn fault_injectors_validate() {
        Scenario::default()
            .with_network(EventNetConfig {
                retry: RetryConfig {
                    max_retries: 3,
                    base_backoff: 120,
                },
                duplicate_rate: 0.25,
                reorder_jitter: 80,
                ..EventNetConfig::default()
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "2 GiB guard")]
    fn forced_exact_discovery_rejected_at_scale() {
        Scenario {
            n: (EXACT_FORCE_LIMIT) + 1,
            discovery: DiscoveryMode::Exact,
            ..Scenario::default()
        }
        .validate();
    }
}
