//! Large-scale RAPTEE/Brahms simulation engine.
//!
//! Reproduces the paper's Grid'5000 methodology in a deterministic,
//! in-process form: populations of up to the paper's 10,000 nodes, a
//! configurable share `f` of Byzantine nodes under one adversary, a share
//! `t` of trusted (enclave-provisioned) nodes, synchronous 200-round
//! runs, and the paper's three performance metrics plus its two attack
//! analyses.
//!
//! * [`scenario`] — experiment configuration ([`scenario::Scenario`]):
//!   population, fractions, eviction policy, protocol selection (Brahms,
//!   RAPTEE, or BASALT hit-counter sampling), attack toggles, seeds.
//! * [`adversary`] — the adversarial strategy of Section III-B: evenly
//!   balanced faulty pushes (rate-limited like everyone else), pull
//!   answers containing exclusively Byzantine IDs, the trusted-node
//!   identification classifier of Section VI-A, and the view-poisoned
//!   trusted-node injection of Section VI-B.
//! * [`engine`] — the synchronous round loop gluing nodes, network
//!   defences and adversary together; phase-parallel within a single
//!   run (plan/apply phases shard by node over `RAYON_NUM_THREADS`
//!   workers) with bit-identical results at every thread count.
//! * [`event`] — the discrete-event delivery substrate
//!   ([`event::EventNet`], [`event::EventEngine`]): a deterministic
//!   `(time, seq)` binary-heap queue carrying `raptee::wire::Message`
//!   payloads, per-link latency models, partition/healing schedules and
//!   NAT-like asymmetric reachability; bit-for-bit equal to the round
//!   engine at zero latency (`tests/asynchrony.rs`).
//! * [`metrics`] — resilience, system-discovery time, view-stability
//!   time, identification precision/recall/F1.
//! * [`runner`] — repetition and (rayon-parallel) parameter sweeps, plus
//!   the derived quantities the figures plot (resilience improvement %,
//!   round-overhead %).
//! * [`bitset`] — dense bitsets plus the per-node discovery state
//!   (struct-of-arrays, disjoint row handles for the parallel apply
//!   phase): exact O(N²/8) bitset rows below
//!   [`bitset::EXACT_DISCOVERY_THRESHOLD`] actors, mergeable HLL
//!   cardinality sketches (256 B/node, ~6.5 % standard error) above,
//!   selectable per scenario via [`scenario::DiscoveryMode`].
//! * [`ranked`] — the ranked-family dispatch layer
//!   ([`ranked::RankedNode`] / [`ranked::RankedCfg`]): a thin delegation
//!   enum over the BASALT / LIFT / Honeybee nodes so one engine lane
//!   (and the mixed-population loop) drives all three families.
//! * [`audit`] — the verifiable audit layer: merkle-committed views,
//!   beacon-sampled challenges, replay verification, conviction and
//!   quarantine.

#![warn(missing_docs)]

pub mod adversary;
pub mod audit;
pub mod bitset;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod ranked;
pub mod runner;
pub mod scenario;

pub use adversary::AdaptiveCoordinator;
pub use audit::{AuditResponse, Beacon, Challenger, Verdict};
pub use bitset::{Discovery, EXACT_DISCOVERY_THRESHOLD};
pub use engine::Simulation;
pub use event::{EventEngine, EventQueue};
pub use metrics::{AuditStats, RecoveryStats};
pub use metrics::{IdentificationResult, NetRunStats, RunResult, SegmentResult};
pub use ranked::{RankedCfg, RankedNode};
pub use runner::{run_repeated, run_scenario, AggregatedResult, SegmentAggregate};
pub use scenario::{
    AdversaryMode, AttackStrategy, AuditConfig, ChurnBurst, ChurnSchedule, DiscoveryMode,
    EventNetConfig, LatencyModel, NetworkModel, PartitionWindow, Protocol, Reachability,
    RejoinPolicy, RetryConfig, Scenario, SegmentSpec, DEFAULT_AUDIT_GRACE,
};
