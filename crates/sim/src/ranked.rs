//! The engine's ranked-family lane: one wrapper over the three
//! non-Brahms protocol crates.
//!
//! BASALT (+TEE), LIFT and Honeybee share an exchange shape the engine
//! exploits: caller-owned push/pull plans, push observation, materialised
//! pull answers, quarantine, and a per-round finalisation — with no
//! Brahms sampler or trusted directory. [`RankedNode`] multiplexes the
//! three node types behind that shared surface so the engine's
//! plan/exchange/finish phases, churn rejoin paths and metric folds are
//! written once. Delegation is direct (no RNG draws, no reordering), so
//! wrapping `BasaltNode` leaves every pre-existing BASALT golden
//! byte-identical.

use raptee_basalt::{BasaltConfig, BasaltNode, BasaltPlan, WlistReport};
use raptee_honeybee::{HoneybeeConfig, HoneybeeNode};
use raptee_lift::{LiftConfig, LiftNode};
use raptee_net::NodeId;

/// Configuration of one ranked-family segment: which of the three
/// protocols it runs and with what parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankedCfg {
    /// BASALT ranked hit-counter views (also the BASALT+TEE hybrid,
    /// whose trusted tier is an engine concern).
    Basalt(BasaltConfig),
    /// LIFT hub-score-weighted views.
    Lift(LiftConfig),
    /// Honeybee verifiable-random-walk sampling.
    Honeybee(HoneybeeConfig),
}

impl RankedCfg {
    /// The protocol's view size `v`.
    pub fn view_size(&self) -> usize {
        match self {
            RankedCfg::Basalt(c) => c.view_size,
            RankedCfg::Lift(c) => c.view_size,
            RankedCfg::Honeybee(c) => c.view_size,
        }
    }

    /// Push messages per round (the per-identity rate-limiter budget).
    pub fn push_count(&self) -> usize {
        match self {
            RankedCfg::Basalt(c) => c.push_count,
            RankedCfg::Lift(c) => c.push_count,
            RankedCfg::Honeybee(c) => c.push_count,
        }
    }
}

/// One correct node of a ranked-family segment.
///
/// Every method delegates to the wrapped node; operations a family
/// lacks degrade explicitly (LIFT has no waiting list → empty drain
/// report; only BASALT rotates seeds → zero rotation count; only
/// BASALT+TEE has trusted members → `is_trusted` is `false` elsewhere).
#[derive(Debug, Clone)]
pub enum RankedNode {
    /// A BASALT (or BASALT+TEE) node.
    Basalt(BasaltNode),
    /// A LIFT node.
    Lift(LiftNode),
    /// A Honeybee node.
    Honeybee(HoneybeeNode),
}

impl RankedNode {
    /// Creates an untrusted node of `cfg`'s family, bootstrapped over
    /// `bootstrap` with the node-local RNG seeded from `seed`.
    pub fn new(id: NodeId, cfg: &RankedCfg, bootstrap: &[NodeId], seed: u64) -> Self {
        match cfg {
            RankedCfg::Basalt(c) => RankedNode::Basalt(BasaltNode::new(id, *c, bootstrap, seed)),
            RankedCfg::Lift(c) => RankedNode::Lift(LiftNode::new(id, *c, bootstrap, seed)),
            RankedCfg::Honeybee(c) => {
                RankedNode::Honeybee(HoneybeeNode::new(id, *c, bootstrap, seed))
            }
        }
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        match self {
            RankedNode::Basalt(n) => n.id(),
            RankedNode::Lift(n) => n.id(),
            RankedNode::Honeybee(n) => n.id(),
        }
    }

    /// The node's configured view size `v`.
    pub fn view_size(&self) -> usize {
        match self {
            RankedNode::Basalt(n) => n.config().view_size,
            RankedNode::Lift(n) => n.config().view_size,
            RankedNode::Honeybee(n) => n.config().view_size,
        }
    }

    /// The node's configured per-round push budget.
    pub fn push_count(&self) -> usize {
        match self {
            RankedNode::Basalt(n) => n.config().push_count,
            RankedNode::Lift(n) => n.config().push_count,
            RankedNode::Honeybee(n) => n.config().push_count,
        }
    }

    /// Whether this node belongs to an attested trusted tier (BASALT+TEE
    /// only; LIFT and Honeybee run no trusted tier).
    pub fn is_trusted(&self) -> bool {
        match self {
            RankedNode::Basalt(n) => n.is_trusted(),
            RankedNode::Lift(_) | RankedNode::Honeybee(_) => false,
        }
    }

    /// Plans this round's push and pull targets into the shared
    /// caller-owned plan buffer (cleared first).
    pub fn plan_round_into(&mut self, plan: &mut BasaltPlan) {
        match self {
            RankedNode::Basalt(n) => n.plan_round_into(plan),
            RankedNode::Lift(n) => {
                n.plan_round_into(&mut plan.push_targets, &mut plan.pull_targets)
            }
            RankedNode::Honeybee(n) => {
                n.plan_round_into(&mut plan.push_targets, &mut plan.pull_targets)
            }
        }
    }

    /// Processes one received push advertising `advertised`.
    pub fn record_push(&mut self, advertised: NodeId) {
        match self {
            RankedNode::Basalt(n) => n.record_push(advertised),
            RankedNode::Lift(n) => n.record_push(advertised),
            RankedNode::Honeybee(n) => n.record_push(advertised),
        }
    }

    /// Materialises this node's pull answer into `out` (cleared first).
    pub fn pull_answer_into(&mut self, out: &mut Vec<NodeId>) {
        match self {
            RankedNode::Basalt(n) => n.pull_answer_into(out),
            RankedNode::Lift(n) => n.pull_answer_into(out),
            RankedNode::Honeybee(n) => n.pull_answer_into(out),
        }
    }

    /// Processes the answer `ids` received from `responder` on the
    /// untrusted pull path.
    pub fn record_pull_answer(&mut self, responder: NodeId, ids: &[NodeId]) {
        match self {
            RankedNode::Basalt(n) => n.record_pull_answer(responder, ids),
            RankedNode::Lift(n) => n.record_pull_answer(responder, ids),
            RankedNode::Honeybee(n) => n.record_pull_answer(responder, ids),
        }
    }

    /// Processes an answer received over an attested trusted channel
    /// (bypasses the BASALT waiting list; LIFT and Honeybee have no
    /// trusted channel, so this is their ordinary answer path).
    pub fn record_pull_answer_trusted(&mut self, responder: NodeId, ids: &[NodeId]) {
        match self {
            RankedNode::Basalt(n) => n.record_pull_answer_trusted(responder, ids),
            RankedNode::Lift(n) => n.record_pull_answer(responder, ids),
            RankedNode::Honeybee(n) => n.record_pull_answer(responder, ids),
        }
    }

    /// Expunges a convicted peer from all protocol state; returns the
    /// number of vacated view slots.
    pub fn quarantine(&mut self, id: NodeId) -> usize {
        match self {
            RankedNode::Basalt(n) => n.quarantine(id),
            RankedNode::Lift(n) => n.quarantine(id),
            RankedNode::Honeybee(n) => n.quarantine(id),
        }
    }

    /// Runs the per-round waiting-list verification drain (`is_alive`
    /// models the probe contact). LIFT keeps no waiting list, so its
    /// drain is an explicit no-op.
    pub fn drain_wlist(&mut self, is_alive: impl FnMut(NodeId) -> bool) -> WlistReport {
        match self {
            RankedNode::Basalt(n) => n.drain_wlist(is_alive),
            RankedNode::Lift(_) => WlistReport::default(),
            RankedNode::Honeybee(n) => n.drain_wlist(is_alive),
        }
    }

    /// Finalises the round; returns the number of view slots rotated
    /// (seed rotation is BASALT-specific — zero for LIFT/Honeybee).
    pub fn finish_round(&mut self) -> usize {
        match self {
            RankedNode::Basalt(n) => n.finish_round().rotated,
            RankedNode::Lift(n) => {
                n.finish_round();
                0
            }
            RankedNode::Honeybee(n) => {
                n.finish_round();
                0
            }
        }
    }

    /// Cold crash–restart rejoin: full protocol-state reset over a fresh
    /// bootstrap set and RNG seed.
    pub fn rejoin_cold(&mut self, bootstrap: &[NodeId], seed: u64) {
        match self {
            RankedNode::Basalt(n) => n.rejoin_cold(bootstrap, seed),
            RankedNode::Lift(n) => n.rejoin_cold(bootstrap, seed),
            RankedNode::Honeybee(n) => n.rejoin_cold(bootstrap, seed),
        }
    }

    /// Warm rejoin after a short outage: stale soft state is shed, the
    /// view survives. Returns how much soft state was dropped.
    pub fn rejoin_warm(&mut self) -> usize {
        match self {
            RankedNode::Basalt(n) => n.rejoin_warm(),
            RankedNode::Lift(n) => n.rejoin_warm(),
            RankedNode::Honeybee(n) => n.rejoin_warm(),
        }
    }

    /// Visits every currently sampled view entry (the protocol's actual
    /// peer sample — BASALT slots may still be empty early on).
    pub fn for_each_sample(&self, mut f: impl FnMut(NodeId)) {
        match self {
            RankedNode::Basalt(n) => n.view().sample_iter().for_each(&mut f),
            RankedNode::Lift(n) => n.view().iter().copied().for_each(&mut f),
            RankedNode::Honeybee(n) => n.view().iter().copied().for_each(&mut f),
        }
    }

    /// The current sampled view as an owned list (metrics/seeding
    /// convenience over [`RankedNode::for_each_sample`]).
    pub fn sample_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_sample(|id| out.push(id));
        out
    }

    /// The wrapped BASALT node, when this is one.
    pub fn as_basalt(&self) -> Option<&BasaltNode> {
        match self {
            RankedNode::Basalt(n) => Some(n),
            _ => None,
        }
    }

    /// The wrapped LIFT node, when this is one.
    pub fn as_lift(&self) -> Option<&LiftNode> {
        match self {
            RankedNode::Lift(n) => Some(n),
            _ => None,
        }
    }

    /// The wrapped Honeybee node, when this is one.
    pub fn as_honeybee(&self) -> Option<&HoneybeeNode> {
        match self {
            RankedNode::Honeybee(n) => Some(n),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    fn each_family() -> Vec<(RankedCfg, RankedNode)> {
        let boot = ids(1..9);
        [
            RankedCfg::Basalt(BasaltConfig::for_view(8, 0)),
            RankedCfg::Lift(LiftConfig::for_view(8, 10)),
            RankedCfg::Honeybee(HoneybeeConfig::for_view(8, 3)),
        ]
        .into_iter()
        .map(|cfg| (cfg, RankedNode::new(NodeId(0), &cfg, &boot, 42)))
        .collect()
    }

    #[test]
    fn cfg_accessors_agree_with_the_inner_config() {
        for (cfg, _) in each_family() {
            assert_eq!(cfg.view_size(), 8);
            assert_eq!(cfg.push_count(), 3, "round(0.4·8) budget parity");
        }
    }

    #[test]
    fn every_family_plans_within_its_budget() {
        for (cfg, mut node) in each_family() {
            let mut plan = BasaltPlan::default();
            node.plan_round_into(&mut plan);
            assert!(
                plan.push_targets.len() <= cfg.push_count(),
                "{cfg:?} push budget"
            );
            assert!(!plan.push_targets.is_empty(), "{cfg:?} must gossip");
            node.finish_round();
        }
    }

    #[test]
    fn exchange_surface_delegates_everywhere() {
        for (_, mut node) in each_family() {
            node.record_push(NodeId(30));
            let mut reply = Vec::new();
            node.pull_answer_into(&mut reply);
            assert!(!reply.is_empty());
            node.record_pull_answer(NodeId(3), &ids(20..24));
            node.record_pull_answer_trusted(NodeId(4), &ids(24..28));
            node.quarantine(NodeId(3));
            node.drain_wlist(|_| true);
            node.finish_round();
            node.for_each_sample(|id| assert_ne!(id, NodeId(3), "quarantined"));
        }
    }

    #[test]
    fn rejoin_paths_delegate_everywhere() {
        for (_, mut node) in each_family() {
            node.rejoin_warm();
            node.rejoin_cold(&ids(40..48), 77);
            assert!(node.sample_ids().iter().all(|id| id.0 >= 40 && id.0 < 48));
        }
    }

    #[test]
    fn family_accessors_are_exclusive() {
        let fams = each_family();
        assert!(fams[0].1.as_basalt().is_some() && fams[0].1.as_lift().is_none());
        assert!(fams[1].1.as_lift().is_some() && fams[1].1.as_honeybee().is_none());
        assert!(fams[2].1.as_honeybee().is_some() && fams[2].1.as_basalt().is_none());
        assert!(!fams[2].1.is_trusted());
    }
}
