//! Dense bitset for discovery tracking.
//!
//! The implementation now lives in [`raptee_util::bitset`] so the view
//! structures in `raptee-gossip`/`raptee-basalt` can share it without a
//! dependency cycle; this module re-exports it for source compatibility.
//!
//! Every non-Byzantine node tracks which non-Byzantine IDs it has learned
//! so far (system-discovery metric). At the paper's scale that is
//! 10,000 × 10,000 bits ≈ 12 MB total — cheap as bitsets, prohibitive as
//! hash sets.

pub use raptee_util::bitset::{BitSet, IdSet};
