//! Discovery tracking: exact bitsets below a node-count threshold, HLL
//! sketches above it.
//!
//! The bitset implementation lives in [`raptee_util::bitset`] so the view
//! structures in `raptee-gossip`/`raptee-basalt` can share it without a
//! dependency cycle; this module re-exports it for source compatibility.
//!
//! Every non-Byzantine node tracks which non-Byzantine IDs it has learned
//! so far (system-discovery metric). At the paper's scale that is
//! 10,000 × 10,000 bits ≈ 12 MB total — cheap as bitsets, prohibitive as
//! hash sets. At a million nodes the same matrix is ~125 GB, which is
//! why [`Discovery`] switches to per-node HyperLogLog sketches
//! ([`raptee_util::hll`], 256 bytes/node ≈ 256 MB total) above
//! [`EXACT_DISCOVERY_THRESHOLD`] actors: the *estimated* distinct count
//! replaces the exact one, trading a stated ~6.5 % relative error for
//! O(N) memory. Below the threshold the exact matrix runs the identical
//! pre-existing code path, so every golden fingerprint is byte-for-byte
//! unchanged.

use raptee_util::hll;

pub use raptee_util::bitset::{BitSet, IdSet};

/// Actor-count bound (inclusive) under which discovery defaults to the
/// exact bitset matrix. 16,384 keeps every committed scenario — tiny
/// through paper scale (10,000 nodes) — on the exact path, while the
/// 100,000-node smoke and million-node profiles default to sketches.
pub const EXACT_DISCOVERY_THRESHOLD: usize = 1 << 14;

/// The discovery matrix in struct-of-arrays form: one flat word arena
/// holding every tracked node's discovery bitset as a fixed-stride row,
/// plus one popcount per row. Replaces the former
/// `Vec<Option<BitSet>>` (10,000 separately boxed bitsets at paper
/// scale) with two allocations, and hands out disjoint per-row views so
/// the parallel apply phase can update discovery sharded by node.
#[derive(Debug, Clone)]
pub struct DiscoveryMatrix {
    words: Vec<u64>,
    counts: Vec<u32>,
    stride: usize,
    universe: usize,
}

/// Exclusive access to one row of a [`DiscoveryMatrix`] — safe to use
/// from a worker thread while other workers hold other rows.
#[derive(Debug)]
pub struct DiscoveryRow<'a> {
    words: &'a mut [u64],
    count: &'a mut u32,
    universe: usize,
}

impl DiscoveryMatrix {
    /// Creates `rows` empty bitsets over the universe `0..universe`.
    pub fn new(rows: usize, universe: usize) -> Self {
        let stride = universe.div_ceil(64);
        Self {
            words: vec![0; rows * stride],
            counts: vec![0; rows],
            stride,
            universe,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.counts.len()
    }

    /// Inserts `idx` into `row`; returns `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics when `row` or `idx` is out of range.
    #[inline]
    pub fn insert(&mut self, row: usize, idx: usize) -> bool {
        assert!(idx < self.universe, "discovery index {idx} out of range");
        let word = &mut self.words[row * self.stride + idx / 64];
        let mask = 1u64 << (idx % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.counts[row] += 1;
            true
        } else {
            false
        }
    }

    /// Number of set bits in `row` (maintained incrementally — O(1)).
    #[inline]
    pub fn count(&self, row: usize) -> usize {
        self.counts[row] as usize
    }

    /// Splits the matrix into disjoint per-row handles, in row order —
    /// the shape the engine zips against its node and stat lanes for the
    /// parallel finish phase.
    pub fn rows_mut(&mut self) -> DiscoveryRows<'_> {
        DiscoveryRows {
            words: self.words.chunks_mut(self.stride.max(1)),
            counts: self.counts.iter_mut(),
            universe: self.universe,
        }
    }
}

/// Iterator over the disjoint per-row handles of a [`DiscoveryMatrix`]
/// (concrete type so [`DiscoveryLanes`] can wrap it).
#[derive(Debug)]
pub struct DiscoveryRows<'a> {
    words: std::slice::ChunksMut<'a, u64>,
    counts: std::slice::IterMut<'a, u32>,
    universe: usize,
}

impl<'a> Iterator for DiscoveryRows<'a> {
    type Item = DiscoveryRow<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let words = self.words.next()?;
        let count = self.counts.next()?;
        Some(DiscoveryRow {
            words,
            count,
            universe: self.universe,
        })
    }
}

impl DiscoveryRow<'_> {
    /// Inserts `idx`; returns `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is outside the universe.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(idx < self.universe, "discovery index {idx} out of range");
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if *word & mask == 0 {
            *word |= mask;
            *self.count += 1;
            true
        } else {
            false
        }
    }

    /// Number of set bits in this row (O(1)).
    #[inline]
    pub fn count(&self) -> usize {
        *self.count as usize
    }
}

/// The sketch-mode counterpart of [`DiscoveryMatrix`]: one flat register
/// arena holding a [`hll::REGISTERS`]-byte HyperLogLog per row.
/// Identical access shape — `insert`/`count` by row, plus disjoint
/// per-row handles for the phase-parallel fold — but
/// [`SketchMatrix::count`] is an *estimate* (~6.5 % relative standard
/// error) and memory is O(rows) instead of O(rows × universe).
#[derive(Debug, Clone)]
pub struct SketchMatrix {
    regs: Vec<u8>,
    universe: usize,
}

/// Exclusive access to one row of a [`SketchMatrix`].
#[derive(Debug)]
pub struct SketchRow<'a> {
    regs: &'a mut [u8],
    universe: usize,
}

impl SketchMatrix {
    /// Creates `rows` empty sketches over the universe `0..universe`
    /// (the universe bound is kept only for insert-range parity with the
    /// exact matrix).
    pub fn new(rows: usize, universe: usize) -> Self {
        Self {
            regs: vec![0; rows * hll::REGISTERS],
            universe,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.regs.len() / hll::REGISTERS
    }

    /// Folds `idx` into `row`'s sketch; returns `true` when the sketch
    /// changed (unlike the exact matrix, a `false` does *not* prove the
    /// index was seen before — only that it left no new evidence).
    ///
    /// # Panics
    ///
    /// Panics when `row` or `idx` is out of range.
    #[inline]
    pub fn insert(&mut self, row: usize, idx: usize) -> bool {
        assert!(idx < self.universe, "discovery index {idx} out of range");
        let start = row * hll::REGISTERS;
        hll::update(&mut self.regs[start..start + hll::REGISTERS], idx as u64)
    }

    /// Estimated number of distinct indices folded into `row`, rounded
    /// to the nearest integer.
    #[inline]
    pub fn count(&self, row: usize) -> usize {
        let start = row * hll::REGISTERS;
        hll::estimate(&self.regs[start..start + hll::REGISTERS]).round() as usize
    }

    /// Splits the matrix into disjoint per-row handles, in row order.
    pub fn rows_mut(&mut self) -> SketchRows<'_> {
        SketchRows {
            regs: self.regs.chunks_mut(hll::REGISTERS),
            universe: self.universe,
        }
    }
}

/// Iterator over the disjoint per-row handles of a [`SketchMatrix`].
#[derive(Debug)]
pub struct SketchRows<'a> {
    regs: std::slice::ChunksMut<'a, u8>,
    universe: usize,
}

impl<'a> Iterator for SketchRows<'a> {
    type Item = SketchRow<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let regs = self.regs.next()?;
        Some(SketchRow {
            regs,
            universe: self.universe,
        })
    }
}

impl SketchRow<'_> {
    /// Folds `idx` into this row's sketch; returns `true` when a
    /// register grew.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is outside the universe.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(idx < self.universe, "discovery index {idx} out of range");
        hll::update(self.regs, idx as u64)
    }

    /// Estimated distinct count of this row, rounded.
    #[inline]
    pub fn count(&self) -> usize {
        hll::estimate(self.regs).round() as usize
    }
}

/// Per-node discovery tracking in one of two representations, chosen per
/// run: exact bitset rows (the historic code path — every pre-existing
/// golden runs through it unchanged) or HLL sketch rows (O(N) memory for
/// million-node populations, estimated counts).
#[derive(Debug, Clone)]
pub enum Discovery {
    /// Exact per-node bitsets: O(rows × universe) bits, exact counts.
    Exact(DiscoveryMatrix),
    /// Per-node HLL sketches: O(rows) bytes, estimated counts.
    Sketch(SketchMatrix),
}

impl Discovery {
    /// Creates `rows` empty trackers over `0..universe`, sketched when
    /// `sketch` is set.
    pub fn new(rows: usize, universe: usize, sketch: bool) -> Self {
        if sketch {
            Discovery::Sketch(SketchMatrix::new(rows, universe))
        } else {
            Discovery::Exact(DiscoveryMatrix::new(rows, universe))
        }
    }

    /// Whether this tracker uses sketches (estimated counts).
    pub fn is_sketch(&self) -> bool {
        matches!(self, Discovery::Sketch(_))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            Discovery::Exact(m) => m.rows(),
            Discovery::Sketch(m) => m.rows(),
        }
    }

    /// Inserts `idx` into `row`. See [`DiscoveryMatrix::insert`] /
    /// [`SketchMatrix::insert`] for the return-value semantics.
    #[inline]
    pub fn insert(&mut self, row: usize, idx: usize) -> bool {
        match self {
            Discovery::Exact(m) => m.insert(row, idx),
            Discovery::Sketch(m) => m.insert(row, idx),
        }
    }

    /// Distinct count of `row` — exact or estimated by representation.
    #[inline]
    pub fn count(&self, row: usize) -> usize {
        match self {
            Discovery::Exact(m) => m.count(row),
            Discovery::Sketch(m) => m.count(row),
        }
    }

    /// Splits into disjoint per-row lanes, in row order.
    pub fn rows_mut(&mut self) -> DiscoveryLanes<'_> {
        match self {
            Discovery::Exact(m) => DiscoveryLanes::Exact(m.rows_mut()),
            Discovery::Sketch(m) => DiscoveryLanes::Sketch(m.rows_mut()),
        }
    }
}

/// Iterator over the disjoint per-row lanes of a [`Discovery`].
#[derive(Debug)]
pub enum DiscoveryLanes<'a> {
    /// Lanes of an exact matrix.
    Exact(DiscoveryRows<'a>),
    /// Lanes of a sketch matrix.
    Sketch(SketchRows<'a>),
}

impl<'a> Iterator for DiscoveryLanes<'a> {
    type Item = DiscoveryLane<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            DiscoveryLanes::Exact(rows) => rows.next().map(DiscoveryLane::Exact),
            DiscoveryLanes::Sketch(rows) => rows.next().map(DiscoveryLane::Sketch),
        }
    }
}

/// Exclusive access to one row of a [`Discovery`] — safe to use from a
/// worker thread while other workers hold other rows.
#[derive(Debug)]
pub enum DiscoveryLane<'a> {
    /// An exact bitset row.
    Exact(DiscoveryRow<'a>),
    /// A sketch row.
    Sketch(SketchRow<'a>),
}

impl DiscoveryLane<'_> {
    /// Inserts `idx` into this row.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        match self {
            DiscoveryLane::Exact(row) => row.insert(idx),
            DiscoveryLane::Sketch(row) => row.insert(idx),
        }
    }

    /// Distinct count of this row — exact or estimated.
    #[inline]
    pub fn count(&self) -> usize {
        match self {
            DiscoveryLane::Exact(row) => row.count(),
            DiscoveryLane::Sketch(row) => row.count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Discovery, DiscoveryMatrix, SketchMatrix};

    #[test]
    fn matrix_insert_count_and_rows() {
        let mut m = DiscoveryMatrix::new(3, 130);
        assert!(m.insert(0, 0));
        assert!(m.insert(0, 129));
        assert!(!m.insert(0, 129), "second insert is a no-op");
        assert!(m.insert(2, 64));
        assert_eq!(m.count(0), 2);
        assert_eq!(m.count(1), 0);
        assert_eq!(m.count(2), 1);

        let mut rows: Vec<_> = m.rows_mut().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows[1].insert(7));
        assert!(!rows[0].insert(129));
        assert_eq!(rows[0].count(), 2);
        drop(rows);
        assert_eq!(m.count(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn matrix_out_of_range_panics() {
        DiscoveryMatrix::new(1, 10).insert(0, 10);
    }

    #[test]
    fn sketch_counts_track_distinct_inserts() {
        let mut m = SketchMatrix::new(2, 100_000);
        assert_eq!(m.rows(), 2);
        for idx in 0..50usize {
            m.insert(0, idx);
            m.insert(0, idx); // repeats leave the sketch unchanged
        }
        let est = m.count(0);
        assert!(
            (35..=65).contains(&est),
            "row 0 estimated {est} for 50 distinct"
        );
        assert_eq!(m.count(1), 0, "rows are disjoint");
    }

    #[test]
    fn sketch_rows_mut_matches_whole_matrix_access() {
        let mut direct = SketchMatrix::new(3, 1000);
        let mut laned = SketchMatrix::new(3, 1000);
        for idx in 0..200usize {
            direct.insert(idx % 3, idx);
        }
        for (row, mut lane) in laned.rows_mut().enumerate() {
            for idx in 0..200usize {
                if idx % 3 == row {
                    lane.insert(idx);
                }
            }
        }
        for row in 0..3 {
            assert_eq!(direct.count(row), laned.count(row));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sketch_out_of_range_panics() {
        SketchMatrix::new(1, 10).insert(0, 10);
    }

    #[test]
    fn discovery_enum_dispatches_both_representations() {
        for sketch in [false, true] {
            let mut d = Discovery::new(2, 5000, sketch);
            assert_eq!(d.is_sketch(), sketch);
            assert_eq!(d.rows(), 2);
            for idx in 0..100usize {
                d.insert(0, idx);
            }
            let c = d.count(0);
            if sketch {
                assert!((80..=120).contains(&c), "estimate {c} for 100 distinct");
            } else {
                assert_eq!(c, 100);
            }
            assert_eq!(d.count(1), 0);
            // Lane access agrees with whole-matrix access.
            let lanes: Vec<usize> = d.rows_mut().map(|lane| lane.count()).collect();
            assert_eq!(lanes, vec![d.count(0), d.count(1)]);
        }
    }
}
