//! Dense bitset for discovery tracking.
//!
//! The implementation now lives in [`raptee_util::bitset`] so the view
//! structures in `raptee-gossip`/`raptee-basalt` can share it without a
//! dependency cycle; this module re-exports it for source compatibility.
//!
//! Every non-Byzantine node tracks which non-Byzantine IDs it has learned
//! so far (system-discovery metric). At the paper's scale that is
//! 10,000 × 10,000 bits ≈ 12 MB total — cheap as bitsets, prohibitive as
//! hash sets.

pub use raptee_util::bitset::{BitSet, IdSet};

/// The discovery matrix in struct-of-arrays form: one flat word arena
/// holding every tracked node's discovery bitset as a fixed-stride row,
/// plus one popcount per row. Replaces the former
/// `Vec<Option<BitSet>>` (10,000 separately boxed bitsets at paper
/// scale) with two allocations, and hands out disjoint per-row views so
/// the parallel apply phase can update discovery sharded by node.
#[derive(Debug, Clone)]
pub struct DiscoveryMatrix {
    words: Vec<u64>,
    counts: Vec<u32>,
    stride: usize,
    universe: usize,
}

/// Exclusive access to one row of a [`DiscoveryMatrix`] — safe to use
/// from a worker thread while other workers hold other rows.
#[derive(Debug)]
pub struct DiscoveryRow<'a> {
    words: &'a mut [u64],
    count: &'a mut u32,
    universe: usize,
}

impl DiscoveryMatrix {
    /// Creates `rows` empty bitsets over the universe `0..universe`.
    pub fn new(rows: usize, universe: usize) -> Self {
        let stride = universe.div_ceil(64);
        Self {
            words: vec![0; rows * stride],
            counts: vec![0; rows],
            stride,
            universe,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.counts.len()
    }

    /// Inserts `idx` into `row`; returns `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics when `row` or `idx` is out of range.
    #[inline]
    pub fn insert(&mut self, row: usize, idx: usize) -> bool {
        assert!(idx < self.universe, "discovery index {idx} out of range");
        let word = &mut self.words[row * self.stride + idx / 64];
        let mask = 1u64 << (idx % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.counts[row] += 1;
            true
        } else {
            false
        }
    }

    /// Number of set bits in `row` (maintained incrementally — O(1)).
    #[inline]
    pub fn count(&self, row: usize) -> usize {
        self.counts[row] as usize
    }

    /// Splits the matrix into disjoint per-row handles, in row order —
    /// the shape the engine zips against its node and stat lanes for the
    /// parallel finish phase.
    pub fn rows_mut(&mut self) -> impl Iterator<Item = DiscoveryRow<'_>> {
        let universe = self.universe;
        self.words
            .chunks_mut(self.stride.max(1))
            .zip(self.counts.iter_mut())
            .map(move |(words, count)| DiscoveryRow {
                words,
                count,
                universe,
            })
    }
}

impl DiscoveryRow<'_> {
    /// Inserts `idx`; returns `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is outside the universe.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(idx < self.universe, "discovery index {idx} out of range");
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if *word & mask == 0 {
            *word |= mask;
            *self.count += 1;
            true
        } else {
            false
        }
    }

    /// Number of set bits in this row (O(1)).
    #[inline]
    pub fn count(&self) -> usize {
        *self.count as usize
    }
}

#[cfg(test)]
mod tests {
    use super::DiscoveryMatrix;

    #[test]
    fn matrix_insert_count_and_rows() {
        let mut m = DiscoveryMatrix::new(3, 130);
        assert!(m.insert(0, 0));
        assert!(m.insert(0, 129));
        assert!(!m.insert(0, 129), "second insert is a no-op");
        assert!(m.insert(2, 64));
        assert_eq!(m.count(0), 2);
        assert_eq!(m.count(1), 0);
        assert_eq!(m.count(2), 1);

        let mut rows: Vec<_> = m.rows_mut().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows[1].insert(7));
        assert!(!rows[0].insert(129));
        assert_eq!(rows[0].count(), 2);
        drop(rows);
        assert_eq!(m.count(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn matrix_out_of_range_panics() {
        DiscoveryMatrix::new(1, 10).insert(0, 10);
    }
}
