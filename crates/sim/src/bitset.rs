//! Dense bitset for discovery tracking.
//!
//! Every non-Byzantine node tracks which non-Byzantine IDs it has learned
//! so far (system-discovery metric). At the paper's scale that is
//! 10,000 × 10,000 bits ≈ 12 MB total — cheap as bitsets, prohibitive as
//! hash sets.

/// A fixed-capacity bitset over `0..len`.
///
/// # Examples
///
/// ```
/// use raptee_sim::bitset::BitSet;
/// let mut b = BitSet::new(100);
/// assert!(b.insert(42));
/// assert!(!b.insert(42), "second insert is a no-op");
/// assert!(b.contains(42));
/// assert_eq!(b.count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
    count: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Inserts `idx`; returns `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is outside the universe.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bitset index {idx} out of range {}",
            self.len
        );
        let (w, b) = (idx / 64, idx % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        if idx >= self.len {
            return false;
        }
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of set bits (maintained incrementally — O(1)).
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut b = BitSet::new(130);
        assert!(b.is_empty());
        assert!(b.insert(0));
        assert!(b.insert(129));
        assert!(b.insert(64));
        assert!(!b.insert(64));
        assert_eq!(b.count(), 3);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1));
        assert!(
            !b.contains(500),
            "out-of-range contains is false, not panic"
        );
    }

    #[test]
    fn count_matches_popcount() {
        let mut b = BitSet::new(1000);
        for i in (0..1000).step_by(7) {
            b.insert(i);
        }
        let pop: u32 = b.words.iter().map(|w| w.count_ones()).sum();
        assert_eq!(b.count(), pop as usize);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn zero_capacity() {
        let b = BitSet::new(0);
        assert_eq!(b.len(), 0);
        assert!(!b.contains(0));
    }
}
