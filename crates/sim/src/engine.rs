//! The synchronous round engine — phase-parallel since PR 4.
//!
//! Wires together the RAPTEE/Brahms/BASALT nodes, the limited-pushes
//! defence, the adversary, and the metric collectors. One [`Simulation`]
//! executes one run of one [`Scenario`]; the [`crate::runner`] module
//! handles repetition and sweeps.
//!
//! Round structure (mirroring the paper's 2.5 s protocol rounds):
//!
//! 1. every correct node plans its `α·l1` pushes and `β·l1` pulls;
//! 2. pushes are delivered through the per-identity rate limiter —
//!    honest pushes first, then the adversary's balanced faulty pushes
//!    (the adversary saturates exactly its lawful budget);
//! 3. pulls execute: mutual authentication precedes each one, trusted
//!    pairs run the trusted view-swap, all other answers flow back as
//!    untrusted pulls (Byzantine responders answer with all-Byzantine
//!    views);
//! 4. when enabled, Byzantine nodes issue observation pulls for the
//!    identification attack;
//! 5. every correct node finalises its round (eviction → Brahms
//!    defences → view renewal → sampling) and the engine updates the
//!    discovery/stability/resilience metrics.
//!
//! # Intra-run parallelism
//!
//! A single run uses every worker of the rayon shim while staying
//! **bit-identical at any thread count** (pinned by
//! `tests/determinism.rs`). The round is split into phases:
//!
//! * **plan** (parallel, sharded by node) — `plan_round_into` draws only
//!   from the node's own RNG stream; the same pass snapshots each
//!   node's view into a flat arena for later deferred pull answers.
//! * **exchange** (sequential) — everything that consumes a *shared*
//!   ordered stream stays a thin sequential control pass: the rate
//!   limiter, the message-loss RNG, the adversary's coordinator RNG and
//!   the (rare) trusted view-swaps. Instead of copying answer IDs, the
//!   pass records per-requester *pull events*: a reference into the
//!   view-snapshot arena when the responder's view was still untouched
//!   at pull time, a materialised copy when it had already mutated
//!   (swap or churn removal), or a 32-byte adversary-RNG snapshot for
//!   Byzantine answers (regenerated in parallel later).
//! * **apply** (parallel, sharded by receiving node) — each node
//!   reconstructs its push/pull streams from the shared arenas into
//!   per-**worker** scratch and finalises its round; per-node metric
//!   observations land in per-node stat slots.
//! * **fold** (sequential) — stat slots are folded in node-index order,
//!   so every floating-point accumulation happens in exactly the
//!   historical order.
//!
//! Deferring the pull answers is also the engine's struct-of-arrays
//! memory win: per-node state no longer includes the ~`β·l1 × l1`-entry
//! pull buffers that dominated peak RSS at paper scale — the streams
//! only ever exist in a handful of per-worker arenas.
//!
//! BASALT's pull phase ranks every answer into the responder's and
//! requester's views *on arrival*, making answers order-dependent across
//! nodes; that one phase stays sequential, while BASALT planning, push
//! application and round finalisation shard like the Brahms path.

use crate::adversary::{AdaptiveCoordinator, Adversary, PushPlan};
use crate::audit::{AuditResponse, Challenger, Verdict};
use crate::bitset::{Discovery, DiscoveryLane, EXACT_DISCOVERY_THRESHOLD};
use crate::event::{EventNet, Lane as NetLane, PullGate};
use crate::metrics::{
    IdentificationResult, RecoveryStats, RunResult, SegmentResult, DISCOVERY_TARGET_SHARE,
    STABILITY_SPREAD,
};
use crate::ranked::{RankedCfg, RankedNode};
use crate::scenario::{AdversaryMode, AttackStrategy, Protocol, RejoinPolicy, Scenario};
use raptee::provisioning;
use raptee::{RapteeConfig, RapteeNode};
use raptee_basalt::{BasaltConfig, BasaltNode, BasaltPlan};
use raptee_brahms::{BrahmsConfig, FinishScratch, RoundPlan};
use raptee_crypto::auth::AuthOutcome;
use raptee_honeybee::HoneybeeConfig;
use raptee_lift::LiftConfig;
use raptee_net::{IdInterner, NodeId, NodeIdx, PushRateLimiter};
use raptee_tee::AttestationService;
use raptee_util::rng::{mix64, Xoshiro256StarStar};

/// Rounds of per-node share smoothing for the spread-stability check.
const SMOOTHING_WINDOW: usize = 10;

/// Salt of the proactive trusted-directory partner draws — a dedicated
/// hash stream (like the churn and audit-beacon streams), so enabling
/// the directory refresh cannot shift any other stochastic stream.
const TRUSTED_DIR_SALT: u64 = 0xD1EC_7027_7257_ED15;

/// The candidate attacks the adaptive adversary's bandit arbitrates
/// between, per segment: the Brahms-optimal balanced spread, the
/// ranked-family coverage play, and a focused isolation attempt. The
/// targeted parameters match the `ablation_gamma` study's setting.
const ADAPTIVE_STRATEGIES: [AttackStrategy; 3] = [
    AttackStrategy::Balanced,
    AttackStrategy::ForcePush,
    AttackStrategy::Targeted {
        victim_fraction: 0.1,
        focus: 0.75,
    },
];

/// Maps a hash draw to a uniform in the open interval `(0, 1)` — the
/// same mapping the event substrate uses, so churn draws share its
/// statistical properties without sharing (or perturbing) its streams.
fn hash_unit(x: u64) -> f64 {
    ((x >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Run-long recovery accounting, allocated only when dynamic churn or
/// attestation expiry is active (so the all-off configuration carries
/// zero extra state and [`RunResult::recovery`] stays `None`).
#[derive(Default)]
struct RecoveryState {
    crashes: u64,
    restarts: u64,
    recovered: u64,
    /// Sum of (recovery round − restart round) over recovered rejoins.
    ttr_sum: u64,
    live_node_rounds: u64,
    node_rounds: u64,
    trusted_live_fraction: Vec<f64>,
    /// Per-correct-node restart round while the rejoiner's smoothed
    /// pollution has not yet re-entered the population band.
    pending: Vec<Option<u32>>,
}

/// Trusted-tier degradation state (attestation certificates with a TTL):
/// expired trusted nodes fall back to untrusted behaviour until they
/// re-attest through the same service that provisioned them. Engine
/// level only — the nodes keep their group keys, but the engine's
/// authentication shortcut treats a stale certificate as failed
/// freshness, exactly as a verifier would.
struct TrustTier {
    service: AttestationService,
    seed: u64,
    /// Per-actor certificate expiry round (trusted actors only).
    expires: Vec<u64>,
    /// Per-actor re-attestation round for degraded trusted actors.
    heal_at: Vec<u64>,
    degraded: Vec<bool>,
}

/// The correct population in dense, unboxed storage. Byzantine actors
/// are pure identities (the adversary coordinates them centrally), so
/// they occupy no node state at all: actor index `i` maps to population
/// index `i - byz_count` for `i >= byz_count`. Mixed populations store
/// one contiguous per-protocol arena per segment.
enum Population {
    Raptee(Vec<RapteeNode>),
    Basalt(Vec<RankedNode>),
    Mixed(Vec<SegmentNodes>),
}

/// One segment's node arena of a mixed population. The `Basalt` variant
/// carries the whole ranked family (BASALT, BASALT+TEE, LIFT, Honeybee)
/// behind the [`RankedNode`] delegation surface; the name survives from
/// when BASALT was its only member, and keeps the diff of every
/// dispatch site minimal.
enum SegmentNodes {
    Raptee(Vec<RapteeNode>),
    Basalt(Vec<RankedNode>),
}

impl SegmentNodes {
    fn len(&self) -> usize {
        match self {
            SegmentNodes::Raptee(v) => v.len(),
            SegmentNodes::Basalt(v) => v.len(),
        }
    }
}

impl Population {
    fn len(&self) -> usize {
        match self {
            Population::Raptee(v) => v.len(),
            Population::Basalt(v) => v.len(),
            Population::Mixed(segs) => segs.iter().map(SegmentNodes::len).sum(),
        }
    }
}

/// Static metadata of one mixed-population segment (see
/// [`crate::scenario::SegmentSpec`]): its protocol, its contiguous slice
/// `[start, start + len)` of the correct-population index space, the
/// per-identity push fanout its protocol grants, and the victim list the
/// adversary aims its segment-matched attack at.
struct SegMeta {
    protocol: Protocol,
    start: usize,
    len: usize,
    fanout: usize,
    ranked_cfg: Option<RankedCfg>,
    victims: Vec<NodeId>,
}

/// Mutable access to the `ci`-th correct node, which must live in a
/// Raptee-family segment.
fn raptee_at<'a>(
    seg_nodes: &'a mut [SegmentNodes],
    segs: &[SegMeta],
    seg_of: &[u32],
    ci: usize,
) -> &'a mut RapteeNode {
    let si = seg_of[ci] as usize;
    match &mut seg_nodes[si] {
        SegmentNodes::Raptee(v) => &mut v[ci - segs[si].start],
        SegmentNodes::Basalt(_) => unreachable!("index {ci} is not in a Raptee-family segment"),
    }
}

/// Mutable access to the `ci`-th correct node, which must live in a
/// ranked-family segment.
fn basalt_at<'a>(
    seg_nodes: &'a mut [SegmentNodes],
    segs: &[SegMeta],
    seg_of: &[u32],
    ci: usize,
) -> &'a mut RankedNode {
    let si = seg_of[ci] as usize;
    match &mut seg_nodes[si] {
        SegmentNodes::Basalt(v) => &mut v[ci - segs[si].start],
        SegmentNodes::Raptee(_) => unreachable!("index {ci} is not in a ranked-family segment"),
    }
}

/// One deferred pull answer, recorded by the sequential exchange pass
/// and consumed by the parallel apply phase.
enum PullEvent {
    /// The responder's view had not mutated yet at pull time: the answer
    /// is the responder's row of the post-plan view-snapshot arena.
    Snapshot {
        /// Dense population index of the responder.
        responder: u32,
    },
    /// The responder's view had already mutated (trusted swap or churn
    /// removal): the answer was copied into the answer arena.
    Arena {
        /// Start offset in the answer arena.
        start: u32,
        /// Number of IDs.
        len: u32,
    },
    /// A Byzantine answer: regenerate it from this snapshot of the
    /// adversary's RNG (see [`Adversary::replay_pull_answer`]).
    ByzReplay {
        /// The coordinator RNG state just before the answer was drawn.
        rng: Xoshiro256StarStar,
    },
}

/// Per-node round outcome slot, written by the parallel apply phase and
/// folded sequentially in node-index order.
#[derive(Debug, Clone, Default)]
struct RoundStat {
    /// Whether the node was alive and finalised this round.
    participated: bool,
    /// IDs evicted by the Byzantine-eviction filter (RAPTEE).
    evicted: u32,
    /// Whether the push-flood detector fired (Brahms/RAPTEE).
    flood: bool,
    /// Seed rotations performed (BASALT).
    rotated: u32,
    /// Whether the view was non-empty (a pollution share exists).
    has_share: bool,
    /// This round's raw Byzantine view share.
    share: f64,
    /// The share smoothed over [`SMOOTHING_WINDOW`] rounds.
    smoothed: f64,
    /// Discovery-bitset population after this round's observation.
    discovered: u32,
}

/// The per-node share-smoothing windows in struct-of-arrays form: one
/// flat ring-buffer arena (stride [`SMOOTHING_WINDOW`]) instead of
/// 10,000 tiny `Vec<f64>`s. Ring iteration order is oldest→newest, so
/// the smoothed mean sums in exactly the order the historical
/// `Vec::push`/`remove(0)` window did.
struct ShareRings {
    buf: Vec<f64>,
    start: Vec<u8>,
    len: Vec<u8>,
}

/// Exclusive access to one node's smoothing window.
struct ShareRingRow<'a> {
    buf: &'a mut [f64],
    start: &'a mut u8,
    len: &'a mut u8,
}

impl ShareRings {
    fn new(rows: usize) -> Self {
        Self {
            buf: vec![0.0; rows * SMOOTHING_WINDOW],
            start: vec![0; rows],
            len: vec![0; rows],
        }
    }

    /// Splits into disjoint per-node handles, in row order.
    fn rows_mut(&mut self) -> impl Iterator<Item = ShareRingRow<'_>> {
        self.buf
            .chunks_mut(SMOOTHING_WINDOW)
            .zip(self.start.iter_mut())
            .zip(self.len.iter_mut())
            .map(|((buf, start), len)| ShareRingRow { buf, start, len })
    }
}

impl ShareRingRow<'_> {
    /// Appends this round's share (evicting the oldest entry once the
    /// window is full) and returns the window mean, summed oldest-first
    /// — bit-identical to the historical `Vec<f64>` window.
    fn push_and_mean(&mut self, share: f64) -> f64 {
        let w = SMOOTHING_WINDOW;
        if usize::from(*self.len) == w {
            self.buf[usize::from(*self.start)] = share;
            *self.start = ((usize::from(*self.start) + 1) % w) as u8;
        } else {
            self.buf[(usize::from(*self.start) + usize::from(*self.len)) % w] = share;
            *self.len += 1;
        }
        let len = usize::from(*self.len);
        let mut sum = 0.0;
        for k in 0..len {
            sum += self.buf[(usize::from(*self.start) + k) % w];
        }
        sum / len as f64
    }
}

/// Per-worker arenas for the parallel apply phase: every buffer a
/// node-finalisation needs is owned by the worker (not the node), so
/// peak memory scales with the thread count instead of the population.
#[derive(Default)]
struct WorkerScratch {
    /// Reconstructed push-sender stream (self-filtered).
    pushed: Vec<NodeId>,
    /// Reconstructed untrusted pull-answer stream (unfiltered).
    untrusted: Vec<NodeId>,
    /// `record_pulled`-equivalent combined stream.
    pulled: Vec<NodeId>,
    /// Fisher–Yates index scratch for Byzantine answer replay.
    idx: Vec<u32>,
    /// Replay output buffer.
    reply: Vec<NodeId>,
    /// Brahms finalisation scratch (renewal sampling buffers).
    finish: FinishScratch,
}

/// Per-simulation scratch arenas: every buffer the round loop needs is
/// allocated once and reused for all rounds, so the steady-state hot
/// path is allocation-free. Taken out of the [`Simulation`] at the top
/// of each round (so `&mut self` methods stay callable) and put back at
/// the end.
#[derive(Default)]
struct Scratch {
    /// One Brahms/RAPTEE plan per population index, refilled in place.
    plans: Vec<RoundPlan>,
    /// One BASALT plan per population index, refilled in place.
    basalt_plans: Vec<BasaltPlan>,
    /// Whether population index `ci` produced a plan this round.
    live: Vec<bool>,
    /// The adversary's push plan for the round.
    byz_plan: PushPlan,
    /// Per-segment staging buffer for the mixed-population adversary:
    /// each segment's matching attack is planned here, then appended to
    /// `byz_plan` so one delivery pass charges the combined plan.
    byz_seg_plan: PushPlan,
    /// Honest pushes surviving limiter/liveness/loss, as
    /// `(absolute target index, sender)` in sender-major order. Senders
    /// are dense [`NodeIdx`]es, halving the pair width at paper scale+.
    survivors: Vec<(u32, NodeIdx)>,
    /// `survivors` counting-sorted by target — the apply phase reads
    /// per-receiver runs instead of per-message dispatch.
    sorted: Vec<(u32, NodeIdx)>,
    /// Counting-sort offsets; after the fill pass, `counts[t]` is the
    /// *end* of target `t`'s run (its start is `counts[t-1]`).
    counts: Vec<u32>,
    /// Adversary pushes surviving limiter/liveness/loss, in plan order.
    byz_survivors: Vec<(u32, NodeIdx)>,
    /// `byz_survivors` counting-sorted by victim.
    byz_sorted: Vec<(u32, NodeIdx)>,
    /// Counting-sort offsets for the adversary runs.
    byz_counts: Vec<u32>,
    /// Reusable sequential-phase answer buffer (BASALT pulls, trusted
    /// ablation answers, adversary RNG advancement).
    reply: Vec<NodeId>,
    /// Reusable observation-target buffer (identification attack).
    observed: Vec<NodeId>,
    /// Deferred pull answers, requester-major.
    events: Vec<PullEvent>,
    /// Event range per population index (`events[start[ci]..start[ci+1]]`).
    event_start: Vec<u32>,
    /// Materialised answers for responders whose view had already
    /// mutated at pull time, as dense indices.
    arena: Vec<NodeIdx>,
    /// Post-plan view snapshots, one `view_size`-stride row per
    /// population index, as dense indices.
    snap_ids: Vec<NodeIdx>,
    /// Occupied length of each snapshot row.
    snap_len: Vec<u32>,
    /// Whether a node's view has mutated during the current exchange
    /// phase (trusted swap or churn removal) — after the first mutation,
    /// answers from it must be materialised instead of snapshot-deferred.
    view_mutated: Vec<bool>,
    /// Per-node round outcomes, folded sequentially after the apply
    /// phase.
    stats: Vec<RoundStat>,
}

impl Scratch {
    /// Sizes the per-node lanes once (no-op afterwards).
    fn ensure_capacity(&mut self, pop: usize) {
        if self.live.len() != pop {
            self.plans.resize_with(pop, RoundPlan::default);
            self.basalt_plans.resize_with(pop, BasaltPlan::default);
            self.live.resize(pop, false);
            self.view_mutated.resize(pop, false);
            self.stats.resize_with(pop, RoundStat::default);
            self.snap_len.resize(pop, 0);
            self.event_start.resize(pop + 1, 0);
        }
    }
}

/// Per-round metric aggregates, filled by the sequential node-order fold
/// over the apply phase's [`RoundStat`] slots and folded into the run
/// series by [`Simulation::finish_round_metrics`]. Fully streaming: no
/// per-node buffer survives the fold — the smoothed shares accumulate as
/// a running sum in node-index order (the same addition sequence the
/// historical buffered `iter().sum()` performed, so the mean is
/// bit-identical), and the spread check re-reads the stat slots.
struct RoundAccumulator {
    share_sum: f64,
    share_count: usize,
    smoothed_sum: f64,
    smoothed_count: usize,
    all_discovered: bool,
    discovered_sum: usize,
    discovered_nodes: usize,
}

impl RoundAccumulator {
    fn new() -> Self {
        Self {
            share_sum: 0.0,
            share_count: 0,
            smoothed_sum: 0.0,
            smoothed_count: 0,
            all_discovered: true,
            discovered_sum: 0,
            discovered_nodes: 0,
        }
    }
}

/// Per-node lanes of the parallel plan phase.
struct PlanItem<'a, N> {
    node: &'a mut N,
    live: &'a mut bool,
}

/// Per-node lanes of the parallel apply/finish phase.
struct FinishItem<'a, N> {
    node: &'a mut N,
    stat: &'a mut RoundStat,
    disc: DiscoveryLane<'a>,
    ring: ShareRingRow<'a>,
}

/// Narrows a wire identity to its dense arena index. Valid because the
/// simulation interns its population in identity order at construction
/// and asserts [`IdInterner::is_identity`], so the mapping is a cast.
#[inline]
fn narrow(id: NodeId) -> NodeIdx {
    NodeIdx(id.0 as u32)
}

/// Widens a dense arena index back to the wire identity (see [`narrow`]).
#[inline]
fn widen(idx: NodeIdx) -> NodeId {
    NodeId(u64::from(idx.0))
}

/// Split-borrows two distinct population entries.
fn two_nodes<N>(nodes: &mut [N], a: usize, b: usize) -> (&mut N, &mut N) {
    assert_ne!(a, b, "cannot borrow the same node twice");
    let (x, y, swapped) = if a < b { (a, b, false) } else { (b, a, true) };
    let (lo, hi) = nodes.split_at_mut(y);
    if swapped {
        (&mut hi[0], &mut lo[x])
    } else {
        (&mut lo[x], &mut hi[0])
    }
}

/// Stable counting sort of `(target, payload)` pairs by target over the
/// universe `0..total`. After the fill pass `counts[t]` is the end of
/// `t`'s run, so run `t` is `sorted[counts[t-1]..counts[t]]` (`0` for
/// `t = 0`). Stability preserves each receiver's arrival order, so
/// streaming over the runs is observationally identical to per-message
/// dispatch.
fn counting_sort_by_target(
    survivors: &[(u32, NodeIdx)],
    sorted: &mut Vec<(u32, NodeIdx)>,
    counts: &mut Vec<u32>,
    total: usize,
) {
    counts.clear();
    counts.resize(total + 1, 0);
    for &(t, _) in survivors {
        counts[t as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    sorted.clear();
    sorted.resize(survivors.len(), (0, NodeIdx(0)));
    for &(t, payload) in survivors {
        let pos = &mut counts[t as usize];
        sorted[*pos as usize] = (t, payload);
        *pos += 1;
    }
}

/// The `[start, end)` bounds of target `t`'s run in a
/// [`counting_sort_by_target`]-sorted buffer.
#[inline]
fn run_bounds(counts: &[u32], t: usize) -> (usize, usize) {
    let start = if t == 0 { 0 } else { counts[t - 1] as usize };
    (start, counts[t] as usize)
}

/// Marks non-Byzantine `id` as discovered in `row` (no-op for Byzantine
/// and out-of-universe IDs). An associated function over the matrix so
/// the sequential BASALT pull pass can call it while the population is
/// borrowed.
fn note_discovered(
    discovery: &mut Discovery,
    byz_count: usize,
    total: usize,
    row: usize,
    id: NodeId,
) {
    if id.index() >= byz_count && id.index() < total {
        discovery.insert(row, id.index());
    }
}

/// One deterministic simulation run.
pub struct Simulation {
    scenario: Scenario,
    population: Population,
    trusted: Vec<bool>,
    alive: Vec<bool>,
    loss_rng: Xoshiro256StarStar,
    byz_count: usize,
    adversary: Adversary,
    limiter: PushRateLimiter,
    /// The wire-identity ↔ dense-index mapping. Interned in identity
    /// order at construction and asserted to be the identity mapping —
    /// the invariant that licenses the cast-based [`narrow`]/[`widen`]
    /// conversions on the hot path.
    interner: IdInterner,
    /// Per-node discovery state of every non-Byzantine actor: exact
    /// bitset rows below [`crate::bitset::EXACT_DISCOVERY_THRESHOLD`]
    /// actors, mergeable HLL sketches above (rows by population index,
    /// universe = absolute indices).
    discovery: Discovery,
    discovery_target: usize,
    /// Per-node rings of recent per-round view pollution shares, used
    /// for the smoothed spread-stability criterion.
    share_rings: ShareRings,
    /// All non-Byzantine actor IDs (the adversary's victim pool; alive
    /// filtering happens at delivery time) — built once.
    victims: Vec<NodeId>,
    /// Mixed-population segment metadata, in layout order (empty for
    /// uniform populations).
    segs: Vec<SegMeta>,
    /// Correct-population index → segment index (empty for uniform
    /// populations).
    seg_of: Vec<u32>,
    /// Per-segment mean Byzantine-share series (mixed populations only).
    seg_series: Vec<Vec<f64>>,
    /// Per-segment mean discovered-fraction series (mixed populations
    /// only) — feeds the per-segment discovery-round metric.
    seg_discovered_series: Vec<Vec<f64>>,
    /// Correct original-population IDs the identification attack may
    /// observe — built once.
    ident_candidates: Vec<NodeId>,
    /// Reusable round buffers (see [`Scratch`]).
    scratch: Scratch,
    /// Per-worker arenas for the parallel phases.
    workers: Vec<WorkerScratch>,
    /// The event-driven delivery substrate (`None` under
    /// [`crate::scenario::NetworkModel::Rounds`] — in which case every
    /// message follows the historical lockstep path untouched).
    net: Option<EventNet>,
    non_byz_total: usize,
    round: usize,
    byz_share_series: Vec<f64>,
    mean_discovered_series: Vec<f64>,
    discovery_round: Option<usize>,
    spread_stability_round: Option<usize>,
    best_identification: Option<IdentificationResult>,
    floods_detected: u64,
    total_evicted: u64,
    seed_rotations: u64,
    /// Seed of the hash-derived churn draws (steady crashes, restarts,
    /// cold-rejoin bootstraps). Dedicated stream: churn never consumes
    /// `loss_rng` or any node RNG, so the all-off configuration replays
    /// the historical draw sequences bit-for-bit.
    churn_seed: u64,
    /// Recovery accounting (`None` unless dynamic churn or attestation
    /// expiry is active).
    recovery: Option<RecoveryState>,
    /// Trusted-tier degradation state (`None` unless `attest_ttl > 0`).
    trust: Option<TrustTier>,
    /// The audit challenger (`None` unless `Scenario::audit` is set) —
    /// merkle view commitments, beacon-driven challenges, quarantine.
    audit: Option<Challenger>,
    /// The adaptive adversary's bandit scheduler (`None` unless
    /// `Scenario::adversary_mode` is `Adaptive`) — arms are
    /// segment × strategy pairs, re-allocated the whole lawful budget
    /// each round by observed pollution yield. Consumes no RNG stream.
    bandit: Option<AdaptiveCoordinator>,
    /// BASALT-family proactive trusted directory: absolute indices of
    /// live effective-trusted, non-quarantined actors, rebuilt every
    /// `Scenario::trusted_directory_refresh` rounds (empty while the
    /// refresh is off).
    trusted_dir: Vec<u32>,
}

impl Simulation {
    /// Builds the population: Byzantine identities, trusted nodes
    /// (provisioned through the simulated attestation service), honest
    /// nodes, and optionally the adversary's injected view-poisoned
    /// trusted nodes.
    pub fn new(scenario: Scenario) -> Self {
        scenario.validate();
        // Mixed populations (and the BASALT+TEE hybrid, which carries a
        // trusted tier plain BASALT lacks) run through the segmented
        // builder; the uniform protocols keep their historical path —
        // and their historical RNG draw order — untouched.
        let mut sim = if !scenario.population.is_empty()
            || matches!(scenario.protocol, Protocol::BasaltTee { .. })
        {
            Self::new_mixed(scenario)
        } else {
            Self::new_uniform(scenario)
        };
        sim.init_robustness();
        sim
    }

    /// The historical uniform-population builder (see [`Simulation::new`]).
    fn new_uniform(scenario: Scenario) -> Self {
        let mut rng = Xoshiro256StarStar::seed_from_u64(scenario.seed);
        let n = scenario.n;
        let total = scenario.total_actors();
        let byz = scenario.byzantine_count();
        let trusted_n = scenario.trusted_count();

        let gamma = scenario.gamma;
        let ab = (1.0 - gamma) / 2.0;
        let alpha_count = (ab * scenario.view_size as f64).round();
        let flood_threshold = if scenario.flood_slack_sigmas > 0.0 {
            Some((alpha_count + scenario.flood_slack_sigmas * alpha_count.sqrt()).round() as usize)
        } else {
            None
        };
        let config = RapteeConfig {
            brahms: BrahmsConfig {
                view_size: scenario.view_size,
                sample_size: scenario.sample_size,
                alpha: ab,
                beta: ab,
                gamma,
                flood_threshold,
            },
            eviction: scenario.eviction,
        };

        // Group-key provisioning through the full simulated attestation
        // flow: one certified platform per trusted node.
        let mut attestation = provisioning::new_attestation_service(scenario.seed ^ 0x6E0C);
        let mut provision =
            |platform: u64| provisioning::certify_and_provision(&mut attestation, platform);

        let all_ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let byz_ids: Vec<NodeId> = (0..byz as u64).map(NodeId).collect();

        // Under a ranked-family protocol (BASALT, LIFT, Honeybee) the
        // whole correct population runs that protocol's node type behind
        // the RankedNode delegation surface instead of Brahms/RAPTEE.
        let basalt_config = match scenario.protocol {
            Protocol::Basalt {
                view_size,
                rotation_interval,
            } => Some(RankedCfg::Basalt(BasaltConfig::for_view(
                view_size,
                rotation_interval,
            ))),
            Protocol::Lift {
                view_size,
                fade_interval,
            } => Some(RankedCfg::Lift(LiftConfig::for_view(
                view_size,
                fade_interval,
            ))),
            Protocol::Honeybee {
                view_size,
                walk_length,
            } => Some(RankedCfg::Honeybee(HoneybeeConfig::for_view(
                view_size,
                walk_length,
            ))),
            _ => None,
        };

        // Byzantine actors are the identity prefix [0, byz) and carry no
        // state; the correct population is stored densely and unboxed.
        let mut raptee_nodes: Vec<RapteeNode> = Vec::new();
        let mut basalt_nodes: Vec<RankedNode> = Vec::new();
        let mut trusted_flags = vec![false; total];
        #[allow(clippy::needless_range_loop)] // i is the node identity
        for i in byz..total {
            let id = NodeId(i as u64);
            let seed = rng.next_u64();
            if let Some(bcfg) = basalt_config {
                let bootstrap = rng.sample(&all_ids, (bcfg.view_size() + 2).min(all_ids.len()));
                basalt_nodes.push(RankedNode::new(id, &bcfg, &bootstrap, seed));
                continue;
            }
            let is_trusted = i < byz + trusted_n;
            let is_injected = i >= n;
            // Paper bootstrap: a uniform random sample of the global
            // membership — except injected nodes, which the adversary
            // bootstrapped inside a Byzantine-only network.
            let bootstrap = if is_injected {
                rng.sample(&byz_ids, scenario.view_size.min(byz_ids.len()))
            } else {
                rng.sample(&all_ids, (scenario.view_size + 2).min(all_ids.len()))
            };
            let mut node = if is_trusted || is_injected {
                trusted_flags[i] = true;
                let key = provision(0x1000 + i as u64);
                RapteeNode::new_trusted(id, config.clone(), &bootstrap, seed, key)
            } else {
                RapteeNode::new_untrusted(id, config.clone(), &bootstrap, seed)
            };
            // The sampler seen-cache is pure memoization (identical
            // samples either way) whose backing bitset grows toward one
            // bit per live identity *per node* — an O(N²)-bit structure
            // in aggregate (≈ 125 KiB/node at N = 1,000,000, dwarfing
            // the protocol state). Past the same population threshold
            // that retires exact discovery bitsets, run uncached.
            if total > EXACT_DISCOVERY_THRESHOLD {
                node.brahms_mut().sampler_mut().limit_seen_cache(0);
            }
            raptee_nodes.push(node);
        }
        let population = if basalt_config.is_some() {
            Population::Basalt(basalt_nodes)
        } else {
            Population::Raptee(raptee_nodes)
        };

        // Discovery state (non-Byzantine actors only) seeded with the
        // bootstrap view and the node itself.
        let non_byz_total = total - byz;
        let mut discovery = Discovery::new(non_byz_total, total, scenario.sketch_discovery());
        let mut seed_row = |ci: usize, ids: &mut dyn Iterator<Item = NodeId>| {
            discovery.insert(ci, byz + ci);
            for id in ids {
                if id.index() >= byz {
                    discovery.insert(ci, id.index());
                }
            }
        };
        match &population {
            Population::Raptee(nodes) => {
                for (ci, node) in nodes.iter().enumerate() {
                    seed_row(ci, &mut node.brahms().view().ids());
                }
            }
            Population::Basalt(nodes) => {
                for (ci, node) in nodes.iter().enumerate() {
                    seed_row(ci, &mut node.sample_ids().into_iter());
                }
            }
            Population::Mixed(_) => unreachable!("mixed populations build via new_mixed"),
        }
        let discovery_target = (DISCOVERY_TARGET_SHARE * non_byz_total as f64).ceil() as usize;

        // The per-identity push budget: Brahms' α·l1, or the ranked
        // family's equal-bandwidth push fanout.
        let alpha_count = basalt_config.map_or(config.brahms.alpha_count(), |c| c.push_count());
        // The adversary answers pulls with views matching the protocol
        // the correct population runs.
        let answer_size = basalt_config.map_or(scenario.view_size, |c| c.view_size());
        let mut adversary = Adversary::new(byz_ids, total, answer_size, rng.next_u64());
        // Section VI-B: the adversary advertises its injected poisoned
        // trusted nodes so the system contacts them and the poison can
        // flow into the genuine trusted tier.
        adversary.advertise_injected((n..total).map(|i| NodeId(i as u64)));
        let net = EventNet::from_scenario(&scenario);
        Self {
            adversary,
            limiter: PushRateLimiter::new(total, alpha_count as u32),
            population,
            trusted: trusted_flags,
            alive: vec![true; total],
            loss_rng: rng.split(),
            byz_count: byz,
            interner: Self::intern_population(total),
            discovery,
            discovery_target,
            share_rings: ShareRings::new(non_byz_total),
            victims: (byz..total).map(|i| NodeId(i as u64)).collect(),
            segs: Vec::new(),
            seg_of: Vec::new(),
            seg_series: Vec::new(),
            seg_discovered_series: Vec::new(),
            ident_candidates: (byz..n).map(|i| NodeId(i as u64)).collect(),
            scratch: Scratch::default(),
            workers: Vec::new(),
            net,
            non_byz_total,
            round: 0,
            byz_share_series: Vec::with_capacity(scenario.rounds),
            mean_discovered_series: Vec::with_capacity(scenario.rounds),
            discovery_round: None,
            spread_stability_round: None,
            best_identification: None,
            floods_detected: 0,
            total_evicted: 0,
            seed_rotations: 0,
            churn_seed: 0,
            recovery: None,
            trust: None,
            audit: None,
            bandit: None,
            trusted_dir: Vec::new(),
            scenario,
        }
    }

    /// Builds a segmented (mixed-population) simulation: the correct
    /// population is split into contiguous per-protocol segments in spec
    /// order, trusted tiers distributed per
    /// [`Scenario::segment_trusted_counts`] and provisioned through the
    /// same attestation flow as the uniform RAPTEE path. With a single
    /// segment this draws the scenario RNG in exactly the uniform
    /// builder's order, so a 100 %-one-protocol population is
    /// bit-identical to the single-protocol engine (pinned by
    /// `tests/determinism.rs`).
    fn new_mixed(scenario: Scenario) -> Self {
        let mut rng = Xoshiro256StarStar::seed_from_u64(scenario.seed);
        let n = scenario.n;
        let total = n; // mixed mode forbids injected actors
        let byz = scenario.byzantine_count();
        let specs = scenario.segments();
        let trusted_counts = scenario.segment_trusted_counts();

        let gamma = scenario.gamma;
        let ab = (1.0 - gamma) / 2.0;
        let alpha_count = (ab * scenario.view_size as f64).round();
        let flood_threshold = if scenario.flood_slack_sigmas > 0.0 {
            Some((alpha_count + scenario.flood_slack_sigmas * alpha_count.sqrt()).round() as usize)
        } else {
            None
        };
        let config = RapteeConfig {
            brahms: BrahmsConfig {
                view_size: scenario.view_size,
                sample_size: scenario.sample_size,
                alpha: ab,
                beta: ab,
                gamma,
                flood_threshold,
            },
            eviction: scenario.eviction,
        };

        let mut attestation = provisioning::new_attestation_service(scenario.seed ^ 0x6E0C);
        let all_ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let byz_ids: Vec<NodeId> = (0..byz as u64).map(NodeId).collect();

        let non_byz_total = total - byz;
        let mut trusted_flags = vec![false; total];
        let mut seg_of = vec![0u32; non_byz_total];
        let mut segs: Vec<SegMeta> = Vec::with_capacity(specs.len());
        let mut seg_nodes: Vec<SegmentNodes> = Vec::with_capacity(specs.len());
        let mut start = 0usize;
        for (si, (spec, &seg_trusted)) in specs.iter().zip(&trusted_counts).enumerate() {
            let ranked_cfg = match spec.protocol {
                Protocol::Basalt {
                    view_size,
                    rotation_interval,
                } => Some(RankedCfg::Basalt(BasaltConfig::for_view(
                    view_size,
                    rotation_interval,
                ))),
                Protocol::BasaltTee {
                    view_size,
                    rotation_interval,
                    wlist_ttl,
                } => Some(RankedCfg::Basalt(if wlist_ttl > 0 {
                    BasaltConfig::with_wlist(view_size, rotation_interval, wlist_ttl)
                } else {
                    BasaltConfig::for_view(view_size, rotation_interval)
                })),
                Protocol::Lift {
                    view_size,
                    fade_interval,
                } => Some(RankedCfg::Lift(LiftConfig::for_view(
                    view_size,
                    fade_interval,
                ))),
                Protocol::Honeybee {
                    view_size,
                    walk_length,
                } => Some(RankedCfg::Honeybee(HoneybeeConfig::for_view(
                    view_size,
                    walk_length,
                ))),
                Protocol::Brahms | Protocol::Raptee => None,
            };
            let nodes = if let Some(rcfg) = ranked_cfg {
                let mut v = Vec::with_capacity(spec.count);
                for i in 0..spec.count {
                    let abs = byz + start + i;
                    let id = NodeId(abs as u64);
                    let seed = rng.next_u64();
                    let bootstrap = rng.sample(&all_ids, (rcfg.view_size() + 2).min(all_ids.len()));
                    if i < seg_trusted {
                        trusted_flags[abs] = true;
                        let key = provisioning::certify_and_provision(
                            &mut attestation,
                            0x1000 + abs as u64,
                        );
                        let RankedCfg::Basalt(bcfg) = rcfg else {
                            unreachable!("only BASALT+TEE segments provision a trusted tier")
                        };
                        v.push(RankedNode::Basalt(BasaltNode::new_trusted(
                            id, bcfg, &bootstrap, seed, key,
                        )));
                    } else {
                        v.push(RankedNode::new(id, &rcfg, &bootstrap, seed));
                    }
                }
                SegmentNodes::Basalt(v)
            } else {
                let mut v = Vec::with_capacity(spec.count);
                for i in 0..spec.count {
                    let abs = byz + start + i;
                    let id = NodeId(abs as u64);
                    let seed = rng.next_u64();
                    let bootstrap =
                        rng.sample(&all_ids, (scenario.view_size + 2).min(all_ids.len()));
                    let mut node = if i < seg_trusted {
                        trusted_flags[abs] = true;
                        let key = provisioning::certify_and_provision(
                            &mut attestation,
                            0x1000 + abs as u64,
                        );
                        RapteeNode::new_trusted(id, config.clone(), &bootstrap, seed, key)
                    } else {
                        RapteeNode::new_untrusted(id, config.clone(), &bootstrap, seed)
                    };
                    // Same large-population seen-cache policy as the
                    // uniform constructor (see `new`): the cache is an
                    // O(N²)-bit memoization in aggregate.
                    if total > EXACT_DISCOVERY_THRESHOLD {
                        node.brahms_mut().sampler_mut().limit_seen_cache(0);
                    }
                    v.push(node);
                }
                SegmentNodes::Raptee(v)
            };
            for slot in &mut seg_of[start..start + spec.count] {
                *slot = si as u32;
            }
            segs.push(SegMeta {
                protocol: spec.protocol,
                start,
                len: spec.count,
                fanout: ranked_cfg.map_or(config.brahms.alpha_count(), |c| c.push_count()),
                ranked_cfg,
                victims: (byz + start..byz + start + spec.count)
                    .map(|i| NodeId(i as u64))
                    .collect(),
            });
            seg_nodes.push(nodes);
            start += spec.count;
        }

        // Discovery state seeded from the bootstrap views, per family.
        let mut discovery = Discovery::new(non_byz_total, total, scenario.sketch_discovery());
        {
            let mut seed_row = |ci: usize, ids: &mut dyn Iterator<Item = NodeId>| {
                discovery.insert(ci, byz + ci);
                for id in ids {
                    if id.index() >= byz {
                        discovery.insert(ci, id.index());
                    }
                }
            };
            for (seg, nodes) in segs.iter().zip(&seg_nodes) {
                match nodes {
                    SegmentNodes::Raptee(v) => {
                        for (i, node) in v.iter().enumerate() {
                            seed_row(seg.start + i, &mut node.brahms().view().ids());
                        }
                    }
                    SegmentNodes::Basalt(v) => {
                        for (i, node) in v.iter().enumerate() {
                            seed_row(seg.start + i, &mut node.sample_ids().into_iter());
                        }
                    }
                }
            }
        }
        let discovery_target = (DISCOVERY_TARGET_SHARE * non_byz_total as f64).ceil() as usize;

        // The limiter grants the largest per-identity fanout any segment
        // uses (equal across segments at matched view sizes); the
        // adversary answers pulls at the largest view size in play.
        let limiter_fanout = segs.iter().map(|x| x.fanout).max().unwrap_or(1);
        let answer_size = segs
            .iter()
            .map(|x| x.ranked_cfg.map_or(scenario.view_size, |c| c.view_size()))
            .max()
            .unwrap_or(scenario.view_size);
        let adversary = Adversary::new(byz_ids, total, answer_size, rng.next_u64());
        let net = EventNet::from_scenario(&scenario);
        Self {
            adversary,
            limiter: PushRateLimiter::new(total, limiter_fanout as u32),
            population: Population::Mixed(seg_nodes),
            trusted: trusted_flags,
            alive: vec![true; total],
            loss_rng: rng.split(),
            byz_count: byz,
            interner: Self::intern_population(total),
            discovery,
            discovery_target,
            share_rings: ShareRings::new(non_byz_total),
            victims: (byz..total).map(|i| NodeId(i as u64)).collect(),
            seg_series: vec![Vec::with_capacity(scenario.rounds); segs.len()],
            seg_discovered_series: vec![Vec::with_capacity(scenario.rounds); segs.len()],
            segs,
            seg_of,
            ident_candidates: Vec::new(),
            scratch: Scratch::default(),
            workers: Vec::new(),
            net,
            non_byz_total,
            round: 0,
            byz_share_series: Vec::with_capacity(scenario.rounds),
            mean_discovered_series: Vec::with_capacity(scenario.rounds),
            discovery_round: None,
            spread_stability_round: None,
            best_identification: None,
            floods_detected: 0,
            total_evicted: 0,
            seed_rotations: 0,
            churn_seed: 0,
            recovery: None,
            trust: None,
            audit: None,
            bandit: None,
            trusted_dir: Vec::new(),
            scenario,
        }
    }

    /// Initialises the robustness subsystems both builders share: the
    /// churn draw seed, the recovery accounting (dynamic churn or
    /// attestation expiry only) and the trusted-tier degradation state.
    /// With everything off this sets one integer and leaves both options
    /// `None` — the historical engine, bit for bit.
    fn init_robustness(&mut self) {
        self.churn_seed = mix64(self.scenario.seed ^ 0x0C4A_54E5_50DD_BA11);
        if self.scenario.churn.dynamic() || self.scenario.attest_ttl > 0 {
            self.recovery = Some(RecoveryState {
                pending: vec![None; self.non_byz_total],
                ..RecoveryState::default()
            });
        }
        if self.scenario.attest_ttl > 0 {
            let total = self.total_actors();
            let ttl = self.scenario.attest_ttl as u64;
            // Rebuild the attestation service the constructors
            // provisioned through (same measurement, same group key) and
            // re-certify every trusted platform so renewals verify.
            let mut service = provisioning::new_attestation_service(self.scenario.seed ^ 0x6E0C);
            let seed = mix64(self.scenario.seed ^ 0x7255_7ED0_0DDA_7E5A);
            let mut expires = vec![0u64; total];
            for (abs, expiry) in expires.iter_mut().enumerate().skip(self.byz_count) {
                if !self.trusted[abs] {
                    continue;
                }
                service.certify_platform(0x1000 + abs as u64);
                // Staggered initial expiry in [ttl, 2·ttl): certificates
                // issued at different pre-run moments, so the tier never
                // expires as one synchronized cliff.
                *expiry = ttl + mix64(seed ^ mix64(abs as u64)) % ttl;
            }
            self.trust = Some(TrustTier {
                service,
                seed,
                expires,
                heal_at: vec![0; total],
                degraded: vec![false; total],
            });
        }
        if let Some(cfg) = self.scenario.audit {
            self.audit = Some(Challenger::new(
                cfg,
                self.scenario.seed,
                self.total_actors(),
                self.byz_count,
            ));
        }
        if self.scenario.adversary_mode == AdversaryMode::Adaptive {
            // One arm per (segment, candidate strategy) pair; uniform
            // populations count as a single segment. The coordinator is
            // pure bookkeeping (no RNG), so static-mode runs — where it
            // stays `None` — replay byte-identically.
            let seg_count = self.segs.len().max(1);
            self.bandit = Some(AdaptiveCoordinator::new(
                seg_count * ADAPTIVE_STRATEGIES.len(),
            ));
        }
    }

    /// Whether actor `abs` currently *behaves* trusted: provisioned into
    /// the trusted tier and (when attestation expiry is active) holding
    /// an unexpired certificate. Degraded nodes keep their group key but
    /// fail the freshness check every verifier applies, so their
    /// exchanges fall back to the untrusted path until they re-attest.
    fn effective_trusted(&self, abs: usize) -> bool {
        Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), abs)
    }

    /// [`Simulation::effective_trusted`] over the raw fields, for call
    /// sites holding a mutable borrow of the population.
    fn effective_trusted_in(trusted: &[bool], trust: Option<&TrustTier>, abs: usize) -> bool {
        trusted[abs] && trust.is_none_or(|t| !t.degraded[abs])
    }

    /// Interns the actor population at the wire-identity boundary and
    /// asserts the dense-ID invariant: identity-order interning must
    /// yield the identity mapping, or the hot path's cast-based
    /// [`narrow`]/[`widen`] conversions would be wrong.
    fn intern_population(total: usize) -> IdInterner {
        let mut interner = IdInterner::with_capacity(total);
        for i in 0..total as u64 {
            interner.intern(NodeId(i));
        }
        assert!(
            interner.is_identity(),
            "simulation actor IDs must intern to the identity mapping"
        );
        interner
    }

    /// The scenario driving this run.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The wire-identity ↔ dense-index interner covering every actor.
    pub fn interner(&self) -> &IdInterner {
        &self.interner
    }

    /// Total actors in the run (Byzantine identities + correct nodes).
    pub fn total_actors(&self) -> usize {
        self.byz_count + self.population.len()
    }

    /// Whether actor `id` is Byzantine.
    pub fn is_byzantine(&self, id: NodeId) -> bool {
        id.index() < self.byz_count
    }

    /// Whether actor `id` is alive (crashed nodes stop participating).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.index()]
    }

    /// Whether actor `id` is a (genuine or injected) trusted node.
    pub fn is_trusted(&self, id: NodeId) -> bool {
        self.trusted[id.index()]
    }

    /// Current round index.
    pub fn round(&self) -> usize {
        self.round
    }

    /// How many values the audit beacon has produced so far (0 when
    /// audits are off — the stream must never be touched in that case).
    pub fn audit_beacon_draws(&self) -> u64 {
        self.audit.as_ref().map_or(0, |a| a.beacon_draws())
    }

    /// Whether actor `id` has been convicted and quarantined by the
    /// challenger (always false when audits are off).
    pub fn is_quarantined(&self, id: NodeId) -> bool {
        self.audit
            .as_ref()
            .is_some_and(|a| a.is_quarantined(id.index()))
    }

    /// Number of non-Byzantine IDs `id` has discovered so far (None for
    /// Byzantine actors).
    pub fn discovery_count(&self, id: NodeId) -> Option<usize> {
        if id.index() < self.byz_count {
            return None;
        }
        Some(self.discovery.count(id.index() - self.byz_count))
    }

    /// Read access to a correct Brahms/RAPTEE node (None for Byzantine
    /// actors and for BASALT-family actors).
    pub fn node(&self, id: NodeId) -> Option<&RapteeNode> {
        if id.index() < self.byz_count {
            return None;
        }
        let ci = id.index() - self.byz_count;
        match &self.population {
            Population::Raptee(nodes) => nodes.get(ci),
            Population::Basalt(_) => None,
            Population::Mixed(seg_nodes) => {
                let si = *self.seg_of.get(ci)? as usize;
                match &seg_nodes[si] {
                    SegmentNodes::Raptee(v) => v.get(ci - self.segs[si].start),
                    SegmentNodes::Basalt(_) => None,
                }
            }
        }
    }

    /// Read access to a correct ranked-family node (None for Byzantine
    /// actors and for Brahms-family actors).
    pub fn ranked(&self, id: NodeId) -> Option<&RankedNode> {
        if id.index() < self.byz_count {
            return None;
        }
        let ci = id.index() - self.byz_count;
        match &self.population {
            Population::Basalt(nodes) => nodes.get(ci),
            Population::Raptee(_) => None,
            Population::Mixed(seg_nodes) => {
                let si = *self.seg_of.get(ci)? as usize;
                match &seg_nodes[si] {
                    SegmentNodes::Basalt(v) => v.get(ci - self.segs[si].start),
                    SegmentNodes::Raptee(_) => None,
                }
            }
        }
    }

    /// Read access to a correct BASALT node (None for Byzantine actors
    /// and actors of any other family).
    pub fn basalt(&self, id: NodeId) -> Option<&BasaltNode> {
        self.ranked(id).and_then(RankedNode::as_basalt)
    }

    /// Read access to a correct LIFT node (None for Byzantine actors and
    /// actors of any other family).
    pub fn lift(&self, id: NodeId) -> Option<&raptee_lift::LiftNode> {
        self.ranked(id).and_then(RankedNode::as_lift)
    }

    /// Read access to a correct Honeybee node (None for Byzantine actors
    /// and actors of any other family).
    pub fn honeybee(&self, id: NodeId) -> Option<&raptee_honeybee::HoneybeeNode> {
        self.ranked(id).and_then(RankedNode::as_honeybee)
    }

    /// Executes the full run and returns the collected metrics.
    pub fn run(mut self) -> RunResult {
        for _ in 0..self.scenario.rounds {
            self.run_round();
        }
        self.into_result()
    }

    /// Executes one round (public so tests can single-step).
    pub fn run_round(&mut self) {
        self.limiter.next_round();
        // Event model: consume this round's SelfNotif round-timer tick
        // and drain every envelope due inside the round window.
        if let Some(net) = &mut self.net {
            net.begin_round(self.round);
        }
        let total = self.total_actors();

        // Churn injection, one-shot flavour: crash a batch of correct
        // nodes at the configured round. Crashed nodes stop planning,
        // answering and pushing; pulls towards them time out. This draws
        // from `loss_rng` at exactly the historical point, so legacy
        // one-shot scenarios replay bit-for-bit.
        if self.scenario.churn.crash_fraction > 0.0 && self.round == self.scenario.churn.crash_round
        {
            let candidates: Vec<usize> =
                (self.byz_count..total).filter(|&i| self.alive[i]).collect();
            let k = (self.scenario.churn.crash_fraction * candidates.len() as f64).round() as usize;
            for idx in self.loss_rng.sample(&candidates, k) {
                self.crash_node(idx);
            }
        }

        // Churn injection, continuous flavour: per-round hash-derived
        // crash/restart draws (steady rates plus catastrophe bursts).
        // Hash draws — never shared-RNG draws — so enabling churn cannot
        // shift any other stochastic stream, and the schedule is
        // identical at any thread count.
        if self.scenario.churn.dynamic() {
            let crash_rate = self.scenario.churn.crash_rate_at(self.round);
            let restart_rate = self.scenario.churn.restart_rate;
            let round_tag = (self.round as u64) << 1;
            for abs in self.byz_count..total {
                if self.alive[abs] {
                    if crash_rate > 0.0
                        && hash_unit(mix64(
                            self.churn_seed ^ mix64(round_tag) ^ mix64(abs as u64),
                        )) < crash_rate
                    {
                        self.crash_node(abs);
                    }
                } else if restart_rate > 0.0
                    && hash_unit(mix64(
                        self.churn_seed ^ mix64(round_tag | 1) ^ mix64(abs as u64),
                    )) < restart_rate
                {
                    self.restart_node(abs);
                }
            }
        }

        // Trusted-tier degradation: expire stale certificates, re-attest
        // healed ones (hash-derived heal delays; the attestation service
        // is its own deterministic stream).
        self.update_trust_tier();

        // Proactive trusted-directory refresh (BASALT-family trusted
        // exchanges and audit targeting; off by default).
        self.refresh_trusted_directory();

        // The scratch arenas move out for the duration of the round so
        // `&mut self` stays available to the control passes.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut workers = std::mem::take(&mut self.workers);
        scratch.ensure_capacity(self.population.len());
        match &self.population {
            Population::Basalt(_) => self.basalt_round(&mut scratch, &mut workers),
            Population::Raptee(_) => self.raptee_round(&mut scratch, &mut workers),
            Population::Mixed(_) => self.mixed_round(&mut scratch, &mut workers),
        }
        self.scratch = scratch;
        self.workers = workers;

        // Audit pass: view commitments, beacon-drawn challenges,
        // verdicts and quarantine (no-op — zero beacon draws — unless
        // the scenario enables the challenger).
        self.audit_round();

        self.update_recovery_metrics();
        self.round += 1;
    }

    /// Marks a correct actor dead and books the crash. A node that was
    /// still converging after an earlier rejoin loses its pending
    /// recovery — it died before recovering.
    fn crash_node(&mut self, abs: usize) {
        self.alive[abs] = false;
        let ci = abs - self.byz_count;
        if let Some(rec) = self.recovery.as_mut() {
            rec.crashes += 1;
            rec.pending[ci] = None;
        }
    }

    /// Restarts a crashed correct actor through its protocol family's
    /// rejoin path. Cold rejoiners bootstrap from a fresh hash-derived
    /// membership sample with reinitialised samplers/rankings; warm
    /// rejoiners resume from their persisted view, paying the staleness
    /// penalty (Brahms probe revalidation / BASALT forced rotation).
    /// Trusted rejoiners additionally re-run the attestation handshake
    /// when certificate expiry is active.
    fn restart_node(&mut self, abs: usize) {
        self.alive[abs] = true;
        let byz = self.byz_count;
        let ci = abs - byz;
        let total = self.total_actors();
        let round = self.round as u64;
        let rejoin = self.scenario.churn.rejoin;
        let cold_seed = mix64(self.churn_seed ^ mix64(abs as u64) ^ mix64(round) ^ 0xC01D);
        let view_size = self.scenario.view_size;
        let bootstrap_of = |churn_seed: u64, k: usize| -> Vec<NodeId> {
            (0..k as u64)
                .map(|j| {
                    NodeId(mix64(churn_seed ^ mix64(abs as u64) ^ mix64(round) ^ j) % total as u64)
                })
                .collect()
        };
        let churn_seed = self.churn_seed;
        let alive = &self.alive;
        let is_alive = |id: NodeId| alive.get(id.index()).copied().unwrap_or(false);
        let segs = &self.segs;
        let seg_of = &self.seg_of;
        match &mut self.population {
            Population::Raptee(nodes) => match rejoin {
                RejoinPolicy::Cold => {
                    let boot = bootstrap_of(churn_seed, view_size + 2);
                    nodes[ci].rejoin_cold(&boot, cold_seed);
                }
                RejoinPolicy::Warm => {
                    nodes[ci].rejoin_warm(is_alive);
                }
            },
            Population::Basalt(nodes) => match rejoin {
                RejoinPolicy::Cold => {
                    let k = nodes[ci].view_size() + 2;
                    let boot = bootstrap_of(churn_seed, k);
                    nodes[ci].rejoin_cold(&boot, cold_seed);
                }
                RejoinPolicy::Warm => {
                    nodes[ci].rejoin_warm();
                }
            },
            Population::Mixed(seg_nodes) => {
                let si = seg_of[ci] as usize;
                let local = ci - segs[si].start;
                match &mut seg_nodes[si] {
                    SegmentNodes::Raptee(nodes) => match rejoin {
                        RejoinPolicy::Cold => {
                            let boot = bootstrap_of(churn_seed, view_size + 2);
                            nodes[local].rejoin_cold(&boot, cold_seed);
                        }
                        RejoinPolicy::Warm => {
                            nodes[local].rejoin_warm(is_alive);
                        }
                    },
                    SegmentNodes::Basalt(nodes) => match rejoin {
                        RejoinPolicy::Cold => {
                            let k = nodes[local].view_size() + 2;
                            let boot = bootstrap_of(churn_seed, k);
                            nodes[local].rejoin_cold(&boot, cold_seed);
                        }
                        RejoinPolicy::Warm => {
                            nodes[local].rejoin_warm();
                        }
                    },
                }
            }
        }
        // A trusted rejoiner re-attests on the spot (the trusted
        // re-handshake): fresh certificate, degradation cleared.
        if self.trusted[abs] {
            if let Some(tier) = self.trust.as_mut() {
                let ttl = self.scenario.attest_ttl as u64;
                if let Ok(cert) = provisioning::renew_attestation(
                    &mut tier.service,
                    0x1000 + abs as u64,
                    round,
                    ttl,
                ) {
                    tier.degraded[abs] = false;
                    tier.expires[abs] = cert.expires_round;
                }
            }
        }
        if let Some(rec) = self.recovery.as_mut() {
            rec.restarts += 1;
            rec.pending[ci] = Some(self.round as u32);
        }
        // Audit bookkeeping: a cold rejoiner lost its sealed commitment
        // state, so its chain restarts from genesis; a warm rejoiner
        // re-commits on the existing chain. Either way the rejoin round
        // is the new detection-latency reference point.
        if let Some(aud) = self.audit.as_mut() {
            if matches!(rejoin, RejoinPolicy::Cold) {
                aud.restart_chain(abs);
            }
            aud.mark_active(abs, self.round as u32);
        }
    }

    /// Advances the trusted-tier degradation state machine: unexpired →
    /// degraded when the certificate lapses (with a 1–3 round re-attest
    /// delay), degraded → healed when the node re-attests successfully.
    /// Revoked platforms stay degraded forever.
    fn update_trust_tier(&mut self) {
        let Some(mut tier) = self.trust.take() else {
            return;
        };
        let round = self.round as u64;
        let ttl = self.scenario.attest_ttl as u64;
        for abs in self.byz_count..self.total_actors() {
            if !self.trusted[abs] {
                continue;
            }
            if tier.degraded[abs] {
                if self.alive[abs] && round >= tier.heal_at[abs] {
                    if let Ok(cert) = provisioning::renew_attestation(
                        &mut tier.service,
                        0x1000 + abs as u64,
                        round,
                        ttl,
                    ) {
                        tier.degraded[abs] = false;
                        tier.expires[abs] = cert.expires_round;
                    }
                }
            } else if round >= tier.expires[abs] {
                tier.degraded[abs] = true;
                tier.heal_at[abs] =
                    round + 1 + mix64(tier.seed ^ mix64(abs as u64) ^ mix64(round)) % 3;
            }
        }
        self.trust = Some(tier);
    }

    /// Rebuilds the proactive trusted directory when the refresh period
    /// elapses: live, effective-trusted, non-quarantined actors in
    /// index order. Never built (and the exchange pass never runs)
    /// while `Scenario::trusted_directory_refresh` is 0.
    fn refresh_trusted_directory(&mut self) {
        let period = self.scenario.trusted_directory_refresh;
        if period == 0 || !self.round.is_multiple_of(period) {
            return;
        }
        let mut dir = std::mem::take(&mut self.trusted_dir);
        dir.clear();
        for abs in self.byz_count..self.total_actors() {
            if self.trusted[abs]
                && self.alive[abs]
                && self.effective_trusted(abs)
                && !self.audit.as_ref().is_some_and(|a| a.is_quarantined(abs))
            {
                dir.push(abs as u32);
            }
        }
        self.trusted_dir = dir;
    }

    /// The audit pass of one round: every live effective-trusted node
    /// commits its view onto its chain, the challenger draws its
    /// beacon targets and audits each, convictions are purged from all
    /// honest views, and standing suspicions decay. A strict no-op —
    /// zero beacon draws, zero state — when `Scenario::audit` is off.
    fn audit_round(&mut self) {
        let Some(mut aud) = self.audit.take() else {
            return;
        };
        let round = self.round as u32;
        let total = self.total_actors();
        let byz = self.byz_count;
        // Commit phase: commitments ride the attested exchange path, so
        // a dead node or a degraded (expired) certificate suspends them.
        let mut view_buf: Vec<NodeId> = Vec::new();
        for abs in byz..total {
            if self.trusted[abs] && self.alive[abs] && self.effective_trusted(abs) {
                self.view_ids_into(abs, &mut view_buf);
                aud.commit_view(round, abs, &view_buf);
            }
        }
        // Challenge phase: beacon-drawn targets answer — or fail to.
        let mut targets = Vec::new();
        aud.draw_targets(total, &mut targets);
        let mut convicted: Vec<usize> = Vec::new();
        for t in targets {
            // The challenger observes from the high end of the index
            // space; a partition window separating it from the target
            // makes the opening undeliverable (a pure schedule lookup —
            // no latency or loss draws are consumed).
            let partitioned = self
                .net
                .as_ref()
                .is_some_and(|n| n.separated(self.round, t, total - 1));
            let response = if t < byz {
                // Byzantine responders answer, but recorded traffic and
                // chained commitment cannot both hold — the replay
                // exposes the equivocation.
                AuditResponse::Equivocation
            } else if !self.alive[t]
                || partitioned
                || (self.trusted[t] && !self.effective_trusted(t))
            {
                // Dead, churned-out or partitioned targets cannot
                // answer; an expired certificate makes the commitment
                // inadmissible (`provisioning::commitment_admissible`).
                AuditResponse::Unavailable
            } else {
                self.view_ids_into(t, &mut view_buf);
                AuditResponse::Opening { view: &view_buf }
            };
            if aud.audit(round, t, response) == Verdict::Convicted {
                convicted.push(t);
            }
        }
        if !convicted.is_empty() {
            self.purge_quarantined(&convicted);
        }
        aud.end_round(round);
        self.audit = Some(aud);
    }

    /// Copies the current view of correct actor `abs` into `out` (slot
    /// order — the leaf order of its merkle commitment).
    fn view_ids_into(&self, abs: usize, out: &mut Vec<NodeId>) {
        out.clear();
        let id = NodeId(abs as u64);
        if let Some(node) = self.node(id) {
            out.extend(node.brahms().view().ids());
        } else if let Some(node) = self.ranked(id) {
            node.for_each_sample(|id| out.push(id));
        }
    }

    /// Conviction-time purge: removes the freshly convicted identities
    /// from every honest view, waiting list and trusted directory. The
    /// pull-path blacklist keeps re-learned entries out afterwards.
    fn purge_quarantined(&mut self, convicted: &[usize]) {
        match &mut self.population {
            Population::Raptee(nodes) => {
                for node in nodes.iter_mut() {
                    for &c in convicted {
                        let id = NodeId(c as u64);
                        node.brahms_mut().view_mut().remove(id);
                        node.forget_trusted_peer(id);
                    }
                }
            }
            Population::Basalt(nodes) => {
                for node in nodes.iter_mut() {
                    for &c in convicted {
                        node.quarantine(NodeId(c as u64));
                    }
                }
            }
            Population::Mixed(seg_nodes) => {
                for nodes in seg_nodes.iter_mut() {
                    match nodes {
                        SegmentNodes::Raptee(v) => {
                            for node in v.iter_mut() {
                                for &c in convicted {
                                    let id = NodeId(c as u64);
                                    node.brahms_mut().view_mut().remove(id);
                                    node.forget_trusted_peer(id);
                                }
                            }
                        }
                        SegmentNodes::Basalt(v) => {
                            for node in v.iter_mut() {
                                for &c in convicted {
                                    node.quarantine(NodeId(c as u64));
                                }
                            }
                        }
                    }
                }
            }
        }
        self.trusted_dir
            .retain(|&a| !convicted.contains(&(a as usize)));
    }

    /// Books this round's recovery metrics: availability node-rounds,
    /// the effective-trusted live fraction, and time-to-recover for
    /// rejoiners whose smoothed pollution share has re-entered the
    /// population band (within [`STABILITY_SPREAD`] of the smoothed
    /// mean, after at least [`SMOOTHING_WINDOW`] post-restart rounds).
    fn update_recovery_metrics(&mut self) {
        let Some(mut rec) = self.recovery.take() else {
            return;
        };
        let byz = self.byz_count;
        let total = self.total_actors();
        rec.node_rounds += (total - byz) as u64;
        rec.live_node_rounds += self.alive[byz..total].iter().filter(|&&a| a).count() as u64;
        let trusted_total = self.trusted.iter().filter(|&&t| t).count();
        if trusted_total > 0 {
            let live = (byz..total)
                .filter(|&abs| self.trusted[abs] && self.alive[abs] && self.effective_trusted(abs))
                .count();
            rec.trusted_live_fraction
                .push(live as f64 / trusted_total as f64);
        }
        let stats = &self.scratch.stats;
        let mut sum = 0.0;
        let mut count = 0usize;
        for st in stats {
            if st.participated && st.has_share {
                sum += st.smoothed;
                count += 1;
            }
        }
        let mean = if count == 0 { 0.0 } else { sum / count as f64 };
        for (ci, st) in stats.iter().enumerate().take(total - byz) {
            let Some(restart) = rec.pending[ci] else {
                continue;
            };
            if st.participated
                && st.has_share
                && self.round + 1 - restart as usize >= SMOOTHING_WINDOW
                && (st.smoothed - mean).abs() <= STABILITY_SPREAD
            {
                rec.recovered += 1;
                rec.ttr_sum += (self.round + 1 - restart as usize) as u64;
                rec.pending[ci] = None;
            }
        }
        self.recovery = Some(rec);
    }

    /// Collects the honest pushes surviving the rate limiter, liveness
    /// and message loss (in sender-major order, so the loss RNG stream is
    /// unchanged), then counting-sorts them by target into `sorted`. An
    /// associated function over the delivery fields so callers can hold
    /// population borrows.
    #[allow(clippy::too_many_arguments)]
    fn collect_and_sort_pushes<'a>(
        limiter: &mut PushRateLimiter,
        loss_rng: &mut Xoshiro256StarStar,
        alive: &[bool],
        message_loss: f64,
        total: usize,
        survivors: &mut Vec<(u32, NodeIdx)>,
        sorted: &mut Vec<(u32, NodeIdx)>,
        counts: &mut Vec<u32>,
        net: &mut Option<EventNet>,
        round: usize,
        planned: impl Iterator<Item = (usize, &'a [NodeId])>,
    ) {
        survivors.clear();
        // Late pushes from earlier rounds arrive first: they are the
        // oldest messages each receiver sees, and the stable counting
        // sort preserves that ordering per target.
        if let Some(net) = net.as_mut() {
            net.drain_due_pushes(NetLane::Honest, survivors);
        }
        for (i, targets) in planned {
            let sender = NodeId(i as u64);
            let granted = limiter.try_push_n(sender, targets.len());
            for &target in &targets[..granted] {
                if !alive[target.index()] {
                    continue;
                }
                if message_loss > 0.0 && loss_rng.chance(message_loss) {
                    continue;
                }
                if let Some(net) = net.as_mut() {
                    if !net.send_push(round, i, target.index(), sender, NetLane::Honest) {
                        continue;
                    }
                }
                survivors.push((target.index() as u32, narrow(sender)));
            }
        }
        counting_sort_by_target(survivors, sorted, counts, total);
    }

    /// Charges each planned adversary push to a Byzantine identity
    /// through the rate limiter (rotating payers — the budget equals
    /// exactly B × the per-identity allowance), applies the liveness and
    /// message-loss filters, and counting-sorts the survivors by victim
    /// for the parallel apply phase. Shared by every protocol path so
    /// Brahms-vs-BASALT comparisons face provably identical adversary
    /// machinery.
    fn collect_byz_pushes(
        &mut self,
        byz_plan: &[(NodeId, NodeId)],
        survivors: &mut Vec<(u32, NodeIdx)>,
        sorted: &mut Vec<(u32, NodeIdx)>,
        counts: &mut Vec<u32>,
    ) {
        survivors.clear();
        if let Some(net) = self.net.as_mut() {
            net.drain_due_pushes(NetLane::Adversary, survivors);
        }
        let mut charge_rotor = 0usize;
        for &(victim, advertised) in byz_plan {
            let mut charged = false;
            for _ in 0..self.byz_count {
                let payer = NodeId((charge_rotor % self.byz_count.max(1)) as u64);
                charge_rotor += 1;
                if self.limiter.try_push(payer) {
                    charged = true;
                    break;
                }
            }
            if !charged {
                continue;
            }
            if !self.alive[victim.index()] {
                continue;
            }
            if self.scenario.message_loss > 0.0 && self.loss_rng.chance(self.scenario.message_loss)
            {
                continue;
            }
            if let Some(net) = self.net.as_mut() {
                // The adversary's pushes originate at the advertised
                // identity's host (injected poisoned nodes send from
                // their own addresses).
                if !net.send_push(
                    self.round,
                    advertised.index(),
                    victim.index(),
                    advertised,
                    NetLane::Adversary,
                ) {
                    continue;
                }
            }
            survivors.push((victim.index() as u32, narrow(advertised)));
        }
        // Quarantine filter: adversary pushes advertising a convicted
        // identity (including copies drained from earlier rounds) are
        // discarded — honest nodes blacklist the quarantined ID.
        if let Some(aud) = self.audit.as_ref() {
            survivors.retain(|&(_, advertised)| !aud.is_quarantined(widen(advertised).index()));
        }
        counting_sort_by_target(survivors, sorted, counts, self.total_actors());
    }

    /// Plans the adversary's pushes for this round, honouring the
    /// scenario's attack strategy: `balanced` spreads the budget evenly,
    /// `targeted` focuses a share of it on a fixed prefix of the correct
    /// nodes (deterministic per scenario; the adversary knows the
    /// membership). The planners are protocol-specific (random Byzantine
    /// IDs against Brahms/RAPTEE, distinct-ID coverage against BASALT).
    fn plan_adversary_pushes(
        &mut self,
        budget: usize,
        balanced: fn(&mut Adversary, &[NodeId], usize, &mut PushPlan),
        targeted: fn(&mut Adversary, &[NodeId], &[NodeId], usize, f64, &mut PushPlan),
        plan: &mut PushPlan,
    ) -> Option<usize> {
        // Adaptive mode: the bandit overrides the static strategy with
        // its current-best arm (uniform populations are one segment, so
        // the arm index encodes the strategy alone). The chosen arm is
        // returned so the round can feed the observed yield back.
        let (attack, arm) = match self.bandit.as_ref() {
            Some(bandit) => {
                let arm = bandit.choose();
                (
                    ADAPTIVE_STRATEGIES[arm % ADAPTIVE_STRATEGIES.len()],
                    Some(arm),
                )
            }
            None => (self.scenario.attack, None),
        };
        Self::plan_attack(
            &mut self.adversary,
            attack,
            &self.victims,
            budget,
            balanced,
            targeted,
            plan,
        );
        arm
    }

    /// The strategy-dispatching body of [`Simulation::plan_adversary_pushes`],
    /// parameterised over the victim pool so the mixed-population round
    /// can aim each segment's matching attack at that segment alone.
    #[allow(clippy::too_many_arguments)]
    fn plan_attack(
        adversary: &mut Adversary,
        attack: AttackStrategy,
        victims: &[NodeId],
        budget: usize,
        balanced: fn(&mut Adversary, &[NodeId], usize, &mut PushPlan),
        targeted: fn(&mut Adversary, &[NodeId], &[NodeId], usize, f64, &mut PushPlan),
        plan: &mut PushPlan,
    ) {
        match attack {
            AttackStrategy::Balanced => balanced(adversary, victims, budget, plan),
            AttackStrategy::Targeted {
                victim_fraction,
                focus,
            } => {
                let k = ((victims.len() as f64) * victim_fraction).round() as usize;
                let targets = &victims[..k.min(victims.len())];
                targeted(adversary, victims, targets, budget, focus, plan);
            }
            // The coverage play is family-independent: always the
            // round-robin distinct-identity planner, whatever planners
            // the victim family paired with Balanced/Targeted.
            AttackStrategy::ForcePush => {
                adversary.plan_force_pushes_into(victims, budget, plan);
            }
        }
    }

    /// Feeds the adaptive bandit the observed pollution yield of the arm
    /// it played this round: the mean Byzantine view share over the
    /// attacked segment (whole population for uniform runs). No-op when
    /// the adversary is static.
    fn bandit_reward(&mut self, stats: &[RoundStat], arm: Option<usize>) {
        let (Some(bandit), Some(arm)) = (self.bandit.as_mut(), arm) else {
            return;
        };
        let (start, len) = if self.segs.is_empty() {
            (0, stats.len())
        } else {
            let si = arm / ADAPTIVE_STRATEGIES.len();
            (self.segs[si].start, self.segs[si].len)
        };
        let mut sum = 0.0;
        let mut count = 0usize;
        for st in &stats[start..(start + len).min(stats.len())] {
            if st.participated && st.has_share {
                sum += st.share;
                count += 1;
            }
        }
        let observed = if count == 0 { 0.0 } else { sum / count as f64 };
        bandit.reward(arm, observed);
    }

    /// One Brahms/RAPTEE round (the paper's protocol loop).
    fn raptee_round(&mut self, s: &mut Scratch, workers: &mut Vec<WorkerScratch>) {
        let total = self.total_actors();
        let byz = self.byz_count;
        let stride = self.scenario.view_size;
        let (pop, alpha_count) = match &self.population {
            Population::Raptee(nodes) => (
                nodes.len(),
                nodes.first().map(|n| n.config().brahms.alpha_count()),
            ),
            Population::Basalt(_) => unreachable!("BASALT runs through basalt_round"),
            Population::Mixed(_) => unreachable!("mixed populations run through mixed_round"),
        };
        // No correct nodes: nothing to simulate (matches the historical
        // early return before the adversary planned anything).
        let Some(alpha_count) = alpha_count else {
            return;
        };

        // Phase 1 (parallel, sharded by node): plans — dead nodes do not
        // participate — plus the post-plan view snapshot that deferred
        // pull answers will reference, and the per-round reset of the
        // view-mutation flags.
        if s.snap_ids.len() != pop * stride {
            s.snap_ids.resize(pop * stride, NodeIdx(0));
        }
        {
            let Population::Raptee(nodes) = &mut self.population else {
                unreachable!()
            };
            let alive = &self.alive;
            struct Lane<'a> {
                item: PlanItem<'a, RapteeNode>,
                plan: &'a mut RoundPlan,
                mutated: &'a mut bool,
                snap: &'a mut [NodeIdx],
                snap_len: &'a mut u32,
            }
            let mut lanes: Vec<Lane> = nodes
                .iter_mut()
                .zip(s.plans.iter_mut())
                .zip(s.live.iter_mut())
                .zip(s.view_mutated.iter_mut())
                .zip(s.snap_ids.chunks_mut(stride))
                .zip(s.snap_len.iter_mut())
                .map(|(((((node, plan), live), mutated), snap), snap_len)| Lane {
                    item: PlanItem { node, live },
                    plan,
                    mutated,
                    snap,
                    snap_len,
                })
                .collect();
            rayon::par_for_each_mut(&mut lanes, |ci, lane| {
                *lane.mutated = false;
                if !alive[byz + ci] {
                    *lane.item.live = false;
                    *lane.snap_len = 0;
                    return;
                }
                lane.item.node.plan_round_into(lane.plan);
                *lane.item.live = true;
                let view = lane.item.node.brahms().view();
                for (k, e) in view.entries().iter().enumerate() {
                    lane.snap[k] = narrow(e.id);
                }
                *lane.snap_len = view.len() as u32;
            });
        }

        // Phase 2a (sequential control): honest pushes through the rate
        // limiter and loss filter, counting-sorted into per-receiver
        // runs. No per-ID node work happens here — the runs are consumed
        // by the parallel apply phase.
        {
            let Scratch {
                plans,
                live,
                survivors,
                sorted,
                counts,
                ..
            } = s;
            let planned = plans
                .iter()
                .enumerate()
                .filter(|(ci, _)| live[*ci])
                .map(|(ci, p)| (byz + ci, p.push_targets.as_slice()));
            Self::collect_and_sort_pushes(
                &mut self.limiter,
                &mut self.loss_rng,
                &self.alive,
                self.scenario.message_loss,
                total,
                survivors,
                sorted,
                counts,
                &mut self.net,
                self.round,
                planned,
            );
        }

        // Phase 2b (sequential control): the adversary's balanced
        // pushes, saturating exactly its lawful budget B·α·l1 (every
        // push charged to a Byzantine identity).
        let budget = byz * alpha_count;
        let bandit_arm = self.plan_adversary_pushes(
            budget,
            Adversary::plan_balanced_pushes_into,
            Adversary::plan_targeted_pushes_into,
            &mut s.byz_plan,
        );
        {
            let Scratch {
                byz_plan,
                byz_survivors,
                byz_sorted,
                byz_counts,
                ..
            } = s;
            let plan = std::mem::take(byz_plan);
            self.collect_byz_pushes(&plan, byz_survivors, byz_sorted, byz_counts);
            *byz_plan = plan;
        }

        // Phase 3 (sequential control): pulls. Only the shared ordered
        // streams run here — loss draws, handshakes, the adversary RNG,
        // and the (rare) trusted swaps; every untrusted answer is
        // deferred as a pull event for the parallel apply phase.
        s.events.clear();
        s.arena.clear();
        // Event model: pull answers deferred from earlier rounds arrive
        // ahead of this round's fresh pulls (they are the oldest answers
        // the requester sees). Dead requesters consume and drop theirs.
        let due = self
            .net
            .as_mut()
            .map(|n| n.take_due_answers())
            .unwrap_or_default();
        let mut due_cursor = 0usize;
        for ci in 0..pop {
            s.event_start[ci] = s.events.len() as u32;
            while due_cursor < due.len() && due[due_cursor].ci as usize <= ci {
                let ans = &due[due_cursor];
                due_cursor += 1;
                if ans.ci as usize != ci {
                    continue;
                }
                // First delivered copy claims the answer nonce; deadline
                // retransmits and injected duplicates are suppressed.
                let fresh = self.net.as_mut().is_none_or(|n| n.accept_answer(ans.nonce));
                if fresh && s.live[ci] {
                    let start = s.arena.len() as u32;
                    s.arena.extend(ans.ids.iter().map(|&id| narrow(id)));
                    s.events.push(PullEvent::Arena {
                        start,
                        len: ans.ids.len() as u32,
                    });
                }
            }
            if !s.live[ci] {
                continue;
            }
            let n_pulls = s.plans[ci].pull_targets.len();
            for k in 0..n_pulls {
                let target = s.plans[ci].pull_targets[k];
                self.control_pull(ci, target, s);
            }
        }
        s.event_start[pop] = s.events.len() as u32;
        if let Some(net) = self.net.as_mut() {
            net.restore_due_answers(due);
        }

        // Phase 3b (sequential): proactive trusted exchanges. Each
        // trusted node initiates one exchange with the oldest entry of
        // its trusted directory (framework criterion (1): round-robin
        // probing) — the mechanism that keeps a sparse trusted
        // population meeting every round once discovered. Swaps here
        // cannot invalidate snapshot-deferred answers: those reference
        // the frozen snapshot arena, not the live views.
        if self.scenario.trusted_swap {
            let Population::Raptee(nodes) = &mut self.population else {
                unreachable!()
            };
            for ci in 0..pop {
                let abs = byz + ci;
                if !Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), abs) {
                    continue;
                }
                let Some(partner) = nodes[ci].trusted_partner() else {
                    continue;
                };
                if partner.index() == abs || !self.alive[abs] {
                    continue;
                }
                if !self.alive[partner.index()] {
                    // Timeout: forget the dead trusted peer.
                    nodes[ci].forget_trusted_peer(partner);
                    continue;
                }
                if !Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), partner.index())
                {
                    // The partner is alive but its certificate lapsed:
                    // skip the exchange without forgetting it — it will
                    // re-attest and answer again.
                    continue;
                }
                assert!(
                    partner.index() >= byz,
                    "directory entries are authenticated trusted peers"
                );
                let (a, b) = two_nodes(nodes, ci, partner.index() - byz);
                RapteeNode::trusted_swap_kind(a, b, false);
            }
        }

        // Phase 4 (sequential): adversary observation pulls
        // (identification attack).
        if self.scenario.identification_attack && byz > 0 {
            let beta_count = alpha_count; // α = β in the paper's config
            let Population::Raptee(nodes) = &self.population else {
                unreachable!()
            };
            for _ in 0..byz {
                self.adversary.observation_targets_into(
                    &self.ident_candidates,
                    beta_count,
                    &mut s.observed,
                );
                for idx in 0..s.observed.len() {
                    let t = s.observed[idx];
                    let view = nodes[t.index() - byz].brahms().view();
                    if view.is_empty() {
                        continue;
                    }
                    let byz_in_view = view.ids().filter(|id| id.index() < byz).count();
                    let share = byz_in_view as f64 / view.len() as f64;
                    self.adversary.record_share(t, share);
                }
            }
        }

        // Phase 5 (parallel apply, sharded by node): stream
        // reconstruction from the shared arenas, round finalisation and
        // per-node metric observation into the stat slots.
        let validation_due = self.scenario.sampler_validation_period > 0
            && (self.round + 1).is_multiple_of(self.scenario.sampler_validation_period);
        {
            let Population::Raptee(nodes) = &mut self.population else {
                unreachable!()
            };
            let Scratch {
                stats,
                events,
                event_start,
                arena,
                snap_ids,
                snap_len,
                sorted,
                counts,
                byz_sorted,
                byz_counts,
                ..
            } = s;
            let (events, event_start) = (&events[..], &event_start[..]);
            let (arena, snap_ids, snap_len) = (&arena[..], &snap_ids[..], &snap_len[..]);
            let (sorted, counts) = (&sorted[..], &counts[..]);
            let (byz_sorted, byz_counts) = (&byz_sorted[..], &byz_counts[..]);
            let alive = &self.alive;
            let adversary = &self.adversary;
            let mut items: Vec<FinishItem<RapteeNode>> = nodes
                .iter_mut()
                .zip(stats.iter_mut())
                .zip(self.discovery.rows_mut())
                .zip(self.share_rings.rows_mut())
                .map(|(((node, stat), disc), ring)| FinishItem {
                    node,
                    stat,
                    disc,
                    ring,
                })
                .collect();
            rayon::par_for_each_scratch(&mut items, workers, |ws, ci, it| {
                let abs = byz + ci;
                *it.stat = RoundStat::default();
                if !alive[abs] {
                    return;
                }
                it.stat.participated = true;
                if validation_due {
                    // Brahms sampler validation: probe sampled nodes,
                    // re-draw the samplers whose sample is dead.
                    let brahms = it.node.brahms_mut();
                    let (sampler, rng) = brahms.sampler_and_rng_mut();
                    sampler.validate(|id| alive.get(id.index()).copied().unwrap_or(false), rng);
                }
                let me = NodeId(abs as u64);
                // Push stream: the honest counting-sorted run, then the
                // adversary's run — each receiver's historical arrival
                // order, with the `record_push` self-filter.
                ws.pushed.clear();
                let (h0, h1) = run_bounds(counts, abs);
                ws.pushed.extend(
                    sorted[h0..h1]
                        .iter()
                        .map(|&(_, sender)| widen(sender))
                        .filter(|&x| x != me),
                );
                let (b0, b1) = run_bounds(byz_counts, abs);
                ws.pushed.extend(
                    byz_sorted[b0..b1]
                        .iter()
                        .map(|&(_, advertised)| widen(advertised))
                        .filter(|&x| x != me),
                );
                // Untrusted pull stream, reconstructed in delivery order.
                ws.untrusted.clear();
                let e0 = event_start[ci] as usize;
                let e1 = event_start[ci + 1] as usize;
                for ev in &events[e0..e1] {
                    match ev {
                        PullEvent::Snapshot { responder } => {
                            let r = *responder as usize;
                            let base = r * stride;
                            ws.untrusted.extend(
                                snap_ids[base..base + snap_len[r] as usize]
                                    .iter()
                                    .map(|&i| widen(i)),
                            );
                        }
                        PullEvent::Arena { start, len } => {
                            let (a, b) = (*start as usize, (*start + *len) as usize);
                            ws.untrusted.extend(arena[a..b].iter().map(|&i| widen(i)));
                        }
                        PullEvent::ByzReplay { rng } => {
                            let mut rng = rng.clone();
                            adversary.replay_pull_answer(&mut rng, &mut ws.idx, &mut ws.reply);
                            ws.untrusted.extend_from_slice(&ws.reply);
                        }
                    }
                }
                let outcome = it.node.finish_round_streamed(
                    &ws.pushed,
                    &mut ws.untrusted,
                    (e1 - e0) as u32,
                    &mut ws.pulled,
                    &mut ws.finish,
                );
                it.stat.evicted = outcome.evicted as u32;
                it.stat.flood = outcome.report.push_flood_detected;
                // Discovery counts an ID once it has *entered the
                // dynamic view* (matching the paper's round counts; IDs
                // merely seen in transit — or evicted — do not count).
                let mut len = 0usize;
                let mut byz_in_view = 0usize;
                for id in it.node.brahms().view().ids() {
                    len += 1;
                    if id.index() < byz {
                        byz_in_view += 1;
                    } else if id.index() < total {
                        it.disc.insert(id.index());
                    }
                }
                it.stat.discovered = it.disc.count() as u32;
                if len > 0 {
                    let share = byz_in_view as f64 / len as f64;
                    it.stat.share = share;
                    it.stat.has_share = true;
                    it.stat.smoothed = it.ring.push_and_mean(share);
                }
            });
        }

        // Fold (sequential, node-index order — float accumulation order
        // is exactly the historical per-actor loop's).
        self.fold_round_stats(&s.stats);
        self.bandit_reward(&s.stats, bandit_arm);

        if self.scenario.identification_attack {
            let flagged = self
                .adversary
                .classify_trusted(self.scenario.identification_threshold);
            let trusted = &self.trusted;
            let n = self.scenario.n;
            // Ground truth: genuine trusted nodes (injected ones are the
            // adversary's own and excluded).
            let actual = trusted[byz..n].iter().filter(|&&t| t).count();
            let result = IdentificationResult::evaluate(
                &flagged,
                |id| id.index() < n && trusted[id.index()],
                actual,
                self.round,
            );
            let better = match &self.best_identification {
                None => true,
                Some(best) => result.f1 > best.f1,
            };
            if better {
                self.best_identification = Some(result);
            }
        }
    }

    /// One pull of the sequential exchange pass: replicates the
    /// historical `handle_pull` control flow but defers untrusted
    /// answers as [`PullEvent`]s instead of copying IDs.
    fn control_pull(&mut self, requester_ci: usize, target: NodeId, s: &mut Scratch) {
        let byz = self.byz_count;
        let requester_abs = byz + requester_ci;
        let t = target.index();
        if t == requester_abs || t >= self.total_actors() {
            return;
        }
        // A convicted (quarantined) target is blacklisted before any
        // connection or RNG draw: drop it from the view and the trusted
        // directory, like a dead-peer timeout.
        if self.audit.as_ref().is_some_and(|a| a.is_quarantined(t)) {
            let Population::Raptee(nodes) = &mut self.population else {
                unreachable!()
            };
            let node = &mut nodes[requester_ci];
            node.brahms_mut().view_mut().remove(target);
            node.forget_trusted_peer(target);
            s.view_mutated[requester_ci] = true;
            return;
        }
        // Event model: reachability gating and round-trip timing. A
        // refused exchange never opens a connection, so (unlike a crash
        // timeout) the requester drops nothing and no loss RNG draw
        // happens — at the zero-latency config no exchange is ever
        // refused and this is a pass-through.
        let gate = match self.net.as_mut() {
            Some(net) => net.gate_pull(self.round, requester_abs, t),
            None => PullGate::Inline,
        };
        if gate == PullGate::Refused {
            return;
        }
        let Population::Raptee(nodes) = &mut self.population else {
            unreachable!()
        };
        // A crashed responder times out: the requester learns nothing
        // and drops the stale link (Cyclon-style timeout handling). Any
        // in-flight retransmit copies die with the exchange.
        if !self.alive[t] {
            let node = &mut nodes[requester_ci];
            node.brahms_mut().view_mut().remove(target);
            node.forget_trusted_peer(target);
            s.view_mutated[requester_ci] = true;
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
            return;
        }
        if self.scenario.message_loss > 0.0 && self.loss_rng.chance(self.scenario.message_loss) {
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
            return; // request or answer lost in transit
        }
        if t < byz {
            // Byzantine responders fail authentication (random keys) and
            // answer with exclusively Byzantine IDs. The coordinator RNG
            // must advance here, in event order; the answer itself is
            // regenerated in parallel from the pre-draw snapshot.
            let snapshot = self.adversary.rng_snapshot();
            self.adversary.pull_answer_into(&mut s.reply);
            if let PullGate::Deferred { round, held } = gate {
                // The answer was drawn now (the adversary's RNG advances
                // in event order) but lands in a later round.
                let ids = s.reply.clone();
                if let Some(net) = self.net.as_mut() {
                    net.queue_answer(round, held, requester_ci as u32, target, ids);
                }
            } else {
                s.events.push(PullEvent::ByzReplay { rng: snapshot });
            }
            return;
        }
        let tc = t - byz;
        // Effective trust: an expired attestation certificate fails the
        // freshness check even though the group keys still agree, so a
        // degraded pair's exchange falls back to the untrusted path.
        let both_trusted =
            Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), requester_abs)
                && Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), t);
        let outcome_trusted = if self.scenario.real_crypto_handshakes {
            let (a, b) = two_nodes(nodes, requester_ci, tc);
            let (oa, ob) = RapteeNode::run_handshake(a, b);
            debug_assert_eq!(oa, ob);
            debug_assert_eq!(
                oa == AuthOutcome::Trusted,
                self.trusted[requester_abs] && self.trusted[t]
            );
            oa == AuthOutcome::Trusted && both_trusted
        } else {
            both_trusted
        };
        if outcome_trusted {
            // Trusted exchanges apply inline even when the gate deferred
            // the answer (the attested channel is synchronous); drop any
            // pending retransmit copies so they cannot double-deliver.
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
        }
        if outcome_trusted && self.scenario.trusted_swap {
            let (a, b) = two_nodes(nodes, requester_ci, tc);
            RapteeNode::trusted_swap(a, b);
            s.view_mutated[requester_ci] = true;
            s.view_mutated[tc] = true;
        } else if outcome_trusted {
            // The swap-disabled ablation: the pair still recognises each
            // other, so the answer bypasses eviction, but no half-view
            // exchange happens. Trusted answers are rare — record them
            // immediately from the live view.
            s.reply.clear();
            s.reply.extend(nodes[tc].brahms().view().ids());
            nodes[requester_ci].record_trusted_pull(&s.reply);
        } else if let PullGate::Deferred { round, held } = gate {
            // An untrusted answer crossing a round boundary: materialise
            // the responder's view *now* (the answer reflects the state
            // at request time) and deliver it in a later round.
            let ids: Vec<NodeId> = nodes[tc].brahms().view().ids().collect();
            if let Some(net) = self.net.as_mut() {
                net.queue_answer(round, held, requester_ci as u32, target, ids);
            }
        } else {
            // An untrusted answer: the responder's full view at this
            // moment. If the responder's view is still exactly its
            // post-plan snapshot, defer by reference; otherwise copy the
            // live view into the answer arena.
            if !s.view_mutated[tc] {
                s.events.push(PullEvent::Snapshot {
                    responder: tc as u32,
                });
            } else {
                let start = s.arena.len() as u32;
                s.arena.extend(nodes[tc].brahms().view().ids().map(narrow));
                let len = s.arena.len() as u32 - start;
                s.events.push(PullEvent::Arena { start, len });
            }
        }
    }

    /// One BASALT round: pushes and pulls ranked on arrival, the
    /// adversary running the force-push attack, periodic seed rotation at
    /// round end. Shares the rate limiter, message-loss and crash
    /// machinery with the Brahms/RAPTEE path. Planning, push application
    /// and finalisation shard across workers; the pull phase stays
    /// sequential because ranked views make answers order-dependent
    /// across nodes.
    fn basalt_round(&mut self, s: &mut Scratch, workers: &mut Vec<WorkerScratch>) {
        let total = self.total_actors();
        let byz = self.byz_count;
        let (pop, push_count) = match &self.population {
            Population::Basalt(nodes) => (nodes.len(), nodes.first().map(|n| n.push_count())),
            Population::Raptee(_) => unreachable!("Brahms/RAPTEE runs through raptee_round"),
            Population::Mixed(_) => unreachable!("mixed populations run through mixed_round"),
        };
        // No correct nodes: nothing to simulate.
        let Some(push_count) = push_count else {
            return;
        };

        // Phase 1 (parallel): plans — dead nodes do not participate.
        {
            let Population::Basalt(nodes) = &mut self.population else {
                unreachable!()
            };
            let alive = &self.alive;
            struct Lane<'a> {
                item: PlanItem<'a, RankedNode>,
                plan: &'a mut BasaltPlan,
            }
            let mut lanes: Vec<Lane> = nodes
                .iter_mut()
                .zip(s.basalt_plans.iter_mut())
                .zip(s.live.iter_mut())
                .map(|((node, plan), live)| Lane {
                    item: PlanItem { node, live },
                    plan,
                })
                .collect();
            rayon::par_for_each_mut(&mut lanes, |ci, lane| {
                if alive[byz + ci] {
                    lane.item.node.plan_round_into(lane.plan);
                    *lane.item.live = true;
                } else {
                    *lane.item.live = false;
                }
            });
        }

        // Phase 2a (sequential control): honest pushes (each node
        // advertises itself) through the rate limiter, counting-sorted
        // into per-receiver runs.
        {
            let Scratch {
                basalt_plans,
                live,
                survivors,
                sorted,
                counts,
                ..
            } = s;
            let planned = basalt_plans
                .iter()
                .enumerate()
                .filter(|(ci, _)| live[*ci])
                .map(|(ci, p)| (byz + ci, p.push_targets.as_slice()));
            Self::collect_and_sort_pushes(
                &mut self.limiter,
                &mut self.loss_rng,
                &self.alive,
                self.scenario.message_loss,
                total,
                survivors,
                sorted,
                counts,
                &mut self.net,
                self.round,
                planned,
            );
        }

        // Phase 2b (sequential control): the adversary's force pushes —
        // maximal identity coverage at exactly its lawful budget
        // B·push_count, every push charged to a Byzantine identity.
        let budget = byz * push_count;
        let bandit_arm = self.plan_adversary_pushes(
            budget,
            Adversary::plan_force_pushes_into,
            Adversary::plan_targeted_force_pushes_into,
            &mut s.byz_plan,
        );
        {
            let Scratch {
                byz_plan,
                byz_survivors,
                byz_sorted,
                byz_counts,
                ..
            } = s;
            let plan = std::mem::take(byz_plan);
            self.collect_byz_pushes(&plan, byz_survivors, byz_sorted, byz_counts);
            *byz_plan = plan;
        }

        // Phase 2-apply (parallel, sharded by receiver): rank the honest
        // run, then the adversary's run, into each receiver's
        // hit-counter view; honest senders count as discovered.
        {
            let Population::Basalt(nodes) = &mut self.population else {
                unreachable!()
            };
            let Scratch {
                sorted,
                counts,
                byz_sorted,
                byz_counts,
                ..
            } = s;
            let (sorted, counts) = (&sorted[..], &counts[..]);
            let (byz_sorted, byz_counts) = (&byz_sorted[..], &byz_counts[..]);
            struct Lane<'a> {
                node: &'a mut RankedNode,
                disc: DiscoveryLane<'a>,
            }
            let mut lanes: Vec<Lane> = nodes
                .iter_mut()
                .zip(self.discovery.rows_mut())
                .map(|(node, disc)| Lane { node, disc })
                .collect();
            rayon::par_for_each_mut(&mut lanes, |ci, lane| {
                let abs = byz + ci;
                let (h0, h1) = run_bounds(counts, abs);
                for &(_, sender) in &sorted[h0..h1] {
                    let sender = widen(sender);
                    lane.node.record_push(sender);
                    if sender.index() >= byz && sender.index() < total {
                        lane.disc.insert(sender.index());
                    }
                }
                let (b0, b1) = run_bounds(byz_counts, abs);
                for &(_, advertised) in &byz_sorted[b0..b1] {
                    lane.node.record_push(widen(advertised));
                }
            });
        }

        // Phase 3 (sequential): pull exchanges, least-confirmed samples
        // first. Order-dependent across nodes (every answer is ranked on
        // arrival and shapes later answers), so this phase does not
        // shard. Under the event model, answers deferred from earlier
        // rounds rank first (oldest arrivals), then this round's fresh
        // exchanges.
        let due = self
            .net
            .as_mut()
            .map(|n| n.take_due_answers())
            .unwrap_or_default();
        let mut due_cursor = 0usize;
        for ci in 0..pop {
            while due_cursor < due.len() && due[due_cursor].ci as usize <= ci {
                let ans = &due[due_cursor];
                due_cursor += 1;
                if ans.ci as usize != ci {
                    continue;
                }
                let fresh = self.net.as_mut().is_none_or(|n| n.accept_answer(ans.nonce));
                if !fresh || !s.live[ci] {
                    continue;
                }
                let Population::Basalt(nodes) = &mut self.population else {
                    unreachable!()
                };
                nodes[ci].record_pull_answer(ans.from, &ans.ids);
                note_discovered(&mut self.discovery, byz, total, ci, ans.from);
                for &id in &ans.ids {
                    note_discovered(&mut self.discovery, byz, total, ci, id);
                }
            }
            if !s.live[ci] {
                continue;
            }
            let n_pulls = s.basalt_plans[ci].pull_targets.len();
            for k in 0..n_pulls {
                let target = s.basalt_plans[ci].pull_targets[k];
                self.basalt_pull(ci, target, s);
            }
        }
        if let Some(net) = self.net.as_mut() {
            net.restore_due_answers(due);
        }

        // Phase 4 (parallel): finalisation (seed rotation) + metrics
        // over the per-slot samples.
        {
            let Population::Basalt(nodes) = &mut self.population else {
                unreachable!()
            };
            let alive = &self.alive;
            let mut items: Vec<FinishItem<RankedNode>> = nodes
                .iter_mut()
                .zip(s.stats.iter_mut())
                .zip(self.discovery.rows_mut())
                .zip(self.share_rings.rows_mut())
                .map(|(((node, stat), disc), ring)| FinishItem {
                    node,
                    stat,
                    disc,
                    ring,
                })
                .collect();
            rayon::par_for_each_mut(&mut items, |ci, it| {
                *it.stat = RoundStat::default();
                if !alive[byz + ci] {
                    return;
                }
                it.stat.participated = true;
                // Quarantine drain before finalisation: a no-op for
                // BASALT/LIFT uniform configs (wlist disabled), live for
                // Honeybee, whose verified walk endpoints pass the
                // reachability probe here.
                it.node
                    .drain_wlist(|id| alive.get(id.index()).copied().unwrap_or(false));
                it.stat.rotated = it.node.finish_round() as u32;
                let mut len = 0usize;
                let mut byz_in_view = 0usize;
                it.node.for_each_sample(|id| {
                    len += 1;
                    if id.index() < byz {
                        byz_in_view += 1;
                    } else if id.index() < total {
                        it.disc.insert(id.index());
                    }
                });
                it.stat.discovered = it.disc.count() as u32;
                if len > 0 {
                    let share = byz_in_view as f64 / len as f64;
                    it.stat.share = share;
                    it.stat.has_share = true;
                    it.stat.smoothed = it.ring.push_and_mean(share);
                }
            });
        }
        let _ = workers; // ranked-family finalisation needs no per-worker arenas

        self.fold_round_stats(&s.stats);
        self.bandit_reward(&s.stats, bandit_arm);
    }

    /// One BASALT pull exchange of the sequential phase: the responder's
    /// distinct view flows back (through the round's reusable reply
    /// buffer) and is ranked immediately; the responder learns the
    /// requester (exchanges are bidirectional contacts).
    fn basalt_pull(&mut self, requester_ci: usize, target: NodeId, s: &mut Scratch) {
        let byz = self.byz_count;
        let total = self.total_actors();
        let requester_abs = byz + requester_ci;
        let t = target.index();
        if t == requester_abs || t >= total {
            return;
        }
        // Quarantine blacklist (see `control_pull`): evict before any
        // connection or RNG draw.
        if self.audit.as_ref().is_some_and(|a| a.is_quarantined(t)) {
            let Population::Basalt(nodes) = &mut self.population else {
                unreachable!()
            };
            nodes[requester_ci].quarantine(target);
            return;
        }
        // Event model: reachability gating and round-trip timing (see
        // `control_pull` — refusals happen before any RNG draw).
        let gate = match self.net.as_mut() {
            Some(net) => net.gate_pull(self.round, requester_abs, t),
            None => PullGate::Inline,
        };
        if gate == PullGate::Refused {
            return;
        }
        // A crashed responder times out; its stale samples are recycled
        // by seed rotation rather than an explicit removal. In-flight
        // retransmit copies die with the exchange.
        if !self.alive[t] {
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
            return;
        }
        if self.scenario.message_loss > 0.0 && self.loss_rng.chance(self.scenario.message_loss) {
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
            return; // request or answer lost in transit
        }
        let Population::Basalt(nodes) = &mut self.population else {
            unreachable!()
        };
        if t < byz {
            // Byzantine responders answer with exclusively Byzantine IDs
            // — rank-blind poison the hit-counter view absorbs.
            self.adversary.pull_answer_into(&mut s.reply);
        } else {
            nodes[t - byz].pull_answer_into(&mut s.reply);
        }
        if let PullGate::Deferred { round, held } = gate {
            // The answer reflects the responder's state at request time
            // but ranks at the requester in a later round.
            if let Some(net) = self.net.as_mut() {
                net.queue_answer(round, held, requester_ci as u32, target, s.reply.clone());
            }
        } else {
            nodes[requester_ci].record_pull_answer(target, &s.reply);
            // Discovery under BASALT counts *ranked candidates*: the view
            // is deliberately stable (slots converge to their distance
            // minima), so the Brahms "entered the dynamic view" criterion
            // would measure rotation pacing, not knowledge. A candidate
            // that has been ranked against every slot has genuinely been
            // discovered.
            note_discovered(&mut self.discovery, byz, total, requester_ci, target);
            for idx in 0..s.reply.len() {
                note_discovered(&mut self.discovery, byz, total, requester_ci, s.reply[idx]);
            }
        }
        // The request itself arrives synchronously (requests are tiny;
        // only answers carry enough state to matter across rounds), so
        // the responder's contact bookkeeping stays inline.
        let requester_id = NodeId(requester_abs as u64);
        if t >= byz {
            nodes[t - byz].record_push(requester_id);
            note_discovered(&mut self.discovery, byz, total, t - byz, requester_id);
        }
    }

    /// One mixed-population round: the same phase-parallel structure as
    /// the uniform engines, driven per segment over the shared scratch
    /// arenas. Shared sequential streams (rate limiter, loss RNG,
    /// adversary coordinator RNG) are consumed in segment-layout order,
    /// so a population with a single segment replays the uniform round's
    /// draw sequence exactly (pinned by `tests/determinism.rs`).
    fn mixed_round(&mut self, s: &mut Scratch, workers: &mut Vec<WorkerScratch>) {
        let total = self.total_actors();
        let byz = self.byz_count;
        let stride = self.scenario.view_size;
        let pop = self.population.len();
        if pop == 0 {
            return;
        }

        // Phase 1 (parallel, per segment): plans. Raptee-family rows
        // also snapshot their post-plan views (for deferred answers) and
        // reset the per-round view-mutation flags.
        if s.snap_ids.len() != pop * stride {
            s.snap_ids.resize(pop * stride, NodeIdx(0));
        }
        {
            let Population::Mixed(seg_nodes) = &mut self.population else {
                unreachable!()
            };
            let alive = &self.alive;
            for (seg, nodes) in self.segs.iter().zip(seg_nodes.iter_mut()) {
                let start = seg.start;
                match nodes {
                    SegmentNodes::Raptee(nodes) => {
                        struct Lane<'a> {
                            item: PlanItem<'a, RapteeNode>,
                            plan: &'a mut RoundPlan,
                            mutated: &'a mut bool,
                            snap: &'a mut [NodeIdx],
                            snap_len: &'a mut u32,
                        }
                        let mut lanes: Vec<Lane> = nodes
                            .iter_mut()
                            .zip(s.plans[start..start + seg.len].iter_mut())
                            .zip(s.live[start..start + seg.len].iter_mut())
                            .zip(s.view_mutated[start..start + seg.len].iter_mut())
                            .zip(
                                s.snap_ids[start * stride..(start + seg.len) * stride]
                                    .chunks_mut(stride),
                            )
                            .zip(s.snap_len[start..start + seg.len].iter_mut())
                            .map(|(((((node, plan), live), mutated), snap), snap_len)| Lane {
                                item: PlanItem { node, live },
                                plan,
                                mutated,
                                snap,
                                snap_len,
                            })
                            .collect();
                        rayon::par_for_each_mut(&mut lanes, |i, lane| {
                            *lane.mutated = false;
                            if !alive[byz + start + i] {
                                *lane.item.live = false;
                                *lane.snap_len = 0;
                                return;
                            }
                            lane.item.node.plan_round_into(lane.plan);
                            *lane.item.live = true;
                            let view = lane.item.node.brahms().view();
                            for (k, e) in view.entries().iter().enumerate() {
                                lane.snap[k] = narrow(e.id);
                            }
                            *lane.snap_len = view.len() as u32;
                        });
                    }
                    SegmentNodes::Basalt(nodes) => {
                        struct Lane<'a> {
                            item: PlanItem<'a, RankedNode>,
                            plan: &'a mut BasaltPlan,
                        }
                        let mut lanes: Vec<Lane> = nodes
                            .iter_mut()
                            .zip(s.basalt_plans[start..start + seg.len].iter_mut())
                            .zip(s.live[start..start + seg.len].iter_mut())
                            .map(|((node, plan), live)| Lane {
                                item: PlanItem { node, live },
                                plan,
                            })
                            .collect();
                        rayon::par_for_each_mut(&mut lanes, |i, lane| {
                            if alive[byz + start + i] {
                                lane.item.node.plan_round_into(lane.plan);
                                *lane.item.live = true;
                            } else {
                                *lane.item.live = false;
                            }
                        });
                    }
                }
            }
        }

        // Phase 2a (sequential control): honest pushes from every
        // segment, in population-index order, through the shared rate
        // limiter and loss filter.
        {
            let Scratch {
                plans,
                basalt_plans,
                live,
                survivors,
                sorted,
                counts,
                ..
            } = s;
            let (plans, basalt_plans, live) = (&plans[..], &basalt_plans[..], &live[..]);
            let segs = &self.segs;
            let planned = segs.iter().flat_map(|seg| {
                let basalt = seg.ranked_cfg.is_some();
                (seg.start..seg.start + seg.len)
                    .filter(move |&ci| live[ci])
                    .map(move |ci| {
                        let targets = if basalt {
                            basalt_plans[ci].push_targets.as_slice()
                        } else {
                            plans[ci].push_targets.as_slice()
                        };
                        (byz + ci, targets)
                    })
            });
            Self::collect_and_sort_pushes(
                &mut self.limiter,
                &mut self.loss_rng,
                &self.alive,
                self.scenario.message_loss,
                total,
                survivors,
                sorted,
                counts,
                &mut self.net,
                self.round,
                planned,
            );
        }

        // Phase 2b (sequential control): the adversary's segment-matched
        // attacks — balanced/targeted random-ID pushes against
        // Brahms-family segments, distinct-ID force pushes against
        // BASALT-family segments — sharing one lawful budget split
        // proportionally to segment sizes, then one combined delivery
        // pass through the limiter.
        let limiter_fanout = self.segs.iter().map(|x| x.fanout).max().unwrap_or(1);
        let total_budget = byz * limiter_fanout;
        s.byz_plan.clear();
        // Adaptive mode: instead of the static proportional split, the
        // bandit concentrates the entire lawful budget on its chosen
        // (segment, strategy) arm; every other segment gets zero this
        // round. The arm is fed its observed yield after the fold.
        let bandit_arm = self.bandit.as_ref().map(|b| b.choose());
        {
            let mut assigned = 0usize;
            for si in 0..self.segs.len() {
                let (budget, attack) = match bandit_arm {
                    Some(arm) => {
                        let budget = if si == arm / ADAPTIVE_STRATEGIES.len() {
                            total_budget
                        } else {
                            0
                        };
                        (budget, ADAPTIVE_STRATEGIES[arm % ADAPTIVE_STRATEGIES.len()])
                    }
                    None => {
                        let budget = if si + 1 == self.segs.len() {
                            total_budget - assigned
                        } else {
                            total_budget * self.segs[si].len / pop
                        };
                        (budget, self.scenario.attack)
                    }
                };
                assigned += budget;
                if self.segs[si].ranked_cfg.is_some() {
                    Self::plan_attack(
                        &mut self.adversary,
                        attack,
                        &self.segs[si].victims,
                        budget,
                        Adversary::plan_force_pushes_into,
                        Adversary::plan_targeted_force_pushes_into,
                        &mut s.byz_seg_plan,
                    );
                } else {
                    Self::plan_attack(
                        &mut self.adversary,
                        attack,
                        &self.segs[si].victims,
                        budget,
                        Adversary::plan_balanced_pushes_into,
                        Adversary::plan_targeted_pushes_into,
                        &mut s.byz_seg_plan,
                    );
                }
                s.byz_plan.extend_from_slice(&s.byz_seg_plan);
            }
        }
        {
            let Scratch {
                byz_plan,
                byz_survivors,
                byz_sorted,
                byz_counts,
                ..
            } = s;
            let plan = std::mem::take(byz_plan);
            self.collect_byz_pushes(&plan, byz_survivors, byz_sorted, byz_counts);
            *byz_plan = plan;
        }

        // Phase 2c (parallel, per BASALT segment): rank the delivered
        // push runs into the hit-counter views (BASALT consumes pushes
        // before the pull phase; the Brahms family consumes its runs at
        // finish time, like the uniform engines).
        {
            let Population::Mixed(seg_nodes) = &mut self.population else {
                unreachable!()
            };
            let Scratch {
                sorted,
                counts,
                byz_sorted,
                byz_counts,
                ..
            } = s;
            let (sorted, counts) = (&sorted[..], &counts[..]);
            let (byz_sorted, byz_counts) = (&byz_sorted[..], &byz_counts[..]);
            for (seg, nodes) in self.segs.iter().zip(seg_nodes.iter_mut()) {
                let SegmentNodes::Basalt(nodes) = nodes else {
                    continue;
                };
                let start = seg.start;
                struct Lane<'a> {
                    node: &'a mut RankedNode,
                    disc: DiscoveryLane<'a>,
                }
                let mut lanes: Vec<Lane> = nodes
                    .iter_mut()
                    .zip(self.discovery.rows_mut().skip(start).take(seg.len))
                    .map(|(node, disc)| Lane { node, disc })
                    .collect();
                rayon::par_for_each_mut(&mut lanes, |i, lane| {
                    let abs = byz + start + i;
                    let (h0, h1) = run_bounds(counts, abs);
                    for &(_, sender) in &sorted[h0..h1] {
                        let sender = widen(sender);
                        lane.node.record_push(sender);
                        if sender.index() >= byz && sender.index() < total {
                            lane.disc.insert(sender.index());
                        }
                    }
                    let (b0, b1) = run_bounds(byz_counts, abs);
                    for &(_, advertised) in &byz_sorted[b0..b1] {
                        lane.node.record_push(widen(advertised));
                    }
                });
            }
        }

        // Phase 3 (sequential): pulls in population-index order, each
        // requester running its own family's exchange control flow.
        // Under the event model, answers deferred from earlier rounds
        // deliver first, through the requester's own family path.
        s.events.clear();
        s.arena.clear();
        let due = self
            .net
            .as_mut()
            .map(|n| n.take_due_answers())
            .unwrap_or_default();
        let mut due_cursor = 0usize;
        for si in 0..self.segs.len() {
            let (start, len) = (self.segs[si].start, self.segs[si].len);
            let is_basalt = self.segs[si].ranked_cfg.is_some();
            for ci in start..start + len {
                s.event_start[ci] = s.events.len() as u32;
                while due_cursor < due.len() && due[due_cursor].ci as usize <= ci {
                    let ans = &due[due_cursor];
                    due_cursor += 1;
                    if ans.ci as usize != ci {
                        continue;
                    }
                    let fresh = self.net.as_mut().is_none_or(|n| n.accept_answer(ans.nonce));
                    if !fresh || !s.live[ci] {
                        continue;
                    }
                    if is_basalt {
                        let Population::Mixed(seg_nodes) = &mut self.population else {
                            unreachable!()
                        };
                        let SegmentNodes::Basalt(nodes) = &mut seg_nodes[si] else {
                            unreachable!()
                        };
                        nodes[ci - start].record_pull_answer(ans.from, &ans.ids);
                        note_discovered(&mut self.discovery, byz, total, ci, ans.from);
                        for &id in &ans.ids {
                            note_discovered(&mut self.discovery, byz, total, ci, id);
                        }
                    } else {
                        let a0 = s.arena.len() as u32;
                        s.arena.extend(ans.ids.iter().map(|&id| narrow(id)));
                        s.events.push(PullEvent::Arena {
                            start: a0,
                            len: ans.ids.len() as u32,
                        });
                    }
                }
                if !s.live[ci] {
                    continue;
                }
                if is_basalt {
                    let n_pulls = s.basalt_plans[ci].pull_targets.len();
                    for k in 0..n_pulls {
                        let target = s.basalt_plans[ci].pull_targets[k];
                        self.mixed_basalt_pull(ci, target, s);
                    }
                } else {
                    let n_pulls = s.plans[ci].pull_targets.len();
                    for k in 0..n_pulls {
                        let target = s.plans[ci].pull_targets[k];
                        self.mixed_control_pull(ci, target, s);
                    }
                }
            }
        }
        s.event_start[pop] = s.events.len() as u32;
        if let Some(net) = self.net.as_mut() {
            net.restore_due_answers(due);
        }

        // Phase 3b (sequential): proactive trusted exchanges of the
        // Raptee segment (directory round-robin, as in the uniform
        // engine). BASALT-family trusted nodes have no directory — their
        // trusted exchanges are opportunistic, on the pull path.
        if self.scenario.trusted_swap {
            let Population::Mixed(seg_nodes) = &mut self.population else {
                unreachable!()
            };
            for (seg, nodes) in self.segs.iter().zip(seg_nodes.iter_mut()) {
                let SegmentNodes::Raptee(nodes) = nodes else {
                    continue;
                };
                for local in 0..seg.len {
                    let abs = byz + seg.start + local;
                    if !Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), abs) {
                        continue;
                    }
                    let Some(partner) = nodes[local].trusted_partner() else {
                        continue;
                    };
                    if partner.index() == abs || !self.alive[abs] {
                        continue;
                    }
                    if !self.alive[partner.index()] {
                        nodes[local].forget_trusted_peer(partner);
                        continue;
                    }
                    if !Self::effective_trusted_in(
                        &self.trusted,
                        self.trust.as_ref(),
                        partner.index(),
                    ) {
                        // Degraded partner: skip, don't forget (see the
                        // uniform phase 3b).
                        continue;
                    }
                    assert!(
                        partner.index() >= byz,
                        "directory entries are authenticated trusted peers"
                    );
                    let pc = partner.index() - byz;
                    assert!(
                        pc >= seg.start && pc < seg.start + seg.len,
                        "Raptee trusted partners live in the Raptee segment"
                    );
                    let (a, b) = two_nodes(nodes, local, pc - seg.start);
                    RapteeNode::trusted_swap_kind(a, b, false);
                }
            }
        }

        // Phase 3c (sequential): proactive BASALT trusted exchanges off
        // the engine-level directory (`Scenario::trusted_directory_refresh`)
        // — the hybrid's counterpart of the Raptee directory
        // round-robin, so trusted swaps and audit coverage don't depend
        // on random encounter. Partner draws come from a dedicated hash
        // stream; with the refresh off the directory is empty and this
        // pass vanishes.
        if self.scenario.trusted_directory_refresh > 0 && self.trusted_dir.len() > 1 {
            let dir_seed = mix64(self.scenario.seed ^ TRUSTED_DIR_SALT);
            let round_tag = mix64(self.round as u64);
            let dir = std::mem::take(&mut self.trusted_dir);
            for &abs_u in &dir {
                let abs = abs_u as usize;
                let ci = abs - byz;
                if !self.alive[abs]
                    || !Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), abs)
                {
                    continue;
                }
                if self.segs[self.seg_of[ci] as usize].ranked_cfg.is_none() {
                    continue; // Raptee trusted nodes already ran phase 3b
                }
                let mut pick =
                    (mix64(dir_seed ^ round_tag ^ mix64(abs as u64)) % dir.len() as u64) as usize;
                if dir[pick] as usize == abs {
                    pick = (pick + 1) % dir.len();
                }
                let partner_abs = dir[pick] as usize;
                let pc = partner_abs - byz;
                if partner_abs == abs
                    || !self.alive[partner_abs]
                    || !Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), partner_abs)
                    || self.segs[self.seg_of[pc] as usize].ranked_cfg.is_none()
                {
                    continue;
                }
                // Bidirectional attested swap (the `mixed_basalt_pull`
                // both-trusted idiom): each side's distinct view ranks
                // into the other, bypassing the waiting lists.
                {
                    let Population::Mixed(seg_nodes) = &mut self.population else {
                        unreachable!()
                    };
                    {
                        let partner = basalt_at(seg_nodes, &self.segs, &self.seg_of, pc);
                        partner.pull_answer_into(&mut s.reply);
                    }
                    basalt_at(seg_nodes, &self.segs, &self.seg_of, ci)
                        .record_pull_answer_trusted(NodeId(partner_abs as u64), &s.reply);
                }
                note_discovered(
                    &mut self.discovery,
                    byz,
                    total,
                    ci,
                    NodeId(partner_abs as u64),
                );
                for idx in 0..s.reply.len() {
                    note_discovered(&mut self.discovery, byz, total, ci, s.reply[idx]);
                }
                {
                    let Population::Mixed(seg_nodes) = &mut self.population else {
                        unreachable!()
                    };
                    {
                        let me = basalt_at(seg_nodes, &self.segs, &self.seg_of, ci);
                        me.pull_answer_into(&mut s.observed);
                    }
                    basalt_at(seg_nodes, &self.segs, &self.seg_of, pc)
                        .record_pull_answer_trusted(NodeId(abs as u64), &s.observed);
                }
                note_discovered(&mut self.discovery, byz, total, pc, NodeId(abs as u64));
                for idx in 0..s.observed.len() {
                    note_discovered(&mut self.discovery, byz, total, pc, s.observed[idx]);
                }
            }
            self.trusted_dir = dir;
        }

        // Phase 4 (parallel, per segment): round finalisation. Raptee
        // segments reconstruct their push/pull streams from the shared
        // arenas (identical to the uniform apply phase); BASALT segments
        // verify their waiting lists (probe contacts succeed iff the
        // candidate is alive), then finalise.
        let validation_due = self.scenario.sampler_validation_period > 0
            && (self.round + 1).is_multiple_of(self.scenario.sampler_validation_period);
        {
            let Population::Mixed(seg_nodes) = &mut self.population else {
                unreachable!()
            };
            let Scratch {
                stats,
                events,
                event_start,
                arena,
                snap_ids,
                snap_len,
                sorted,
                counts,
                byz_sorted,
                byz_counts,
                ..
            } = s;
            let (events, event_start) = (&events[..], &event_start[..]);
            let (arena, snap_ids, snap_len) = (&arena[..], &snap_ids[..], &snap_len[..]);
            let (sorted, counts) = (&sorted[..], &counts[..]);
            let (byz_sorted, byz_counts) = (&byz_sorted[..], &byz_counts[..]);
            let alive = &self.alive;
            let adversary = &self.adversary;
            for (seg, nodes) in self.segs.iter().zip(seg_nodes.iter_mut()) {
                let start = seg.start;
                match nodes {
                    SegmentNodes::Raptee(nodes) => {
                        let mut items: Vec<FinishItem<RapteeNode>> = nodes
                            .iter_mut()
                            .zip(stats[start..start + seg.len].iter_mut())
                            .zip(self.discovery.rows_mut().skip(start).take(seg.len))
                            .zip(self.share_rings.rows_mut().skip(start).take(seg.len))
                            .map(|(((node, stat), disc), ring)| FinishItem {
                                node,
                                stat,
                                disc,
                                ring,
                            })
                            .collect();
                        rayon::par_for_each_scratch(&mut items, workers, |ws, i, it| {
                            let ci = start + i;
                            let abs = byz + ci;
                            *it.stat = RoundStat::default();
                            if !alive[abs] {
                                return;
                            }
                            it.stat.participated = true;
                            if validation_due {
                                let brahms = it.node.brahms_mut();
                                let (sampler, rng) = brahms.sampler_and_rng_mut();
                                sampler.validate(
                                    |id| alive.get(id.index()).copied().unwrap_or(false),
                                    rng,
                                );
                            }
                            let me = NodeId(abs as u64);
                            ws.pushed.clear();
                            let (h0, h1) = run_bounds(counts, abs);
                            ws.pushed.extend(
                                sorted[h0..h1]
                                    .iter()
                                    .map(|&(_, sender)| widen(sender))
                                    .filter(|&x| x != me),
                            );
                            let (b0, b1) = run_bounds(byz_counts, abs);
                            ws.pushed.extend(
                                byz_sorted[b0..b1]
                                    .iter()
                                    .map(|&(_, advertised)| widen(advertised))
                                    .filter(|&x| x != me),
                            );
                            ws.untrusted.clear();
                            let e0 = event_start[ci] as usize;
                            let e1 = event_start[ci + 1] as usize;
                            for ev in &events[e0..e1] {
                                match ev {
                                    PullEvent::Snapshot { responder } => {
                                        let r = *responder as usize;
                                        let base = r * stride;
                                        ws.untrusted.extend(
                                            snap_ids[base..base + snap_len[r] as usize]
                                                .iter()
                                                .map(|&i| widen(i)),
                                        );
                                    }
                                    PullEvent::Arena { start, len } => {
                                        let (a, b) = (*start as usize, (*start + *len) as usize);
                                        ws.untrusted.extend(arena[a..b].iter().map(|&i| widen(i)));
                                    }
                                    PullEvent::ByzReplay { rng } => {
                                        let mut rng = rng.clone();
                                        adversary.replay_pull_answer(
                                            &mut rng,
                                            &mut ws.idx,
                                            &mut ws.reply,
                                        );
                                        ws.untrusted.extend_from_slice(&ws.reply);
                                    }
                                }
                            }
                            let outcome = it.node.finish_round_streamed(
                                &ws.pushed,
                                &mut ws.untrusted,
                                (e1 - e0) as u32,
                                &mut ws.pulled,
                                &mut ws.finish,
                            );
                            it.stat.evicted = outcome.evicted as u32;
                            it.stat.flood = outcome.report.push_flood_detected;
                            let mut len = 0usize;
                            let mut byz_in_view = 0usize;
                            for id in it.node.brahms().view().ids() {
                                len += 1;
                                if id.index() < byz {
                                    byz_in_view += 1;
                                } else if id.index() < total {
                                    it.disc.insert(id.index());
                                }
                            }
                            it.stat.discovered = it.disc.count() as u32;
                            if len > 0 {
                                let share = byz_in_view as f64 / len as f64;
                                it.stat.share = share;
                                it.stat.has_share = true;
                                it.stat.smoothed = it.ring.push_and_mean(share);
                            }
                        });
                    }
                    SegmentNodes::Basalt(nodes) => {
                        let mut items: Vec<FinishItem<RankedNode>> = nodes
                            .iter_mut()
                            .zip(stats[start..start + seg.len].iter_mut())
                            .zip(self.discovery.rows_mut().skip(start).take(seg.len))
                            .zip(self.share_rings.rows_mut().skip(start).take(seg.len))
                            .map(|(((node, stat), disc), ring)| FinishItem {
                                node,
                                stat,
                                disc,
                                ring,
                            })
                            .collect();
                        rayon::par_for_each_mut(&mut items, |i, it| {
                            let abs = byz + start + i;
                            *it.stat = RoundStat::default();
                            if !alive[abs] {
                                return;
                            }
                            it.stat.participated = true;
                            it.node
                                .drain_wlist(|id| alive.get(id.index()).copied().unwrap_or(false));
                            it.stat.rotated = it.node.finish_round() as u32;
                            let mut len = 0usize;
                            let mut byz_in_view = 0usize;
                            it.node.for_each_sample(|id| {
                                len += 1;
                                if id.index() < byz {
                                    byz_in_view += 1;
                                } else if id.index() < total {
                                    it.disc.insert(id.index());
                                }
                            });
                            it.stat.discovered = it.disc.count() as u32;
                            if len > 0 {
                                let share = byz_in_view as f64 / len as f64;
                                it.stat.share = share;
                                it.stat.has_share = true;
                                it.stat.smoothed = it.ring.push_and_mean(share);
                            }
                        });
                    }
                }
            }
        }

        self.fold_round_stats(&s.stats);
        self.bandit_reward(&s.stats, bandit_arm);
    }

    /// One pull of the mixed sequential exchange pass for a
    /// Raptee-family requester: the uniform [`Simulation::control_pull`]
    /// control flow (role-based auth shortcut — mixed mode forbids real
    /// handshakes), extended with BASALT-family responders, whose ranked
    /// answers are always materialised (their views mutate during the
    /// pull phase) and who treat the incoming exchange as a contact.
    fn mixed_control_pull(&mut self, requester_ci: usize, target: NodeId, s: &mut Scratch) {
        let byz = self.byz_count;
        let total = self.total_actors();
        let requester_abs = byz + requester_ci;
        let t = target.index();
        if t == requester_abs || t >= total {
            return;
        }
        // Quarantine blacklist (see `control_pull`): drop before any
        // connection or RNG draw.
        if self.audit.as_ref().is_some_and(|a| a.is_quarantined(t)) {
            let Population::Mixed(seg_nodes) = &mut self.population else {
                unreachable!()
            };
            let node = raptee_at(seg_nodes, &self.segs, &self.seg_of, requester_ci);
            node.brahms_mut().view_mut().remove(target);
            node.forget_trusted_peer(target);
            s.view_mutated[requester_ci] = true;
            return;
        }
        // Event model: reachability gating and round-trip timing (see
        // `control_pull`).
        let gate = match self.net.as_mut() {
            Some(net) => net.gate_pull(self.round, requester_abs, t),
            None => PullGate::Inline,
        };
        if gate == PullGate::Refused {
            return;
        }
        if !self.alive[t] {
            let Population::Mixed(seg_nodes) = &mut self.population else {
                unreachable!()
            };
            let node = raptee_at(seg_nodes, &self.segs, &self.seg_of, requester_ci);
            node.brahms_mut().view_mut().remove(target);
            node.forget_trusted_peer(target);
            s.view_mutated[requester_ci] = true;
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
            return;
        }
        if self.scenario.message_loss > 0.0 && self.loss_rng.chance(self.scenario.message_loss) {
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
            return;
        }
        if t < byz {
            let snapshot = self.adversary.rng_snapshot();
            self.adversary.pull_answer_into(&mut s.reply);
            if let PullGate::Deferred { round, held } = gate {
                let ids = s.reply.clone();
                if let Some(net) = self.net.as_mut() {
                    net.queue_answer(round, held, requester_ci as u32, target, ids);
                }
            } else {
                s.events.push(PullEvent::ByzReplay { rng: snapshot });
            }
            return;
        }
        let tc = t - byz;
        let both_trusted =
            Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), requester_abs)
                && Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), t);
        if both_trusted {
            // Trusted exchanges apply inline even when deferred by the
            // gate — discard pending retransmit copies (see
            // `control_pull`).
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
        }
        let target_basalt = self.segs[self.seg_of[tc] as usize].ranked_cfg.is_some();
        let Population::Mixed(seg_nodes) = &mut self.population else {
            unreachable!()
        };
        if !target_basalt {
            if both_trusted && self.scenario.trusted_swap {
                let si = self.seg_of[requester_ci] as usize;
                debug_assert_eq!(
                    si, self.seg_of[tc] as usize,
                    "trusted Raptee nodes share one segment"
                );
                let start = self.segs[si].start;
                let SegmentNodes::Raptee(nodes) = &mut seg_nodes[si] else {
                    unreachable!()
                };
                let (a, b) = two_nodes(nodes, requester_ci - start, tc - start);
                RapteeNode::trusted_swap(a, b);
                s.view_mutated[requester_ci] = true;
                s.view_mutated[tc] = true;
            } else if both_trusted {
                s.reply.clear();
                {
                    let responder = raptee_at(seg_nodes, &self.segs, &self.seg_of, tc);
                    s.reply.extend(responder.brahms().view().ids());
                }
                raptee_at(seg_nodes, &self.segs, &self.seg_of, requester_ci)
                    .record_trusted_pull(&s.reply);
            } else if let PullGate::Deferred { round, held } = gate {
                // An untrusted answer crossing a round boundary (trusted
                // exchanges above run over the attested synchronous
                // channel and stay inline).
                let ids: Vec<NodeId> = raptee_at(seg_nodes, &self.segs, &self.seg_of, tc)
                    .brahms()
                    .view()
                    .ids()
                    .collect();
                if let Some(net) = self.net.as_mut() {
                    net.queue_answer(round, held, requester_ci as u32, target, ids);
                }
            } else if !s.view_mutated[tc] {
                s.events.push(PullEvent::Snapshot {
                    responder: tc as u32,
                });
            } else {
                let start = s.arena.len() as u32;
                {
                    let responder = raptee_at(seg_nodes, &self.segs, &self.seg_of, tc);
                    s.arena.extend(responder.brahms().view().ids().map(narrow));
                }
                let len = s.arena.len() as u32 - start;
                s.events.push(PullEvent::Arena { start, len });
            }
        } else {
            {
                let responder = basalt_at(seg_nodes, &self.segs, &self.seg_of, tc);
                responder.pull_answer_into(&mut s.reply);
            }
            if both_trusted {
                // Cross-family mutual trust: no view-format-compatible
                // swap exists, but the attested answer bypasses eviction.
                raptee_at(seg_nodes, &self.segs, &self.seg_of, requester_ci)
                    .record_trusted_pull(&s.reply);
            } else if let PullGate::Deferred { round, held } = gate {
                let ids = s.reply.clone();
                if let Some(net) = self.net.as_mut() {
                    net.queue_answer(round, held, requester_ci as u32, target, ids);
                }
            } else {
                let start = s.arena.len() as u32;
                s.arena.extend(s.reply.iter().map(|&id| narrow(id)));
                let len = s.arena.len() as u32 - start;
                s.events.push(PullEvent::Arena { start, len });
            }
            let requester_id = NodeId(requester_abs as u64);
            basalt_at(seg_nodes, &self.segs, &self.seg_of, tc).record_push(requester_id);
            note_discovered(&mut self.discovery, byz, total, tc, requester_id);
        }
    }

    /// One pull exchange of the mixed pass for a BASALT-family
    /// requester: the uniform [`Simulation::basalt_pull`] flow, extended
    /// with the hybrid's trusted exchange (a bidirectional full-view
    /// swap bypassing both waiting lists) and Brahms-family responders
    /// (whose dynamic view answers; the Brahms protocol has no
    /// responder-side hook for an incoming exchange).
    fn mixed_basalt_pull(&mut self, requester_ci: usize, target: NodeId, s: &mut Scratch) {
        let byz = self.byz_count;
        let total = self.total_actors();
        let requester_abs = byz + requester_ci;
        let t = target.index();
        if t == requester_abs || t >= total {
            return;
        }
        // Quarantine blacklist (see `control_pull`): evict before any
        // connection or RNG draw.
        if self.audit.as_ref().is_some_and(|a| a.is_quarantined(t)) {
            let Population::Mixed(seg_nodes) = &mut self.population else {
                unreachable!()
            };
            basalt_at(seg_nodes, &self.segs, &self.seg_of, requester_ci).quarantine(target);
            return;
        }
        // Event model: reachability gating and round-trip timing (see
        // `control_pull`).
        let gate = match self.net.as_mut() {
            Some(net) => net.gate_pull(self.round, requester_abs, t),
            None => PullGate::Inline,
        };
        if gate == PullGate::Refused {
            return;
        }
        if !self.alive[t] {
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
            return;
        }
        if self.scenario.message_loss > 0.0 && self.loss_rng.chance(self.scenario.message_loss) {
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
            return;
        }
        let requester_id = NodeId(requester_abs as u64);
        if t < byz {
            self.adversary.pull_answer_into(&mut s.reply);
            if let PullGate::Deferred { round, held } = gate {
                let ids = s.reply.clone();
                if let Some(net) = self.net.as_mut() {
                    net.queue_answer(round, held, requester_ci as u32, target, ids);
                }
                return;
            }
            let Population::Mixed(seg_nodes) = &mut self.population else {
                unreachable!()
            };
            basalt_at(seg_nodes, &self.segs, &self.seg_of, requester_ci)
                .record_pull_answer(target, &s.reply);
            note_discovered(&mut self.discovery, byz, total, requester_ci, target);
            for idx in 0..s.reply.len() {
                note_discovered(&mut self.discovery, byz, total, requester_ci, s.reply[idx]);
            }
            return;
        }
        let tc = t - byz;
        let both_trusted =
            Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), requester_abs)
                && Self::effective_trusted_in(&self.trusted, self.trust.as_ref(), t);
        if both_trusted {
            // Trusted exchanges apply inline regardless of the gate —
            // discard pending retransmit copies (see `control_pull`).
            if let Some(net) = self.net.as_mut() {
                net.drop_pending_copies();
            }
        }
        let target_basalt = self.segs[self.seg_of[tc] as usize].ranked_cfg.is_some();
        let Population::Mixed(seg_nodes) = &mut self.population else {
            unreachable!()
        };
        if target_basalt {
            {
                let responder = basalt_at(seg_nodes, &self.segs, &self.seg_of, tc);
                responder.pull_answer_into(&mut s.reply);
            }
            if let (PullGate::Deferred { round, held }, false) = (gate, both_trusted) {
                // Untrusted cross-round answer; the responder-side
                // contact bookkeeping below stays inline (the request
                // arrives synchronously).
                let ids = s.reply.clone();
                if let Some(net) = self.net.as_mut() {
                    net.queue_answer(round, held, requester_ci as u32, target, ids);
                }
            } else {
                let requester = basalt_at(seg_nodes, &self.segs, &self.seg_of, requester_ci);
                if both_trusted {
                    requester.record_pull_answer_trusted(target, &s.reply);
                } else {
                    requester.record_pull_answer(target, &s.reply);
                }
                note_discovered(&mut self.discovery, byz, total, requester_ci, target);
                for idx in 0..s.reply.len() {
                    note_discovered(&mut self.discovery, byz, total, requester_ci, s.reply[idx]);
                }
            }
            if both_trusted {
                // The swap's reverse half: the requester's attested
                // distinct view ranks into the responder, bypassing its
                // waiting list.
                {
                    let requester = basalt_at(seg_nodes, &self.segs, &self.seg_of, requester_ci);
                    requester.pull_answer_into(&mut s.observed);
                }
                basalt_at(seg_nodes, &self.segs, &self.seg_of, tc)
                    .record_pull_answer_trusted(requester_id, &s.observed);
                note_discovered(&mut self.discovery, byz, total, tc, requester_id);
                for idx in 0..s.observed.len() {
                    note_discovered(&mut self.discovery, byz, total, tc, s.observed[idx]);
                }
            } else {
                basalt_at(seg_nodes, &self.segs, &self.seg_of, tc).record_push(requester_id);
                note_discovered(&mut self.discovery, byz, total, tc, requester_id);
            }
        } else {
            s.reply.clear();
            {
                let responder = raptee_at(seg_nodes, &self.segs, &self.seg_of, tc);
                s.reply.extend(responder.brahms().view().ids());
            }
            if let (PullGate::Deferred { round, held }, false) = (gate, both_trusted) {
                let ids = s.reply.clone();
                if let Some(net) = self.net.as_mut() {
                    net.queue_answer(round, held, requester_ci as u32, target, ids);
                }
                return;
            }
            let requester = basalt_at(seg_nodes, &self.segs, &self.seg_of, requester_ci);
            if both_trusted {
                requester.record_pull_answer_trusted(target, &s.reply);
            } else {
                requester.record_pull_answer(target, &s.reply);
            }
            note_discovered(&mut self.discovery, byz, total, requester_ci, target);
            for idx in 0..s.reply.len() {
                note_discovered(&mut self.discovery, byz, total, requester_ci, s.reply[idx]);
            }
        }
    }

    /// Folds the apply phase's per-node stat slots, in node-index order,
    /// into the run counters and this round's [`RoundAccumulator`], then
    /// into the run series. Mixed populations additionally fold each
    /// segment's mean raw share and mean discovered fraction into its
    /// per-segment series — the combined accumulator sees exactly the
    /// same addition sequence either way.
    fn fold_round_stats(&mut self, stats: &[RoundStat]) {
        let mut acc = RoundAccumulator::new();
        if self.segs.is_empty() {
            for stat in stats {
                self.accumulate_stat(stat, &mut acc);
            }
        } else {
            let target_pool = (self.non_byz_total as f64).max(1.0);
            for si in 0..self.segs.len() {
                let (start, len) = (self.segs[si].start, self.segs[si].len);
                let mut seg_sum = 0.0;
                let mut seg_count = 0usize;
                let mut seg_disc_sum = 0usize;
                let mut seg_disc_count = 0usize;
                for stat in &stats[start..start + len] {
                    self.accumulate_stat(stat, &mut acc);
                    if !stat.participated {
                        continue;
                    }
                    seg_disc_sum += stat.discovered as usize;
                    seg_disc_count += 1;
                    if stat.has_share {
                        seg_sum += stat.share;
                        seg_count += 1;
                    }
                }
                self.seg_series[si].push(if seg_count == 0 {
                    0.0
                } else {
                    seg_sum / seg_count as f64
                });
                self.seg_discovered_series[si].push(if seg_disc_count == 0 {
                    0.0
                } else {
                    seg_disc_sum as f64 / seg_disc_count as f64 / target_pool
                });
            }
        }
        self.finish_round_metrics(&acc, stats);
    }

    /// Folds one node's round outcome into the run counters and the
    /// round accumulator (extracted so the uniform and segmented folds
    /// share the exact accumulation order).
    fn accumulate_stat(&mut self, stat: &RoundStat, acc: &mut RoundAccumulator) {
        if !stat.participated {
            return;
        }
        self.total_evicted += u64::from(stat.evicted);
        if stat.flood {
            self.floods_detected += 1;
        }
        self.seed_rotations += u64::from(stat.rotated);
        acc.discovered_sum += stat.discovered as usize;
        acc.discovered_nodes += 1;
        if (stat.discovered as usize) < self.discovery_target {
            acc.all_discovered = false;
        }
        if stat.has_share {
            acc.smoothed_sum += stat.smoothed;
            acc.smoothed_count += 1;
            acc.share_sum += stat.share;
            acc.share_count += 1;
        }
    }

    /// Folds one round's [`RoundAccumulator`] into the run series:
    /// pollution curve, discovery round, mean-discovery series and the
    /// spread-stability detector. `stats` re-enters only for the spread
    /// check, which streams over the stat slots instead of a buffered
    /// share vector — no per-(node,round) allocation remains.
    fn finish_round_metrics(&mut self, acc: &RoundAccumulator, stats: &[RoundStat]) {
        let mean_share = if acc.share_count == 0 {
            0.0
        } else {
            acc.share_sum / acc.share_count as f64
        };
        self.byz_share_series.push(mean_share);

        if self.discovery_round.is_none() && acc.all_discovered {
            self.discovery_round = Some(self.round);
        }
        if acc.discovered_nodes > 0 {
            let target_pool = (self.non_byz_total as f64).max(1.0);
            self.mean_discovered_series
                .push(acc.discovered_sum as f64 / acc.discovered_nodes as f64 / target_pool);
        }
        // Spread stability (the paper's criterion): every non-Byzantine
        // node's pollution within STABILITY_SPREAD of the average. Each
        // node's share is smoothed over SMOOTHING_WINDOW rounds first —
        // at reduced view sizes a single view entry moves the raw share
        // by 5-10 points of pure quantisation noise, which would make the
        // criterion unreachable regardless of convergence. The smoothed
        // criterion stays gated by laggard nodes, like the original. The
        // running smoothed sum accumulates in node-index order, exactly
        // the addition sequence of the historical buffered sum.
        let smoothed_mean = if acc.smoothed_count == 0 {
            0.0
        } else {
            acc.smoothed_sum / acc.smoothed_count as f64
        };
        if self.spread_stability_round.is_none()
            && self.round + 1 >= SMOOTHING_WINDOW
            && acc.smoothed_count > 0
            && stats
                .iter()
                .filter(|st| st.participated && st.has_share)
                .all(|st| (st.smoothed - smoothed_mean).abs() <= STABILITY_SPREAD)
        {
            self.spread_stability_round = Some(self.round);
        }
    }

    /// Mean of the last `tail_window` entries of a share series — the
    /// resilience metric.
    fn tail_mean(series: &[f64], tail_window: usize) -> f64 {
        let tail = tail_window.min(series.len());
        if tail == 0 {
            0.0
        } else {
            series[series.len() - tail..].iter().sum::<f64>() / tail as f64
        }
    }

    fn into_result(self) -> RunResult {
        let resilience = Self::tail_mean(&self.byz_share_series, self.scenario.tail_window);
        let stability_round = self
            .spread_stability_round
            .or_else(|| crate::metrics::series_stability_round(&self.byz_share_series, resilience));
        let mean_discovery_round = crate::metrics::fractional_crossing(
            &self.mean_discovered_series,
            crate::metrics::DISCOVERY_TARGET_SHARE,
        );
        // Per-segment pollution, discovery and stability: one entry per
        // population segment (a uniform run is one segment covering
        // everything, so `segments` is never empty and combined ==
        // segments[0]).
        let segments: Vec<SegmentResult> = if self.segs.is_empty() {
            vec![SegmentResult {
                protocol: self.scenario.protocol,
                nodes: self.population.len(),
                resilience,
                mean_discovery_round,
                stability_round,
                byz_share_series: self.byz_share_series.clone(),
            }]
        } else {
            self.segs
                .iter()
                .zip(&self.seg_series)
                .zip(&self.seg_discovered_series)
                .map(|((seg, series), disc_series)| {
                    let seg_resilience = Self::tail_mean(series, self.scenario.tail_window);
                    SegmentResult {
                        protocol: seg.protocol,
                        nodes: seg.len,
                        resilience: seg_resilience,
                        mean_discovery_round: crate::metrics::fractional_crossing(
                            disc_series,
                            crate::metrics::DISCOVERY_TARGET_SHARE,
                        ),
                        stability_round: crate::metrics::series_stability_round(
                            series,
                            seg_resilience,
                        ),
                        byz_share_series: series.clone(),
                    }
                })
                .collect()
        };
        // Virtual time: event runs measure ticks, round runs count one
        // tick per round. `finish` drains the queue, counting messages
        // still in flight.
        let (virtual_ticks, net) = match self.net {
            Some(n) => (self.round as u64 * n.round_ticks(), Some(n.finish())),
            None => (self.round as u64, None),
        };
        // Recovery metrics exist only when dynamic churn or attestation
        // expiry ran — the all-off configuration reports `None` and
        // pre-existing results compare (and hash) unchanged.
        let recovery = self.recovery.map(|rec| RecoveryStats {
            availability: if rec.node_rounds == 0 {
                1.0
            } else {
                rec.live_node_rounds as f64 / rec.node_rounds as f64
            },
            crashes: rec.crashes,
            restarts: rec.restarts,
            recovered: rec.recovered,
            mean_time_to_recover: (rec.recovered > 0)
                .then(|| rec.ttr_sum as f64 / rec.recovered as f64),
            trusted_live_fraction: rec.trusted_live_fraction,
        });
        // Audit stats exist only when the challenger ran — `None`
        // otherwise, so audit-off results compare (and hash) unchanged.
        let audit = self.audit.map(Challenger::into_stats);
        RunResult {
            resilience,
            discovery_round: self.discovery_round,
            mean_discovery_round,
            stability_round,
            spread_stability_round: self.spread_stability_round,
            byz_share_series: self.byz_share_series,
            identification: self.best_identification,
            rounds: self.round,
            floods_detected: self.floods_detected,
            total_evicted: self.total_evicted,
            seed_rotations: self.seed_rotations,
            segments,
            virtual_ticks,
            net,
            recovery,
            audit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Protocol;
    use raptee::EvictionPolicy;

    fn small(protocol: Protocol) -> Scenario {
        Scenario {
            n: 120,
            byzantine_fraction: 0.1,
            trusted_fraction: 0.05,
            view_size: 12,
            sample_size: 12,
            rounds: 90,
            tail_window: 10,
            protocol,
            seed: 424242,
            ..Scenario::default()
        }
    }

    #[test]
    fn brahms_run_converges_below_catastrophe() {
        let result = Simulation::new(small(Protocol::Brahms)).run();
        assert_eq!(result.rounds, 90);
        assert!(result.resilience > 0.0, "some pollution is inevitable");
        assert!(
            result.resilience < 0.9,
            "Brahms keeps the adversary below near-total control: {}",
            result.resilience
        );
        assert_eq!(result.byz_share_series.len(), 90);
    }

    #[test]
    fn raptee_beats_brahms_at_equal_workload() {
        // A healthy share of trusted nodes so the effect clears run-to-run
        // noise at this small scale (the full sweeps in the bench harness
        // cover the small-t regime with repetitions).
        let mut scenario = small(Protocol::Raptee);
        scenario.trusted_fraction = 0.2;
        let brahms = Simulation::new(scenario.brahms_baseline()).run();
        let raptee = Simulation::new(scenario).run();
        assert!(
            raptee.resilience < brahms.resilience,
            "RAPTEE {} should improve on Brahms {}",
            raptee.resilience,
            brahms.resilience
        );
    }

    #[test]
    fn discovery_and_stability_reached_in_calm_runs() {
        let result = Simulation::new(small(Protocol::Brahms)).run();
        assert!(
            result.mean_discovery_round.is_some(),
            "mean discovery must complete: series tail {:?}",
            result.byz_share_series.last()
        );
        assert!(
            result.stability_round.is_some(),
            "stability must be reached"
        );
        if let (Some(all), Some(mean)) = (result.discovery_round, result.mean_discovery_round) {
            assert!(
                all as f64 >= mean.floor(),
                "all-nodes discovery cannot precede the mean"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Simulation::new(small(Protocol::Raptee)).run();
        let b = Simulation::new(small(Protocol::Raptee)).run();
        assert_eq!(a, b);
        let mut other = small(Protocol::Raptee);
        other.seed = 99;
        let c = Simulation::new(other).run();
        assert_ne!(a.byz_share_series, c.byz_share_series);
    }

    #[test]
    fn real_crypto_handshakes_match_shortcut() {
        let mut with_crypto = small(Protocol::Raptee);
        with_crypto.real_crypto_handshakes = true;
        with_crypto.rounds = 12;
        let mut shortcut = with_crypto.clone();
        shortcut.real_crypto_handshakes = false;
        // The handshake outcome is key equality either way; the RNG
        // streams differ (nonce draws), so compare qualitative behaviour:
        // both runs complete and produce sane shares.
        let a = Simulation::new(with_crypto).run();
        let b = Simulation::new(shortcut).run();
        assert_eq!(a.rounds, b.rounds);
        assert!((a.resilience - b.resilience).abs() < 0.25);
    }

    #[test]
    fn eviction_only_happens_under_raptee() {
        let brahms = Simulation::new(small(Protocol::Brahms)).run();
        assert_eq!(brahms.total_evicted, 0);
        let mut s = small(Protocol::Raptee);
        s.eviction = EvictionPolicy::Fixed(0.8);
        let raptee = Simulation::new(s).run();
        assert!(raptee.total_evicted > 0);
    }

    #[test]
    fn identification_attack_produces_result() {
        let mut s = small(Protocol::Raptee);
        s.identification_attack = true;
        s.eviction = EvictionPolicy::Fixed(1.0); // most detectable config
        s.trusted_fraction = 0.2;
        let result = Simulation::new(s).run();
        let ident = result.identification.expect("attack enabled");
        assert!(ident.precision >= 0.0 && ident.precision <= 1.0);
        assert!(ident.recall >= 0.0 && ident.recall <= 1.0);
    }

    #[test]
    fn injected_nodes_join_population() {
        let mut s = small(Protocol::Raptee);
        s.injected_poisoned_fraction = 0.1;
        let sim = Simulation::new(s.clone());
        assert_eq!(sim.total_actors(), s.total_actors());
        // The injected trusted nodes start with fully Byzantine views.
        let first_injected = NodeId(s.n as u64);
        assert!(sim.is_trusted(first_injected));
        let node = sim.node(first_injected).unwrap();
        assert!(node
            .brahms()
            .view()
            .ids()
            .all(|id| id.index() < s.byzantine_count()));
        let result = sim.run();
        assert_eq!(result.rounds, s.rounds);
    }

    #[test]
    fn message_loss_slows_but_does_not_break() {
        let mut s = small(Protocol::Brahms);
        s.message_loss = 0.5;
        s.rounds = 30;
        let r = Simulation::new(s).run();
        assert_eq!(r.rounds, 30);
        assert!(r.resilience < 0.95);
    }

    #[test]
    fn crash_marks_nodes_dead_and_views_recover() {
        let mut s = small(Protocol::Brahms);
        s.churn = crate::scenario::ChurnSchedule::one_shot(0.2, 10);
        s.rounds = 30;
        let byz = s.byzantine_count();
        let n = s.n;
        let mut sim = Simulation::new(s);
        for _ in 0..30 {
            sim.run_round();
        }
        let dead = (byz..n)
            .filter(|&i| !sim.is_alive(NodeId(i as u64)))
            .count();
        let expected = ((n - byz) as f64 * 0.2).round() as usize;
        assert_eq!(dead, expected);
        // Survivors keep full views despite the departures.
        for i in byz..n {
            let id = NodeId(i as u64);
            if sim.is_alive(id) {
                assert!(!sim.node(id).unwrap().brahms().view().is_empty());
            }
        }
    }

    #[test]
    fn targeted_attack_runs() {
        let mut s = small(Protocol::Brahms);
        s.attack = crate::scenario::AttackStrategy::Targeted {
            victim_fraction: 0.1,
            focus: 0.7,
        };
        s.rounds = 20;
        let r = Simulation::new(s).run();
        assert_eq!(r.rounds, 20);
    }

    #[test]
    fn role_queries() {
        let s = small(Protocol::Raptee);
        let byz = s.byzantine_count();
        let sim = Simulation::new(s);
        assert!(sim.is_byzantine(NodeId(0)));
        assert!(!sim.is_byzantine(NodeId(byz as u64)));
        assert!(sim.is_trusted(NodeId(byz as u64)));
        assert!(sim.node(NodeId(0)).is_none());
        assert!(sim.node(NodeId(byz as u64)).is_some());
    }

    #[test]
    fn basalt_beats_brahms_under_balanced_attack() {
        // The head-to-head the BASALT paper argues qualitatively: ranked
        // hit-counter views bound the adversary near its population share,
        // where Brahms' renewal admits the full push/pull pressure.
        let s = small(Protocol::Brahms);
        let brahms = Simulation::new(s.clone()).run();
        let basalt = Simulation::new(s.basalt_variant(15)).run();
        assert_eq!(basalt.rounds, 90);
        assert!(basalt.resilience > 0.0, "some pollution is inevitable");
        assert!(
            basalt.resilience < brahms.resilience,
            "BASALT {} must undercut Brahms {}",
            basalt.resilience,
            brahms.resilience
        );
        assert_eq!(
            basalt.total_evicted, 0,
            "no eviction without a trusted tier"
        );
        assert_eq!(basalt.floods_detected, 0, "no Brahms flood detector runs");
    }

    #[test]
    fn basalt_deterministic_per_seed() {
        let s = small(Protocol::Brahms).basalt_variant(15);
        let a = Simulation::new(s.clone()).run();
        let b = Simulation::new(s.clone()).run();
        assert_eq!(a, b);
        let mut other = s;
        other.seed = 99;
        let c = Simulation::new(other).run();
        assert_ne!(a.byz_share_series, c.byz_share_series);
    }

    #[test]
    fn basalt_counts_seed_rotations() {
        let mut s = small(Protocol::Brahms).basalt_variant(10);
        s.rounds = 40;
        let r = Simulation::new(s.clone()).run();
        // 4 rotation epochs × one slot × every alive correct node.
        let expected = 4 * (s.n - s.byzantine_count()) as u64;
        assert_eq!(r.seed_rotations, expected);
        let never = Simulation::new(s.basalt_variant(0)).run();
        assert_eq!(never.seed_rotations, 0);
    }

    #[test]
    fn basalt_discovery_and_stability_reached() {
        let result = Simulation::new(small(Protocol::Brahms).basalt_variant(15)).run();
        assert!(
            result.mean_discovery_round.is_some(),
            "mean discovery must complete: tail {:?}",
            result.byz_share_series.last()
        );
        assert!(
            result.stability_round.is_some(),
            "stability must be reached"
        );
    }

    #[test]
    fn basalt_role_queries() {
        let s = small(Protocol::Brahms).basalt_variant(15);
        let byz = s.byzantine_count();
        let sim = Simulation::new(s);
        assert!(
            sim.basalt(NodeId(0)).is_none(),
            "Byzantine actors expose no node"
        );
        assert!(sim.basalt(NodeId(byz as u64)).is_some());
        assert!(
            sim.node(NodeId(byz as u64)).is_none(),
            "no RAPTEE nodes under BASALT"
        );
        assert!(!sim.is_trusted(NodeId(byz as u64)));
    }

    fn basalt_tee(view: usize) -> Protocol {
        Protocol::BasaltTee {
            view_size: view,
            rotation_interval: 15,
            wlist_ttl: 8,
        }
    }

    fn half_mixed() -> Scenario {
        let mut s = small(Protocol::Raptee);
        s.trusted_fraction = 0.1;
        s.half_and_half(Protocol::Raptee, basalt_tee(12))
    }

    #[test]
    fn basalt_tee_uniform_runs_with_trusted_tier() {
        let mut s = small(Protocol::Brahms).basalt_tee_variant(15, 8);
        s.trusted_fraction = 0.1;
        let byz = s.byzantine_count();
        let trusted = s.trusted_count();
        assert!(trusted > 0);
        let sim = Simulation::new(s.clone());
        // The trusted tier sits directly after the Byzantine prefix and
        // holds attested group keys.
        let first_trusted = NodeId(byz as u64);
        assert!(sim.is_trusted(first_trusted));
        assert!(!sim.is_trusted(NodeId((byz + trusted) as u64)));
        let node = sim.basalt(first_trusted).expect("BASALT node");
        assert!(node.is_trusted());
        assert!(node.group_key().is_some());
        assert!(
            sim.node(first_trusted).is_none(),
            "no Brahms-family nodes under the hybrid"
        );
        let r = sim.run();
        assert_eq!(r.rounds, s.rounds);
        assert!(r.seed_rotations > 0, "rotation still runs under the hybrid");
        assert_eq!(r.total_evicted, 0, "no Brahms eviction in BASALT views");
        assert_eq!(r.segments.len(), 1);
        assert_eq!(r.segments[0].protocol, s.protocol);
        assert_eq!(r.segments[0].resilience.to_bits(), r.resilience.to_bits());
    }

    #[test]
    fn mixed_population_reports_segments() {
        let s = half_mixed();
        let correct = s.n - s.byzantine_count();
        let r = Simulation::new(s.clone()).run();
        assert_eq!(r.rounds, s.rounds);
        assert_eq!(r.segments.len(), 2);
        assert_eq!(r.segments[0].protocol, Protocol::Raptee);
        assert_eq!(r.segments[1].protocol, basalt_tee(12));
        assert_eq!(
            r.segments.iter().map(|x| x.nodes).sum::<usize>(),
            correct,
            "segments cover the correct population"
        );
        for seg in &r.segments {
            assert_eq!(seg.byz_share_series.len(), s.rounds);
            assert!(seg.resilience > 0.0 && seg.resilience < 1.0);
        }
        // The combined series is the per-round mean over all correct
        // nodes, so it lies between the segment series.
        for round in 0..s.rounds {
            let lo =
                r.segments[0].byz_share_series[round].min(r.segments[1].byz_share_series[round]);
            let hi =
                r.segments[0].byz_share_series[round].max(r.segments[1].byz_share_series[round]);
            let combined = r.byz_share_series[round];
            assert!(
                combined >= lo - 1e-12 && combined <= hi + 1e-12,
                "round {round}: combined {combined} outside [{lo}, {hi}]"
            );
        }
        // RAPTEE eviction ran in its segment.
        assert!(r.total_evicted > 0);
        // BASALT seed rotation ran in the other.
        assert!(r.seed_rotations > 0);
    }

    #[test]
    fn mixed_population_deterministic_per_seed() {
        let s = half_mixed();
        let a = Simulation::new(s.clone()).run();
        let b = Simulation::new(s.clone()).run();
        assert_eq!(a, b);
        let mut other = s;
        other.seed = 99;
        let c = Simulation::new(other).run();
        assert_ne!(a.byz_share_series, c.byz_share_series);
    }

    #[test]
    fn mixed_population_role_and_node_accessors() {
        let s = half_mixed();
        let byz = s.byzantine_count();
        let trusted_counts = s.segment_trusted_counts();
        let segs = s.segments();
        let sim = Simulation::new(s);
        // First Raptee-segment node: trusted RAPTEE.
        let raptee_first = NodeId(byz as u64);
        assert!(sim.is_trusted(raptee_first));
        assert!(sim.node(raptee_first).is_some());
        assert!(sim.basalt(raptee_first).is_none());
        // First BASALT-segment node: trusted BASALT.
        let basalt_first = NodeId((byz + segs[0].count) as u64);
        assert!(sim.is_trusted(basalt_first));
        let node = sim.basalt(basalt_first).expect("BASALT node");
        assert!(node.is_trusted());
        assert!(sim.node(basalt_first).is_none());
        // Untrusted tail of the BASALT segment.
        let basalt_last = NodeId((byz + segs[0].count + segs[1].count - 1) as u64);
        assert!(!sim.is_trusted(basalt_last));
        assert!(trusted_counts[1] < segs[1].count);
    }

    #[test]
    fn mixed_population_survives_loss_and_crashes() {
        let mut s = small(Protocol::Brahms).half_and_half(
            Protocol::Brahms,
            Protocol::Basalt {
                view_size: 12,
                rotation_interval: 15,
            },
        );
        s.message_loss = 0.2;
        s.churn = crate::scenario::ChurnSchedule::one_shot(0.15, 10);
        s.rounds = 30;
        let byz = s.byzantine_count();
        let n = s.n;
        let mut sim = Simulation::new(s);
        for _ in 0..30 {
            sim.run_round();
        }
        let dead = (byz..n)
            .filter(|&i| !sim.is_alive(NodeId(i as u64)))
            .count();
        let expected = ((n - byz) as f64 * 0.15).round() as usize;
        assert_eq!(dead, expected);
        // Survivors of both families keep non-empty views.
        for i in byz..n {
            let id = NodeId(i as u64);
            if !sim.is_alive(id) {
                continue;
            }
            if let Some(node) = sim.node(id) {
                assert!(!node.brahms().view().is_empty());
            } else {
                assert!(!sim.basalt(id).unwrap().view().is_empty());
            }
        }
    }

    #[test]
    fn wlist_hybrid_quarantines_hearsay_in_engine() {
        // A BasaltTee run with a long TTL and crashes: waiting lists
        // must actually fill and drain through the engine's finish
        // phase.
        let mut s = small(Protocol::Brahms).basalt_tee_variant(0, 12);
        s.trusted_fraction = 0.05;
        s.rounds = 5;
        let byz = s.byzantine_count();
        let mut sim = Simulation::new(s.clone());
        sim.run_round();
        let queued: usize = (byz..s.n)
            .filter_map(|i| sim.basalt(NodeId(i as u64)))
            .map(|n| n.wlist_len())
            .sum();
        assert!(queued > 0, "pull hearsay must hit the waiting lists");
    }

    #[test]
    fn basalt_survives_loss_and_crashes() {
        let mut s = small(Protocol::Brahms).basalt_variant(15);
        s.message_loss = 0.3;
        s.churn = crate::scenario::ChurnSchedule::one_shot(0.2, 10);
        s.rounds = 30;
        let byz = s.byzantine_count();
        let n = s.n;
        let mut sim = Simulation::new(s);
        for _ in 0..30 {
            sim.run_round();
        }
        let dead = (byz..n)
            .filter(|&i| !sim.is_alive(NodeId(i as u64)))
            .count();
        let expected = ((n - byz) as f64 * 0.2).round() as usize;
        assert_eq!(dead, expected);
        // Survivors keep ranked views despite the churn.
        for i in byz..n {
            let id = NodeId(i as u64);
            if sim.is_alive(id) {
                assert!(!sim.basalt(id).unwrap().view().is_empty());
            }
        }
    }

    #[test]
    fn legacy_one_shot_crash_reports_no_recovery_metrics() {
        let mut s = small(Protocol::Raptee);
        s.churn = crate::scenario::ChurnSchedule::one_shot(0.2, 10);
        let r = Simulation::new(s).run();
        assert!(
            r.recovery.is_none(),
            "one-shot crashes predate the recovery family"
        );
    }

    #[test]
    fn steady_churn_with_restarts_reports_recovery_metrics() {
        let mut s = small(Protocol::Raptee);
        s.churn = crate::scenario::ChurnSchedule::steady(0.02, 0.4);
        let a = Simulation::new(s.clone()).run();
        let rec = a
            .recovery
            .as_ref()
            .expect("dynamic churn yields recovery stats");
        assert!(rec.crashes > 0, "steady rate must crash someone");
        assert!(rec.restarts > 0, "restart process must fire");
        assert!(rec.recovered <= rec.restarts);
        assert!(rec.availability > 0.0 && rec.availability < 1.0);
        if let Some(ttr) = rec.mean_time_to_recover {
            assert!(ttr >= SMOOTHING_WINDOW as f64);
        }
        let b = Simulation::new(s).run();
        assert_eq!(a, b, "churn draws are hash-deterministic");
    }

    #[test]
    fn catastrophe_burst_crashes_more_than_steady_alone() {
        let mut steady = small(Protocol::Raptee);
        steady.churn = crate::scenario::ChurnSchedule::steady(0.005, 0.5);
        let mut burst = steady.clone();
        burst.churn.bursts = vec![crate::scenario::ChurnBurst {
            start: 20,
            end: 25,
            crash_rate: 0.5,
        }];
        let a = Simulation::new(steady).run();
        let b = Simulation::new(burst).run();
        let (ra, rb) = (a.recovery.unwrap(), b.recovery.unwrap());
        assert!(
            rb.crashes > ra.crashes,
            "burst window raises crash volume: {} vs {}",
            rb.crashes,
            ra.crashes
        );
    }

    #[test]
    fn cold_and_warm_rejoin_policies_diverge() {
        let mut cold = small(Protocol::Raptee);
        cold.churn = crate::scenario::ChurnSchedule::steady(0.02, 0.4);
        let mut warm = cold.clone();
        warm.churn.rejoin = RejoinPolicy::Warm;
        let a = Simulation::new(cold).run();
        let b = Simulation::new(warm).run();
        assert!(a.recovery.is_some() && b.recovery.is_some());
        // Crash/restart draws are state-independent hashes, so both runs
        // see identical membership timelines — only the rebuilt node
        // state differs, and that must show up in the trajectories.
        assert_ne!(a.byz_share_series, b.byz_share_series);
    }

    #[test]
    fn basalt_family_survives_dynamic_churn_with_warm_rejoin() {
        let mut s = small(Protocol::Brahms).basalt_variant(15);
        s.churn = crate::scenario::ChurnSchedule::steady(0.02, 0.4);
        s.churn.rejoin = RejoinPolicy::Warm;
        let r = Simulation::new(s).run();
        let rec = r.recovery.expect("recovery stats under dynamic churn");
        assert!(rec.crashes > 0 && rec.restarts > 0);
        assert!(rec.availability > 0.0 && rec.availability < 1.0);
    }

    #[test]
    fn mixed_population_routes_restarts_to_both_families() {
        let mut s = small(Protocol::Brahms).half_and_half(
            Protocol::Brahms,
            Protocol::Basalt {
                view_size: 12,
                rotation_interval: 15,
            },
        );
        s.churn = crate::scenario::ChurnSchedule::steady(0.03, 0.5);
        let a = Simulation::new(s.clone()).run();
        assert!(a.recovery.as_ref().unwrap().restarts > 0);
        let b = Simulation::new(s).run();
        assert_eq!(a, b);
    }

    #[test]
    fn attestation_expiry_degrades_and_heals_the_trusted_tier() {
        let mut s = small(Protocol::Raptee);
        s.attest_ttl = 6;
        let a = Simulation::new(s.clone()).run();
        let rec = a
            .recovery
            .as_ref()
            .expect("attest_ttl alone activates recovery stats");
        assert_eq!(rec.trusted_live_fraction.len(), s.rounds);
        // No churn: availability stays perfect even while certs lapse.
        assert!((rec.availability - 1.0).abs() < 1e-12);
        assert_eq!(rec.crashes, 0);
        // Initial expiries are staggered over [ttl, 2*ttl), so the tier
        // starts whole, dips when certs lapse, and heals back up after
        // re-attestation.
        assert!((rec.trusted_live_fraction[0] - 1.0).abs() < 1e-12);
        let dip = rec
            .trusted_live_fraction
            .iter()
            .position(|&f| f < 1.0)
            .expect("a six-round TTL must degrade someone");
        assert!(
            rec.trusted_live_fraction[dip..]
                .iter()
                .any(|&f| f > rec.trusted_live_fraction[dip]),
            "re-attestation must heal the tier after the first dip"
        );
        // Degraded trusted nodes act untrusted, which changes the
        // protocol trajectory relative to the eternal-cert baseline.
        let mut eternal = s.clone();
        eternal.attest_ttl = 0;
        let base = Simulation::new(eternal).run();
        assert_ne!(a.byz_share_series, base.byz_share_series);
        let b = Simulation::new(s).run();
        assert_eq!(a, b, "degradation schedule is hash-deterministic");
    }
}
