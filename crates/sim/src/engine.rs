//! The synchronous round engine.
//!
//! Wires together the RAPTEE/Brahms nodes, the limited-pushes defence,
//! the adversary, and the metric collectors. One [`Simulation`] executes
//! one run of one [`Scenario`]; the [`crate::runner`] module handles
//! repetition and sweeps.
//!
//! Round structure (mirroring the paper's 2.5 s protocol rounds):
//!
//! 1. every correct node plans its `α·l1` pushes and `β·l1` pulls;
//! 2. pushes are delivered through the per-identity rate limiter —
//!    honest pushes first, then the adversary's balanced faulty pushes
//!    (the adversary saturates exactly its lawful budget);
//! 3. pulls execute: mutual authentication precedes each one, trusted
//!    pairs run the trusted view-swap, all other answers flow back as
//!    untrusted pulls (Byzantine responders answer with all-Byzantine
//!    views);
//! 4. when enabled, Byzantine nodes issue observation pulls for the
//!    identification attack;
//! 5. every correct node finalises its round (eviction → Brahms
//!    defences → view renewal → sampling) and the engine updates the
//!    discovery/stability/resilience metrics.

use crate::adversary::{Adversary, PushPlan};
use crate::bitset::BitSet;
use crate::metrics::{IdentificationResult, RunResult, DISCOVERY_TARGET_SHARE, STABILITY_SPREAD};
use crate::scenario::{AttackStrategy, Protocol, Scenario};
use raptee::provisioning;
use raptee::{RapteeConfig, RapteeNode};
use raptee_basalt::{BasaltConfig, BasaltNode, BasaltPlan};
use raptee_brahms::{BrahmsConfig, RoundPlan};
use raptee_crypto::auth::AuthOutcome;
use raptee_net::{NodeId, PushRateLimiter};
use raptee_util::rng::Xoshiro256StarStar;

/// Rounds of per-node share smoothing for the spread-stability check.
const SMOOTHING_WINDOW: usize = 10;

enum Actor {
    Byzantine,
    Correct(Box<RapteeNode>),
    Basalt(Box<BasaltNode>),
}

/// Per-simulation scratch arenas: every buffer the round loop needs is
/// allocated once and reused for all rounds, so the steady-state hot
/// path is allocation-free. Taken out of the [`Simulation`] at the top
/// of each round (so `&mut self` methods stay callable) and put back at
/// the end.
#[derive(Default)]
struct Scratch {
    /// One Brahms/RAPTEE plan per actor, refilled in place each round.
    plans: Vec<RoundPlan>,
    /// One BASALT plan per actor, refilled in place each round.
    basalt_plans: Vec<BasaltPlan>,
    /// Whether actor `i` produced a plan this round (alive + correct).
    live: Vec<bool>,
    /// The adversary's push plan for the round.
    byz_plan: PushPlan,
    /// Honest pushes surviving limiter/liveness/loss, as
    /// `(target index, sender)` in sender-major order.
    survivors: Vec<(u32, NodeId)>,
    /// `survivors` counting-sorted by target — delivery streams over
    /// per-target runs instead of hopping between actors per message.
    sorted: Vec<(u32, NodeId)>,
    /// Counting-sort bucket offsets.
    counts: Vec<u32>,
    /// Reusable pull-answer buffer.
    reply: Vec<NodeId>,
    /// Reusable observation-target buffer (identification attack).
    observed: Vec<NodeId>,
    /// Reusable smoothed-share buffer for the round accumulator.
    shares: Vec<f64>,
}

impl Scratch {
    /// Sizes the per-actor vectors once (no-op afterwards).
    fn ensure_capacity(&mut self, total: usize) {
        if self.live.len() != total {
            self.plans.resize_with(total, RoundPlan::default);
            self.basalt_plans.resize_with(total, BasaltPlan::default);
            self.live.resize(total, false);
        }
    }
}

/// Per-round metric aggregates, filled by one allocation-free streaming
/// pass over each alive non-Byzantine actor's current view content
/// (Brahms dynamic view, or BASALT per-slot samples) and folded into the
/// run series by [`Simulation::finish_round_metrics`].
struct RoundAccumulator {
    share_sum: f64,
    share_count: usize,
    shares: Vec<f64>,
    all_discovered: bool,
    discovered_sum: usize,
    discovered_nodes: usize,
}

impl RoundAccumulator {
    /// Builds an accumulator around a reused (cleared) share buffer.
    fn new(mut shares: Vec<f64>) -> Self {
        shares.clear();
        Self {
            share_sum: 0.0,
            share_count: 0,
            shares,
            all_discovered: true,
            discovered_sum: 0,
            discovered_nodes: 0,
        }
    }

    /// Streams actor `i`'s view content once: updates its discovery
    /// bitset (non-Byzantine IDs only), its smoothed pollution window,
    /// and the round aggregates. `discovery` and `share_windows` are
    /// passed as disjoint field borrows so the caller can keep the actor
    /// itself mutably borrowed.
    fn observe_node(
        &mut self,
        i: usize,
        ids: impl Iterator<Item = NodeId>,
        byz_count: usize,
        discovery_target: usize,
        discovery: &mut [Option<BitSet>],
        share_windows: &mut [Vec<f64>],
    ) {
        let mut len = 0usize;
        let mut byz = 0usize;
        if let Some(set) = discovery[i].as_mut() {
            for id in ids {
                len += 1;
                if id.index() < byz_count {
                    byz += 1;
                } else if id.index() < set.len() {
                    set.insert(id.index());
                }
            }
            self.discovered_sum += set.count();
            self.discovered_nodes += 1;
            if set.count() < discovery_target {
                self.all_discovered = false;
            }
        } else {
            for id in ids {
                len += 1;
                if id.index() < byz_count {
                    byz += 1;
                }
            }
        }
        if len > 0 {
            let share = byz as f64 / len as f64;
            let window = &mut share_windows[i];
            window.push(share);
            if window.len() > SMOOTHING_WINDOW {
                window.remove(0);
            }
            self.shares
                .push(window.iter().sum::<f64>() / window.len() as f64);
            self.share_sum += share;
            self.share_count += 1;
        }
    }
}

/// One deterministic simulation run.
pub struct Simulation {
    scenario: Scenario,
    actors: Vec<Actor>,
    trusted: Vec<bool>,
    alive: Vec<bool>,
    loss_rng: Xoshiro256StarStar,
    byz_count: usize,
    adversary: Adversary,
    limiter: PushRateLimiter,
    discovery: Vec<Option<BitSet>>,
    discovery_target: usize,
    /// Per-actor ring buffer of recent per-round view pollution shares,
    /// used for the smoothed spread-stability criterion.
    share_windows: Vec<Vec<f64>>,
    /// All non-Byzantine actor IDs (the adversary's victim pool; alive
    /// filtering happens at delivery time) — built once.
    victims: Vec<NodeId>,
    /// Correct original-population IDs the identification attack may
    /// observe — built once.
    ident_candidates: Vec<NodeId>,
    /// Reusable round buffers (see [`Scratch`]).
    scratch: Scratch,
    non_byz_total: usize,
    round: usize,
    byz_share_series: Vec<f64>,
    mean_discovered_series: Vec<f64>,
    discovery_round: Option<usize>,
    spread_stability_round: Option<usize>,
    best_identification: Option<IdentificationResult>,
    floods_detected: u64,
    total_evicted: u64,
    seed_rotations: u64,
}

impl Simulation {
    /// Builds the population: Byzantine identities, trusted nodes
    /// (provisioned through the simulated attestation service), honest
    /// nodes, and optionally the adversary's injected view-poisoned
    /// trusted nodes.
    pub fn new(scenario: Scenario) -> Self {
        scenario.validate();
        let mut rng = Xoshiro256StarStar::seed_from_u64(scenario.seed);
        let n = scenario.n;
        let total = scenario.total_actors();
        let byz = scenario.byzantine_count();
        let trusted_n = scenario.trusted_count();

        let gamma = scenario.gamma;
        let ab = (1.0 - gamma) / 2.0;
        let alpha_count = (ab * scenario.view_size as f64).round();
        let flood_threshold = if scenario.flood_slack_sigmas > 0.0 {
            Some((alpha_count + scenario.flood_slack_sigmas * alpha_count.sqrt()).round() as usize)
        } else {
            None
        };
        let config = RapteeConfig {
            brahms: BrahmsConfig {
                view_size: scenario.view_size,
                sample_size: scenario.sample_size,
                alpha: ab,
                beta: ab,
                gamma,
                flood_threshold,
            },
            eviction: scenario.eviction,
        };

        // Group-key provisioning through the full simulated attestation
        // flow: one certified platform per trusted node.
        let mut attestation = provisioning::new_attestation_service(scenario.seed ^ 0x6E0C);
        let mut provision = |platform: u64| {
            attestation.certify_platform(platform);
            provisioning::provision_trusted_key(&mut attestation, platform)
                .expect("certified platform with genuine code attests")
        };

        let all_ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let byz_ids: Vec<NodeId> = (0..byz as u64).map(NodeId).collect();

        // Under Protocol::Basalt the whole correct population runs the
        // BASALT hit-counter protocol instead of Brahms/RAPTEE.
        let basalt_config = match scenario.protocol {
            Protocol::Basalt {
                view_size,
                rotation_interval,
            } => Some(BasaltConfig::for_view(view_size, rotation_interval)),
            _ => None,
        };

        let mut actors: Vec<Actor> = Vec::with_capacity(total);
        let mut trusted_flags = vec![false; total];
        #[allow(clippy::needless_range_loop)] // i is the node identity
        for i in 0..total {
            let id = NodeId(i as u64);
            if i < byz {
                actors.push(Actor::Byzantine);
                continue;
            }
            let seed = rng.next_u64();
            if let Some(bcfg) = basalt_config {
                let bootstrap = rng.sample(&all_ids, (bcfg.view_size + 2).min(all_ids.len()));
                actors.push(Actor::Basalt(Box::new(BasaltNode::new(
                    id, bcfg, &bootstrap, seed,
                ))));
                continue;
            }
            let is_trusted = i < byz + trusted_n;
            let is_injected = i >= n;
            // Paper bootstrap: a uniform random sample of the global
            // membership — except injected nodes, which the adversary
            // bootstrapped inside a Byzantine-only network.
            let bootstrap = if is_injected {
                rng.sample(&byz_ids, scenario.view_size.min(byz_ids.len()))
            } else {
                rng.sample(&all_ids, (scenario.view_size + 2).min(all_ids.len()))
            };
            let node = if is_trusted || is_injected {
                trusted_flags[i] = true;
                let key = provision(0x1000 + i as u64);
                RapteeNode::new_trusted(id, config.clone(), &bootstrap, seed, key)
            } else {
                RapteeNode::new_untrusted(id, config.clone(), &bootstrap, seed)
            };
            actors.push(Actor::Correct(Box::new(node)));
        }

        // Discovery bitsets (non-Byzantine actors only) seeded with the
        // bootstrap view and the node itself.
        let non_byz_total = total - byz;
        let mut discovery: Vec<Option<BitSet>> = Vec::with_capacity(total);
        for (i, actor) in actors.iter().enumerate() {
            let seed_set = |ids: &mut dyn Iterator<Item = NodeId>| {
                let mut set = BitSet::new(total);
                set.insert(i);
                for id in ids {
                    if id.index() >= byz {
                        set.insert(id.index());
                    }
                }
                set
            };
            match actor {
                Actor::Byzantine => discovery.push(None),
                Actor::Correct(node) => {
                    discovery.push(Some(seed_set(&mut node.brahms().view().ids())));
                }
                Actor::Basalt(node) => {
                    discovery.push(Some(seed_set(&mut node.view().sample_ids().into_iter())));
                }
            }
        }
        let discovery_target = (DISCOVERY_TARGET_SHARE * non_byz_total as f64).ceil() as usize;

        let share_windows = vec![Vec::new(); total];
        // The per-identity push budget: Brahms' α·l1, or BASALT's
        // equal-bandwidth push fanout.
        let alpha_count = basalt_config.map_or(config.brahms.alpha_count(), |c| c.push_count);
        // The adversary answers pulls with views matching the protocol
        // the correct population runs.
        let answer_size = basalt_config.map_or(scenario.view_size, |c| c.view_size);
        let mut adversary = Adversary::new(byz_ids, total, answer_size, rng.next_u64());
        // Section VI-B: the adversary advertises its injected poisoned
        // trusted nodes so the system contacts them and the poison can
        // flow into the genuine trusted tier.
        adversary.advertise_injected((n..total).map(|i| NodeId(i as u64)));
        Self {
            adversary,
            limiter: PushRateLimiter::new(total, alpha_count as u32),
            actors,
            trusted: trusted_flags,
            alive: vec![true; total],
            loss_rng: rng.split(),
            byz_count: byz,
            discovery,
            discovery_target,
            share_windows,
            victims: (byz..total).map(|i| NodeId(i as u64)).collect(),
            ident_candidates: (byz..n).map(|i| NodeId(i as u64)).collect(),
            scratch: Scratch::default(),
            non_byz_total,
            round: 0,
            byz_share_series: Vec::with_capacity(scenario.rounds),
            mean_discovered_series: Vec::with_capacity(scenario.rounds),
            discovery_round: None,
            spread_stability_round: None,
            best_identification: None,
            floods_detected: 0,
            total_evicted: 0,
            seed_rotations: 0,
            scenario,
        }
    }

    /// The scenario driving this run.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Whether actor `id` is Byzantine.
    pub fn is_byzantine(&self, id: NodeId) -> bool {
        id.index() < self.byz_count
    }

    /// Whether actor `id` is alive (crashed nodes stop participating).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.index()]
    }

    /// Whether actor `id` is a (genuine or injected) trusted node.
    pub fn is_trusted(&self, id: NodeId) -> bool {
        self.trusted[id.index()]
    }

    /// Current round index.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of non-Byzantine IDs `id` has discovered so far (None for
    /// Byzantine actors).
    pub fn discovery_count(&self, id: NodeId) -> Option<usize> {
        self.discovery[id.index()].as_ref().map(|s| s.count())
    }

    /// Read access to a correct Brahms/RAPTEE node (None for Byzantine
    /// actors and under [`Protocol::Basalt`]).
    pub fn node(&self, id: NodeId) -> Option<&RapteeNode> {
        match &self.actors[id.index()] {
            Actor::Correct(n) => Some(n),
            _ => None,
        }
    }

    /// Read access to a correct BASALT node (None for Byzantine actors
    /// and under the other protocols).
    pub fn basalt(&self, id: NodeId) -> Option<&BasaltNode> {
        match &self.actors[id.index()] {
            Actor::Basalt(n) => Some(n),
            _ => None,
        }
    }

    /// Executes the full run and returns the collected metrics.
    pub fn run(mut self) -> RunResult {
        for _ in 0..self.scenario.rounds {
            self.run_round();
        }
        self.into_result()
    }

    /// Executes one round (public so tests can single-step).
    pub fn run_round(&mut self) {
        self.limiter.next_round();
        let total = self.actors.len();

        // Churn injection: crash a batch of correct nodes at the
        // configured round. Crashed nodes stop planning, answering and
        // pushing; pulls towards them time out.
        if self.scenario.crash_fraction > 0.0 && self.round == self.scenario.crash_round {
            let candidates: Vec<usize> =
                (self.byz_count..total).filter(|&i| self.alive[i]).collect();
            let k = (self.scenario.crash_fraction * candidates.len() as f64).round() as usize;
            for idx in self.loss_rng.sample(&candidates, k) {
                self.alive[idx] = false;
            }
        }

        // The scratch arenas move out for the duration of the round so
        // `&mut self` stays available to the delivery machinery.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.ensure_capacity(total);
        match self.scenario.protocol {
            Protocol::Basalt { .. } => self.basalt_round(&mut scratch),
            Protocol::Brahms | Protocol::Raptee => self.raptee_round(&mut scratch),
        }
        self.scratch = scratch;

        self.round += 1;
    }

    /// Collects the honest pushes surviving the rate limiter, liveness
    /// and message loss (in sender-major order, so the loss RNG stream is
    /// unchanged), then counting-sorts them by target into `sorted`. The
    /// stable sort preserves each receiver's arrival order, so delivering
    /// over the per-target runs is observationally identical to
    /// per-message dispatch — but walks the actors sequentially instead
    /// of hopping between them per message.
    fn collect_and_sort_pushes<'a>(
        &mut self,
        survivors: &mut Vec<(u32, NodeId)>,
        sorted: &mut Vec<(u32, NodeId)>,
        counts: &mut Vec<u32>,
        planned: impl Iterator<Item = (usize, &'a [NodeId])>,
    ) {
        survivors.clear();
        for (i, targets) in planned {
            let sender = NodeId(i as u64);
            let granted = self.limiter.try_push_n(sender, targets.len());
            for &target in &targets[..granted] {
                if !self.alive[target.index()] {
                    continue;
                }
                if self.scenario.message_loss > 0.0
                    && self.loss_rng.chance(self.scenario.message_loss)
                {
                    continue;
                }
                survivors.push((target.index() as u32, sender));
            }
        }
        let total = self.actors.len();
        counts.clear();
        counts.resize(total + 1, 0);
        for &(t, _) in survivors.iter() {
            counts[t as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        sorted.clear();
        sorted.resize(survivors.len(), (0, NodeId(0)));
        for &(t, sender) in survivors.iter() {
            let pos = &mut counts[t as usize];
            sorted[*pos as usize] = (t, sender);
            *pos += 1;
        }
    }

    /// One Brahms/RAPTEE round (the paper's protocol loop).
    fn raptee_round(&mut self, s: &mut Scratch) {
        let total = self.actors.len();

        // Phase 1: plans (dead nodes do not participate), refilled into
        // the per-actor plan arenas.
        for i in 0..total {
            s.live[i] = match &mut self.actors[i] {
                Actor::Correct(node) if self.alive[i] => {
                    node.plan_round_into(&mut s.plans[i]);
                    true
                }
                _ => false,
            };
        }

        // Phase 2a: honest pushes (through the rate limiter), delivered
        // as counting-sorted per-target runs.
        {
            let Scratch {
                plans,
                live,
                survivors,
                sorted,
                counts,
                ..
            } = s;
            let planned = plans
                .iter()
                .enumerate()
                .filter(|(i, _)| live[*i])
                .map(|(i, p)| (i, p.push_targets.as_slice()));
            self.collect_and_sort_pushes(survivors, sorted, counts, planned);
            for &(t, sender) in sorted.iter() {
                if let Actor::Correct(node) = &mut self.actors[t as usize] {
                    node.record_push(sender);
                }
            }
        }

        // Phase 2b: the adversary's balanced pushes, saturating exactly
        // its lawful budget B·α·l1 (every push charged to a Byzantine
        // identity).
        let alpha_count = match self.actors.iter().find_map(|a| match a {
            Actor::Correct(n) => Some(n.config().brahms.alpha_count()),
            _ => None,
        }) {
            Some(c) => c,
            None => return, // no correct nodes: nothing to simulate
        };
        let budget = self.byz_count * alpha_count;
        self.plan_adversary_pushes(
            budget,
            Adversary::plan_balanced_pushes_into,
            Adversary::plan_targeted_pushes_into,
            &mut s.byz_plan,
        );
        self.deliver_byz_pushes(&s.byz_plan, |actor, advertised| {
            if let Actor::Correct(node) = actor {
                node.record_push(advertised);
            }
        });

        // Phase 3: pulls (with mutual authentication).
        {
            let Scratch {
                plans, live, reply, ..
            } = s;
            for i in 0..total {
                if !live[i] {
                    continue;
                }
                for &target in &plans[i].pull_targets {
                    self.handle_pull(i, target, reply);
                }
            }
        }

        // Phase 3b: proactive trusted exchanges. Each trusted node
        // initiates one exchange with the oldest entry of its trusted
        // directory (framework criterion (1): round-robin probing) —
        // the mechanism that keeps a sparse trusted population meeting
        // every round once discovered.
        if self.scenario.trusted_swap {
            for i in 0..total {
                if !self.trusted[i] {
                    continue;
                }
                let partner = match &self.actors[i] {
                    Actor::Correct(node) => node.trusted_partner(),
                    _ => None,
                };
                let Some(partner) = partner else { continue };
                if partner.index() == i || !self.alive[i] {
                    continue;
                }
                if !self.alive[partner.index()] {
                    // Timeout: forget the dead trusted peer.
                    if let Actor::Correct(node) = &mut self.actors[i] {
                        node.forget_trusted_peer(partner);
                    }
                    continue;
                }
                let (a, b) = self.two_nodes(i, partner.index());
                RapteeNode::trusted_swap_kind(a, b, false);
            }
        }

        // Phase 4: adversary observation pulls (identification attack).
        if self.scenario.identification_attack && self.byz_count > 0 {
            let beta_count = alpha_count; // α = β in the paper's config
            for _ in 0..self.byz_count {
                self.adversary.observation_targets_into(
                    &self.ident_candidates,
                    beta_count,
                    &mut s.observed,
                );
                for idx in 0..s.observed.len() {
                    let t = s.observed[idx];
                    if let Actor::Correct(node) = &self.actors[t.index()] {
                        let view = node.brahms().view();
                        if view.is_empty() {
                            continue;
                        }
                        let byz = view.ids().filter(|id| id.index() < self.byz_count).count();
                        let share = byz as f64 / view.len() as f64;
                        self.adversary.record_share(t, share);
                    }
                }
            }
        }

        // Phase 5: finalisation + metrics.
        let validation_due = self.scenario.sampler_validation_period > 0
            && (self.round + 1).is_multiple_of(self.scenario.sampler_validation_period);
        let mut acc = RoundAccumulator::new(std::mem::take(&mut s.shares));
        for i in 0..total {
            if !self.alive[i] {
                continue;
            }
            let Actor::Correct(node) = &mut self.actors[i] else {
                continue;
            };
            if validation_due {
                // Brahms sampler validation: probe sampled nodes, re-draw
                // the samplers whose sample is dead.
                let alive = &self.alive;
                let brahms = node.brahms_mut();
                let (sampler, rng) = brahms.sampler_and_rng_mut();
                sampler.validate(|id| alive.get(id.index()).copied().unwrap_or(false), rng);
            }
            let outcome = node.finish_round();
            self.total_evicted += outcome.evicted as u64;
            if outcome.report.push_flood_detected {
                self.floods_detected += 1;
            }
            // Discovery counts an ID once it has *entered the dynamic
            // view* (matching the paper's round counts; IDs merely seen
            // in transit — or evicted — do not count).
            acc.observe_node(
                i,
                node.brahms().view().ids(),
                self.byz_count,
                self.discovery_target,
                &mut self.discovery,
                &mut self.share_windows,
            );
        }
        s.shares = self.finish_round_metrics(acc);

        if self.scenario.identification_attack {
            let flagged = self
                .adversary
                .classify_trusted(self.scenario.identification_threshold);
            let byz = self.byz_count;
            let trusted = &self.trusted;
            let n = self.scenario.n;
            // Ground truth: genuine trusted nodes (injected ones are the
            // adversary's own and excluded).
            let actual = trusted[byz..n].iter().filter(|&&t| t).count();
            let result = IdentificationResult::evaluate(
                &flagged,
                |id| id.index() < n && trusted[id.index()],
                actual,
                self.round,
            );
            let better = match &self.best_identification {
                None => true,
                Some(best) => result.f1 > best.f1,
            };
            if better {
                self.best_identification = Some(result);
            }
        }
    }

    /// One BASALT round: pushes and pulls ranked on arrival, the
    /// adversary running the force-push attack, periodic seed rotation at
    /// round end. Shares the rate limiter, message-loss and crash
    /// machinery with the Brahms/RAPTEE path.
    fn basalt_round(&mut self, s: &mut Scratch) {
        let total = self.actors.len();

        // Phase 1: plans (dead nodes do not participate), refilled into
        // the per-actor plan arenas.
        for i in 0..total {
            s.live[i] = match &mut self.actors[i] {
                Actor::Basalt(node) if self.alive[i] => {
                    node.plan_round_into(&mut s.basalt_plans[i]);
                    true
                }
                _ => false,
            };
        }

        // Phase 2a: honest pushes (each node advertises itself, through
        // the rate limiter), delivered as counting-sorted per-target runs.
        {
            let Scratch {
                basalt_plans,
                live,
                survivors,
                sorted,
                counts,
                ..
            } = s;
            let planned = basalt_plans
                .iter()
                .enumerate()
                .filter(|(i, _)| live[*i])
                .map(|(i, p)| (i, p.push_targets.as_slice()));
            self.collect_and_sort_pushes(survivors, sorted, counts, planned);
            for &(t, sender) in sorted.iter() {
                if let Actor::Basalt(node) = &mut self.actors[t as usize] {
                    node.record_push(sender);
                }
                self.note_discovered(t as usize, sender);
            }
        }

        // Phase 2b: the adversary's force pushes — maximal identity
        // coverage at exactly its lawful budget B·push_count, every push
        // charged to a Byzantine identity.
        let push_count = match self.actors.iter().find_map(|a| match a {
            Actor::Basalt(n) => Some(n.config().push_count),
            _ => None,
        }) {
            Some(c) => c,
            None => return, // no correct nodes: nothing to simulate
        };
        let budget = self.byz_count * push_count;
        self.plan_adversary_pushes(
            budget,
            Adversary::plan_force_pushes_into,
            Adversary::plan_targeted_force_pushes_into,
            &mut s.byz_plan,
        );
        self.deliver_byz_pushes(&s.byz_plan, |actor, advertised| {
            if let Actor::Basalt(node) = actor {
                node.record_push(advertised);
            }
        });

        // Phase 3: pull exchanges, least-confirmed samples first.
        {
            let Scratch {
                basalt_plans,
                live,
                reply,
                ..
            } = s;
            for i in 0..total {
                if !live[i] {
                    continue;
                }
                for &target in &basalt_plans[i].pull_targets {
                    self.handle_basalt_pull(i, target, reply);
                }
            }
        }

        // Phase 4: finalisation (seed rotation) + metrics over the
        // per-slot samples.
        let mut acc = RoundAccumulator::new(std::mem::take(&mut s.shares));
        for i in 0..total {
            if !self.alive[i] {
                continue;
            }
            let Actor::Basalt(node) = &mut self.actors[i] else {
                continue;
            };
            let report = node.finish_round();
            self.seed_rotations += report.rotated as u64;
            acc.observe_node(
                i,
                node.view().sample_iter(),
                self.byz_count,
                self.discovery_target,
                &mut self.discovery,
                &mut self.share_windows,
            );
        }
        s.shares = self.finish_round_metrics(acc);
    }

    /// One BASALT pull exchange: the responder's distinct view flows back
    /// (through the round's reusable reply buffer) and is ranked
    /// immediately; the responder learns the requester (exchanges are
    /// bidirectional contacts).
    fn handle_basalt_pull(&mut self, requester: usize, target: NodeId, reply: &mut Vec<NodeId>) {
        let t = target.index();
        if t == requester || t >= self.actors.len() {
            return;
        }
        // A crashed responder times out; its stale samples are recycled
        // by seed rotation rather than an explicit removal.
        if !self.alive[t] {
            return;
        }
        if self.scenario.message_loss > 0.0 && self.loss_rng.chance(self.scenario.message_loss) {
            return; // request or answer lost in transit
        }
        if matches!(self.actors[t], Actor::Byzantine) {
            // Byzantine responders answer with exclusively Byzantine IDs
            // — rank-blind poison the hit-counter view absorbs.
            self.adversary.pull_answer_into(reply);
        } else {
            match &mut self.actors[t] {
                Actor::Basalt(node) => node.pull_answer_into(reply),
                Actor::Correct(_) => return, // mixed populations are not modelled
                Actor::Byzantine => unreachable!("handled above"),
            }
        }
        if let Actor::Basalt(node) = &mut self.actors[requester] {
            node.record_pull_answer(target, reply);
        }
        // Discovery under BASALT counts *ranked candidates*: the view is
        // deliberately stable (slots converge to their distance minima),
        // so the Brahms "entered the dynamic view" criterion would
        // measure rotation pacing, not knowledge. A candidate that has
        // been ranked against every slot has genuinely been discovered.
        self.note_discovered(requester, target);
        for &id in reply.iter() {
            self.note_discovered(requester, id);
        }
        let requester_id = NodeId(requester as u64);
        if let Actor::Basalt(node) = &mut self.actors[t] {
            node.record_push(requester_id);
        }
        self.note_discovered(t, requester_id);
    }

    /// Marks non-Byzantine `id` as discovered by actor `i` (no-op for
    /// Byzantine IDs and Byzantine observers).
    fn note_discovered(&mut self, i: usize, id: NodeId) {
        if id.index() < self.byz_count {
            return;
        }
        if let Some(set) = &mut self.discovery[i] {
            if id.index() < set.len() {
                set.insert(id.index());
            }
        }
    }

    /// Folds one round's [`RoundAccumulator`] into the run series:
    /// pollution curve, discovery round, mean-discovery series and the
    /// spread-stability detector.
    fn finish_round_metrics(&mut self, acc: RoundAccumulator) -> Vec<f64> {
        let RoundAccumulator {
            share_sum,
            share_count,
            shares,
            all_discovered,
            discovered_sum,
            discovered_nodes,
        } = acc;
        let mean_share = if share_count == 0 {
            0.0
        } else {
            share_sum / share_count as f64
        };
        self.byz_share_series.push(mean_share);

        if self.discovery_round.is_none() && all_discovered {
            self.discovery_round = Some(self.round);
        }
        if discovered_nodes > 0 {
            let target_pool = (self.non_byz_total as f64).max(1.0);
            self.mean_discovered_series
                .push(discovered_sum as f64 / discovered_nodes as f64 / target_pool);
        }
        // Spread stability (the paper's criterion): every non-Byzantine
        // node's pollution within STABILITY_SPREAD of the average. Each
        // node's share is smoothed over SMOOTHING_WINDOW rounds first —
        // at reduced view sizes a single view entry moves the raw share
        // by 5-10 points of pure quantisation noise, which would make the
        // criterion unreachable regardless of convergence. The smoothed
        // criterion stays gated by laggard nodes, like the original.
        let smoothed_mean = if shares.is_empty() {
            0.0
        } else {
            shares.iter().sum::<f64>() / shares.len() as f64
        };
        if self.spread_stability_round.is_none()
            && self.round + 1 >= SMOOTHING_WINDOW
            && !shares.is_empty()
            && shares
                .iter()
                .all(|s| (s - smoothed_mean).abs() <= STABILITY_SPREAD)
        {
            self.spread_stability_round = Some(self.round);
        }
        // Hand the share buffer back for reuse next round.
        shares
    }

    /// Plans the adversary's pushes for this round, honouring the
    /// scenario's attack strategy: `balanced` spreads the budget evenly,
    /// `targeted` focuses a share of it on a fixed prefix of the correct
    /// nodes (deterministic per scenario; the adversary knows the
    /// membership). The planners are protocol-specific (random Byzantine
    /// IDs against Brahms/RAPTEE, distinct-ID coverage against BASALT).
    fn plan_adversary_pushes(
        &mut self,
        budget: usize,
        balanced: fn(&mut Adversary, &[NodeId], usize, &mut PushPlan),
        targeted: fn(&mut Adversary, &[NodeId], &[NodeId], usize, f64, &mut PushPlan),
        plan: &mut PushPlan,
    ) {
        let victims = &self.victims;
        match self.scenario.attack {
            AttackStrategy::Balanced => balanced(&mut self.adversary, victims, budget, plan),
            AttackStrategy::Targeted {
                victim_fraction,
                focus,
            } => {
                let k = ((victims.len() as f64) * victim_fraction).round() as usize;
                let targets = &victims[..k.min(victims.len())];
                targeted(&mut self.adversary, victims, targets, budget, focus, plan);
            }
        }
    }

    /// Charges each planned adversary push to a Byzantine identity
    /// through the rate limiter (rotating payers — the budget equals
    /// exactly B × the per-identity allowance), applies the liveness and
    /// message-loss filters, and hands the survivors to `deliver`. Shared
    /// by every protocol path so Brahms-vs-BASALT comparisons face
    /// provably identical adversary machinery.
    fn deliver_byz_pushes(&mut self, byz_pushes: &PushPlan, deliver: fn(&mut Actor, NodeId)) {
        let mut charge_rotor = 0usize;
        for &(victim, advertised) in byz_pushes {
            let mut charged = false;
            for _ in 0..self.byz_count {
                let payer = NodeId((charge_rotor % self.byz_count.max(1)) as u64);
                charge_rotor += 1;
                if self.limiter.try_push(payer) {
                    charged = true;
                    break;
                }
            }
            if !charged {
                continue;
            }
            if !self.alive[victim.index()] {
                continue;
            }
            if self.scenario.message_loss > 0.0 && self.loss_rng.chance(self.scenario.message_loss)
            {
                continue;
            }
            deliver(&mut self.actors[victim.index()], advertised);
        }
    }

    /// One pull interaction: authentication, then swap or plain pull.
    /// `reply` is the round's reusable answer buffer.
    fn handle_pull(&mut self, requester: usize, target: NodeId, reply: &mut Vec<NodeId>) {
        let t = target.index();
        if t == requester || t >= self.actors.len() {
            return;
        }
        // A crashed responder times out: the requester learns nothing
        // and drops the stale link (Cyclon-style timeout handling).
        if !self.alive[t] {
            if let Actor::Correct(node) = &mut self.actors[requester] {
                node.brahms_mut().view_mut().remove(target);
                node.forget_trusted_peer(target);
            }
            return;
        }
        if self.scenario.message_loss > 0.0 && self.loss_rng.chance(self.scenario.message_loss) {
            return; // request or answer lost in transit
        }
        match &self.actors[t] {
            Actor::Byzantine => {
                // Byzantine responders fail authentication (random keys)
                // and answer with exclusively Byzantine IDs.
                self.adversary.pull_answer_into(reply);
                if let Actor::Correct(node) = &mut self.actors[requester] {
                    node.record_untrusted_pull(reply);
                }
            }
            Actor::Basalt(_) => unreachable!("BASALT actors never appear on the RAPTEE path"),
            Actor::Correct(_) => {
                let both_trusted = self.trusted[requester] && self.trusted[t];
                let outcome_trusted = if self.scenario.real_crypto_handshakes {
                    let (a, b) = self.two_nodes(requester, t);
                    let (oa, ob) = RapteeNode::run_handshake(a, b);
                    debug_assert_eq!(oa, ob);
                    debug_assert_eq!(oa == AuthOutcome::Trusted, both_trusted);
                    oa == AuthOutcome::Trusted
                } else {
                    both_trusted
                };
                if outcome_trusted && self.scenario.trusted_swap {
                    let (a, b) = self.two_nodes(requester, t);
                    RapteeNode::trusted_swap(a, b);
                } else {
                    // Either an untrusted answer, or the swap-disabled
                    // ablation: the pair still recognises each other, so
                    // the answer bypasses eviction, but no half-view
                    // exchange happens. The responder's full view streams
                    // through the round's reply buffer (what
                    // `pull_answer` returns, without the allocation).
                    reply.clear();
                    match &self.actors[t] {
                        Actor::Correct(node) => reply.extend(node.brahms().view().ids()),
                        _ => unreachable!(),
                    }
                    if let Actor::Correct(node) = &mut self.actors[requester] {
                        if outcome_trusted {
                            node.record_trusted_pull(reply);
                        } else {
                            node.record_untrusted_pull(reply);
                        }
                    }
                }
            }
        }
    }

    /// Split-borrows two distinct correct nodes.
    fn two_nodes(&mut self, a: usize, b: usize) -> (&mut RapteeNode, &mut RapteeNode) {
        assert_ne!(a, b, "cannot borrow the same node twice");
        let (x, y, swapped) = if a < b { (a, b, false) } else { (b, a, true) };
        let (lo, hi) = self.actors.split_at_mut(y);
        let first = match &mut lo[x] {
            Actor::Correct(n) => n.as_mut(),
            _ => panic!("actor {x} is not a RAPTEE node"),
        };
        let second = match &mut hi[0] {
            Actor::Correct(n) => n.as_mut(),
            _ => panic!("actor {y} is not a RAPTEE node"),
        };
        if swapped {
            (second, first)
        } else {
            (first, second)
        }
    }

    fn into_result(self) -> RunResult {
        let tail = self.scenario.tail_window.min(self.byz_share_series.len());
        let resilience = if tail == 0 {
            0.0
        } else {
            let s = &self.byz_share_series[self.byz_share_series.len() - tail..];
            s.iter().sum::<f64>() / tail as f64
        };
        let stability_round = self
            .spread_stability_round
            .or_else(|| crate::metrics::series_stability_round(&self.byz_share_series, resilience));
        let mean_discovery_round = crate::metrics::fractional_crossing(
            &self.mean_discovered_series,
            crate::metrics::DISCOVERY_TARGET_SHARE,
        );
        RunResult {
            resilience,
            discovery_round: self.discovery_round,
            mean_discovery_round,
            stability_round,
            spread_stability_round: self.spread_stability_round,
            byz_share_series: self.byz_share_series,
            identification: self.best_identification,
            rounds: self.round,
            floods_detected: self.floods_detected,
            total_evicted: self.total_evicted,
            seed_rotations: self.seed_rotations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Protocol;
    use raptee::EvictionPolicy;

    fn small(protocol: Protocol) -> Scenario {
        Scenario {
            n: 120,
            byzantine_fraction: 0.1,
            trusted_fraction: 0.05,
            view_size: 12,
            sample_size: 12,
            rounds: 90,
            tail_window: 10,
            protocol,
            seed: 424242,
            ..Scenario::default()
        }
    }

    #[test]
    fn brahms_run_converges_below_catastrophe() {
        let result = Simulation::new(small(Protocol::Brahms)).run();
        assert_eq!(result.rounds, 90);
        assert!(result.resilience > 0.0, "some pollution is inevitable");
        assert!(
            result.resilience < 0.9,
            "Brahms keeps the adversary below near-total control: {}",
            result.resilience
        );
        assert_eq!(result.byz_share_series.len(), 90);
    }

    #[test]
    fn raptee_beats_brahms_at_equal_workload() {
        // A healthy share of trusted nodes so the effect clears run-to-run
        // noise at this small scale (the full sweeps in the bench harness
        // cover the small-t regime with repetitions).
        let mut scenario = small(Protocol::Raptee);
        scenario.trusted_fraction = 0.2;
        let brahms = Simulation::new(scenario.brahms_baseline()).run();
        let raptee = Simulation::new(scenario).run();
        assert!(
            raptee.resilience < brahms.resilience,
            "RAPTEE {} should improve on Brahms {}",
            raptee.resilience,
            brahms.resilience
        );
    }

    #[test]
    fn discovery_and_stability_reached_in_calm_runs() {
        let result = Simulation::new(small(Protocol::Brahms)).run();
        assert!(
            result.mean_discovery_round.is_some(),
            "mean discovery must complete: series tail {:?}",
            result.byz_share_series.last()
        );
        assert!(
            result.stability_round.is_some(),
            "stability must be reached"
        );
        if let (Some(all), Some(mean)) = (result.discovery_round, result.mean_discovery_round) {
            assert!(
                all as f64 >= mean.floor(),
                "all-nodes discovery cannot precede the mean"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Simulation::new(small(Protocol::Raptee)).run();
        let b = Simulation::new(small(Protocol::Raptee)).run();
        assert_eq!(a, b);
        let mut other = small(Protocol::Raptee);
        other.seed = 99;
        let c = Simulation::new(other).run();
        assert_ne!(a.byz_share_series, c.byz_share_series);
    }

    #[test]
    fn real_crypto_handshakes_match_shortcut() {
        let mut with_crypto = small(Protocol::Raptee);
        with_crypto.real_crypto_handshakes = true;
        with_crypto.rounds = 12;
        let mut shortcut = with_crypto.clone();
        shortcut.real_crypto_handshakes = false;
        // The handshake outcome is key equality either way; the RNG
        // streams differ (nonce draws), so compare qualitative behaviour:
        // both runs complete and produce sane shares.
        let a = Simulation::new(with_crypto).run();
        let b = Simulation::new(shortcut).run();
        assert_eq!(a.rounds, b.rounds);
        assert!((a.resilience - b.resilience).abs() < 0.25);
    }

    #[test]
    fn eviction_only_happens_under_raptee() {
        let brahms = Simulation::new(small(Protocol::Brahms)).run();
        assert_eq!(brahms.total_evicted, 0);
        let mut s = small(Protocol::Raptee);
        s.eviction = EvictionPolicy::Fixed(0.8);
        let raptee = Simulation::new(s).run();
        assert!(raptee.total_evicted > 0);
    }

    #[test]
    fn identification_attack_produces_result() {
        let mut s = small(Protocol::Raptee);
        s.identification_attack = true;
        s.eviction = EvictionPolicy::Fixed(1.0); // most detectable config
        s.trusted_fraction = 0.2;
        let result = Simulation::new(s).run();
        let ident = result.identification.expect("attack enabled");
        assert!(ident.precision >= 0.0 && ident.precision <= 1.0);
        assert!(ident.recall >= 0.0 && ident.recall <= 1.0);
    }

    #[test]
    fn injected_nodes_join_population() {
        let mut s = small(Protocol::Raptee);
        s.injected_poisoned_fraction = 0.1;
        let sim = Simulation::new(s.clone());
        assert_eq!(sim.actors.len(), s.total_actors());
        // The injected trusted nodes start with fully Byzantine views.
        let first_injected = NodeId(s.n as u64);
        assert!(sim.is_trusted(first_injected));
        let node = sim.node(first_injected).unwrap();
        assert!(node
            .brahms()
            .view()
            .ids()
            .all(|id| id.index() < s.byzantine_count()));
        let result = sim.run();
        assert_eq!(result.rounds, s.rounds);
    }

    #[test]
    fn message_loss_slows_but_does_not_break() {
        let mut s = small(Protocol::Brahms);
        s.message_loss = 0.5;
        s.rounds = 30;
        let r = Simulation::new(s).run();
        assert_eq!(r.rounds, 30);
        assert!(r.resilience < 0.95);
    }

    #[test]
    fn crash_marks_nodes_dead_and_views_recover() {
        let mut s = small(Protocol::Brahms);
        s.crash_fraction = 0.2;
        s.crash_round = 10;
        s.rounds = 30;
        let byz = s.byzantine_count();
        let n = s.n;
        let mut sim = Simulation::new(s);
        for _ in 0..30 {
            sim.run_round();
        }
        let dead = (byz..n)
            .filter(|&i| !sim.is_alive(NodeId(i as u64)))
            .count();
        let expected = ((n - byz) as f64 * 0.2).round() as usize;
        assert_eq!(dead, expected);
        // Survivors keep full views despite the departures.
        for i in byz..n {
            let id = NodeId(i as u64);
            if sim.is_alive(id) {
                assert!(!sim.node(id).unwrap().brahms().view().is_empty());
            }
        }
    }

    #[test]
    fn targeted_attack_runs() {
        let mut s = small(Protocol::Brahms);
        s.attack = crate::scenario::AttackStrategy::Targeted {
            victim_fraction: 0.1,
            focus: 0.7,
        };
        s.rounds = 20;
        let r = Simulation::new(s).run();
        assert_eq!(r.rounds, 20);
    }

    #[test]
    fn role_queries() {
        let s = small(Protocol::Raptee);
        let byz = s.byzantine_count();
        let sim = Simulation::new(s);
        assert!(sim.is_byzantine(NodeId(0)));
        assert!(!sim.is_byzantine(NodeId(byz as u64)));
        assert!(sim.is_trusted(NodeId(byz as u64)));
        assert!(sim.node(NodeId(0)).is_none());
        assert!(sim.node(NodeId(byz as u64)).is_some());
    }

    #[test]
    fn basalt_beats_brahms_under_balanced_attack() {
        // The head-to-head the BASALT paper argues qualitatively: ranked
        // hit-counter views bound the adversary near its population share,
        // where Brahms' renewal admits the full push/pull pressure.
        let s = small(Protocol::Brahms);
        let brahms = Simulation::new(s.clone()).run();
        let basalt = Simulation::new(s.basalt_variant(15)).run();
        assert_eq!(basalt.rounds, 90);
        assert!(basalt.resilience > 0.0, "some pollution is inevitable");
        assert!(
            basalt.resilience < brahms.resilience,
            "BASALT {} must undercut Brahms {}",
            basalt.resilience,
            brahms.resilience
        );
        assert_eq!(
            basalt.total_evicted, 0,
            "no eviction without a trusted tier"
        );
        assert_eq!(basalt.floods_detected, 0, "no Brahms flood detector runs");
    }

    #[test]
    fn basalt_deterministic_per_seed() {
        let s = small(Protocol::Brahms).basalt_variant(15);
        let a = Simulation::new(s.clone()).run();
        let b = Simulation::new(s.clone()).run();
        assert_eq!(a, b);
        let mut other = s;
        other.seed = 99;
        let c = Simulation::new(other).run();
        assert_ne!(a.byz_share_series, c.byz_share_series);
    }

    #[test]
    fn basalt_counts_seed_rotations() {
        let mut s = small(Protocol::Brahms).basalt_variant(10);
        s.rounds = 40;
        let r = Simulation::new(s.clone()).run();
        // 4 rotation epochs × one slot × every alive correct node.
        let expected = 4 * (s.n - s.byzantine_count()) as u64;
        assert_eq!(r.seed_rotations, expected);
        let never = Simulation::new(s.basalt_variant(0)).run();
        assert_eq!(never.seed_rotations, 0);
    }

    #[test]
    fn basalt_discovery_and_stability_reached() {
        let result = Simulation::new(small(Protocol::Brahms).basalt_variant(15)).run();
        assert!(
            result.mean_discovery_round.is_some(),
            "mean discovery must complete: tail {:?}",
            result.byz_share_series.last()
        );
        assert!(
            result.stability_round.is_some(),
            "stability must be reached"
        );
    }

    #[test]
    fn basalt_role_queries() {
        let s = small(Protocol::Brahms).basalt_variant(15);
        let byz = s.byzantine_count();
        let sim = Simulation::new(s);
        assert!(
            sim.basalt(NodeId(0)).is_none(),
            "Byzantine actors expose no node"
        );
        assert!(sim.basalt(NodeId(byz as u64)).is_some());
        assert!(
            sim.node(NodeId(byz as u64)).is_none(),
            "no RAPTEE nodes under BASALT"
        );
        assert!(!sim.is_trusted(NodeId(byz as u64)));
    }

    #[test]
    fn basalt_survives_loss_and_crashes() {
        let mut s = small(Protocol::Brahms).basalt_variant(15);
        s.message_loss = 0.3;
        s.crash_fraction = 0.2;
        s.crash_round = 10;
        s.rounds = 30;
        let byz = s.byzantine_count();
        let n = s.n;
        let mut sim = Simulation::new(s);
        for _ in 0..30 {
            sim.run_round();
        }
        let dead = (byz..n)
            .filter(|&i| !sim.is_alive(NodeId(i as u64)))
            .count();
        let expected = ((n - byz) as f64 * 0.2).round() as usize;
        assert_eq!(dead, expected);
        // Survivors keep ranked views despite the churn.
        for i in byz..n {
            let id = NodeId(i as u64);
            if sim.is_alive(id) {
                assert!(!sim.basalt(id).unwrap().view().is_empty());
            }
        }
    }
}
