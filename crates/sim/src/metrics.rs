//! Experiment metrics (paper Section V-B).
//!
//! * **Resilience** — percentage of Byzantine IDs in the views of
//!   non-Byzantine nodes once the run has converged (averaged over the
//!   scenario's tail window).
//! * **System-discovery time** — "the number of rounds required for all
//!   nodes to discover at least 75 % of non-Byzantine IDs".
//! * **View-stability time** — "the number of rounds necessary for all
//!   non-Byzantine node views to be polluted within 10 % of the average
//!   proportion of Byzantine IDs in the views of non-Byzantine nodes".
//! * **Identification quality** — precision/recall/F1 of the Section VI-A
//!   trusted-node identification attack, evaluated every round with the
//!   adversary free to pick its best moment.

use crate::scenario::Protocol;
use raptee_net::NodeId;

/// The share of non-Byzantine IDs every node must know for the discovery
/// metric (paper: 75 %).
pub const DISCOVERY_TARGET_SHARE: f64 = 0.75;

/// The view-composition spread that defines stability (paper: 10 %).
pub const STABILITY_SPREAD: f64 = 0.10;

/// Outcome of the trusted-node identification attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdentificationResult {
    /// Fraction of flagged nodes that are actually trusted.
    pub precision: f64,
    /// Fraction of trusted nodes that were flagged.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
    /// Round at which the adversary achieved this result.
    pub round: usize,
}

impl IdentificationResult {
    /// Computes precision/recall/F1 for a set of flagged IDs against the
    /// ground-truth predicate, given the number of actual positives.
    pub fn evaluate(
        flagged: &[NodeId],
        is_trusted: impl Fn(NodeId) -> bool,
        actual_positives: usize,
        round: usize,
    ) -> Self {
        let true_positives = flagged.iter().filter(|&&id| is_trusted(id)).count();
        let precision = if flagged.is_empty() {
            0.0
        } else {
            true_positives as f64 / flagged.len() as f64
        };
        let recall = if actual_positives == 0 {
            0.0
        } else {
            true_positives as f64 / actual_positives as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
            round,
        }
    }
}

/// Series-based view-stability detector, robust to reduced view sizes.
///
/// At the paper's scale (view size 200) the literal per-node criterion —
/// every view within [`STABILITY_SPREAD`] of the average — is meaningful;
/// with the reduced views of the fast benchmark profile a single view
/// entry moves a node's share by 5–10 points, so the per-node spread
/// never settles. This detector instead finds the first round from which
/// the *mean* Byzantine share stays within 10 % (relative, floored at one
/// percentage point absolute) of its converged value for the rest of the
/// run — the same "pollution has stabilised" knee, measured on the
/// population average.
pub fn series_stability_round(series: &[f64], converged: f64) -> Option<usize> {
    // Smooth single-round noise first: with one repetition at reduced
    // scale the raw mean share jitters by ±1 point round-to-round, which
    // would randomise the knee.
    let smoothed = rolling_mean(series, 10);
    series_stability_round_with(&smoothed, converged, 20)
}

/// Rolling mean with a trailing window (first elements average what is
/// available).
pub fn rolling_mean(series: &[f64], window: usize) -> Vec<f64> {
    let w = window.max(1);
    let mut out = Vec::with_capacity(series.len());
    let mut sum = 0.0;
    for i in 0..series.len() {
        sum += series[i];
        if i >= w {
            sum -= series[i - w];
        }
        out.push(sum / (i.min(w - 1) + 1) as f64);
    }
    out
}

/// [`series_stability_round`] with an explicit hold window: the first
/// round from which the series stays within tolerance (10 % relative,
/// floored at 1.5 points absolute — converged protocols keep drifting by
/// fractions of a point for hundreds of rounds, which must not count as
/// instability) for the next `hold` rounds (or to the end of the run).
pub fn series_stability_round_with(series: &[f64], converged: f64, hold: usize) -> Option<usize> {
    if series.is_empty() {
        return None;
    }
    let tolerance = (0.10 * converged).max(0.015);
    let in_band = |v: f64| (v - converged).abs() <= tolerance;
    'outer: for i in 0..series.len() {
        if !in_band(series[i]) {
            continue;
        }
        let end = (i + hold.max(1)).min(series.len());
        for &v in &series[i..end] {
            if !in_band(v) {
                continue 'outer;
            }
        }
        return Some(i);
    }
    None
}

/// Finds the fractional index at which `series` first crosses
/// `target`, linearly interpolating between the straddling rounds —
/// giving round metrics sub-round resolution so overhead ratios do not
/// quantise at reduced scale.
pub fn fractional_crossing(series: &[f64], target: f64) -> Option<f64> {
    let first = *series.first()?;
    if first >= target {
        return Some(0.0);
    }
    for i in 1..series.len() {
        let (a, b) = (series[i - 1], series[i]);
        if b >= target {
            let frac = if b > a { (target - a) / (b - a) } else { 0.0 };
            return Some((i - 1) as f64 + frac);
        }
    }
    None
}

/// Delivery-substrate statistics of one event-driven run (see
/// `crate::event::EventNet`). All counters are message counts folded in
/// deterministic sequential order, so they are golden-pinnable alongside
/// the protocol metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetRunStats {
    /// Messages whose arrival crossed a round boundary (queued instead of
    /// delivered inline).
    pub late_deliveries: u64,
    /// Messages held at a partition boundary (delayed to the heal).
    pub partition_held: u64,
    /// Held messages that were subsequently released at a heal.
    pub partition_released: u64,
    /// Messages bounced off a NAT with no punched hole.
    pub nat_blocked: u64,
    /// Pull exchanges refused outright (active partition cut between
    /// requester and target).
    pub refused_pulls: u64,
    /// Messages still queued when the run ended.
    pub in_flight_at_end: u64,
    /// Pull retry attempts issued by the bounded-backoff timer (0 with
    /// retries disabled).
    pub retries_issued: u64,
    /// Duplicate pull-answer deliveries suppressed by the engine's
    /// nonce dedup (retransmitted answers plus injected copies).
    pub duplicates_suppressed: u64,
    /// Nonces retired from the dedup set by the per-round generation
    /// sweep (a nonce is evicted once its last possible arrival round
    /// has passed, so the set stays bounded on long runs).
    pub nonce_evictions: u64,
}

/// Dynamic-membership outcome of one run — present only when the
/// scenario configures churn or attestation expiry, so static-scenario
/// results (and their golden fingerprints) are untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStats {
    /// Mean fraction of correct nodes alive per round (node-rounds
    /// alive / node-rounds total) — 1.0 in a churn-free run.
    pub availability: f64,
    /// Crash events over the run (one-shot batch + steady + bursts).
    pub crashes: u64,
    /// Restart events over the run.
    pub restarts: u64,
    /// Restarted nodes that returned in-band — their smoothed Byzantine
    /// share back within [`STABILITY_SPREAD`] of the population mean at
    /// least [`crate::engine::Simulation`]'s smoothing window after the
    /// restart.
    pub recovered: u64,
    /// Mean rounds from restart to in-band recovery, over the nodes
    /// that recovered within the run; `None` when none did (or no
    /// restarts happened).
    pub mean_time_to_recover: Option<f64>,
    /// Fraction of the trusted tier both alive and holding a valid
    /// (unexpired) attestation certificate, per round. Empty when the
    /// run has no trusted tier.
    pub trusted_live_fraction: Vec<f64>,
}

/// Audit-layer outcome of one run — present only when the scenario
/// enables the challenger (`Scenario::audit`), so audit-off results
/// (and every pre-existing golden fingerprint) are untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditStats {
    /// Audit challenges issued by the challenger over the run.
    pub audits_issued: u64,
    /// Challenges answered with an opening (live nodes; crashed or
    /// certificate-expired targets cannot answer).
    pub audits_answered: u64,
    /// Verdicts: opening verified against the chained commitment.
    pub cleared: u64,
    /// Verdicts: opening missing or inadmissible (dead, churned-out or
    /// certificate-expired target) — decays after the grace window.
    pub suspected: u64,
    /// Verdicts: opening inconsistent with the chained commitment.
    /// Convicted nodes enter quarantine.
    pub convictions: u64,
    /// Convictions of correct nodes — must be zero: an honest opening
    /// always verifies, and missing openings only ever suspect.
    pub false_accusations: u64,
    /// Byzantine nodes convicted within the run.
    pub detected_byzantine: u64,
    /// Mean rounds from a Byzantine node's first activity to its
    /// conviction, over the nodes detected; `None` when none were.
    pub mean_detection_latency: Option<f64>,
    /// Quarantine population at the end of each round.
    pub quarantine_series: Vec<u32>,
    /// Chained view commitments recorded from the trusted tier.
    pub commitments_recorded: u64,
    /// Commitment chains restarted from genesis by cold rejoins (warm
    /// rejoins re-commit on the existing chain instead).
    pub chain_restarts: u64,
}

/// Pollution metrics of one population segment (see
/// `Scenario::population`). Uniform runs report exactly one segment
/// covering the whole correct population, so `segments[_].resilience`
/// is comparable across uniform and mixed runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentResult {
    /// The protocol this segment ran.
    pub protocol: Protocol,
    /// Number of correct nodes in the segment.
    pub nodes: usize,
    /// Converged mean Byzantine share in this segment's views (tail
    /// mean, like [`RunResult::resilience`]).
    pub resilience: f64,
    /// The (fractional) round at which this segment's mean discovered
    /// share crossed 75 % (like [`RunResult::mean_discovery_round`];
    /// equal to it for uniform runs).
    pub mean_discovery_round: Option<f64>,
    /// First round from which this segment's mean Byzantine share stayed
    /// within tolerance of its converged value (like
    /// [`RunResult::stability_round`]; equal to it for uniform runs).
    pub stability_round: Option<usize>,
    /// This segment's mean Byzantine share per round.
    pub byz_share_series: Vec<f64>,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Converged mean Byzantine share in non-Byzantine views, in `[0, 1]`.
    pub resilience: f64,
    /// Paper-literal discovery: first round at which *every*
    /// non-Byzantine node knew ≥ 75 % of non-Byzantine IDs; `None` if
    /// never reached within the run. An extreme order statistic — noisy
    /// at reduced population sizes.
    pub discovery_round: Option<usize>,
    /// Scale-robust discovery: the (fractional, linearly interpolated)
    /// round at which the *mean* discovered share across non-Byzantine
    /// nodes crossed 75 %. The benches use this at reduced scale (see
    /// EXPERIMENTS.md).
    pub mean_discovery_round: Option<f64>,
    /// First round from which the mean Byzantine share stayed within
    /// tolerance of its converged value (see [`series_stability_round`]);
    /// `None` if the series never settled.
    pub stability_round: Option<usize>,
    /// The paper-literal criterion: first round at which *every*
    /// non-Byzantine view was within [`STABILITY_SPREAD`] of the average.
    /// Meaningful at full view sizes; usually `None` at reduced scale.
    pub spread_stability_round: Option<usize>,
    /// Mean Byzantine share per round (the convergence curve).
    pub byz_share_series: Vec<f64>,
    /// Best identification-attack outcome (max F1 over rounds), when the
    /// attack was enabled.
    pub identification: Option<IdentificationResult>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total push-flood detections across nodes and rounds.
    pub floods_detected: u64,
    /// Total IDs dropped by Byzantine eviction.
    pub total_evicted: u64,
    /// Total BASALT ranking-seed rotations across nodes and rounds (0
    /// under Brahms/RAPTEE).
    pub seed_rotations: u64,
    /// Per-segment pollution (one entry per population segment; exactly
    /// one — equal to the combined metrics — for uniform runs).
    pub segments: Vec<SegmentResult>,
    /// Virtual time elapsed: `rounds × round_ticks` for event-driven
    /// runs, `rounds` (one tick per round) for round-model runs.
    pub virtual_ticks: u64,
    /// Delivery-substrate statistics; `None` for round-model runs.
    pub net: Option<NetRunStats>,
    /// Dynamic-membership and trusted-tier recovery statistics; `None`
    /// unless the scenario configures churn or attestation expiry.
    pub recovery: Option<RecoveryStats>,
    /// Challenger audit statistics; `None` unless the scenario enables
    /// the audit layer.
    pub audit: Option<AuditStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_stability_finds_knee() {
        // Ramp from 0 to 0.4 over 10 rounds, then flat.
        let mut series: Vec<f64> = (0..10).map(|i| i as f64 * 0.04).collect();
        series.extend(std::iter::repeat_n(0.4, 30));
        // Unsmoothed detector finds the exact knee.
        let r = series_stability_round_with(&series, 0.4, 20).unwrap();
        assert!((9..=10).contains(&r), "knee at ≈10, got {r}");
        // The smoothed public entry point lags by up to the smoothing
        // window but must stay in its vicinity.
        let r = series_stability_round(&series, 0.4).unwrap();
        assert!((9..=20).contains(&r), "smoothed knee near 10..20, got {r}");
    }

    #[test]
    fn series_stability_unstable_tail_is_none() {
        let series = vec![0.1, 0.4, 0.1, 0.9];
        assert_eq!(series_stability_round(&series, 0.2), None);
    }

    #[test]
    fn series_stability_tolerates_late_blips() {
        // One outlier 30 rounds after the knee must not postpone it when
        // the hold window has already been satisfied.
        let mut series = vec![0.4; 60];
        series[0] = 0.0; // pre-knee
        series[40] = 0.9; // late blip
        let r = series_stability_round_with(&series, 0.4, 20).unwrap();
        assert_eq!(r, 1);
    }

    #[test]
    fn series_stability_slow_drift_within_floor_is_stable() {
        // A 1-point drift over 100 rounds sits inside the absolute floor.
        let series: Vec<f64> = (0..100).map(|i| 0.30 + 0.01 * (i as f64 / 100.0)).collect();
        let r = series_stability_round(&series, 0.305).unwrap();
        assert_eq!(r, 0);
    }

    #[test]
    fn series_stability_empty_is_none() {
        assert_eq!(series_stability_round(&[], 0.5), None);
    }

    #[test]
    fn series_stability_constant_is_round_zero() {
        let series = vec![0.3; 5];
        assert_eq!(series_stability_round(&series, 0.3), Some(0));
    }

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn fractional_crossing_interpolates() {
        let series = [0.0, 0.4, 0.8, 1.0];
        let r = fractional_crossing(&series, 0.6).unwrap();
        assert!(
            (r - 1.5).abs() < 1e-12,
            "0.6 is halfway between rounds 1 and 2: {r}"
        );
        assert_eq!(fractional_crossing(&series, 0.0), Some(0.0));
        assert_eq!(fractional_crossing(&series, 1.01), None);
        assert_eq!(fractional_crossing(&[], 0.5), None);
    }

    #[test]
    fn perfect_identification() {
        let r = IdentificationResult::evaluate(&ids(&[1, 2]), |id| id.0 < 3, 2, 5);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.round, 5);
    }

    #[test]
    fn partial_identification() {
        // Flags 4 nodes, 2 of which are among the 4 actual positives.
        let r = IdentificationResult::evaluate(&ids(&[1, 2, 10, 11]), |id| id.0 < 4, 4, 0);
        assert_eq!(r.precision, 0.5);
        assert_eq!(r.recall, 0.5);
        assert!((r.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_flag_set() {
        let r = IdentificationResult::evaluate(&[], |_| true, 10, 0);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
    }

    #[test]
    fn no_actual_positives() {
        let r = IdentificationResult::evaluate(&ids(&[1]), |_| false, 0, 0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
    }
}
