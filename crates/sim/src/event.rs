//! The discrete-event delivery substrate.
//!
//! The round engine in [`crate::engine`] is lockstep: every message sent
//! in round `r` arrives in round `r`. This module adds the asynchronous
//! counterpart — an [`EventNet`] that routes the same protocol messages
//! ([`raptee::wire::Message`] payloads) through a deterministic
//! binary-heap [`EventQueue`] ordered by `(time, seq)`, with per-link
//! latency ([`LatencyModel`]), partition/healing schedules
//! ([`PartitionWindow`]) and NAT-like asymmetric reachability
//! ([`Reachability::Nat`]).
//!
//! The protocol cores are *not* rewritten: [`crate::engine::Simulation`]
//! keeps its phase-parallel round structure and per-node round timers,
//! and consults the substrate at exactly the points where a message
//! leaves a node — each honest or adversarial push, each pull
//! request/answer exchange. A message whose arrival time falls inside
//! the sending round is delivered through the unchanged historical code
//! path; a message that crosses a round boundary is queued as a timed
//! [`Envelope`] and drained into the receiving round by
//! [`EventNet::begin_round`] (a `SelfNotif` round-timer event marks each
//! round boundary on the same queue). With the all-zero
//! [`EventNetConfig`] every gate is a pass-through, which is why the
//! event engine reproduces the round engine **bit-for-bit** at zero
//! latency (`tests/asynchrony.rs`).
//!
//! # Determinism
//!
//! Latency draws and round-timer offsets are *hash-derived* from
//! `(seed, link, message counter)` — no shared RNG stream is consumed,
//! so enabling the substrate never perturbs the protocol or loss RNG
//! draw order. All queue mutations happen in the engine's sequential
//! control passes, so the `(time, seq)` order — and therefore every
//! delivery — is independent of `RAYON_NUM_THREADS` (pinned by the
//! event-family goldens in `tests/determinism.rs`).

use crate::engine::Simulation;
use crate::metrics::{NetRunStats, RunResult};
use crate::scenario::{
    EventNetConfig, LatencyModel, NetworkModel, PartitionWindow, Reachability, Scenario,
};
use raptee::wire::Message;
use raptee_net::{NodeId, NodeIdx};
use raptee_util::rng::mix64;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A deterministic min-ordered event queue.
///
/// Entries pop in ascending `(time, seq)` order; `seq` is assigned
/// monotonically at push time, so simultaneous events pop in insertion
/// order and every key is unique — pop order is a pure function of the
/// pushed `(time, seq)` pairs, invariant under heap-internal layout and
/// (via [`EventQueue::push_raw`]) under insertion-order permutations of
/// explicit keys. The scheduler property tests in `tests/asynchrony.rs`
/// pin both facts.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

// Manual ordering on (time, seq) only — the payload never participates,
// so T needs no Ord. Reversed, because BinaryHeap is a max-heap and we
// want the earliest event on top.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`, assigning the next sequence number
    /// (the deterministic same-time tiebreak). Returns the assigned seq.
    pub fn push(&mut self, time: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        seq
    }

    /// Schedules `payload` under an explicit `(time, seq)` key — the
    /// property-test hook for insertion-permutation invariance. Keeps
    /// the auto-assign counter ahead of every explicit seq so mixed use
    /// stays collision-free.
    pub fn push_raw(&mut self, time: u64, seq: u64, payload: T) {
        self.next_seq = self.next_seq.max(seq + 1);
        self.heap.push(Entry { time, seq, payload });
    }

    /// Pops the earliest event as `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.payload))
    }

    /// Pops the earliest event only if it is scheduled strictly before
    /// `horizon`.
    pub fn pop_before(&mut self, horizon: u64) -> Option<(u64, u64, T)> {
        if self.heap.peek().is_some_and(|e| e.time < horizon) {
            self.pop()
        } else {
            None
        }
    }

    /// The earliest scheduled time, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Which delivery bucket a queued push belongs to: the honest
/// counting-sorted run or the adversary's run. The split cannot be
/// derived from the advertised identity (injected poisoned nodes
/// advertise honest-range IDs through the adversary's lane), so the lane
/// travels with the envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Honest pushes — delivered before the adversary's, as in the round
    /// engine.
    Honest,
    /// Adversarial pushes.
    Adversary,
}

/// A timed protocol event in flight. The payload is the wire-level
/// [`Message`]; routing metadata (receiver, lane, partition-hold flag)
/// rides alongside it.
#[derive(Debug, Clone)]
pub enum Envelope {
    /// A round-timer tick: the boundary event that opens round `round`.
    /// One is scheduled per round at construction;
    /// [`EventNet::begin_round`] consumes it.
    SelfNotif {
        /// The round this tick opens.
        round: usize,
    },
    /// A push request in flight ([`Message::Push`]).
    Request {
        /// Absolute actor index of the receiver.
        dst: u32,
        /// Honest or adversarial delivery bucket.
        lane: Lane,
        /// Whether a partition cut held this message back.
        held: bool,
        /// The wire payload.
        msg: Message,
    },
    /// A pull answer in flight ([`Message::PullAnswer`]).
    Reply {
        /// Correct-population index of the requester.
        ci: u32,
        /// The responder's wire identity.
        from: NodeId,
        /// Whether a partition cut held this message back.
        held: bool,
        /// Exchange nonce: every copy of the same answer (deadline
        /// retransmits, injected duplicates) carries the same value, so
        /// the engine's dedup applies at most one.
        nonce: u64,
        /// The wire payload.
        msg: Message,
    },
}

/// A pull answer due this round, drained from the queue by
/// [`EventNet::begin_round`] and injected at the head of the requester's
/// pull phase.
#[derive(Debug, Clone)]
pub struct DueAnswer {
    /// Correct-population index of the requester.
    pub ci: u32,
    /// The responder's wire identity.
    pub from: NodeId,
    /// Exchange nonce — pass to [`EventNet::accept_answer`] before
    /// applying; duplicates of an already-applied answer return `false`.
    pub nonce: u64,
    /// The answered view.
    pub ids: Vec<NodeId>,
}

/// The substrate's verdict on one pull exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullGate {
    /// The round trip completes within the sending round: run the
    /// historical inline exchange unchanged.
    Inline,
    /// No connection: the target is NAT-blocked or behind an active
    /// partition cut. The requester learns nothing (and, unlike a crash
    /// timeout, drops nothing — there is no stale-link signal).
    Refused,
    /// The round trip crosses a round boundary: materialise the answer
    /// now (the responder's state at request time) and deliver it in
    /// round `round`.
    Deferred {
        /// Delivery round of the answer.
        round: usize,
        /// Whether a partition cut held the answer back.
        held: bool,
    },
}

/// The event-driven delivery substrate of one run (`None` under
/// [`NetworkModel::Rounds`]). Owned by [`Simulation`]; consulted from
/// the sequential control passes only.
#[derive(Debug, Clone)]
pub struct EventNet {
    cfg: EventNetConfig,
    /// Hash seed (scenario seed XOR a domain salt — derived, never drawn
    /// from the master RNG, so construction leaves the golden draw
    /// sequences untouched).
    seed: u64,
    total: usize,
    rounds: usize,
    /// First NAT-ted absolute actor index (== `total` when reachability
    /// is full).
    natted_from: usize,
    /// Punched NAT holes: `(natted node, peer) -> round of last outbound
    /// contact`. A plain HashMap — never iterated, only point-queried,
    /// so its order cannot leak into results.
    holes: HashMap<(u32, u32), usize>,
    /// Per-message counter salting the latency hash, bumped in
    /// sequential control order.
    msg_seq: u64,
    /// Counter salting the fault-injection hash (retry jitter,
    /// duplicate/reorder draws). A stream of its own: fault draws never
    /// advance `msg_seq`, so the protocol-visible latency sequence of a
    /// run is identical whether the injectors are on or off.
    fault_seq: u64,
    /// Next exchange nonce (0 is never issued).
    next_nonce: u64,
    /// Nonces whose answer has already been applied (point-queried
    /// only — set order cannot leak into results).
    seen_nonces: HashSet<u64>,
    /// Retirement schedule bounding `seen_nonces`: `(last possible
    /// arrival round, nonce)` min-heap, swept at each round open. Every
    /// copy of a nonce is queued at `queue_answer` time, so its last
    /// arrival round is known exactly — the sweep can never evict a
    /// nonce that could still be presented, keeping dedup behaviour
    /// byte-identical while the set stays bounded on long runs.
    nonce_retire: BinaryHeap<Reverse<(usize, u64)>>,
    /// Deadline-expired answer copies of the pull currently being
    /// gated: `(arrival tick, held)` recorded by the retry loop, queued
    /// (with the shared nonce) when the engine materialises the answer.
    dup_pending: Vec<(u64, bool)>,
    queue: EventQueue<Envelope>,
    /// This round's due pushes, honest lane: `(receiver, advertised)`
    /// pairs ready to head the survivor list.
    due_honest: Vec<(u32, NodeIdx)>,
    /// This round's due pushes, adversary lane.
    due_byz: Vec<(u32, NodeIdx)>,
    /// This round's due pull answers, stably sorted by requester.
    due_answers: Vec<DueAnswer>,
    stats: NetRunStats,
}

impl EventNet {
    /// Builds the substrate for `scenario`, or `None` under the round
    /// model. Pure derivation from the scenario — consumes no RNG.
    pub fn from_scenario(scenario: &Scenario) -> Option<Self> {
        match &scenario.network {
            NetworkModel::Rounds => None,
            NetworkModel::Events(cfg) => Some(Self::new(scenario, cfg.clone())),
        }
    }

    fn new(scenario: &Scenario, cfg: EventNetConfig) -> Self {
        let total = scenario.total_actors();
        let byz = scenario.byzantine_count();
        let natted_from = match cfg.reachability {
            Reachability::Full => total,
            Reachability::Nat { fraction, .. } => {
                let correct = total - byz;
                total - ((fraction * correct as f64).ceil() as usize).min(correct)
            }
        };
        let mut queue = EventQueue::new();
        // The per-round SelfNotif ticks: the round-timer events that
        // anchor every round window on the shared queue.
        for r in 0..scenario.rounds {
            queue.push(r as u64 * cfg.round_ticks, Envelope::SelfNotif { round: r });
        }
        Self {
            seed: scenario.seed ^ 0xE7E7_4E75_C0DE_D00D,
            total,
            rounds: scenario.rounds,
            natted_from,
            holes: HashMap::new(),
            msg_seq: 0,
            fault_seq: 0,
            next_nonce: 0,
            seen_nonces: HashSet::new(),
            nonce_retire: BinaryHeap::new(),
            dup_pending: Vec::new(),
            queue,
            due_honest: Vec::new(),
            due_byz: Vec::new(),
            due_answers: Vec::new(),
            stats: NetRunStats::default(),
            cfg,
        }
    }

    /// Ticks per round (for [`RunResult::virtual_ticks`]).
    pub fn round_ticks(&self) -> u64 {
        self.cfg.round_ticks
    }

    /// Opens round `round`: consumes the round's `SelfNotif` tick and
    /// drains every envelope scheduled inside the round window into the
    /// due buckets (pushes per lane; answers stably sorted by
    /// requester).
    pub fn begin_round(&mut self, round: usize) {
        self.due_honest.clear();
        self.due_byz.clear();
        self.due_answers.clear();
        // Generation sweep: retire nonces whose last possible arrival
        // round has passed — no remaining copy can present them, so
        // removal is invisible to the dedup semantics.
        while let Some(&Reverse((last_round, nonce))) = self.nonce_retire.peek() {
            if last_round >= round {
                break;
            }
            self.nonce_retire.pop();
            if self.seen_nonces.remove(&nonce) {
                self.stats.nonce_evictions += 1;
            }
        }
        let horizon = (round as u64 + 1) * self.cfg.round_ticks;
        let mut ticked = false;
        while let Some((_, _, env)) = self.queue.pop_before(horizon) {
            match env {
                Envelope::SelfNotif { round: r } => {
                    debug_assert_eq!(r, round, "round-timer ticks fire in order");
                    ticked = true;
                }
                Envelope::Request {
                    dst,
                    lane,
                    held,
                    msg,
                } => {
                    let Message::Push { sender } = msg else {
                        unreachable!("requests carry push payloads")
                    };
                    if held {
                        self.stats.partition_released += 1;
                    }
                    let pair = (dst, NodeIdx(sender.0 as u32));
                    match lane {
                        Lane::Honest => self.due_honest.push(pair),
                        Lane::Adversary => self.due_byz.push(pair),
                    }
                }
                Envelope::Reply {
                    ci,
                    from,
                    held,
                    nonce,
                    msg,
                } => {
                    let Message::PullAnswer { ids } = msg else {
                        unreachable!("replies carry pull-answer payloads")
                    };
                    if held {
                        self.stats.partition_released += 1;
                    }
                    self.due_answers.push(DueAnswer {
                        ci,
                        from,
                        nonce,
                        ids,
                    });
                }
            }
        }
        debug_assert!(ticked, "every round window contains its SelfNotif tick");
        // Stable sort: per requester, answers keep their (time, seq)
        // arrival order.
        self.due_answers.sort_by_key(|a| a.ci);
    }

    /// Moves this round's due pushes of `lane` to the head of
    /// `survivors` (they are the *oldest* messages each receiver sees —
    /// the subsequent stable counting sort preserves that).
    pub fn drain_due_pushes(&mut self, lane: Lane, survivors: &mut Vec<(u32, NodeIdx)>) {
        let bucket = match lane {
            Lane::Honest => &mut self.due_honest,
            Lane::Adversary => &mut self.due_byz,
        };
        survivors.append(bucket);
    }

    /// Routes one push from actor `src` to actor `dst` advertising
    /// `advertised`. Returns `true` when the message lands inside the
    /// sending round (deliver through the unchanged inline path), `false`
    /// when it was queued for a later round or blocked by the NAT.
    pub fn send_push(
        &mut self,
        round: usize,
        src: usize,
        dst: usize,
        advertised: NodeId,
        lane: Lane,
    ) -> bool {
        if self.natted(src) {
            // Outbound contact punches the return hole peers need to
            // reach this node.
            self.holes.insert((src as u32, dst as u32), round);
        }
        if self.natted(dst) && !self.hole_open(dst, src, round) {
            self.stats.nat_blocked += 1;
            return false;
        }
        let ticks = self.cfg.round_ticks;
        let send = round as u64 * ticks + self.offset(src);
        let (mut arrival, _) = (send + self.latency(src, dst), ());
        let held = self.partition_clamp(src, dst, &mut arrival);
        if held {
            self.stats.partition_held += 1;
        }
        let arrival_round = (arrival / ticks) as usize;
        if arrival_round <= round {
            return true;
        }
        self.stats.late_deliveries += 1;
        self.queue.push(
            arrival,
            Envelope::Request {
                dst: dst as u32,
                lane,
                held,
                msg: Message::Push { sender: advertised },
            },
        );
        false
    }

    /// Gates one pull exchange from requester `req` (absolute index) to
    /// `tgt`: refused across a NAT or an active cut, inline when the
    /// round trip fits the sending round, deferred otherwise.
    ///
    /// With [`RetryConfig`](crate::scenario::RetryConfig) enabled, each
    /// request arms a deadline timer of one round period. A refused
    /// connection re-attempts after bounded exponential backoff plus
    /// hash-derived jitter (a cut that heals before the re-attempt
    /// succeeds); an answer that would miss the deadline is treated as
    /// lost and retried, while the late copy still arrives and carries
    /// the *same* nonce — exercising the dedup in the engine's answer
    /// path. The first attempt consumes draws exactly like the
    /// retry-free gate, so the all-off config stays byte-identical.
    pub fn gate_pull(&mut self, round: usize, req: usize, tgt: usize) -> PullGate {
        debug_assert!(self.dup_pending.is_empty(), "pending copies were drained");
        let ticks = self.cfg.round_ticks;
        let retry = self.cfg.retry;
        let mut depart = round as u64 * ticks + self.offset(req);
        for attempt in 0..=retry.max_retries {
            let last = attempt == retry.max_retries;
            let depart_round = (depart / ticks) as usize;
            if depart_round >= self.rounds {
                // The run ends before this attempt fires.
                self.dup_pending.clear();
                return PullGate::Refused;
            }
            // Each attempt is an outbound contact: it re-punches the
            // requester's NAT hole at its own departure round.
            if self.natted(req) {
                self.holes.insert((req as u32, tgt as u32), depart_round);
            }
            let refused = if self.natted(tgt) && !self.hole_open(tgt, req, depart_round) {
                self.stats.nat_blocked += 1;
                true
            } else if self.cut_active(depart_round, req, tgt) {
                self.stats.refused_pulls += 1;
                true
            } else {
                false
            };
            if refused {
                if last {
                    self.dup_pending.clear();
                    return PullGate::Refused;
                }
                depart += self.backoff(attempt, req, tgt);
                continue;
            }
            let rtt = self.latency(req, tgt) + self.latency(tgt, req);
            let mut arrival = depart + rtt;
            // The answer travels back across the same pair: a cut
            // activating before it lands holds it at the boundary.
            let held = self.partition_clamp(req, tgt, &mut arrival);
            if held {
                self.stats.partition_held += 1;
            }
            if !last && arrival > depart + ticks {
                // Deadline expired: the requester assumes loss and
                // retries. The late copy is still in flight — record it
                // so the materialised answer is also delivered at this
                // arrival, under the shared nonce.
                self.dup_pending.push((arrival, held));
                depart += self.backoff(attempt, req, tgt);
                continue;
            }
            let answer_round = (arrival / ticks) as usize;
            return if answer_round <= round && self.dup_pending.is_empty() {
                PullGate::Inline
            } else {
                // Retransmit copies are pending: the exchange must go
                // through `queue_answer` so they get their payload, so
                // an in-round arrival defers to the next round.
                PullGate::Deferred {
                    round: answer_round.max(if self.dup_pending.is_empty() {
                        0
                    } else {
                        round + 1
                    }),
                    held,
                }
            };
        }
        unreachable!("the final attempt always returns")
    }

    /// One bounded-exponential-backoff delay: `base · 2^attempt` plus
    /// hash-derived jitter in `[0, base)`, counted as a retry.
    fn backoff(&mut self, attempt: u32, req: usize, tgt: usize) -> u64 {
        self.stats.retries_issued += 1;
        let base = self.cfg.retry.base_backoff;
        (base << attempt.min(16)) + self.fault_draw(req, tgt) % base.max(1)
    }

    /// Queues a materialised pull answer for delivery at `round` (as
    /// returned by [`PullGate::Deferred`]), plus every pending
    /// deadline-retransmit copy and any injected duplicate — all under
    /// one fresh nonce, so the engine applies exactly one copy.
    pub fn queue_answer(
        &mut self,
        round: usize,
        held: bool,
        ci: u32,
        from: NodeId,
        ids: Vec<NodeId>,
    ) {
        self.next_nonce += 1;
        let nonce = self.next_nonce;
        let primary = round as u64 * self.cfg.round_ticks;
        let mut copies: Vec<(u64, bool)> = vec![(primary, held)];
        copies.append(&mut self.dup_pending);
        if self.cfg.duplicate_rate > 0.0
            && unit(self.fault_draw(ci as usize, from.0 as usize)) < self.cfg.duplicate_rate
        {
            // Injected duplicate, optionally reordered by extra
            // hash-derived delay.
            let extra = if self.cfg.reorder_jitter > 0 {
                self.fault_draw(ci as usize, from.0 as usize) % (self.cfg.reorder_jitter + 1)
            } else {
                0
            };
            copies.push((primary + extra, held));
        }
        let last_arrival = copies.iter().map(|&(a, _)| a).max().unwrap_or(primary);
        self.nonce_retire.push(Reverse((
            (last_arrival / self.cfg.round_ticks) as usize,
            nonce,
        )));
        for (arrival, held) in copies {
            self.stats.late_deliveries += 1;
            self.queue.push(
                arrival,
                Envelope::Reply {
                    ci,
                    from,
                    held,
                    nonce,
                    msg: Message::PullAnswer { ids: ids.clone() },
                },
            );
        }
    }

    /// Discards the deadline-retransmit copies of the current exchange —
    /// for gated pulls that never materialise an answer (crashed or
    /// lossy responder), where the in-flight copies have no payload to
    /// carry.
    pub fn drop_pending_copies(&mut self) {
        self.dup_pending.clear();
    }

    /// Whether this answer nonce is fresh. The engine consults this
    /// before applying a due answer: the first copy claims the nonce,
    /// every later duplicate (deadline retransmit, injected copy)
    /// returns `false` and is counted as suppressed — the idempotence
    /// guarantee of the wire path.
    pub fn accept_answer(&mut self, nonce: u64) -> bool {
        if self.seen_nonces.insert(nonce) {
            true
        } else {
            self.stats.duplicates_suppressed += 1;
            false
        }
    }

    /// Takes this round's due answers (sorted by requester). The engine
    /// hands the buffer back through [`EventNet::restore_due_answers`]
    /// so the allocation is reused.
    pub fn take_due_answers(&mut self) -> Vec<DueAnswer> {
        std::mem::take(&mut self.due_answers)
    }

    /// Returns the due-answer buffer after the round consumed it.
    pub fn restore_due_answers(&mut self, mut buf: Vec<DueAnswer>) {
        buf.clear();
        self.due_answers = buf;
    }

    /// Finalises the run: anything still queued past the last round is
    /// in flight forever.
    pub fn finish(mut self) -> NetRunStats {
        while let Some((_, _, env)) = self.queue.pop() {
            if !matches!(env, Envelope::SelfNotif { .. }) {
                self.stats.in_flight_at_end += 1;
            }
        }
        self.stats
    }

    /// Read access to the running statistics (tests).
    pub fn stats(&self) -> &NetRunStats {
        &self.stats
    }

    fn natted(&self, actor: usize) -> bool {
        actor >= self.natted_from && actor < self.total
    }

    /// Whether `src` can traverse `natted_dst`'s NAT in `round`: the
    /// destination contacted `src` within the hole TTL.
    fn hole_open(&self, natted_dst: usize, src: usize, round: usize) -> bool {
        let Reachability::Nat { hole_ttl, .. } = self.cfg.reachability else {
            return true;
        };
        self.holes
            .get(&(natted_dst as u32, src as u32))
            .is_some_and(|&opened| round - opened <= hole_ttl)
    }

    /// Whether an active partition window separates `a` and `b` in
    /// `round` — a pure schedule lookup (no stream draws), used by the
    /// audit challenger to recognise targets it cannot reach.
    pub fn separated(&self, round: usize, a: usize, b: usize) -> bool {
        self.cut_active(round, a, b)
    }

    /// Whether an active partition separates `a` and `b` in `round`.
    fn cut_active(&self, round: usize, a: usize, b: usize) -> bool {
        self.cfg
            .partitions
            .iter()
            .any(|w| w.start <= round && round < w.end && Self::crosses(w, a, b))
    }

    fn crosses(w: &PartitionWindow, a: usize, b: usize) -> bool {
        (a < w.boundary) != (b < w.boundary)
    }

    /// Holds `arrival` at every partition boundary it would cross while
    /// active: a message between `a` and `b` cannot land inside a window
    /// that separates them, so its arrival is pushed to the healing
    /// round (fixpoint over overlapping windows). Returns whether any
    /// hold applied — the invariant the partition property tests pin:
    /// held messages are delayed to the heal, never dropped.
    fn partition_clamp(&self, a: usize, b: usize, arrival: &mut u64) -> bool {
        let ticks = self.cfg.round_ticks;
        let mut held = false;
        loop {
            let round = (*arrival / ticks) as usize;
            let Some(release) = self
                .cfg
                .partitions
                .iter()
                .filter(|w| w.start <= round && round < w.end && Self::crosses(w, a, b))
                .map(|w| w.end as u64 * ticks)
                .max()
            else {
                return held;
            };
            *arrival = release;
            held = true;
        }
    }

    /// Per-node round-timer offset in `[0, jitter]` ticks — the
    /// desynchronised-clocks model. Hash-derived, stable per node.
    fn offset(&self, actor: usize) -> u64 {
        if self.cfg.jitter == 0 {
            return 0;
        }
        mix64(self.seed ^ 0x00FF_5E75 ^ mix64(actor as u64)) % (self.cfg.jitter + 1)
    }

    /// One per-message latency draw on the `src -> dst` link.
    fn latency(&mut self, src: usize, dst: usize) -> u64 {
        match self.cfg.latency {
            LatencyModel::Constant(c) => c,
            LatencyModel::Uniform { min, max } => {
                let span = max - min + 1;
                min + self.draw(src, dst) % span
            }
            LatencyModel::LogNormal { mu, sigma, cap } => {
                // Box–Muller from two hash-derived uniforms in (0, 1).
                let u1 = unit(self.draw(src, dst));
                let u2 = unit(self.draw(src, dst));
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let lat = (mu + sigma * z).exp();
                // `as` saturates, so an extreme tail draw caps cleanly.
                (lat.round() as u64).min(cap)
            }
        }
    }

    /// The hash-derived per-message uniform: seeded by the link and a
    /// counter bumped in sequential control order — deterministic at any
    /// thread count, and independent of every protocol RNG stream.
    fn draw(&mut self, src: usize, dst: usize) -> u64 {
        self.msg_seq += 1;
        mix64(self.seed ^ mix64(((src as u64) << 32) | dst as u64) ^ mix64(self.msg_seq))
    }

    /// The fault-injection uniform (retry jitter, duplicate/reorder
    /// draws): its own salt and counter, so fault draws never shift the
    /// protocol-visible latency sequence of [`EventNet::draw`].
    fn fault_draw(&mut self, a: usize, b: usize) -> u64 {
        self.fault_seq += 1;
        mix64(
            self.seed ^ 0xD0D0_FA17 ^ mix64(((a as u64) << 32) | b as u64) ^ mix64(self.fault_seq),
        )
    }

    /// Number of rounds this substrate was built for (tests).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// Maps a hash draw to a uniform in the open interval `(0, 1)`.
fn unit(x: u64) -> f64 {
    ((x >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// The event-driven engine: a thin, explicitly-named driver over
/// [`Simulation`] for scenarios on [`NetworkModel::Events`]. The
/// substrate activates transparently inside [`Simulation::new`] as well
/// — this wrapper exists so call sites (and docs) can name the engine
/// they mean, and so the network-model precondition is asserted.
pub struct EventEngine {
    sim: Simulation,
}

impl EventEngine {
    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics when the scenario is not on [`NetworkModel::Events`].
    pub fn new(scenario: Scenario) -> Self {
        assert!(
            matches!(scenario.network, NetworkModel::Events(_)),
            "EventEngine drives NetworkModel::Events scenarios; use Simulation for rounds"
        );
        Self {
            sim: Simulation::new(scenario),
        }
    }

    /// Executes the full run.
    pub fn run(self) -> RunResult {
        self.sim.run()
    }

    /// Executes one round (tests single-step through this).
    pub fn run_round(&mut self) {
        self.sim.run_round();
    }

    /// The underlying simulation.
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EventNetConfig;

    #[test]
    fn queue_pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(5, "late");
        q.push(1, "first");
        q.push(5, "later"); // same time, higher seq
        q.push(2, "second");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["first", "second", "late", "later"]);
    }

    #[test]
    fn queue_pop_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(10, 'a');
        q.push(20, 'b');
        assert_eq!(q.pop_before(20).map(|(t, _, p)| (t, p)), Some((10, 'a')));
        assert_eq!(q.pop_before(20), None, "horizon is exclusive");
        assert_eq!(q.peek_time(), Some(20));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn push_raw_keys_decide_order_regardless_of_insertion() {
        let keys = [(3u64, 0u64), (1, 7), (1, 2), (9, 1)];
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for &(t, s) in &keys {
            a.push_raw(t, s, (t, s));
        }
        for &(t, s) in keys.iter().rev() {
            b.push_raw(t, s, (t, s));
        }
        let pa: Vec<_> = std::iter::from_fn(|| a.pop()).collect();
        let pb: Vec<_> = std::iter::from_fn(|| b.pop()).collect();
        assert_eq!(pa, pb);
        assert_eq!(
            pa.iter().map(|&(t, s, _)| (t, s)).collect::<Vec<_>>(),
            vec![(1, 2), (1, 7), (3, 0), (9, 1)]
        );
    }

    fn net(cfg: EventNetConfig) -> EventNet {
        let scenario = Scenario {
            n: 100,
            rounds: 40,
            network: NetworkModel::Events(cfg),
            ..Scenario::default()
        };
        scenario.validate();
        EventNet::from_scenario(&scenario).expect("events model")
    }

    #[test]
    fn zero_latency_config_is_a_pass_through() {
        let mut net = net(EventNetConfig::default());
        net.begin_round(0);
        for dst in 1..50 {
            assert!(net.send_push(0, 0, dst, NodeId(0), Lane::Honest));
            assert_eq!(net.gate_pull(0, 0, dst), PullGate::Inline);
        }
        assert_eq!(net.stats().late_deliveries, 0);
        let stats = net.finish();
        assert_eq!(stats, NetRunStats::default());
    }

    #[test]
    fn constant_latency_defers_by_whole_rounds() {
        let mut net = net(EventNetConfig {
            latency: LatencyModel::Constant(2500),
            ..EventNetConfig::default()
        });
        net.begin_round(0);
        // 2500 ticks at 1000 ticks/round: arrival in round 2.
        assert!(!net.send_push(0, 3, 7, NodeId(3), Lane::Honest));
        match net.gate_pull(0, 4, 8) {
            PullGate::Deferred { round, held } => {
                assert_eq!(round, 5, "round trip is two one-way draws");
                assert!(!held);
            }
            g => panic!("expected a deferred answer, got {g:?}"),
        }
        net.begin_round(1);
        let mut survivors = Vec::new();
        net.drain_due_pushes(Lane::Honest, &mut survivors);
        assert!(survivors.is_empty(), "not due yet");
        net.begin_round(2);
        net.drain_due_pushes(Lane::Honest, &mut survivors);
        assert_eq!(survivors, vec![(7, NodeIdx(3))]);
    }

    #[test]
    fn partitions_hold_messages_until_heal() {
        let mut net = net(EventNetConfig {
            partitions: vec![PartitionWindow {
                start: 0,
                end: 10,
                boundary: 50,
            }],
            ..EventNetConfig::default()
        });
        net.begin_round(0);
        // Same side: unaffected.
        assert!(net.send_push(0, 1, 2, NodeId(1), Lane::Honest));
        // Across the cut: held to the healing round, not dropped.
        assert!(!net.send_push(0, 1, 60, NodeId(1), Lane::Honest));
        assert_eq!(net.stats().partition_held, 1);
        assert_eq!(net.gate_pull(0, 1, 60), PullGate::Refused);
        assert_eq!(net.stats().refused_pulls, 1);
        let mut survivors = Vec::new();
        for r in 1..10 {
            net.begin_round(r);
            net.drain_due_pushes(Lane::Honest, &mut survivors);
            assert!(survivors.is_empty(), "round {r} is inside the cut");
        }
        net.begin_round(10);
        net.drain_due_pushes(Lane::Honest, &mut survivors);
        assert_eq!(survivors, vec![(60, NodeIdx(1))], "released at the heal");
        assert_eq!(net.stats().partition_released, 1);
        assert_eq!(net.finish().in_flight_at_end, 0);
    }

    #[test]
    fn nat_blocks_unsolicited_inbound_until_hole_punched() {
        // 100 actors, 10 Byzantine, fraction 0.5 of the 90 correct: the
        // last 45 actors (55..100) are NAT-ted.
        let mut net = net(EventNetConfig {
            reachability: Reachability::Nat {
                fraction: 0.5,
                hole_ttl: 2,
            },
            ..EventNetConfig::default()
        });
        net.begin_round(0);
        // Unsolicited inbound to a NAT-ted node bounces.
        assert!(!net.send_push(0, 3, 70, NodeId(3), Lane::Honest));
        assert_eq!(net.stats().nat_blocked, 1);
        // The NAT-ted node contacts 3 (outbound always passes)...
        assert!(net.send_push(0, 70, 3, NodeId(70), Lane::Honest));
        // ...which punches the return hole.
        assert!(net.send_push(0, 3, 70, NodeId(3), Lane::Honest));
        net.begin_round(1);
        net.begin_round(2);
        assert!(net.send_push(2, 3, 70, NodeId(3), Lane::Honest), "ttl 2");
        net.begin_round(3);
        assert!(
            !net.send_push(3, 3, 70, NodeId(3), Lane::Honest),
            "hole expired"
        );
        // A pull from the NAT-ted node punches holes too.
        assert_eq!(net.gate_pull(3, 70, 4), PullGate::Inline);
        assert!(net.send_push(3, 4, 70, NodeId(4), Lane::Honest));
    }

    #[test]
    fn deferred_answers_sort_stably_by_requester() {
        let mut net = net(EventNetConfig::default());
        net.queue_answer(1, false, 7, NodeId(40), vec![NodeId(1)]);
        net.queue_answer(1, false, 2, NodeId(41), vec![NodeId(2)]);
        net.queue_answer(1, false, 7, NodeId(42), vec![NodeId(3)]);
        net.begin_round(0);
        assert!(net.take_due_answers().is_empty());
        net.restore_due_answers(Vec::new());
        net.begin_round(1);
        let due = net.take_due_answers();
        let order: Vec<(u32, NodeId)> = due.iter().map(|a| (a.ci, a.from)).collect();
        assert_eq!(
            order,
            vec![(2, NodeId(41)), (7, NodeId(40)), (7, NodeId(42))],
            "sorted by requester, arrival order preserved within one"
        );
    }

    use crate::scenario::RetryConfig;

    #[test]
    fn refused_pull_retries_after_backoff_and_succeeds_past_the_heal() {
        let mut net = net(EventNetConfig {
            partitions: vec![PartitionWindow {
                start: 0,
                end: 5,
                boundary: 50,
            }],
            retry: RetryConfig {
                max_retries: 3,
                base_backoff: 5_000,
            },
            ..EventNetConfig::default()
        });
        net.begin_round(0);
        // Attempt 0 hits the cut; the single retry departs 5000..10000
        // ticks later (round 5..9), after the heal, and succeeds.
        match net.gate_pull(0, 1, 60) {
            PullGate::Deferred { round, .. } => assert!((5..10).contains(&round)),
            g => panic!("expected a post-heal deferred answer, got {g:?}"),
        }
        assert_eq!(net.stats().refused_pulls, 1);
        assert_eq!(net.stats().retries_issued, 1);
    }

    #[test]
    fn retries_stop_at_the_cap() {
        let mut net = net(EventNetConfig {
            partitions: vec![PartitionWindow {
                start: 0,
                end: 40,
                boundary: 50,
            }],
            retry: RetryConfig {
                max_retries: 3,
                base_backoff: 10,
            },
            ..EventNetConfig::default()
        });
        net.begin_round(0);
        assert_eq!(net.gate_pull(0, 1, 60), PullGate::Refused);
        assert_eq!(net.stats().refused_pulls, 4, "initial try + 3 retries");
        assert_eq!(net.stats().retries_issued, 3, "the cap binds");
        assert_eq!(net.finish().in_flight_at_end, 0);
    }

    #[test]
    fn deadline_retransmits_share_one_nonce_and_dedup_suppresses_them() {
        let mut net = net(EventNetConfig {
            latency: LatencyModel::Constant(2500),
            retry: RetryConfig {
                max_retries: 2,
                base_backoff: 100,
            },
            ..EventNetConfig::default()
        });
        net.begin_round(0);
        // Every attempt's round trip (5000 ticks) blows the one-round
        // deadline: two retries fire, and both expired copies stay in
        // flight alongside the final answer.
        let gate = net.gate_pull(0, 1, 2);
        let PullGate::Deferred { round, held } = gate else {
            panic!("expected deferred, got {gate:?}")
        };
        assert_eq!(net.stats().retries_issued, 2);
        net.queue_answer(round, held, 4, NodeId(2), vec![NodeId(9)]);
        for r in 1..=round {
            net.begin_round(r);
        }
        let due = net.take_due_answers();
        assert_eq!(due.len(), 3, "final answer + two deadline retransmits");
        assert!(due.iter().all(|a| a.nonce == due[0].nonce));
        let applied = due.iter().filter(|a| net.accept_answer(a.nonce)).count();
        assert_eq!(applied, 1, "dedup applies exactly one copy");
        assert_eq!(net.stats().duplicates_suppressed, 2);
    }

    #[test]
    fn injected_duplicates_are_suppressed_not_double_applied() {
        let mut net = net(EventNetConfig {
            duplicate_rate: 1.0,
            reorder_jitter: 100,
            ..EventNetConfig::default()
        });
        net.queue_answer(1, false, 3, NodeId(8), vec![NodeId(5)]);
        net.begin_round(0);
        let buf = net.take_due_answers();
        net.restore_due_answers(buf);
        net.begin_round(1);
        let due = net.take_due_answers();
        assert_eq!(due.len(), 2, "the injector added one copy");
        assert_eq!(due[0].nonce, due[1].nonce);
        assert!(net.accept_answer(due[0].nonce));
        assert!(!net.accept_answer(due[1].nonce), "second copy suppressed");
        assert_eq!(net.stats().duplicates_suppressed, 1);
    }

    #[test]
    fn dropped_exchanges_discard_pending_copies() {
        let mut net = net(EventNetConfig {
            latency: LatencyModel::Constant(2500),
            retry: RetryConfig {
                max_retries: 1,
                base_backoff: 100,
            },
            ..EventNetConfig::default()
        });
        net.begin_round(0);
        let _ = net.gate_pull(0, 1, 2);
        // The responder never materialises an answer (crash/loss): the
        // engine discards the in-flight copies instead of queueing them.
        net.drop_pending_copies();
        let _ = net.gate_pull(0, 3, 4); // debug_assert: buffer is clean
        net.drop_pending_copies();
    }

    #[test]
    fn lognormal_latency_is_deterministic_and_capped() {
        let mk = || {
            net(EventNetConfig {
                latency: LatencyModel::LogNormal {
                    mu: 6.0,
                    sigma: 1.5,
                    cap: 10_000,
                },
                ..EventNetConfig::default()
            })
        };
        let (mut a, mut b) = (mk(), mk());
        for i in 0..200 {
            let la = a.latency(i % 7, (i + 1) % 11);
            let lb = b.latency(i % 7, (i + 1) % 11);
            assert_eq!(la, lb, "hash-derived draws replay exactly");
            assert!(la <= 10_000, "cap truncates the tail");
        }
    }
}
