//! Verifiable audit layer: merkle-committed views, challenger replay,
//! conviction and quarantine (PR 9).
//!
//! Every trusted-tier node commits its view each round as a chained
//! [`ViewCommitment`] (see `raptee_tee::merkle`); the commitments ride
//! the attested exchange path and expire with the node's attestation
//! certificate. A [`Challenger`], driven by the hash-deterministic
//! [`Beacon`], samples `audit_budget` nodes per round, demands a merkle
//! opening of one sampled view slot, replays it against the recorded
//! commitment chain and issues a [`Verdict`]:
//!
//! * [`Verdict::Cleared`] — the opening verifies against the chained
//!   commitment; any standing suspicion is lifted.
//! * [`Verdict::Suspected`] — the opening is missing or inadmissible
//!   (crashed, churned-out, partitioned or certificate-expired target).
//!   Suspicion is *never* escalated to a conviction; it decays after the
//!   configured grace window, so transiently unavailable correct nodes
//!   are tolerated.
//! * [`Verdict::Convicted`] — the opening is *inconsistent* with the
//!   chained commitment (equivocation): cryptographic proof of
//!   misbehaviour. Convicted nodes enter quarantine and are purged from
//!   honest views and trusted directories by the engine.
//!
//! Convictions require proof; unavailability only ever suspects. That
//! asymmetry is what makes `correct_nodes_are_never_convicted` a
//! structural guarantee rather than a tuning outcome.
//!
//! The beacon is a dedicated `mix64` stream (salted with
//! [`AUDIT_BEACON_SALT`]) that no other subsystem reads, and the
//! challenger only exists when `Scenario::audit` is set — so audit-off
//! runs never draw from it and every pre-existing golden replays
//! byte-for-byte.

use crate::metrics::AuditStats;
use crate::scenario::AuditConfig;
use raptee_net::NodeId;
use raptee_tee::merkle::{leaf_hash, verify, MerkleTree, ViewCommitment};
use raptee_util::rng::mix64;

/// Salt of the audit randomness beacon — a dedicated hash stream so the
/// challenger's draws never perturb protocol, churn, trust-tier or
/// network randomness.
pub const AUDIT_BEACON_SALT: u64 = 0xA0D1_7BEA_C05A_17ED;

/// Hash-deterministic randomness beacon: a counter-mode `mix64` stream.
/// Every consumer sees the same sequence for the same scenario seed, at
/// any thread count, and [`Beacon::draws`] exposes how many values were
/// ever taken (zero when audits are off).
#[derive(Debug, Clone)]
pub struct Beacon {
    seed: u64,
    ctr: u64,
}

impl Beacon {
    /// Derives the beacon for a scenario `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed: mix64(seed ^ AUDIT_BEACON_SALT),
            ctr: 0,
        }
    }

    /// The next beacon value.
    pub fn next_value(&mut self) -> u64 {
        self.ctr += 1;
        mix64(self.seed ^ mix64(self.ctr))
    }

    /// The next beacon value reduced below `n` (`n > 0`).
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_value() % n
    }

    /// Total values drawn so far.
    pub fn draws(&self) -> u64 {
        self.ctr
    }
}

/// The challenger's ruling on one audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Opening verified against the chained commitment.
    Cleared,
    /// Opening missing or inadmissible — tolerated, decays after the
    /// grace window.
    Suspected,
    /// Opening inconsistent with the chained commitment — proof of
    /// misbehaviour; the node is quarantined.
    Convicted,
}

/// What an audited node produced in answer to a challenge.
#[derive(Debug, Clone, Copy)]
pub enum AuditResponse<'a> {
    /// A live honest node opens its current committed view.
    Opening {
        /// The view whose commitment the node answers for.
        view: &'a [NodeId],
    },
    /// No answer: the target is dead, churned out, partitioned away or
    /// its attestation certificate expired (the commitment would be
    /// inadmissible — see `raptee::provisioning::commitment_admissible`).
    Unavailable,
    /// A Byzantine node answers, but its opening cannot be consistent
    /// with the recorded traffic *and* the chained commitment at once —
    /// the replay exposes the equivocation.
    Equivocation,
}

/// Per-node audit bookkeeping plus the run-level counters that become
/// [`AuditStats`].
#[derive(Debug, Clone)]
pub struct Challenger {
    cfg: AuditConfig,
    beacon: Beacon,
    /// Latest chained commitment per actor (`None` before the first
    /// commit or right after a cold rejoin restarted the chain).
    chains: Vec<Option<ViewCommitment>>,
    /// Round a standing suspicion was raised in, per actor.
    suspected_at: Vec<Option<u32>>,
    quarantined: Vec<bool>,
    quarantine_count: u32,
    /// Round each actor first became active (for detection latency).
    first_active: Vec<u32>,
    byz_count: usize,
    audits_issued: u64,
    audits_answered: u64,
    cleared: u64,
    suspected: u64,
    convictions: u64,
    false_accusations: u64,
    detected_byzantine: u64,
    latency_sum: u64,
    quarantine_series: Vec<u32>,
    commitments_recorded: u64,
    chain_restarts: u64,
}

impl Challenger {
    /// A challenger over `total` actors of which the prefix
    /// `[0, byz_count)` is Byzantine, drawing from the beacon derived
    /// from `seed`.
    pub fn new(cfg: AuditConfig, seed: u64, total: usize, byz_count: usize) -> Self {
        Self {
            cfg,
            beacon: Beacon::new(seed),
            chains: vec![None; total],
            suspected_at: vec![None; total],
            quarantined: vec![false; total],
            quarantine_count: 0,
            first_active: vec![0; total],
            byz_count,
            audits_issued: 0,
            audits_answered: 0,
            cleared: 0,
            suspected: 0,
            convictions: 0,
            false_accusations: 0,
            detected_byzantine: 0,
            latency_sum: 0,
            quarantine_series: Vec::new(),
            commitments_recorded: 0,
            chain_restarts: 0,
        }
    }

    /// The audit configuration in force.
    pub fn config(&self) -> &AuditConfig {
        &self.cfg
    }

    /// Beacon draws consumed so far (zero iff the challenger never ran).
    pub fn beacon_draws(&self) -> u64 {
        self.beacon.draws()
    }

    /// Whether `abs` has been convicted and quarantined.
    pub fn is_quarantined(&self, abs: usize) -> bool {
        self.quarantined[abs]
    }

    /// Convicted population so far.
    pub fn quarantine_len(&self) -> u32 {
        self.quarantine_count
    }

    /// Records that `abs` (re)joined at `round` — the reference point
    /// for its detection latency.
    pub fn mark_active(&mut self, abs: usize, round: u32) {
        self.first_active[abs] = round;
    }

    /// Records `abs`'s chained commitment of `view` at `round`. The
    /// merkle root is over the view's IDs in slot order; the commitment
    /// chains onto the previous one (genesis after boot or a cold
    /// rejoin).
    pub fn commit_view(&mut self, round: u32, abs: usize, view: &[NodeId]) {
        let root = view_tree(view).root();
        let commitment = match &self.chains[abs] {
            None => ViewCommitment::genesis(round as u64, root),
            Some(prev) => ViewCommitment::chained(prev, round as u64, root),
        };
        self.chains[abs] = Some(commitment);
        self.commitments_recorded += 1;
    }

    /// A cold rejoin restarts `abs`'s chain from genesis (the sealed
    /// state is gone; the next commitment uses the genesis `prev`).
    /// Warm rejoins keep the chain and simply re-commit.
    pub fn restart_chain(&mut self, abs: usize) {
        if self.chains[abs].take().is_some() {
            self.chain_restarts += 1;
        }
    }

    /// Draws this round's audit targets from the beacon: `budget`
    /// draws over `[0, total)`, skipping already-quarantined nodes
    /// (their draw is still consumed, keeping the stream aligned).
    pub fn draw_targets(&mut self, total: usize, out: &mut Vec<usize>) {
        out.clear();
        for _ in 0..self.cfg.budget {
            let t = self.beacon.next_below(total as u64) as usize;
            if !self.quarantined[t] {
                out.push(t);
            }
        }
    }

    /// Audits `target` at `round` given its response, and returns the
    /// verdict. Convictions happen *only* on proof inconsistency —
    /// unavailability suspects at worst.
    pub fn audit(&mut self, round: u32, target: usize, response: AuditResponse<'_>) -> Verdict {
        self.audits_issued += 1;
        match response {
            AuditResponse::Unavailable => {
                if self.suspected_at[target].is_none() {
                    self.suspected_at[target] = Some(round);
                    self.suspected += 1;
                }
                Verdict::Suspected
            }
            AuditResponse::Opening { view } => {
                self.audits_answered += 1;
                let tree = view_tree(view);
                let slot = self.beacon.next_below(tree.len().max(1) as u64) as usize;
                let proof = tree.open(slot);
                // An empty view commits to the empty pad, which is its
                // own root; otherwise open the drawn slot.
                let opened = if view.is_empty() {
                    tree.root()
                } else {
                    leaf_hash(&view[slot].0.to_le_bytes())
                };
                let consistent = match &self.chains[target] {
                    // The opening must verify against the *committed*
                    // root of the chain head.
                    Some(head) => head.root == tree.root() && verify(&head.root, &opened, &proof),
                    // No commitment on file (untrusted node, or chain
                    // restarted this very round): verify the opening
                    // self-consistently.
                    None => verify(&tree.root(), &opened, &proof),
                };
                if consistent {
                    self.clear(target)
                } else {
                    self.convict(round, target)
                }
            }
            AuditResponse::Equivocation => {
                self.audits_answered += 1;
                // Replay: the node's recorded traffic (what it actually
                // advertised on the wire) differs from anything it
                // committed, so whichever opening it supplies fails the
                // cross-check. Model the supplied opening as the
                // recorded-traffic view and verify it against the
                // chained commitment.
                let recorded: Vec<NodeId> = (0..4)
                    .map(|i| NodeId(mix64(target as u64 ^ mix64(u64::from(round)) ^ i)))
                    .collect();
                let tree = view_tree(&recorded);
                let slot = self.beacon.next_below(tree.len() as u64) as usize;
                let opened = leaf_hash(&recorded[slot].0.to_le_bytes());
                let verified = match &self.chains[target] {
                    Some(head) => {
                        head.root == tree.root() && verify(&head.root, &opened, &tree.open(slot))
                    }
                    // Exchanged on the attested path without ever
                    // committing — itself a protocol violation.
                    None => false,
                };
                debug_assert!(!verified, "an equivocating opening must fail replay");
                if verified {
                    self.clear(target)
                } else {
                    self.convict(round, target)
                }
            }
        }
    }

    fn clear(&mut self, target: usize) -> Verdict {
        self.cleared += 1;
        self.suspected_at[target] = None;
        Verdict::Cleared
    }

    fn convict(&mut self, round: u32, target: usize) -> Verdict {
        // The per-round target batch is drawn up-front, so the same
        // target can be audited twice in one round; only the first
        // conviction counts (quarantine is idempotent).
        if !self.quarantined[target] {
            self.quarantined[target] = true;
            self.quarantine_count += 1;
            self.convictions += 1;
            if target < self.byz_count {
                self.detected_byzantine += 1;
                self.latency_sum += u64::from(round + 1 - self.first_active[target]);
            } else {
                self.false_accusations += 1;
            }
        }
        self.suspected_at[target] = None;
        Verdict::Convicted
    }

    /// Closes `round`: standing suspicions older than the grace window
    /// decay (the target was only unavailable, not provably faulty) and
    /// the quarantine population is appended to the per-round series.
    pub fn end_round(&mut self, round: u32) {
        let grace = self.cfg.grace as u32;
        for s in self.suspected_at.iter_mut() {
            if let Some(raised) = *s {
                if round >= raised + grace {
                    *s = None;
                }
            }
        }
        self.quarantine_series.push(self.quarantine_count);
    }

    /// Folds the bookkeeping into the run-level [`AuditStats`].
    pub fn into_stats(self) -> AuditStats {
        AuditStats {
            audits_issued: self.audits_issued,
            audits_answered: self.audits_answered,
            cleared: self.cleared,
            suspected: self.suspected,
            convictions: self.convictions,
            false_accusations: self.false_accusations,
            detected_byzantine: self.detected_byzantine,
            mean_detection_latency: if self.detected_byzantine > 0 {
                Some(self.latency_sum as f64 / self.detected_byzantine as f64)
            } else {
                None
            },
            quarantine_series: self.quarantine_series,
            commitments_recorded: self.commitments_recorded,
            chain_restarts: self.chain_restarts,
        }
    }
}

/// The merkle tree over a view: one leaf per slot, hashing the ID's
/// little-endian bytes in slot order.
fn view_tree(view: &[NodeId]) -> MerkleTree {
    let leaves: Vec<_> = view
        .iter()
        .map(|id| leaf_hash(&id.0.to_le_bytes()))
        .collect();
    MerkleTree::from_leaves(&leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AuditConfig;

    fn cfg(budget: usize, grace: usize) -> AuditConfig {
        AuditConfig { budget, grace }
    }

    fn view(ids: &[u64]) -> Vec<NodeId> {
        ids.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn beacon_is_deterministic_and_counts_draws() {
        let mut a = Beacon::new(42);
        let mut b = Beacon::new(42);
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_value()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_value()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.draws(), 8);
        let mut c = Beacon::new(43);
        assert_ne!(seq_a[0], c.next_value(), "distinct seeds, distinct streams");
    }

    #[test]
    fn honest_opening_clears_and_lifts_suspicion() {
        let mut ch = Challenger::new(cfg(1, 5), 7, 10, 2);
        let v = view(&[3, 4, 5, 6]);
        ch.commit_view(0, 5, &v);
        // First the node is unavailable → suspected.
        assert_eq!(
            ch.audit(1, 5, AuditResponse::Unavailable),
            Verdict::Suspected
        );
        // Then it answers honestly → cleared, suspicion lifted.
        assert_eq!(
            ch.audit(2, 5, AuditResponse::Opening { view: &v }),
            Verdict::Cleared
        );
        let stats = ch.into_stats();
        assert_eq!(stats.cleared, 1);
        assert_eq!(stats.suspected, 1);
        assert_eq!(stats.convictions, 0);
        assert_eq!(stats.false_accusations, 0);
    }

    #[test]
    fn tampered_opening_is_convicted() {
        let mut ch = Challenger::new(cfg(1, 5), 7, 10, 2);
        let committed = view(&[3, 4, 5, 6]);
        ch.commit_view(0, 1, &committed);
        // The node answers with a view that differs from its commitment.
        let tampered = view(&[3, 4, 99, 6]);
        assert_eq!(
            ch.audit(1, 1, AuditResponse::Opening { view: &tampered }),
            Verdict::Convicted
        );
        assert!(ch.is_quarantined(1));
        let stats = ch.into_stats();
        assert_eq!(stats.convictions, 1);
        assert_eq!(stats.detected_byzantine, 1);
        assert_eq!(stats.false_accusations, 0);
        assert_eq!(stats.mean_detection_latency, Some(2.0));
    }

    #[test]
    fn equivocation_is_convicted_and_latency_measured() {
        let mut ch = Challenger::new(cfg(1, 5), 7, 10, 3);
        ch.mark_active(2, 4);
        ch.commit_view(4, 2, &view(&[1, 2, 3]));
        assert_eq!(
            ch.audit(9, 2, AuditResponse::Equivocation),
            Verdict::Convicted
        );
        let stats = ch.into_stats();
        assert_eq!(stats.detected_byzantine, 1);
        // Active since round 4, convicted in round 9 → latency 6 rounds.
        assert_eq!(stats.mean_detection_latency, Some(6.0));
    }

    #[test]
    fn suspicion_decays_after_grace_window() {
        let mut ch = Challenger::new(cfg(1, 3), 7, 4, 0);
        assert_eq!(
            ch.audit(10, 0, AuditResponse::Unavailable),
            Verdict::Suspected
        );
        ch.end_round(10);
        ch.end_round(11);
        // Still within grace at round 12; decays at round 13.
        ch.end_round(12);
        assert!(ch.suspected_at[0].is_some(), "grace window still open");
        ch.end_round(13);
        assert!(ch.suspected_at[0].is_none(), "suspicion must decay");
        // A second unavailability after decay counts as a new suspicion.
        assert_eq!(
            ch.audit(14, 0, AuditResponse::Unavailable),
            Verdict::Suspected
        );
        assert_eq!(ch.into_stats().suspected, 2);
    }

    #[test]
    fn unavailability_never_convicts() {
        let mut ch = Challenger::new(cfg(2, 2), 7, 6, 0);
        for round in 0..50 {
            ch.audit(round, 3, AuditResponse::Unavailable);
            ch.end_round(round);
        }
        let stats = ch.into_stats();
        assert_eq!(stats.convictions, 0);
        assert_eq!(stats.false_accusations, 0);
    }

    #[test]
    fn draw_targets_skips_quarantined_but_consumes_draws() {
        let mut ch = Challenger::new(cfg(4, 5), 7, 8, 8);
        let mut a = Vec::new();
        ch.draw_targets(8, &mut a);
        let draws_before = ch.beacon_draws();
        // Convict everyone, then draw again: the stream advances by the
        // full budget even though every target is filtered out.
        for t in 0..8 {
            ch.audit(0, t, AuditResponse::Equivocation);
        }
        let mut b = Vec::new();
        ch.draw_targets(8, &mut b);
        assert!(b.is_empty());
        assert_eq!(ch.beacon_draws(), draws_before + 8 + 4);
    }

    #[test]
    fn cold_rejoin_restarts_chain_warm_keeps_it() {
        let mut ch = Challenger::new(cfg(1, 5), 7, 4, 0);
        let v = view(&[1, 2, 3]);
        ch.commit_view(0, 2, &v);
        ch.commit_view(1, 2, &v);
        // Warm rejoin: chain untouched, next commit still chains on.
        ch.commit_view(2, 2, &v);
        assert_eq!(ch.into_stats().chain_restarts, 0);

        let mut ch = Challenger::new(cfg(1, 5), 7, 4, 0);
        ch.commit_view(0, 2, &v);
        ch.restart_chain(2);
        ch.commit_view(5, 2, &v);
        // Restarting an empty chain is a no-op.
        ch.restart_chain(3);
        let stats = ch.into_stats();
        assert_eq!(stats.chain_restarts, 1);
        assert_eq!(stats.commitments_recorded, 2);
    }

    #[test]
    fn quarantine_series_tracks_convictions() {
        let mut ch = Challenger::new(cfg(1, 5), 7, 6, 6);
        ch.end_round(0);
        ch.audit(1, 0, AuditResponse::Equivocation);
        ch.end_round(1);
        ch.audit(2, 1, AuditResponse::Equivocation);
        // Re-auditing an already-convicted node (possible within one
        // round's pre-drawn batch) still answers Convicted but counts
        // nothing twice.
        assert_eq!(
            ch.audit(2, 1, AuditResponse::Equivocation),
            Verdict::Convicted
        );
        ch.end_round(2);
        let stats = ch.into_stats();
        assert_eq!(stats.quarantine_series, vec![0, 1, 2]);
        assert_eq!(stats.convictions, 2);
        assert_eq!(stats.detected_byzantine, 2);
    }
}
