//! The adversary of Section III-B, plus its two RAPTEE-specific attacks.
//!
//! One coordinator controls all Byzantine nodes. Its baseline strategy —
//! proved optimal for Brahms in the original paper — is:
//!
//! * **balanced pushes**: spend the collective (rate-limited) push budget
//!   `B·α·l1` spread as evenly as possible over the correct nodes, each
//!   push advertising a Byzantine ID;
//! * **poisoned pull answers**: answer every pull request with a view
//!   that "contains exclusively Byzantine IDs".
//!
//! Against RAPTEE it can additionally run:
//!
//! * the **trusted-node identification** classifier (Section VI-A):
//!   Byzantine nodes pull non-Byzantine nodes, measure the Byzantine
//!   share of each answer, and flag nodes whose share sits more than a
//!   threshold *below* the population average — the statistical shadow
//!   cast by Byzantine eviction;
//! * **view-poisoned trusted-node injection** (Section VI-B), set up by
//!   the engine: genuine enclaves bootstrapped inside a Byzantine-only
//!   network so their initial views are fully poisoned.

use raptee_net::NodeId;
use raptee_util::rng::Xoshiro256StarStar;

/// A planned batch of adversary pushes: `(victim, advertised ID)` pairs.
pub type PushPlan = Vec<(NodeId, NodeId)>;

/// The adversary's classification of one node, with bookkeeping for
/// precision/recall.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Observation {
    /// Most recently observed Byzantine share in the node's pull answer.
    byz_share: f64,
}

/// The coordinator of all Byzantine nodes.
#[derive(Debug, Clone)]
pub struct Adversary {
    byzantine_ids: Vec<NodeId>,
    /// View-poisoned trusted nodes the adversary has injected
    /// (Section VI-B). They are advertised *sparsely* — one slot of an
    /// occasional pull answer — just enough for the system to discover
    /// and contact them; flooding them into every answer would dilute
    /// the Byzantine poisoning pressure and work against the adversary.
    injected: Vec<NodeId>,
    view_size: usize,
    rng: Xoshiro256StarStar,
    /// Latest observation per (non-Byzantine) node index; `None` = never
    /// pulled.
    observations: Vec<Option<Observation>>,
    /// Round-robin cursor over the Byzantine identities for the
    /// force-push attack (coverage beats repetition against ranked
    /// views).
    force_rotor: usize,
    /// Reusable buffers for the per-round sampling calls (Fisher–Yates
    /// index scratch and the remainder-victim draw) — planning and pull
    /// answers allocate nothing in steady state.
    idx_scratch: Vec<u32>,
    extra_scratch: Vec<NodeId>,
}

impl Adversary {
    /// Creates the adversary controlling `byzantine_ids`, in a system of
    /// `total_actors` nodes whose views have `view_size` entries.
    pub fn new(
        byzantine_ids: Vec<NodeId>,
        total_actors: usize,
        view_size: usize,
        seed: u64,
    ) -> Self {
        Self {
            injected: Vec::new(),
            byzantine_ids,
            view_size,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            observations: vec![None; total_actors],
            force_rotor: 0,
            idx_scratch: Vec::new(),
            extra_scratch: Vec::new(),
        }
    }

    /// Registers injected view-poisoned trusted nodes for sparse
    /// advertisement so the system discovers them.
    pub fn advertise_injected(&mut self, injected: impl IntoIterator<Item = NodeId>) {
        self.injected.extend(injected);
    }

    /// Number of Byzantine identities.
    pub fn count(&self) -> usize {
        self.byzantine_ids.len()
    }

    /// The Byzantine identities.
    pub fn ids(&self) -> &[NodeId] {
        &self.byzantine_ids
    }

    /// Plans this round's balanced push attack: returns
    /// `(victim, advertised Byzantine ID)` pairs. `budget` is the
    /// adversary's lawful total (`B · α·l1`, enforced upstream by the
    /// rate limiter); `victims` are the correct nodes.
    ///
    /// Pushes are spread evenly: every victim receives
    /// `⌊budget / |victims|⌋`, and the remainder goes to a random subset
    /// — the "evenly balanced push messages" of the paper.
    pub fn plan_balanced_pushes(
        &mut self,
        victims: &[NodeId],
        budget: usize,
    ) -> Vec<(NodeId, NodeId)> {
        let mut plan = Vec::new();
        self.plan_balanced_pushes_into(victims, budget, &mut plan);
        plan
    }

    /// [`Adversary::plan_balanced_pushes`] into a caller-owned plan
    /// buffer (cleared first) — the engine reuses one buffer per round.
    /// The RNG draw sequence is identical to the allocating variant.
    pub fn plan_balanced_pushes_into(
        &mut self,
        victims: &[NodeId],
        budget: usize,
        plan: &mut PushPlan,
    ) {
        plan.clear();
        self.balanced_pushes_append(victims, budget, plan);
    }

    /// The shared appending body of the balanced planner (also reused by
    /// the focused share of the targeted attack).
    fn balanced_pushes_append(&mut self, victims: &[NodeId], budget: usize, plan: &mut PushPlan) {
        if victims.is_empty() || self.byzantine_ids.is_empty() || budget == 0 {
            return;
        }
        let base = budget / victims.len();
        let remainder = budget % victims.len();
        plan.reserve(budget.min(victims.len() * (base + 1)));
        for &v in victims {
            for _ in 0..base {
                plan.push((v, self.random_byz_id()));
            }
        }
        let Self {
            rng,
            idx_scratch,
            extra_scratch,
            ..
        } = self;
        rng.sample_into(victims, remainder, idx_scratch, extra_scratch);
        for i in 0..self.extra_scratch.len() {
            let v = self.extra_scratch[i];
            plan.push((v, self.random_byz_id()));
        }
    }

    /// Answers a pull request: a full view of exclusively Byzantine IDs
    /// (distinct when enough identities exist). When poisoned trusted
    /// nodes have been injected, one answer in four carries a single
    /// injected ID in place of a Byzantine one — enough for discovery,
    /// negligible dilution.
    pub fn pull_answer(&mut self) -> Vec<NodeId> {
        let mut answer = Vec::new();
        self.pull_answer_into(&mut answer);
        answer
    }

    /// [`Adversary::pull_answer`] into a caller-owned buffer (cleared
    /// first); identical RNG draw sequence.
    pub fn pull_answer_into(&mut self, out: &mut Vec<NodeId>) {
        let Self {
            rng,
            byzantine_ids,
            injected,
            view_size,
            idx_scratch,
            ..
        } = self;
        Self::answer_with(rng, byzantine_ids, injected, *view_size, idx_scratch, out);
    }

    /// A snapshot of the adversary's RNG, taken *before* a
    /// [`Adversary::pull_answer_into`] call so the identical answer can
    /// later be regenerated by [`Adversary::replay_pull_answer`]. The
    /// parallel engine stores these 32-byte states per deferred answer
    /// instead of materialising the answer IDs — the coordinator RNG
    /// stays a single sequential stream (bit-identical results at any
    /// thread count), while the per-ID work moves to the parallel apply
    /// phase.
    pub fn rng_snapshot(&self) -> Xoshiro256StarStar {
        self.rng.clone()
    }

    /// Regenerates a pull answer from an [`Adversary::rng_snapshot`]
    /// taken when the answer was originally drawn. `&self` only — safe
    /// to call from many worker threads at once with worker-owned
    /// `rng`/`idx`/`out` buffers. The produced IDs are bit-identical to
    /// what `pull_answer_into` emitted at snapshot time (the identity
    /// pools never change mid-round).
    pub fn replay_pull_answer(
        &self,
        rng: &mut Xoshiro256StarStar,
        idx: &mut Vec<u32>,
        out: &mut Vec<NodeId>,
    ) {
        Self::answer_with(
            rng,
            &self.byzantine_ids,
            &self.injected,
            self.view_size,
            idx,
            out,
        );
    }

    /// The shared answer body: a full view of exclusively Byzantine IDs,
    /// with the sparse injected-ID advertisement.
    fn answer_with(
        rng: &mut Xoshiro256StarStar,
        byzantine_ids: &[NodeId],
        injected: &[NodeId],
        view_size: usize,
        idx: &mut Vec<u32>,
        out: &mut Vec<NodeId>,
    ) {
        let k = view_size.min(byzantine_ids.len());
        rng.sample_into(byzantine_ids, k, idx, out);
        if !injected.is_empty() && !out.is_empty() && rng.chance(0.25) {
            let slot = rng.index(out.len());
            out[slot] = injected[rng.index(injected.len())];
        }
    }

    /// Records the Byzantine share observed in a pull answer received
    /// from non-Byzantine node `from` (identification attack data
    /// collection).
    pub fn observe_pull_answer(
        &mut self,
        from: NodeId,
        answer: &[NodeId],
        is_byz: impl Fn(NodeId) -> bool,
    ) {
        if answer.is_empty() {
            return;
        }
        let byz = answer.iter().filter(|&&id| is_byz(id)).count();
        let share = byz as f64 / answer.len() as f64;
        self.record_share(from, share);
    }

    /// Records an already-computed Byzantine share for node `from` (used
    /// by the engine, which computes shares in place instead of cloning
    /// pull answers).
    pub fn record_share(&mut self, from: NodeId, share: f64) {
        if let Some(slot) = self.observations.get_mut(from.index()) {
            *slot = Some(Observation { byz_share: share });
        }
    }

    /// Plans a *targeted* attack (the strategy Brahms' history sampling
    /// is designed to defeat): a fraction of the budget floods a small
    /// victim set, the rest stays balanced over everyone. Returns
    /// `(victim, advertised ID)` pairs like
    /// [`Adversary::plan_balanced_pushes`].
    pub fn plan_targeted_pushes(
        &mut self,
        all_victims: &[NodeId],
        targets: &[NodeId],
        budget: usize,
        focus: f64,
    ) -> Vec<(NodeId, NodeId)> {
        let mut plan = Vec::new();
        self.plan_targeted_pushes_into(all_victims, targets, budget, focus, &mut plan);
        plan
    }

    /// [`Adversary::plan_targeted_pushes`] into a caller-owned plan
    /// buffer (cleared first); identical RNG draw sequence.
    pub fn plan_targeted_pushes_into(
        &mut self,
        all_victims: &[NodeId],
        targets: &[NodeId],
        budget: usize,
        focus: f64,
        plan: &mut PushPlan,
    ) {
        self.plan_with_focus(
            all_victims,
            targets,
            budget,
            focus,
            Self::balanced_pushes_append,
            plan,
        );
    }

    /// Shared focus-splitting for the targeted attack variants: a `focus`
    /// share of the budget goes to `targets` through `planner`, the rest
    /// stays spread over everyone.
    fn plan_with_focus(
        &mut self,
        all_victims: &[NodeId],
        targets: &[NodeId],
        budget: usize,
        focus: f64,
        planner: fn(&mut Self, &[NodeId], usize, &mut PushPlan),
        plan: &mut PushPlan,
    ) {
        plan.clear();
        if all_victims.is_empty() || self.byzantine_ids.is_empty() || budget == 0 {
            return;
        }
        let focused_budget = (budget as f64 * focus.clamp(0.0, 1.0)).round() as usize;
        if !targets.is_empty() {
            planner(self, targets, focused_budget, plan);
        }
        let spent = plan.len();
        planner(self, all_victims, budget - spent, plan);
    }

    /// Plans the *force-push* attack against BASALT's ranked hit-counter
    /// views: the lawful budget is still spread evenly over the victims
    /// (rate limiting makes concentration pointless), but every push
    /// advertises the **next distinct Byzantine identity round-robin**
    /// instead of a random draw. Against a min-rank view, repeating an ID
    /// buys nothing — the adversary's best play is maximal *coverage*, so
    /// that every slot where some Byzantine ID happens to rank closest is
    /// found as quickly as possible. Returns `(victim, advertised)` pairs
    /// like [`Adversary::plan_balanced_pushes`].
    pub fn plan_force_pushes(
        &mut self,
        victims: &[NodeId],
        budget: usize,
    ) -> Vec<(NodeId, NodeId)> {
        let mut plan = Vec::new();
        self.plan_force_pushes_into(victims, budget, &mut plan);
        plan
    }

    /// [`Adversary::plan_force_pushes`] into a caller-owned plan buffer
    /// (cleared first); identical RNG draw sequence.
    pub fn plan_force_pushes_into(
        &mut self,
        victims: &[NodeId],
        budget: usize,
        plan: &mut PushPlan,
    ) {
        plan.clear();
        self.force_pushes_append(victims, budget, plan);
    }

    /// The shared appending body of the force-push planner.
    fn force_pushes_append(&mut self, victims: &[NodeId], budget: usize, plan: &mut PushPlan) {
        if victims.is_empty() || self.byzantine_ids.is_empty() || budget == 0 {
            return;
        }
        let base = budget / victims.len();
        let remainder = budget % victims.len();
        plan.reserve(budget);
        for &v in victims {
            for _ in 0..base {
                plan.push((v, self.next_force_id()));
            }
        }
        let Self {
            rng,
            idx_scratch,
            extra_scratch,
            ..
        } = self;
        rng.sample_into(victims, remainder, idx_scratch, extra_scratch);
        for i in 0..self.extra_scratch.len() {
            let v = self.extra_scratch[i];
            plan.push((v, self.next_force_id()));
        }
    }

    fn next_force_id(&mut self) -> NodeId {
        let id = self.byzantine_ids[self.force_rotor % self.byzantine_ids.len()];
        self.force_rotor = self.force_rotor.wrapping_add(1);
        id
    }

    /// The *targeted* force-push attack: like
    /// [`Adversary::plan_targeted_pushes`], a `focus` share of the budget
    /// floods the victim subset, the rest stays balanced — but every push
    /// advertises distinct Byzantine identities round-robin, the only
    /// lever that matters against a ranked view. Returns
    /// `(victim, advertised)` pairs.
    pub fn plan_targeted_force_pushes(
        &mut self,
        all_victims: &[NodeId],
        targets: &[NodeId],
        budget: usize,
        focus: f64,
    ) -> Vec<(NodeId, NodeId)> {
        let mut plan = Vec::new();
        self.plan_targeted_force_pushes_into(all_victims, targets, budget, focus, &mut plan);
        plan
    }

    /// [`Adversary::plan_targeted_force_pushes`] into a caller-owned plan
    /// buffer (cleared first); identical RNG draw sequence.
    pub fn plan_targeted_force_pushes_into(
        &mut self,
        all_victims: &[NodeId],
        targets: &[NodeId],
        budget: usize,
        focus: f64,
        plan: &mut PushPlan,
    ) {
        self.plan_with_focus(
            all_victims,
            targets,
            budget,
            focus,
            Self::force_pushes_append,
            plan,
        );
    }

    /// Picks `k` observation targets uniformly among `candidates` (the
    /// Byzantine nodes' own pull requests for the identification attack).
    pub fn observation_targets(&mut self, candidates: &[NodeId], k: usize) -> Vec<NodeId> {
        self.rng.sample(candidates, k)
    }

    /// [`Adversary::observation_targets`] into a caller-owned buffer
    /// (cleared first); identical RNG draw sequence.
    pub fn observation_targets_into(
        &mut self,
        candidates: &[NodeId],
        k: usize,
        out: &mut Vec<NodeId>,
    ) {
        let Self {
            rng, idx_scratch, ..
        } = self;
        rng.sample_into(candidates, k, idx_scratch, out);
    }

    /// Runs the identification classifier (Section VI-A): computes the
    /// average observed Byzantine share, then flags every observed node
    /// whose share sits more than `threshold` *below* that average.
    /// Returns the flagged node IDs.
    pub fn classify_trusted(&self, threshold: f64) -> Vec<NodeId> {
        let observed: Vec<(usize, f64)> = self
            .observations
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|o| (i, o.byz_share)))
            .collect();
        if observed.is_empty() {
            return Vec::new();
        }
        let avg = observed.iter().map(|&(_, s)| s).sum::<f64>() / observed.len() as f64;
        observed
            .into_iter()
            .filter(|&(_, share)| avg - share > threshold)
            .map(|(i, _)| NodeId(i as u64))
            .collect()
    }

    /// Number of nodes observed so far.
    pub fn observed_count(&self) -> usize {
        self.observations.iter().filter(|o| o.is_some()).count()
    }

    fn random_byz_id(&mut self) -> NodeId {
        self.byzantine_ids[self.rng.index(self.byzantine_ids.len())]
    }
}

/// One arm's running statistics in the [`AdaptiveCoordinator`].
#[derive(Debug, Clone, Copy, Default)]
struct ArmStats {
    /// Rounds this arm has been played.
    pulls: u64,
    /// Accumulated pollution yield (mean Byzantine view share of the
    /// attacked segment, one observation per played round).
    total_yield: f64,
}

/// The bandit scheduler behind `AdversaryMode::Adaptive`: a
/// deterministic UCB1 policy over abstract arms (the engine maps each
/// arm to one segment × attack-strategy pair), re-allocating the whole
/// lawful per-round push budget to the arm with the best upper
/// confidence bound on observed pollution yield.
///
/// Determinism: the coordinator consumes **no randomness** — arm choice
/// is a pure function of the recorded pull counts and yields, with ties
/// broken by lowest arm index. A scenario that never constructs the
/// coordinator therefore draws exactly the same RNG streams as before
/// it existed, keeping every static-adversary golden byte-identical.
#[derive(Debug, Clone)]
pub struct AdaptiveCoordinator {
    arms: Vec<ArmStats>,
    rounds: u64,
}

impl AdaptiveCoordinator {
    /// A coordinator over `arm_count` arms (must be positive).
    pub fn new(arm_count: usize) -> Self {
        assert!(arm_count > 0, "the bandit needs at least one arm");
        Self {
            arms: vec![ArmStats::default(); arm_count],
            rounds: 0,
        }
    }

    /// Number of arms.
    pub fn arm_count(&self) -> usize {
        self.arms.len()
    }

    /// Rounds played so far (reward observations recorded).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Times `arm` has been chosen.
    pub fn pulls(&self, arm: usize) -> u64 {
        self.arms[arm].pulls
    }

    /// Mean observed yield of `arm` (`0.0` before its first pull).
    pub fn mean_yield(&self, arm: usize) -> f64 {
        let a = &self.arms[arm];
        if a.pulls == 0 {
            0.0
        } else {
            a.total_yield / a.pulls as f64
        }
    }

    /// The arm to play this round: each arm once in index order first
    /// (the UCB1 warm-up), then the arm maximising
    /// `mean + sqrt(2·ln(t) / pulls)`; ties break to the lowest index.
    pub fn choose(&self) -> usize {
        if let Some(cold) = self.arms.iter().position(|a| a.pulls == 0) {
            return cold;
        }
        let t = self.rounds.max(1) as f64;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, a) in self.arms.iter().enumerate() {
            let mean = a.total_yield / a.pulls as f64;
            let score = mean + (2.0 * t.ln() / a.pulls as f64).sqrt();
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// The per-arm budget allocation for this round: the entire lawful
    /// `budget` goes to [`AdaptiveCoordinator::choose`]'s arm, every
    /// other arm gets zero — so the allocation always sums exactly to
    /// `budget` (the lawfulness invariant the property tests assert).
    pub fn allocate(&self, budget: usize) -> Vec<usize> {
        let mut out = vec![0usize; self.arms.len()];
        out[self.choose()] = budget;
        out
    }

    /// Records the observed pollution yield of playing `arm` this round
    /// (the engine feeds the attacked segment's mean Byzantine view
    /// share after the round's stats fold).
    pub fn reward(&mut self, arm: usize, observed_yield: f64) {
        let a = &mut self.arms[arm];
        a.pulls += 1;
        a.total_yield += observed_yield.clamp(0.0, 1.0);
        self.rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adversary(byz: u64, total: usize) -> Adversary {
        Adversary::new((0..byz).map(NodeId).collect(), total, 10, 7)
    }

    #[test]
    fn balanced_pushes_are_even_and_within_budget() {
        let mut a = adversary(20, 100);
        let victims: Vec<NodeId> = (20..100).map(NodeId).collect();
        let budget = 20 * 4; // B·α·l1 with α·l1 = 4
        let plan = a.plan_balanced_pushes(&victims, budget);
        assert_eq!(plan.len(), budget);
        // Per-victim counts differ by at most one.
        let mut counts = vec![0usize; 100];
        for &(v, id) in &plan {
            counts[v.index()] += 1;
            assert!(id.0 < 20, "advertised IDs are Byzantine");
        }
        let victim_counts: Vec<usize> = (20..100).map(|i| counts[i]).collect();
        let min = victim_counts.iter().min().unwrap();
        let max = victim_counts.iter().max().unwrap();
        assert!(max - min <= 1, "balanced: min {min}, max {max}");
    }

    #[test]
    fn push_plan_edge_cases() {
        let mut a = adversary(5, 10);
        assert!(a.plan_balanced_pushes(&[], 10).is_empty());
        assert!(a.plan_balanced_pushes(&[NodeId(9)], 0).is_empty());
        let mut empty = Adversary::new(vec![], 10, 10, 1);
        assert!(empty.plan_balanced_pushes(&[NodeId(9)], 10).is_empty());
    }

    #[test]
    fn pull_answers_are_fully_byzantine_and_distinct() {
        let mut a = adversary(50, 100);
        let ans = a.pull_answer();
        assert_eq!(ans.len(), 10);
        assert!(ans.iter().all(|id| id.0 < 50));
        let mut dedup = ans.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn pull_answer_with_few_identities() {
        let mut a = adversary(3, 100);
        let ans = a.pull_answer();
        assert_eq!(ans.len(), 3, "cannot exceed the identity pool");
    }

    #[test]
    fn identification_flags_low_share_nodes() {
        let mut a = adversary(10, 100);
        let is_byz = |id: NodeId| id.0 < 10;
        // Regular honest nodes: ~50 % Byzantine answers.
        for i in 20..40u64 {
            let answer: Vec<NodeId> = (0..10)
                .map(|k| NodeId(if k % 2 == 0 { k } else { 50 + k }))
                .collect();
            a.observe_pull_answer(NodeId(i), &answer, is_byz);
        }
        // One trusted-looking node: 0 % Byzantine.
        let clean: Vec<NodeId> = (50..60).map(NodeId).collect();
        a.observe_pull_answer(NodeId(40), &clean, is_byz);
        let flagged = a.classify_trusted(0.1);
        assert_eq!(flagged, vec![NodeId(40)]);
        assert_eq!(a.observed_count(), 21);
    }

    #[test]
    fn identification_silent_without_contrast() {
        // All nodes look alike → nobody exceeds the threshold.
        let mut a = adversary(10, 100);
        let is_byz = |id: NodeId| id.0 < 10;
        for i in 20..40u64 {
            let answer: Vec<NodeId> = (0..10).map(NodeId).collect(); // 100 % byz
            a.observe_pull_answer(NodeId(i), &answer, is_byz);
        }
        assert!(a.classify_trusted(0.1).is_empty());
        // And with no observations at all.
        let a2 = adversary(10, 100);
        assert!(a2.classify_trusted(0.1).is_empty());
    }

    #[test]
    fn observation_targets_sampled_from_candidates() {
        let mut a = adversary(10, 100);
        let candidates: Vec<NodeId> = (10..100).map(NodeId).collect();
        let targets = a.observation_targets(&candidates, 5);
        assert_eq!(targets.len(), 5);
        assert!(targets.iter().all(|t| t.0 >= 10));
    }

    #[test]
    fn targeted_plan_focuses_budget() {
        let mut a = adversary(20, 200);
        let all: Vec<NodeId> = (20..200).map(NodeId).collect();
        let targets: Vec<NodeId> = (20..29).map(NodeId).collect();
        let budget = 80;
        let plan = a.plan_targeted_pushes(&all, &targets, budget, 0.75);
        assert_eq!(plan.len(), budget);
        let focused = plan.iter().filter(|(v, _)| targets.contains(v)).count();
        // 75% of the budget goes to the 9 victims (they also receive a
        // trickle from the balanced remainder).
        assert!(
            focused >= 60,
            "focus must dominate victim traffic: {focused}/{budget}"
        );
    }

    #[test]
    fn targeted_plan_degenerates_to_balanced() {
        let mut a = adversary(20, 200);
        let all: Vec<NodeId> = (20..200).map(NodeId).collect();
        let plan = a.plan_targeted_pushes(&all, &[], 40, 0.9);
        assert_eq!(plan.len(), 40, "empty target set falls back to balanced");
        let mut b = adversary(20, 200);
        assert!(b.plan_targeted_pushes(&all, &all[..2], 0, 0.9).is_empty());
    }

    #[test]
    fn injected_ids_advertised_sparsely() {
        let mut a = adversary(5, 100);
        a.advertise_injected([NodeId(90), NodeId(91)]);
        let mut injected_slots = 0usize;
        let mut total_slots = 0usize;
        for _ in 0..200 {
            let ans = a.pull_answer();
            assert!(ans.iter().all(|id| id.0 < 5 || id.0 >= 90));
            injected_slots += ans.iter().filter(|id| id.0 >= 90).count();
            total_slots += ans.len();
        }
        assert!(injected_slots > 0, "injected IDs must appear eventually");
        let share = injected_slots as f64 / total_slots as f64;
        assert!(
            share < 0.15,
            "advertisement must stay sparse, got {share:.3}"
        );
    }

    #[test]
    fn force_pushes_maximise_identity_coverage() {
        let mut a = adversary(20, 100);
        let victims: Vec<NodeId> = (20..100).map(NodeId).collect();
        let budget = 20 * 4;
        let plan = a.plan_force_pushes(&victims, budget);
        assert_eq!(plan.len(), budget);
        // Every Byzantine identity is advertised (budget ≥ identities),
        // and the per-victim spread stays balanced.
        let mut advertised: Vec<u64> = plan.iter().map(|&(_, id)| id.0).collect();
        advertised.sort_unstable();
        advertised.dedup();
        assert_eq!(advertised.len(), 20, "full identity coverage");
        let mut counts = vec![0usize; 100];
        for &(v, id) in &plan {
            counts[v.index()] += 1;
            assert!(id.0 < 20, "advertised IDs are Byzantine");
        }
        let victim_counts: Vec<usize> = (20..100).map(|i| counts[i]).collect();
        let min = victim_counts.iter().min().unwrap();
        let max = victim_counts.iter().max().unwrap();
        assert!(max - min <= 1, "balanced: min {min}, max {max}");
    }

    #[test]
    fn force_push_rotor_advances_across_rounds() {
        // Each victim eventually sees every Byzantine identity, not the
        // same prefix over and over.
        let mut a = adversary(8, 20);
        let victims = [NodeId(10)];
        let mut seen: Vec<u64> = Vec::new();
        for _ in 0..4 {
            for (_, id) in a.plan_force_pushes(&victims, 2) {
                seen.push(id.0);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "the rotor must cycle the identity pool");
    }

    #[test]
    fn targeted_force_plan_focuses_budget_with_distinct_ids() {
        let mut a = adversary(20, 200);
        let all: Vec<NodeId> = (20..200).map(NodeId).collect();
        let targets: Vec<NodeId> = (20..29).map(NodeId).collect();
        let budget = 80;
        let plan = a.plan_targeted_force_pushes(&all, &targets, budget, 0.75);
        assert_eq!(plan.len(), budget);
        let focused = plan.iter().filter(|(v, _)| targets.contains(v)).count();
        assert!(
            focused >= 60,
            "focus must dominate victim traffic: {focused}/{budget}"
        );
        // The focused traffic still cycles distinct identities.
        let mut victim_ids: Vec<u64> = plan
            .iter()
            .filter(|(v, _)| targets.contains(v))
            .map(|&(_, id)| id.0)
            .collect();
        victim_ids.sort_unstable();
        victim_ids.dedup();
        assert_eq!(victim_ids.len(), 20, "victims see the full identity pool");
        // Degenerate forms.
        assert_eq!(a.plan_targeted_force_pushes(&all, &[], 40, 0.9).len(), 40);
        assert!(a
            .plan_targeted_force_pushes(&all, &targets, 0, 0.9)
            .is_empty());
    }

    #[test]
    fn force_push_edge_cases() {
        let mut a = adversary(5, 10);
        assert!(a.plan_force_pushes(&[], 10).is_empty());
        assert!(a.plan_force_pushes(&[NodeId(9)], 0).is_empty());
        let mut empty = Adversary::new(vec![], 10, 10, 1);
        assert!(empty.plan_force_pushes(&[NodeId(9)], 10).is_empty());
    }

    #[test]
    fn replayed_pull_answers_match_the_original() {
        let mut a = adversary(50, 100);
        a.advertise_injected([NodeId(90), NodeId(91)]);
        let (mut idx, mut out) = (Vec::new(), Vec::new());
        for _ in 0..100 {
            let mut snap = a.rng_snapshot();
            let original = a.pull_answer();
            a.replay_pull_answer(&mut snap, &mut idx, &mut out);
            assert_eq!(out, original, "replay must be bit-identical");
        }
    }

    #[test]
    fn empty_answer_not_recorded() {
        let mut a = adversary(10, 100);
        a.observe_pull_answer(NodeId(50), &[], |_| false);
        assert_eq!(a.observed_count(), 0);
    }

    #[test]
    fn bandit_warms_up_in_index_order() {
        let mut c = AdaptiveCoordinator::new(3);
        for expect in 0..3 {
            let arm = c.choose();
            assert_eq!(arm, expect, "cold arms are explored in index order");
            c.reward(arm, 0.1 * arm as f64);
        }
    }

    #[test]
    fn bandit_converges_on_the_best_arm() {
        let mut c = AdaptiveCoordinator::new(4);
        // Arm 2 yields double everyone else.
        let yields = [0.1, 0.1, 0.3, 0.1];
        let mut played = [0u64; 4];
        for _ in 0..400 {
            let arm = c.choose();
            played[arm] += 1;
            c.reward(arm, yields[arm]);
        }
        assert!(
            played[2] > played[0] + played[1] + played[3],
            "UCB1 must concentrate on the best arm: {played:?}"
        );
        assert!((c.mean_yield(2) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn bandit_allocation_conserves_the_budget() {
        let mut c = AdaptiveCoordinator::new(5);
        for round in 0..50 {
            let alloc = c.allocate(777);
            assert_eq!(alloc.iter().sum::<usize>(), 777);
            assert_eq!(alloc.iter().filter(|&&b| b > 0).count(), 1);
            let arm = alloc.iter().position(|&b| b > 0).unwrap();
            c.reward(arm, (round % 3) as f64 * 0.1);
        }
    }

    #[test]
    fn bandit_is_deterministic() {
        let play = || {
            let mut c = AdaptiveCoordinator::new(3);
            let mut trace = Vec::new();
            for round in 0..60u64 {
                let arm = c.choose();
                trace.push(arm);
                c.reward(arm, ((round * 7 + arm as u64) % 10) as f64 / 10.0);
            }
            trace
        };
        assert_eq!(play(), play(), "identical inputs replay identically");
    }
}
