//! Chi-square goodness-of-fit test for uniformity.
//!
//! The heart of Brahms is the claim that its sampler converges to a
//! *uniform* random sample of the ID stream. The sampler property tests in
//! `raptee-sampler` draw many samples and check uniformity with this test;
//! the overlay-quality metrics in `raptee-gossip` use it on in-degree
//! distributions.

/// Result of a chi-square uniformity test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom (`bins - 1`).
    pub dof: usize,
    /// Upper critical value at the 1 % significance level (approximated by
    /// the Wilson–Hilferty transform).
    pub critical_1pct: f64,
}

impl ChiSquare {
    /// `true` when the observed counts are consistent with the uniform
    /// hypothesis at the 1 % level (i.e. the statistic does not exceed the
    /// critical value).
    pub fn is_uniform(&self) -> bool {
        self.statistic <= self.critical_1pct
    }
}

/// Runs a chi-square test of `counts` against the uniform distribution.
///
/// # Panics
///
/// Panics if fewer than two bins are supplied or if the total count is
/// zero (the test is undefined in both cases).
pub fn chi_square_uniform(counts: &[u64]) -> ChiSquare {
    assert!(counts.len() >= 2, "chi-square needs at least two bins");
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "chi-square needs at least one observation");
    let expected = total as f64 / counts.len() as f64;
    let statistic = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = counts.len() - 1;
    ChiSquare {
        statistic,
        dof,
        critical_1pct: chi_square_critical(dof, 2.326_347_87),
    }
}

/// Approximates the upper critical value of the chi-square distribution
/// with `dof` degrees of freedom at the significance level whose standard
/// normal quantile is `z` (e.g. `z = 2.326` for 1 %), using the
/// Wilson–Hilferty cube approximation. Accurate to a few percent for
/// `dof >= 3`, which is ample for a sanity test.
pub fn chi_square_critical(dof: usize, z: f64) -> f64 {
    let k = dof as f64;
    let a = 2.0 / (9.0 * k);
    k * (1.0 - a + z * a.sqrt()).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn uniform_counts_pass() {
        let counts = vec![100u64; 20];
        let t = chi_square_uniform(&counts);
        assert_eq!(t.statistic, 0.0);
        assert!(t.is_uniform());
    }

    #[test]
    fn skewed_counts_fail() {
        let mut counts = vec![100u64; 20];
        counts[0] = 2000;
        let t = chi_square_uniform(&counts);
        assert!(!t.is_uniform());
    }

    #[test]
    fn random_uniform_draws_pass() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2024);
        let mut counts = vec![0u64; 50];
        for _ in 0..50_000 {
            counts[rng.index(50)] += 1;
        }
        let t = chi_square_uniform(&counts);
        assert!(
            t.is_uniform(),
            "statistic {} vs critical {}",
            t.statistic,
            t.critical_1pct
        );
    }

    #[test]
    fn critical_value_matches_tables() {
        // chi2(0.99, 10) = 23.209; Wilson–Hilferty should be within ~2 %.
        let c = chi_square_critical(10, 2.326_347_87);
        assert!((c - 23.209).abs() / 23.209 < 0.02, "got {c}");
        // chi2(0.99, 100) = 135.807.
        let c = chi_square_critical(100, 2.326_347_87);
        assert!((c - 135.807).abs() / 135.807 < 0.01, "got {c}");
    }

    #[test]
    #[should_panic(expected = "two bins")]
    fn one_bin_panics() {
        chi_square_uniform(&[10]);
    }

    #[test]
    #[should_panic(expected = "one observation")]
    fn zero_total_panics() {
        chi_square_uniform(&[0, 0, 0]);
    }
}
