//! Dense bitsets for O(1) membership over node-ID spaces.
//!
//! Two flavours serve two access patterns:
//!
//! * [`BitSet`] — a fixed-universe set with an incrementally maintained
//!   popcount, used for the simulation's per-node discovery tracking
//!   (10,000 × 10,000 bits ≈ 12 MB total — cheap as bitsets, prohibitive
//!   as hash sets). Out-of-range inserts panic: the universe is known.
//! * [`IdSet`] — a *growable* set used as an O(1) membership index by the
//!   view structures and the sampler's seen-cache, where IDs are dense
//!   small integers but no universe bound is known up front. Inserting
//!   grows the word vector; querying beyond it is simply `false`.
//!
//! Callers that may encounter adversarially large IDs should gate on
//! [`DENSE_ID_LIMIT`] and fall back to a linear scan beyond it, so a
//! single huge ID cannot balloon memory.

/// Largest ID index the growable [`IdSet`] is allowed to track densely
/// (2²¹ bits = 256 KiB fully grown). IDs at or above this limit must be
/// handled by a caller-side fallback (they are vanishingly rare: the
/// simulation numbers nodes contiguously from zero).
pub const DENSE_ID_LIMIT: usize = 1 << 21;

/// A fixed-capacity bitset over `0..len`.
///
/// # Examples
///
/// ```
/// use raptee_util::bitset::BitSet;
/// let mut b = BitSet::new(100);
/// assert!(b.insert(42));
/// assert!(!b.insert(42), "second insert is a no-op");
/// assert!(b.contains(42));
/// assert_eq!(b.count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
    count: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Inserts `idx`; returns `true` if it was newly set.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is outside the universe.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bitset index {idx} out of range {}",
            self.len
        );
        let (w, b) = (idx / 64, idx % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        if idx >= self.len {
            return false;
        }
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of set bits (maintained incrementally — O(1)).
    pub fn count(&self) -> usize {
        self.count
    }
}

/// A growable bitset keyed by dense ID index.
///
/// Unlike [`BitSet`] there is no fixed universe: [`IdSet::insert`] grows
/// the backing words on demand and [`IdSet::contains`] answers `false`
/// beyond the grown range instead of panicking. Used as the O(1)
/// membership index of the gossip/BASALT views and the sampler's
/// seen-cache.
///
/// # Examples
///
/// ```
/// use raptee_util::bitset::IdSet;
/// let mut s = IdSet::new();
/// assert!(!s.contains(9000));
/// assert!(s.insert(9000));
/// assert!(!s.insert(9000), "second insert is a no-op");
/// assert!(s.remove(9000));
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdSet {
    words: Vec<u64>,
    count: usize,
}

impl IdSet {
    /// Creates an empty set (no backing storage until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Membership test — `false` beyond the grown range, O(1).
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        match self.words.get(idx / 64) {
            Some(w) => w & (1u64 << (idx % 64)) != 0,
            None => false,
        }
    }

    /// Inserts `idx`, growing the backing storage if needed; returns
    /// `true` if it was newly set.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        let w = idx / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (idx % 64);
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Removes `idx`; returns `true` if it was set.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        if let Some(w) = self.words.get_mut(idx / 64) {
            let mask = 1u64 << (idx % 64);
            if *w & mask != 0 {
                *w &= !mask;
                self.count -= 1;
                return true;
            }
        }
        false
    }

    /// Clears every bit, keeping the grown storage for reuse.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.count = 0;
    }

    /// Number of set bits (maintained incrementally — O(1)).
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut b = BitSet::new(130);
        assert!(b.is_empty());
        assert!(b.insert(0));
        assert!(b.insert(129));
        assert!(b.insert(64));
        assert!(!b.insert(64));
        assert_eq!(b.count(), 3);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1));
        assert!(
            !b.contains(500),
            "out-of-range contains is false, not panic"
        );
    }

    #[test]
    fn count_matches_popcount() {
        let mut b = BitSet::new(1000);
        for i in (0..1000).step_by(7) {
            b.insert(i);
        }
        let pop: u32 = b.words.iter().map(|w| w.count_ones()).sum();
        assert_eq!(b.count(), pop as usize);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn zero_capacity() {
        let b = BitSet::new(0);
        assert_eq!(b.len(), 0);
        assert!(!b.contains(0));
    }

    #[test]
    fn idset_grows_on_demand() {
        let mut s = IdSet::new();
        assert!(!s.contains(0));
        assert!(s.insert(3));
        assert!(s.insert(200));
        assert!(!s.insert(200));
        assert_eq!(s.count(), 2);
        assert!(s.contains(3) && s.contains(200));
        assert!(!s.contains(199));
        assert!(!s.contains(1_000_000), "beyond growth is false, not panic");
    }

    #[test]
    fn idset_remove_and_clear() {
        let mut s = IdSet::new();
        s.insert(7);
        s.insert(70);
        assert!(s.remove(7));
        assert!(!s.remove(7), "double remove is a no-op");
        assert!(!s.remove(9999), "never-grown remove is a no-op");
        assert_eq!(s.count(), 1);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(70));
        // Storage survives the clear: re-insert without regrowth.
        assert!(s.insert(70));
    }

    #[test]
    fn idset_word_boundaries() {
        let mut s = IdSet::new();
        for idx in [0usize, 63, 64, 127, 128] {
            assert!(s.insert(idx));
            assert!(s.contains(idx));
        }
        assert_eq!(s.count(), 5);
        for idx in [0usize, 63, 64, 127, 128] {
            assert!(s.remove(idx));
        }
        assert!(s.is_empty());
    }
}
