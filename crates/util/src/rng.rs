//! Seedable pseudo-random generators and 64-bit mixing functions.
//!
//! The simulation must be *bit-for-bit deterministic* for a given scenario
//! seed, across platforms and across parallel sweep execution. We therefore
//! avoid process-global entropy and implement two tiny, well-known PRNGs:
//!
//! * [`SplitMix64`] — used to expand a single `u64` seed into independent
//!   seed streams (one per node, one per sampler, ...). Its output is a
//!   bijective mix of a Weyl sequence, so distinct seeds can never collide.
//! * [`Xoshiro256StarStar`] — the general-purpose generator carried by every
//!   simulated node.
//!
//! [`mix64`] is the finalizer of SplitMix64 used on its own as a cheap,
//! statistically strong keyed hash for the min-wise-independent permutation
//! family of the Brahms sampler (see `raptee-sampler`).

/// SplitMix64 generator (Steele, Lea & Flood, 2014).
///
/// Primarily used for seeding: it turns one `u64` into a stream of
/// decorrelated `u64`s. It is also the recommended seeder for xoshiro
/// generators.
///
/// # Examples
///
/// ```
/// use raptee_util::rng::SplitMix64;
/// let mut sm = SplitMix64::new(7);
/// assert_ne!(sm.next_u64(), sm.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed. Any value, including zero, is a
    /// valid seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next value in the sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

/// The 64-bit finalizer of SplitMix64: a fast bijective mixer with full
/// avalanche behaviour.
///
/// Used directly as the keyed hash `h_k(x) = mix64(k ^ mix64(x))` in the
/// sampler hash family; a bijective finalizer over distinct inputs gives a
/// family that is close enough to min-wise independent for simulation
/// purposes (the Brahms paper itself only requires approximate min-wise
/// independence).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** 1.0 (Blackman & Vigna, 2018).
///
/// The workhorse generator of the simulation: every node owns one, seeded
/// from the scenario seed through [`SplitMix64`], which keeps node behaviour
/// independent of iteration order.
///
/// # Examples
///
/// ```
/// use raptee_util::rng::Xoshiro256StarStar;
/// let mut a = Xoshiro256StarStar::seed_from_u64(1);
/// let mut b = Xoshiro256StarStar::seed_from_u64(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeroes, which is the single invalid
    /// xoshiro state (the generator would be stuck at zero forever).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must be non-zero"
        );
        Self { s }
    }

    /// Seeds the 256-bit state from a single `u64` through SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output of four consecutive values cannot be all zero.
        Self { s }
    }

    /// Returns the next 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)` using Lemire's
    /// unbiased multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct elements from `slice` by partial Fisher–Yates on a
    /// scratch index vector; order of the sample is random.
    ///
    /// If `k >= slice.len()`, returns a shuffled copy of the whole slice.
    pub fn sample<T: Clone>(&mut self, slice: &[T], k: usize) -> Vec<T> {
        let mut idx = Vec::new();
        let mut out = Vec::with_capacity(k.min(slice.len()));
        self.sample_into(slice, k, &mut idx, &mut out);
        out
    }

    /// Exactly [`Xoshiro256StarStar::sample`], but writing into
    /// caller-owned scratch (`idx`) and output (`out`) buffers so hot
    /// loops can sample without allocating. The draw sequence is
    /// *bit-identical* to `sample` — the simulation engine depends on
    /// this to keep optimized runs reproducible against golden results.
    pub fn sample_into<T: Clone>(
        &mut self,
        slice: &[T],
        k: usize,
        idx: &mut Vec<u32>,
        out: &mut Vec<T>,
    ) {
        out.clear();
        let n = slice.len();
        if k >= n {
            out.extend_from_slice(slice);
            self.shuffle(out);
            return;
        }
        // Partial shuffle over indices: O(n) setup, O(k) draws.
        idx.clear();
        idx.extend(0..n as u32);
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
            out.push(slice[idx[i] as usize].clone());
        }
    }

    /// Picks one element uniformly, or `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Splits off an independent child generator; used to derive per-node
    /// generators from the scenario generator without sharing state.
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        let expect = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expect {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_differs_by_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        let mut c = Xoshiro256StarStar::seed_from_u64(100);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for the all-ones state, cross-checked against the
        // public-domain xoshiro256starstar.c reference implementation.
        let mut x = Xoshiro256StarStar::from_state([1, 1, 1, 1]);
        assert_eq!(x.next_u64(), 5760);
        assert_eq!(x.next_u64(), 5760);
        assert_eq!(x.next_u64(), 754974720);
        assert_eq!(x.next_u64(), 754980480);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        Xoshiro256StarStar::seed_from_u64(1).next_below(0);
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let v: Vec<u32> = (0..50).collect();
        let s = rng.sample(&v, 20);
        assert_eq!(s.len(), 20);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "sample must not repeat elements");
    }

    #[test]
    fn sample_more_than_len_returns_all() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let v: Vec<u32> = (0..10).collect();
        let mut s = rng.sample(&v, 25);
        s.sort_unstable();
        assert_eq!(s, v);
    }

    #[test]
    fn sample_into_matches_sample() {
        let v: Vec<u32> = (0..200).collect();
        for k in [0usize, 1, 50, 199, 200, 500] {
            let mut a = Xoshiro256StarStar::seed_from_u64(77);
            let mut b = Xoshiro256StarStar::seed_from_u64(77);
            let plain = a.sample(&v, k);
            let mut idx = Vec::new();
            let mut out = vec![999]; // stale content must be cleared
            b.sample_into(&v, k, &mut idx, &mut out);
            assert_eq!(plain, out, "k={k}");
            assert_eq!(a.next_u64(), b.next_u64(), "identical draw count, k={k}");
        }
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        assert!(rng.choose::<u8>(&[]).is_none());
        assert!(rng.choose(&[42]).is_some());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn split_children_are_independent() {
        let mut parent = Xoshiro256StarStar::seed_from_u64(11);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let v1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn mix64_bijective_on_sample() {
        // Spot-check injectivity over a contiguous range.
        let mut outs: Vec<u64> = (0..10_000u64).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }
}
