//! Online statistics for experiment aggregation.
//!
//! The experiment harness repeats every scenario several times and reports
//! mean ± standard deviation, exactly as the paper's Table I does for the
//! SGX overhead measurements. [`OnlineStats`] implements Welford's
//! numerically stable single-pass algorithm; [`percentile`] and
//! [`Summary`] cover the distributional reporting used by the figures.

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use raptee_util::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Population variance (divides by `n`); `0.0` for fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); `0.0` for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of an approximate 95 % confidence interval for the mean
    /// (normal approximation, `1.96 * SE`). Adequate for the ≥10
    /// repetitions used by the experiment harness.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Merges another accumulator into this one (parallel Welford merge),
    /// allowing sweep workers to aggregate independently.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

/// Returns the `q`-th percentile (`0.0 ..= 100.0`) of `values` using linear
/// interpolation between closest ranks. The input slice is copied and
/// sorted; use [`percentile_of_sorted`] when the data is already ordered.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 100]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("percentile input must not contain NaN")
    });
    percentile_of_sorted(&sorted, q)
}

/// Percentile of an already-sorted slice; see [`percentile`].
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile rank must be within [0, 100]"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A five-number-plus-mean summary of a sample, used in experiment logs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of empty sample");
        let stats: OnlineStats = values.iter().copied().collect();
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("summary input must not contain NaN")
        });
        Self {
            count: values.len(),
            mean: stats.mean(),
            std_dev: stats.sample_std_dev(),
            min: sorted[0],
            median: percentile_of_sorted(&sorted, 50.0),
            max: sorted[sorted.len() - 1],
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} med={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn single_value() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.77).sin() * 10.0).collect();
        let s: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..50).map(|i| i as f64 * 1.3).collect();
        let all: OnlineStats = data.iter().copied().collect();
        let mut left: OnlineStats = data[..20].iter().copied().collect();
        let right: OnlineStats = data[20..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn percentile_out_of_range_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 3.0, 5.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert!(format!("{s}").contains("n=3"));
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let few: OnlineStats = (0..10).map(|i| i as f64).collect();
        let many: OnlineStats = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }
}
