//! Series/CSV helpers for the benchmark harness.
//!
//! Every figure in the paper is a family of curves: an x axis (Byzantine
//! proportion `f` or trusted proportion `t`), one line per configuration
//! (`t=1%`, `ER-40%`, ...), and a y value per point. [`SeriesTable`] stores
//! exactly that shape and prints it both as aligned text (for reading in a
//! terminal) and CSV (for re-plotting), so each bench target can emit the
//! same rows/series the paper reports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A table of named series sharing one x axis.
///
/// # Examples
///
/// ```
/// use raptee_util::series::SeriesTable;
/// let mut t = SeriesTable::new("f (%)");
/// t.insert("t=1%", 10.0, 4.2);
/// t.insert("t=1%", 12.0, 4.0);
/// t.insert("t=5%", 10.0, 7.9);
/// let csv = t.to_csv();
/// assert!(csv.starts_with("f (%),t=1%,t=5%"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeriesTable {
    x_label: String,
    /// series name -> (x -> y). BTreeMaps keep output ordering stable.
    series: BTreeMap<String, BTreeMap<OrderedF64, f64>>,
}

/// Total-ordered f64 key (panics on NaN at construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("series x values must not be NaN")
    }
}

impl SeriesTable {
    /// Creates an empty table with the given x-axis label.
    pub fn new(x_label: impl Into<String>) -> Self {
        Self {
            x_label: x_label.into(),
            series: BTreeMap::new(),
        }
    }

    /// Inserts (or overwrites) the y value of `series` at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn insert(&mut self, series: impl Into<String>, x: f64, y: f64) {
        assert!(!x.is_nan(), "series x values must not be NaN");
        self.series
            .entry(series.into())
            .or_default()
            .insert(OrderedF64(x), y);
    }

    /// Names of the series, in stable (lexicographic) order.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// All distinct x values across every series, ascending.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<OrderedF64> = self
            .series
            .values()
            .flat_map(|m| m.keys().copied())
            .collect();
        xs.sort();
        xs.dedup();
        xs.into_iter().map(|x| x.0).collect()
    }

    /// Looks up a y value.
    pub fn get(&self, series: &str, x: f64) -> Option<f64> {
        self.series.get(series)?.get(&OrderedF64(x)).copied()
    }

    /// Renders the table as CSV with one column per series. Missing points
    /// render as empty cells.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let names = self.series_names();
        out.push_str(&self.x_label);
        for n in &names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for x in self.xs() {
            let _ = write!(out, "{x}");
            for n in &names {
                out.push(',');
                if let Some(y) = self.get(n, x) {
                    let _ = write!(out, "{y:.4}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned, human-readable text.
    pub fn to_aligned(&self) -> String {
        let names = self.series_names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len().max(9)).collect();
        let xw = self.x_label.len().max(8);
        let mut out = format!("{:>xw$}", self.x_label);
        for (n, w) in names.iter().zip(&widths) {
            let _ = write!(out, "  {n:>w$}");
        }
        out.push('\n');
        for x in self.xs() {
            let _ = write!(out, "{x:>xw$.1}");
            for (n, w) in names.iter().zip(&mut widths) {
                match self.get(n, x) {
                    Some(y) => {
                        let _ = write!(out, "  {y:>w$.2}");
                    }
                    None => {
                        let _ = write!(out, "  {:>w$}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for SeriesTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_aligned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SeriesTable {
        let mut t = SeriesTable::new("f");
        t.insert("a", 1.0, 10.0);
        t.insert("a", 2.0, 20.0);
        t.insert("b", 1.0, 30.0);
        t
    }

    #[test]
    fn xs_are_sorted_and_deduped() {
        let t = sample();
        assert_eq!(t.xs(), vec![1.0, 2.0]);
    }

    #[test]
    fn get_and_missing() {
        let t = sample();
        assert_eq!(t.get("a", 1.0), Some(10.0));
        assert_eq!(t.get("b", 2.0), None);
        assert_eq!(t.get("zzz", 1.0), None);
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "f,a,b");
        assert_eq!(lines[1], "1,10.0000,30.0000");
        assert_eq!(lines[2], "2,20.0000,");
    }

    #[test]
    fn aligned_contains_all_values() {
        let text = sample().to_aligned();
        assert!(text.contains("10.00"));
        assert!(text.contains('-'), "missing cell should print a dash");
        assert_eq!(format!("{}", sample()), text);
    }

    #[test]
    fn insert_overwrites() {
        let mut t = sample();
        t.insert("a", 1.0, 99.0);
        assert_eq!(t.get("a", 1.0), Some(99.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_x_panics() {
        let mut t = SeriesTable::new("x");
        t.insert("a", f64::NAN, 1.0);
    }
}
