//! Shared utilities for the RAPTEE reproduction.
//!
//! This crate holds the deterministic building blocks used by every other
//! crate in the workspace:
//!
//! * [`rng`] — small, fast, seedable pseudo-random generators
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`]) plus the 64-bit
//!   mixing functions used to build the min-wise-independent hash families
//!   of the Brahms sampling component.
//! * [`stats`] — online mean/variance accumulators, percentiles and
//!   confidence half-widths used by the experiment harness.
//! * [`hist`] — fixed-width histograms for in-degree distribution and
//!   round-latency reporting.
//! * [`bitset`] — dense fixed-universe and growable bitsets used for
//!   O(1) membership over node-ID spaces (view indices, seen-caches,
//!   discovery tracking).
//! * [`hll`] — fixed-size HyperLogLog cardinality sketches backing the
//!   sketch-mode discovery metric at million-node scale.
//! * [`chi`] — a chi-square uniformity test used by the sampler property
//!   tests.
//! * [`series`] — tiny CSV/series formatting helpers shared by the
//!   benchmark harness so each figure can print the same rows the paper
//!   reports.
//!
//! Everything here is deliberately dependency-free so the rest of the
//! workspace stays deterministic and auditable.
//!
//! # Examples
//!
//! ```
//! use raptee_util::rng::Xoshiro256StarStar;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod chi;
pub mod hist;
pub mod hll;
pub mod rng;
pub mod series;
pub mod stats;

pub use bitset::{BitSet, IdSet, DENSE_ID_LIMIT};
pub use rng::{mix64, SplitMix64, Xoshiro256StarStar};
pub use stats::OnlineStats;
