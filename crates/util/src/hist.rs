//! Fixed-width histograms.
//!
//! Used to report in-degree distributions of the overlay graph (a key
//! quality indicator for peer-sampling services — the Jelasity framework
//! evaluates protocols on in-degree balance) and the round-latency
//! distributions of the SGX overhead model.

/// A histogram over `[lo, hi)` with equally sized bins, plus underflow and
/// overflow counters.
///
/// # Examples
///
/// ```
/// use raptee_util::hist::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// h.record(-3.0); // underflow
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.underflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            // Floating-point rounding can land exactly on bins.len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count of observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Returns `(bin_center, count)` pairs, handy for plotting/printing.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }

    /// Index of the most populated bin (first one on ties), or `None` if no
    /// in-range observation was recorded.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &max) = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))?;
        if max == 0 {
            None
        } else {
            Some(idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn boundary_values() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(0.0); // first bin
        h.record(1.0); // overflow (range is half-open)
        h.record(0.999_999_9);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-1.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn mode_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        assert_eq!(h.mode_bin(), None);
        h.record(1.5);
        h.record(1.6);
        h.record(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 4);
    }
}
