//! Fixed-size HyperLogLog cardinality sketches.
//!
//! The simulation's discovery metric asks, per node, "how many distinct
//! correct peers has this node ever seen?". Below the exact-mode
//! threshold that is a bitset row; at million-node scale an exact row
//! costs N bits per node (O(N²) total), so the sketch mode replaces each
//! row with a [`REGISTERS`]-byte HyperLogLog and reports an *estimate*
//! of the distinct count instead.
//!
//! Design constraints, in order:
//!
//! * **Deterministic.** The hash is a fixed-seed [`mix64`] of the item;
//!   the same insert sequence always produces the same registers, and
//!   register updates are a commutative, idempotent `max` — so the
//!   estimate is independent of insert order and of how parallel phases
//!   interleave their inserts. This is what lets sketch-mode runs stay
//!   bit-identical across 1/4/8 worker threads.
//! * **Flat storage.** A sketch is any `[u8]` slice of [`REGISTERS`]
//!   bytes; the caller owns a single `Vec<u8>` for all rows and hands
//!   out disjoint `chunks_mut` handles, exactly like the exact-mode
//!   bitset matrix. No per-row allocation.
//! * **Known accuracy.** With `m = 256` registers the standard error is
//!   `1.04 / sqrt(256)` = 6.5 %. The small-range regime uses linear
//!   counting, which is much tighter — and discovery fractions are
//!   ratios of estimates, so systematic bias largely cancels.
//!
//! The register layout is classic HLL (Flajolet et al. 2007): the low
//! 8 hash bits pick a register, the rank (position of the first set bit)
//! of the remaining 56 bits is `max`-ed into it.

use crate::rng::mix64;

/// Registers per sketch. 256 gives a 6.5 % standard error at 256 bytes
/// per tracked node — 256 MB for a million rows, versus 125 GB for the
/// exact bitset matrix.
pub const REGISTERS: usize = 256;

/// Fixed hash seed. Changing it changes every sketch-mode estimate (and
/// the sketch-mode determinism golden); it exists only to decorrelate
/// the HLL hash from the engine's other `mix64` uses of raw indices.
const HASH_SEED: u64 = 0xC0DE_5EED_57E7_C4B1;

/// Folds `item` into the sketch. Returns `true` when a register grew
/// (i.e. the sketch — and therefore the estimate — changed).
///
/// # Panics
///
/// Panics if `regs.len() != REGISTERS`.
pub fn update(regs: &mut [u8], item: u64) -> bool {
    assert_eq!(
        regs.len(),
        REGISTERS,
        "sketch must have {REGISTERS} registers"
    );
    let h = mix64(item ^ HASH_SEED);
    let idx = (h & 0xFF) as usize;
    let w = h >> 8; // 56 significant bits
                    // leading_zeros of a <2^56 value is >= 8; rank in 1..=57 (< u8::MAX).
    let rank = if w == 0 {
        57
    } else {
        (w.leading_zeros() - 8 + 1) as u8
    };
    if rank > regs[idx] {
        regs[idx] = rank;
        true
    } else {
        false
    }
}

/// Merges `src` into `dst` (register-wise max). The result sketches the
/// union of the two insert sets.
///
/// # Panics
///
/// Panics if either slice is not `REGISTERS` long.
pub fn merge(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        REGISTERS,
        "sketch must have {REGISTERS} registers"
    );
    assert_eq!(
        src.len(),
        REGISTERS,
        "sketch must have {REGISTERS} registers"
    );
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// Estimated distinct count, with the standard small-range linear
///-counting correction.
///
/// # Panics
///
/// Panics if `regs.len() != REGISTERS`.
pub fn estimate(regs: &[u8]) -> f64 {
    assert_eq!(
        regs.len(),
        REGISTERS,
        "sketch must have {REGISTERS} registers"
    );
    let m = REGISTERS as f64;
    let mut sum = 0.0_f64;
    let mut zeros = 0usize;
    for &r in regs {
        sum += f64::powi(2.0, -i32::from(r));
        if r == 0 {
            zeros += 1;
        }
    }
    let alpha = 0.7213 / (1.0 + 1.079 / m);
    let raw = alpha * m * m / sum;
    if raw <= 2.5 * m && zeros > 0 {
        // Linear counting: much tighter than raw HLL at small
        // cardinalities, and exact-ish in the near-empty regime.
        m * (m / zeros as f64).ln()
    } else {
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(items: impl Iterator<Item = u64>) -> Vec<u8> {
        let mut regs = vec![0u8; REGISTERS];
        for item in items {
            update(&mut regs, item);
        }
        regs
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let regs = vec![0u8; REGISTERS];
        assert_eq!(estimate(&regs), 0.0);
    }

    #[test]
    fn update_is_idempotent() {
        let mut regs = vec![0u8; REGISTERS];
        assert!(update(&mut regs, 42));
        let snapshot = regs.clone();
        assert!(!update(&mut regs, 42));
        assert_eq!(regs, snapshot);
    }

    #[test]
    fn estimate_is_insert_order_independent() {
        let fwd = sketch_of(0..5_000);
        let rev = sketch_of((0..5_000).rev());
        assert_eq!(fwd, rev);
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        // Linear-counting regime: a handful of items should estimate
        // within a register's worth of error.
        for n in [1u64, 5, 20, 100] {
            let regs = sketch_of(0..n);
            let est = estimate(&regs);
            let err = (est - n as f64).abs() / n as f64;
            assert!(
                err < 0.15,
                "n={n} estimated {est:.1} (relative error {err:.3})"
            );
        }
    }

    #[test]
    fn large_cardinalities_are_within_the_stated_error() {
        // 6.5 % standard error; allow 3 sigma.
        for n in [2_000u64, 10_000, 100_000] {
            let regs = sketch_of(0..n);
            let est = estimate(&regs);
            let err = (est - n as f64).abs() / n as f64;
            assert!(
                err < 0.20,
                "n={n} estimated {est:.1} (relative error {err:.3})"
            );
        }
    }

    #[test]
    fn merge_equals_union() {
        let a = sketch_of(0..1_000);
        let b = sketch_of(500..1_500);
        let mut merged = a.clone();
        merge(&mut merged, &b);
        assert_eq!(merged, sketch_of(0..1_500));
    }

    #[test]
    fn merge_is_commutative() {
        let a = sketch_of((0..800).map(|x| x * 3));
        let b = sketch_of((0..800).map(|x| x * 7 + 1));
        let mut ab = a.clone();
        merge(&mut ab, &b);
        let mut ba = b.clone();
        merge(&mut ba, &a);
        assert_eq!(ab, ba);
    }

    #[test]
    #[should_panic(expected = "registers")]
    fn wrong_register_count_is_rejected() {
        let mut regs = vec![0u8; REGISTERS - 1];
        update(&mut regs, 1);
    }
}
