//! The generic view-exchange algorithm of the framework.
//!
//! Jelasity et al. factor every gossip peer-sampling protocol into an
//! active and a passive thread around three design dimensions:
//!
//! * **peer selection** — contact a random view entry, or the *oldest*
//!   (which yields round-robin probing and fast failure detection);
//! * **view propagation** — push only, or push–pull;
//! * **view selection** — governed by `H` (*healer*: prefer dropping the
//!   oldest links) and `S` (*swapper*: prefer dropping the links just
//!   sent to the partner).
//!
//! The exchange is expressed here as pure functions over [`View`]s so the
//! same code drives three different callers: the in-process
//! [`crate::protocols::Population`] driver (tests, metrics), the
//! message-based trusted view-swap in `raptee`, and the Cyclon/Newscast
//! baselines.

use crate::view::{View, ViewEntry};
use raptee_net::NodeId;
use raptee_util::rng::Xoshiro256StarStar;

/// Which neighbour the active thread contacts each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeerSelection {
    /// Uniformly random view entry.
    Random,
    /// The entry with the highest age (round-robin probing; RAPTEE's
    /// choice, criterion (1) in the paper).
    Oldest,
}

/// Parameters of one framework instantiation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// View size `c`.
    pub view_size: usize,
    /// Healer parameter `H`: how many of the oldest items to prefer
    /// dropping during view selection.
    pub healer: usize,
    /// Swapper parameter `S`: how many of the just-sent items to prefer
    /// dropping during view selection.
    pub swapper: usize,
    /// Partner selection policy.
    pub peer_selection: PeerSelection,
    /// `true` for push–pull propagation, `false` for push-only.
    pub pull: bool,
}

impl GossipConfig {
    /// Number of entries shipped per message: half the view, with the
    /// sender itself occupying one slot (criterion (2) of the paper).
    pub fn exchange_len(&self) -> usize {
        (self.view_size / 2).max(1)
    }

    /// Validates the parameter ranges (`H + S` may not exceed the half
    /// view that can be dropped).
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent.
    pub fn validate(&self) {
        assert!(self.view_size > 0, "view size must be positive");
        assert!(
            self.healer <= self.view_size && self.swapper <= self.view_size,
            "H and S must not exceed the view size"
        );
    }
}

/// Selects the gossip partner for this round according to the policy.
pub fn select_partner(
    view: &View,
    config: &GossipConfig,
    rng: &mut Xoshiro256StarStar,
) -> Option<NodeId> {
    match config.peer_selection {
        PeerSelection::Random => view.random(rng).map(|e| e.id),
        PeerSelection::Oldest => view.oldest().map(|e| e.id),
    }
}

/// Builds the buffer a node sends to its partner and reorders the local
/// view so the *sent* entries sit at its head (which is what the `S`
/// dropping rule in [`integrate`] later refers to).
///
/// Framework steps: buffer ← {(self, 0)}; permute view; move `H` oldest
/// to the end; append the first `exchange_len - 1` entries.
pub fn prepare_buffer(
    view: &mut View,
    config: &GossipConfig,
    rng: &mut Xoshiro256StarStar,
) -> Vec<ViewEntry> {
    let mut buffer = Vec::with_capacity(config.exchange_len());
    buffer.push(ViewEntry::fresh(view.owner()));
    view.permute(rng);
    view.move_oldest_to_end(config.healer.min(view.len()));
    buffer.extend_from_slice(view.head_slice(config.exchange_len().saturating_sub(1)));
    buffer
}

/// Merges a received buffer into the view (the framework's
/// `select(c, H, S, buffer)`):
///
/// 1. append the buffer, dropping duplicates (keeping the youngest age)
///    and the owner's own ID;
/// 2. remove `min(H, len - c)` of the *oldest* entries;
/// 3. remove `min(S, len - c)` entries from the *head* (the ones just
///    sent — swap semantics, criterion (3) of the paper);
/// 4. remove random entries until the view is back at capacity `c`.
pub fn integrate(
    view: &mut View,
    received: &[ViewEntry],
    config: &GossipConfig,
    rng: &mut Xoshiro256StarStar,
) {
    view.append_dedup(received);
    let c = config.view_size;
    view.remove_oldest(config.healer, c);
    view.remove_head(config.swapper, c);
    view.shrink_to_capacity(rng);
}

/// Runs one complete, synchronous push–pull exchange between an initiator
/// and a responder (helper for in-process drivers and for the trusted
/// view-swap, where the two parties have already authenticated within the
/// round). Message-based protocols instead call [`prepare_buffer`] /
/// [`integrate`] on each side.
pub fn run_exchange(
    initiator: &mut View,
    responder: &mut View,
    config: &GossipConfig,
    rng: &mut Xoshiro256StarStar,
) {
    let request = prepare_buffer(initiator, config, rng);
    let reply = if config.pull {
        prepare_buffer(responder, config, rng)
    } else {
        Vec::new()
    };
    integrate(responder, &request, config, rng);
    if config.pull {
        integrate(initiator, &reply, config, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> GossipConfig {
        GossipConfig {
            view_size: 8,
            healer: 1,
            swapper: 3,
            peer_selection: PeerSelection::Oldest,
            pull: true,
        }
    }

    fn full_view(owner: u64, ids: std::ops::Range<u64>, cap: usize) -> View {
        let mut v = View::new(NodeId(owner), cap);
        for i in ids {
            v.insert_fresh(NodeId(i));
        }
        v
    }

    #[test]
    fn partner_selection_policies() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut v = full_view(0, 1..5, 8);
        v.increase_age();
        v.insert_fresh(NodeId(9)); // the only age-0 entry
        let cfg_old = GossipConfig {
            peer_selection: PeerSelection::Oldest,
            ..config()
        };
        let p = select_partner(&v, &cfg_old, &mut rng).unwrap();
        assert_ne!(p, NodeId(9), "oldest selection avoids the fresh entry");
        let cfg_rand = GossipConfig {
            peer_selection: PeerSelection::Random,
            ..config()
        };
        assert!(select_partner(&v, &cfg_rand, &mut rng).is_some());
        let empty = View::new(NodeId(0), 4);
        assert!(select_partner(&empty, &cfg_rand, &mut rng).is_none());
    }

    #[test]
    fn buffer_contains_self_first_and_half_view() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut v = full_view(7, 10..20, 10);
        let cfg = GossipConfig {
            view_size: 10,
            ..config()
        };
        let buf = prepare_buffer(&mut v, &cfg, &mut rng);
        assert_eq!(buf.len(), 5, "c/2 entries");
        assert_eq!(
            buf[0],
            ViewEntry::fresh(NodeId(7)),
            "self link first, age 0"
        );
        for e in &buf[1..] {
            assert!(v.contains(e.id));
        }
    }

    #[test]
    fn buffer_excludes_oldest_when_healing() {
        // With H >= c/2 the oldest entries are moved out of the sent head.
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut v = View::new(NodeId(0), 8);
        for i in 1..=8u64 {
            v.insert(ViewEntry {
                id: NodeId(i),
                age: if i <= 4 { 10 } else { 0 },
            });
        }
        let cfg = GossipConfig {
            view_size: 8,
            healer: 4,
            ..config()
        };
        let buf = prepare_buffer(&mut v, &cfg, &mut rng);
        for e in &buf[1..] {
            assert!(
                e.age == 0,
                "aged entries must not be gossiped when H covers them"
            );
        }
    }

    #[test]
    fn integrate_restores_capacity_and_invariants() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut v = full_view(0, 1..9, 8);
        let incoming: Vec<ViewEntry> = (20..30).map(|i| ViewEntry::fresh(NodeId(i))).collect();
        integrate(&mut v, &incoming, &config(), &mut rng);
        assert_eq!(v.len(), 8);
        assert!(v.invariants_hold());
    }

    #[test]
    fn swap_semantics_drop_sent_entries() {
        // With S = c/2 and a full exchange, the initiator keeps the
        // partner's entries in place of its own sent ones.
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let cfg = GossipConfig {
            view_size: 8,
            healer: 0,
            swapper: 4,
            peer_selection: PeerSelection::Oldest,
            pull: true,
        };
        let mut a = full_view(0, 1..9, 8);
        let mut b = full_view(100, 101..109, 8);
        run_exchange(&mut a, &mut b, &cfg, &mut rng);
        assert!(a.invariants_hold() && b.invariants_hold());
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
        // Each side must now know some of the other's region.
        assert!(
            a.ids().any(|id| id.0 >= 100),
            "initiator learned partner links"
        );
        assert!(
            b.ids().any(|id| id.0 < 100),
            "responder learned initiator links"
        );
        // The initiator's own ID travelled to the responder.
        assert!(b.contains(NodeId(0)));
    }

    #[test]
    fn push_only_leaves_initiator_unchanged() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let cfg = GossipConfig {
            pull: false,
            ..config()
        };
        let mut a = full_view(0, 1..9, 8);
        let before = a.clone();
        let mut b = full_view(100, 101..109, 8);
        run_exchange(&mut a, &mut b, &cfg, &mut rng);
        // Initiator view order may have been permuted by buffer
        // preparation, but its content is unchanged.
        let mut ids_before: Vec<_> = before.id_vec();
        let mut ids_after: Vec<_> = a.id_vec();
        ids_before.sort_unstable();
        ids_after.sort_unstable();
        assert_eq!(ids_before, ids_after);
        assert!(b.ids().any(|id| id.0 < 100));
    }

    #[test]
    fn exchange_len_is_at_least_one() {
        let cfg = GossipConfig {
            view_size: 1,
            healer: 0,
            swapper: 0,
            peer_selection: PeerSelection::Random,
            pull: true,
        };
        assert_eq!(cfg.exchange_len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn validate_rejects_oversized_h() {
        let cfg = GossipConfig {
            healer: 99,
            ..config()
        };
        cfg.validate();
    }
}
