//! Aged partial views.
//!
//! A [`View`] is the local, partial knowledge a node has of the global
//! membership: a bounded list of (node ID, age) entries. Ages drive the
//! framework's healing (drop stale links) and partner selection
//! (round-robin by oldest). The view maintains two invariants at all
//! times: no duplicate IDs, and never the owner's own ID.

use raptee_net::NodeId;
use raptee_util::bitset::{IdSet, DENSE_ID_LIMIT};
use raptee_util::rng::Xoshiro256StarStar;

/// One view entry: a known peer and how many rounds it has been known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewEntry {
    /// The peer's identifier.
    pub id: NodeId,
    /// Rounds since this link was created (0 = fresh).
    pub age: u32,
}

impl ViewEntry {
    /// A fresh (age-0) entry.
    pub fn fresh(id: NodeId) -> Self {
        Self { id, age: 0 }
    }
}

/// A bounded, aged partial view owned by one node.
///
/// # Examples
///
/// ```
/// use raptee_gossip::view::View;
/// use raptee_net::NodeId;
///
/// let mut v = View::new(NodeId(0), 4);
/// v.insert_fresh(NodeId(1));
/// v.insert_fresh(NodeId(2));
/// assert_eq!(v.len(), 2);
/// assert!(v.contains(NodeId(1)));
/// assert!(!v.contains(NodeId(0)), "own ID is never stored");
/// ```
#[derive(Debug, Clone)]
pub struct View {
    owner: NodeId,
    capacity: usize,
    entries: Vec<ViewEntry>,
    /// O(1) membership index over the dense ID range (IDs at or above
    /// [`DENSE_ID_LIMIT`] fall back to a linear scan — they only occur in
    /// adversarial corner cases, never in the contiguous simulation
    /// numbering). Kept in lock-step with `entries` by every mutator.
    ///
    /// Views at or below [`LINEAR_SCAN_CAPACITY`] skip the index entirely
    /// and always scan: a scan over ≤ 64 entries beats the index, and the
    /// index's backing words grow with the *largest ID seen* — per-node
    /// cost that forbids million-node populations. Small views therefore
    /// keep this set permanently empty.
    present: IdSet,
}

/// Views with at most this many slots use a pure linear scan for
/// membership instead of the dense ID index. Chosen so the scan stays
/// within a few cache lines while large paper-scale views (e.g. 200
/// slots at N=10,000) keep their O(1) index.
pub const LINEAR_SCAN_CAPACITY: usize = 64;

/// Equality is defined by owner, capacity and entry sequence; the
/// membership index is derived state (its grown size depends on insert
/// history, not content).
impl PartialEq for View {
    fn eq(&self, other: &Self) -> bool {
        self.owner == other.owner
            && self.capacity == other.capacity
            && self.entries == other.entries
    }
}

impl Eq for View {}

impl View {
    /// Creates an empty view for `owner` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        Self {
            owner,
            capacity,
            entries: Vec::with_capacity(capacity),
            present: IdSet::new(),
        }
    }

    /// Whether this view maintains the O(1) membership index (large
    /// views only — see [`LINEAR_SCAN_CAPACITY`]).
    #[inline]
    fn indexed(&self) -> bool {
        self.capacity > LINEAR_SCAN_CAPACITY
    }

    /// Records `id` in the O(1) membership index (indexed views, dense
    /// range only).
    #[inline]
    fn index_insert(&mut self, id: NodeId) {
        let idx = id.0 as usize;
        if self.indexed() && idx < DENSE_ID_LIMIT {
            self.present.insert(idx);
        }
    }

    /// Drops `id` from the O(1) membership index (indexed views, dense
    /// range only).
    #[inline]
    fn index_remove(&mut self, id: NodeId) {
        let idx = id.0 as usize;
        if self.indexed() && idx < DENSE_ID_LIMIT {
            self.present.remove(idx);
        }
    }

    /// The view owner (whose ID is excluded from the entries).
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in current (order-significant) sequence.
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// Iterator over the IDs in the view.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.id)
    }

    /// Collects the IDs into a vector (convenience for message building).
    pub fn id_vec(&self) -> Vec<NodeId> {
        self.ids().collect()
    }

    /// Whether `id` is present — O(1) through the membership index for
    /// dense IDs in indexed views; a linear scan for small views and for
    /// IDs beyond [`DENSE_ID_LIMIT`].
    pub fn contains(&self, id: NodeId) -> bool {
        let idx = id.0 as usize;
        if self.indexed() && idx < DENSE_ID_LIMIT {
            self.present.contains(idx)
        } else {
            self.entries.iter().any(|e| e.id == id)
        }
    }

    /// Inserts a fresh (age-0) entry if `id` is neither the owner nor a
    /// duplicate and capacity remains. Returns `true` on insertion.
    pub fn insert_fresh(&mut self, id: NodeId) -> bool {
        self.insert(ViewEntry::fresh(id))
    }

    /// Inserts an entry under the same rules as [`View::insert_fresh`]; a
    /// duplicate ID keeps the *younger* age of the two.
    pub fn insert(&mut self, entry: ViewEntry) -> bool {
        if entry.id == self.owner {
            return false;
        }
        if self.contains(entry.id) {
            let existing = self
                .entries
                .iter_mut()
                .find(|e| e.id == entry.id)
                .expect("membership index in sync with entries");
            if entry.age < existing.age {
                existing.age = entry.age;
            }
            return false;
        }
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push(entry);
        self.index_insert(entry.id);
        true
    }

    /// Inserts `entry`, evicting the oldest entry if the view is full
    /// (used by protocols with unconditional admission like Newscast).
    pub fn insert_replacing_oldest(&mut self, entry: ViewEntry) {
        if entry.id == self.owner {
            return;
        }
        if self.contains(entry.id) {
            let existing = self
                .entries
                .iter_mut()
                .find(|e| e.id == entry.id)
                .expect("membership index in sync with entries");
            if entry.age < existing.age {
                existing.age = entry.age;
            }
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self.oldest_index() {
                let evicted = self.entries.swap_remove(oldest);
                self.index_remove(evicted.id);
            }
        }
        self.entries.push(entry);
        self.index_insert(entry.id);
    }

    /// Increments every entry's age by one round.
    pub fn increase_age(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// The entry that has been in the view the longest (ties broken by
    /// position), or `None` when empty.
    pub fn oldest(&self) -> Option<ViewEntry> {
        self.oldest_index().map(|i| self.entries[i])
    }

    fn oldest_index(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.age)
            .map(|(i, _)| i)
    }

    /// Removes and returns the entry for `id`, if present.
    pub fn remove(&mut self, id: NodeId) -> Option<ViewEntry> {
        if !self.contains(id) {
            return None;
        }
        let pos = self.entries.iter().position(|e| e.id == id)?;
        let removed = self.entries.remove(pos);
        self.index_remove(removed.id);
        Some(removed)
    }

    /// Uniformly permutes the entry order.
    pub fn permute(&mut self, rng: &mut Xoshiro256StarStar) {
        rng.shuffle(&mut self.entries);
    }

    /// Moves the `h` oldest entries (by age) to the end of the view,
    /// preserving the relative order of the others — step "move oldest H
    /// items to the end" of the framework's active/passive threads.
    pub fn move_oldest_to_end(&mut self, h: usize) {
        if h == 0 || self.entries.is_empty() {
            return;
        }
        let h = h.min(self.entries.len());
        // Select the h oldest indices.
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.entries[i].age));
        let mut oldest: Vec<usize> = order.into_iter().take(h).collect();
        oldest.sort_unstable();
        let mut tail: Vec<ViewEntry> = Vec::with_capacity(h);
        for &i in oldest.iter().rev() {
            tail.push(self.entries.remove(i));
        }
        tail.reverse();
        self.entries.extend(tail);
    }

    /// The first `n` entries in current order (the "head" the framework
    /// sends to the partner), borrowed — no allocation.
    pub fn head_slice(&self, n: usize) -> &[ViewEntry] {
        &self.entries[..n.min(self.entries.len())]
    }

    /// Owned variant of [`View::head_slice`] (convenience for tests and
    /// message construction outside the hot path).
    pub fn head(&self, n: usize) -> Vec<ViewEntry> {
        self.head_slice(n).to_vec()
    }

    /// Appends entries without enforcing capacity (used mid-exchange; the
    /// follow-up [`View::shrink_to_capacity`] pipeline restores it).
    /// Duplicates keep the youngest age; the owner ID is still excluded.
    pub fn append_dedup(&mut self, incoming: &[ViewEntry]) {
        for &e in incoming {
            if e.id == self.owner {
                continue;
            }
            if self.contains(e.id) {
                let existing = self
                    .entries
                    .iter_mut()
                    .find(|x| x.id == e.id)
                    .expect("membership index in sync with entries");
                if e.age < existing.age {
                    existing.age = e.age;
                }
            } else {
                self.entries.push(e);
                self.index_insert(e.id);
            }
        }
    }

    /// Removes up to `n` of the oldest entries, but never shrinks below
    /// `floor` entries. Returns how many were removed.
    pub fn remove_oldest(&mut self, n: usize, floor: usize) -> usize {
        let removable = self.entries.len().saturating_sub(floor).min(n);
        for _ in 0..removable {
            if let Some(i) = self.oldest_index() {
                let removed = self.entries.remove(i);
                self.index_remove(removed.id);
            }
        }
        removable
    }

    /// Removes up to `n` entries from the head, but never below `floor`.
    /// Returns how many were removed.
    pub fn remove_head(&mut self, n: usize, floor: usize) -> usize {
        let removable = self.entries.len().saturating_sub(floor).min(n);
        for i in 0..removable {
            let id = self.entries[i].id;
            self.index_remove(id);
        }
        self.entries.drain(..removable);
        removable
    }

    /// Removes random entries until `len() <= capacity`.
    pub fn shrink_to_capacity(&mut self, rng: &mut Xoshiro256StarStar) {
        while self.entries.len() > self.capacity {
            let i = rng.index(self.entries.len());
            let removed = self.entries.swap_remove(i);
            self.index_remove(removed.id);
        }
    }

    /// Replaces the content with `entries` (applying owner/duplicate
    /// rules), used when renewing the dynamic view in Brahms.
    pub fn replace_with(&mut self, entries: impl IntoIterator<Item = ViewEntry>) {
        self.entries.clear();
        self.present.clear();
        for e in entries {
            self.insert(e);
        }
    }

    /// Selects a uniformly random entry.
    pub fn random(&self, rng: &mut Xoshiro256StarStar) -> Option<ViewEntry> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries[rng.index(self.entries.len())])
        }
    }

    /// Draws `k` distinct random entries.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar, k: usize) -> Vec<ViewEntry> {
        rng.sample(&self.entries, k)
    }

    /// Keeps only the entries satisfying the predicate; returns how many
    /// were removed.
    pub fn retain<F: FnMut(&ViewEntry) -> bool>(&mut self, mut pred: F) -> usize {
        let before = self.entries.len();
        let indexed = self.indexed();
        let present = &mut self.present;
        self.entries.retain(|e| {
            let keep = pred(e);
            if !keep && indexed {
                let idx = e.id.0 as usize;
                if idx < DENSE_ID_LIMIT {
                    present.remove(idx);
                }
            }
            keep
        });
        before - self.entries.len()
    }

    /// Checks the two structural invariants (unique IDs, no owner entry)
    /// plus the consistency of the O(1) membership index; used by tests
    /// and debug assertions.
    pub fn invariants_hold(&self) -> bool {
        if self.entries.iter().any(|e| e.id == self.owner) {
            return false;
        }
        let mut ids: Vec<NodeId> = self.ids().collect();
        ids.sort_unstable();
        if !ids.windows(2).all(|w| w[0] != w[1]) {
            return false;
        }
        if !self.indexed() {
            // Small views never touch the index: it must stay empty.
            return self.present.is_empty();
        }
        let dense = ids.iter().filter(|id| (id.0 as usize) < DENSE_ID_LIMIT);
        dense.clone().count() == self.present.count()
            && dense.clone().all(|id| self.present.contains(id.0 as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_with(owner: u64, cap: usize, ids: &[u64]) -> View {
        let mut v = View::new(NodeId(owner), cap);
        for &i in ids {
            v.insert_fresh(NodeId(i));
        }
        v
    }

    #[test]
    fn rejects_owner_and_duplicates() {
        let mut v = View::new(NodeId(0), 4);
        assert!(!v.insert_fresh(NodeId(0)), "own ID rejected");
        assert!(v.insert_fresh(NodeId(1)));
        assert!(!v.insert_fresh(NodeId(1)), "duplicate rejected");
        assert_eq!(v.len(), 1);
        assert!(v.invariants_hold());
    }

    #[test]
    fn duplicate_insert_keeps_younger_age() {
        let mut v = View::new(NodeId(0), 4);
        v.insert(ViewEntry {
            id: NodeId(1),
            age: 5,
        });
        v.insert(ViewEntry {
            id: NodeId(1),
            age: 2,
        });
        assert_eq!(v.entries()[0].age, 2);
        v.insert(ViewEntry {
            id: NodeId(1),
            age: 9,
        });
        assert_eq!(
            v.entries()[0].age,
            2,
            "older duplicate must not regress age"
        );
    }

    #[test]
    fn capacity_enforced() {
        let mut v = view_with(0, 2, &[1, 2]);
        assert!(!v.insert_fresh(NodeId(3)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn replace_oldest_evicts_by_age() {
        let mut v = View::new(NodeId(0), 2);
        v.insert(ViewEntry {
            id: NodeId(1),
            age: 9,
        });
        v.insert(ViewEntry {
            id: NodeId(2),
            age: 1,
        });
        v.insert_replacing_oldest(ViewEntry::fresh(NodeId(3)));
        assert!(!v.contains(NodeId(1)), "oldest evicted");
        assert!(v.contains(NodeId(2)) && v.contains(NodeId(3)));
    }

    #[test]
    fn aging_and_oldest() {
        let mut v = view_with(0, 4, &[1, 2]);
        v.increase_age();
        v.insert_fresh(NodeId(3));
        let oldest = v.oldest().unwrap();
        assert_eq!(oldest.age, 1);
        assert!(oldest.id == NodeId(1) || oldest.id == NodeId(2));
    }

    #[test]
    fn move_oldest_to_end_preserves_content() {
        let mut v = View::new(NodeId(0), 8);
        for (i, age) in [(1u64, 3u32), (2, 7), (3, 1), (4, 7), (5, 0)] {
            v.insert(ViewEntry { id: NodeId(i), age });
        }
        v.move_oldest_to_end(2);
        assert_eq!(v.len(), 5);
        // The two age-7 entries must occupy the last two slots.
        let tail: Vec<u32> = v.entries()[3..].iter().map(|e| e.age).collect();
        assert_eq!(tail, vec![7, 7]);
        // Relative order of the others preserved: 1 (age3), 3 (age1), 5 (age0).
        let head: Vec<u64> = v.entries()[..3].iter().map(|e| e.id.0).collect();
        assert_eq!(head, vec![1, 3, 5]);
        assert!(v.invariants_hold());
    }

    #[test]
    fn move_oldest_handles_degenerate_inputs() {
        let mut v = view_with(0, 4, &[1, 2]);
        v.move_oldest_to_end(0);
        assert_eq!(v.len(), 2);
        v.move_oldest_to_end(99); // more than len
        assert_eq!(v.len(), 2);
        let mut empty = View::new(NodeId(0), 4);
        empty.move_oldest_to_end(3);
        assert!(empty.is_empty());
    }

    #[test]
    fn append_dedup_respects_owner_and_duplicates() {
        let mut v = view_with(0, 2, &[1]);
        v.append_dedup(&[
            ViewEntry::fresh(NodeId(0)), // owner: skipped
            ViewEntry {
                id: NodeId(1),
                age: 0,
            },
            ViewEntry::fresh(NodeId(2)),
            ViewEntry::fresh(NodeId(3)),
        ]);
        assert_eq!(v.len(), 3, "append may exceed capacity temporarily");
        assert!(!v.contains(NodeId(0)));
        assert!(v.invariants_hold());
    }

    #[test]
    fn remove_oldest_respects_floor() {
        let mut v = View::new(NodeId(0), 8);
        for i in 1..=4 {
            v.insert(ViewEntry {
                id: NodeId(i),
                age: i as u32,
            });
        }
        let removed = v.remove_oldest(10, 3);
        assert_eq!(removed, 1);
        assert_eq!(v.len(), 3);
        assert!(!v.contains(NodeId(4)), "the oldest (age 4) went first");
    }

    #[test]
    fn remove_head_respects_floor() {
        let mut v = view_with(0, 8, &[1, 2, 3, 4]);
        let removed = v.remove_head(3, 2);
        assert_eq!(removed, 2);
        assert_eq!(v.id_vec(), vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn shrink_to_capacity() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut v = View::new(NodeId(0), 3);
        v.append_dedup(
            &(1..=10)
                .map(|i| ViewEntry::fresh(NodeId(i)))
                .collect::<Vec<_>>(),
        );
        assert_eq!(v.len(), 10);
        v.shrink_to_capacity(&mut rng);
        assert_eq!(v.len(), 3);
        assert!(v.invariants_hold());
    }

    #[test]
    fn replace_with_applies_rules() {
        let mut v = View::new(NodeId(0), 3);
        v.insert_fresh(NodeId(9));
        v.replace_with([
            ViewEntry::fresh(NodeId(0)),
            ViewEntry::fresh(NodeId(1)),
            ViewEntry::fresh(NodeId(1)),
            ViewEntry::fresh(NodeId(2)),
        ]);
        assert_eq!(v.len(), 2);
        assert!(!v.contains(NodeId(9)));
        assert!(v.invariants_hold());
    }

    #[test]
    fn random_and_sample() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let v = view_with(0, 8, &[1, 2, 3, 4, 5]);
        assert!(v.random(&mut rng).is_some());
        let s = v.sample(&mut rng, 3);
        assert_eq!(s.len(), 3);
        let empty = View::new(NodeId(0), 2);
        assert!(empty.random(&mut rng).is_none());
        assert!(empty.sample(&mut rng, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        View::new(NodeId(0), 0);
    }

    #[test]
    fn membership_index_survives_every_mutator() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(12);
        let mut v = View::new(NodeId(0), 6);
        for i in 1..=6 {
            v.insert(ViewEntry {
                id: NodeId(i),
                age: i as u32,
            });
        }
        assert!(v.invariants_hold());
        v.insert_replacing_oldest(ViewEntry::fresh(NodeId(7)));
        assert!(v.invariants_hold() && !v.contains(NodeId(6)));
        v.remove(NodeId(1));
        assert!(v.invariants_hold() && !v.contains(NodeId(1)));
        v.remove_oldest(1, 0);
        v.remove_head(1, 0);
        assert!(v.invariants_hold());
        v.append_dedup(&[ViewEntry::fresh(NodeId(20)), ViewEntry::fresh(NodeId(21))]);
        v.retain(|e| e.id != NodeId(20));
        assert!(v.invariants_hold() && !v.contains(NodeId(20)));
        v.append_dedup(
            &(30..45)
                .map(|i| ViewEntry::fresh(NodeId(i)))
                .collect::<Vec<_>>(),
        );
        v.shrink_to_capacity(&mut rng);
        assert!(v.invariants_hold());
        v.replace_with([ViewEntry::fresh(NodeId(50)), ViewEntry::fresh(NodeId(51))]);
        assert!(v.invariants_hold());
        assert!(v.contains(NodeId(50)) && !v.contains(NodeId(30)));
    }

    #[test]
    fn ids_beyond_dense_limit_use_the_fallback() {
        let huge = NodeId(u64::MAX - 1);
        let mut v = View::new(NodeId(0), 4);
        assert!(v.insert_fresh(huge));
        assert!(v.contains(huge));
        assert!(!v.insert_fresh(huge), "duplicate detected via scan");
        assert!(v.invariants_hold());
        v.remove(huge);
        assert!(!v.contains(huge));
        assert!(v.invariants_hold());
    }

    #[test]
    fn small_views_never_grow_the_membership_index() {
        // Capacity ≤ LINEAR_SCAN_CAPACITY → pure linear scan; the index
        // must stay empty no matter how large the inserted IDs are.
        let mut v = View::new(NodeId(0), LINEAR_SCAN_CAPACITY);
        for i in 1..=LINEAR_SCAN_CAPACITY as u64 {
            assert!(v.insert_fresh(NodeId(i * 1_000_003)));
        }
        assert!(v.present.is_empty());
        assert!(v.contains(NodeId(1_000_003)));
        assert!(!v.contains(NodeId(2)));
        assert!(v.invariants_hold());
        v.remove(NodeId(1_000_003));
        assert!(!v.contains(NodeId(1_000_003)));
        assert!(v.invariants_hold());
    }

    #[test]
    fn large_views_maintain_the_membership_index() {
        let mut v = View::new(NodeId(0), LINEAR_SCAN_CAPACITY + 1);
        for i in 1..=10u64 {
            v.insert_fresh(NodeId(i));
        }
        assert_eq!(v.present.count(), 10);
        assert!(v.contains(NodeId(5)));
        assert!(v.invariants_hold());
        v.remove(NodeId(5));
        assert_eq!(v.present.count(), 9);
        assert!(v.invariants_hold());
    }

    #[test]
    fn indexed_and_scanned_views_behave_identically() {
        // The same mutation sequence on a just-below-gate and a
        // just-above-gate view must agree on membership at every step.
        let caps = [LINEAR_SCAN_CAPACITY, LINEAR_SCAN_CAPACITY + 1];
        let [mut small, mut big] = caps.map(|c| View::new(NodeId(0), c));
        for i in 1..=40u64 {
            small.insert_fresh(NodeId(i));
            big.insert_fresh(NodeId(i));
        }
        for v in [&mut small, &mut big] {
            v.remove(NodeId(3));
            v.remove_head(2, 0);
            v.retain(|e| e.id.0 % 5 != 0);
            assert!(v.invariants_hold());
        }
        assert_eq!(small.id_vec(), big.id_vec());
        for i in 0..=45u64 {
            assert_eq!(small.contains(NodeId(i)), big.contains(NodeId(i)), "id {i}");
        }
    }

    #[test]
    fn head_slice_borrows_the_prefix() {
        let v = view_with(0, 8, &[1, 2, 3, 4]);
        assert_eq!(v.head_slice(2), &v.entries()[..2]);
        assert_eq!(v.head_slice(99).len(), 4);
        assert_eq!(v.head(2), v.head_slice(2).to_vec());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any sequence of inserts preserves the structural invariants.
        #[test]
        fn inserts_preserve_invariants(ids in proptest::collection::vec(0u64..50, 0..100)) {
            let mut v = View::new(NodeId(7), 10);
            for id in ids {
                v.insert_fresh(NodeId(id));
                prop_assert!(v.invariants_hold());
                prop_assert!(v.len() <= v.capacity());
            }
        }

        /// append_dedup + shrink restores capacity and invariants.
        #[test]
        fn exchange_pipeline_preserves_invariants(
            base in proptest::collection::vec(0u64..50, 0..10),
            incoming in proptest::collection::vec((0u64..50, 0u32..20), 0..30),
            seed in 0u64..1000,
        ) {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            let mut v = View::new(NodeId(7), 8);
            for id in base {
                v.insert_fresh(NodeId(id));
            }
            let entries: Vec<ViewEntry> = incoming
                .into_iter()
                .map(|(id, age)| ViewEntry { id: NodeId(id), age })
                .collect();
            v.append_dedup(&entries);
            prop_assert!(v.invariants_hold());
            v.shrink_to_capacity(&mut rng);
            prop_assert!(v.len() <= 8);
            prop_assert!(v.invariants_hold());
        }

        /// move_oldest_to_end never changes the multiset of entries.
        #[test]
        fn move_oldest_is_a_permutation(
            items in proptest::collection::vec((0u64..100, 0u32..50), 0..20),
            h in 0usize..25,
        ) {
            let mut v = View::new(NodeId(200), 32);
            for (id, age) in items {
                v.insert(ViewEntry { id: NodeId(id), age });
            }
            let mut before: Vec<_> = v.entries().to_vec();
            v.move_oldest_to_end(h);
            let mut after: Vec<_> = v.entries().to_vec();
            before.sort_by_key(|e| e.id);
            after.sort_by_key(|e| e.id);
            prop_assert_eq!(before, after);
        }
    }
}
