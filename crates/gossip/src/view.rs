//! Aged partial views.
//!
//! A [`View`] is the local, partial knowledge a node has of the global
//! membership: a bounded list of (node ID, age) entries. Ages drive the
//! framework's healing (drop stale links) and partner selection
//! (round-robin by oldest). The view maintains two invariants at all
//! times: no duplicate IDs, and never the owner's own ID.

use raptee_net::NodeId;
use raptee_util::rng::Xoshiro256StarStar;

/// One view entry: a known peer and how many rounds it has been known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewEntry {
    /// The peer's identifier.
    pub id: NodeId,
    /// Rounds since this link was created (0 = fresh).
    pub age: u32,
}

impl ViewEntry {
    /// A fresh (age-0) entry.
    pub fn fresh(id: NodeId) -> Self {
        Self { id, age: 0 }
    }
}

/// A bounded, aged partial view owned by one node.
///
/// # Examples
///
/// ```
/// use raptee_gossip::view::View;
/// use raptee_net::NodeId;
///
/// let mut v = View::new(NodeId(0), 4);
/// v.insert_fresh(NodeId(1));
/// v.insert_fresh(NodeId(2));
/// assert_eq!(v.len(), 2);
/// assert!(v.contains(NodeId(1)));
/// assert!(!v.contains(NodeId(0)), "own ID is never stored");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    owner: NodeId,
    capacity: usize,
    entries: Vec<ViewEntry>,
}

impl View {
    /// Creates an empty view for `owner` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        Self {
            owner,
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The view owner (whose ID is excluded from the entries).
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in current (order-significant) sequence.
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// Iterator over the IDs in the view.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.id)
    }

    /// Collects the IDs into a vector (convenience for message building).
    pub fn id_vec(&self) -> Vec<NodeId> {
        self.ids().collect()
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Inserts a fresh (age-0) entry if `id` is neither the owner nor a
    /// duplicate and capacity remains. Returns `true` on insertion.
    pub fn insert_fresh(&mut self, id: NodeId) -> bool {
        self.insert(ViewEntry::fresh(id))
    }

    /// Inserts an entry under the same rules as [`View::insert_fresh`]; a
    /// duplicate ID keeps the *younger* age of the two.
    pub fn insert(&mut self, entry: ViewEntry) -> bool {
        if entry.id == self.owner {
            return false;
        }
        if let Some(existing) = self.entries.iter_mut().find(|e| e.id == entry.id) {
            if entry.age < existing.age {
                existing.age = entry.age;
            }
            return false;
        }
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Inserts `entry`, evicting the oldest entry if the view is full
    /// (used by protocols with unconditional admission like Newscast).
    pub fn insert_replacing_oldest(&mut self, entry: ViewEntry) {
        if entry.id == self.owner {
            return;
        }
        if let Some(existing) = self.entries.iter_mut().find(|e| e.id == entry.id) {
            if entry.age < existing.age {
                existing.age = entry.age;
            }
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self.oldest_index() {
                self.entries.swap_remove(oldest);
            }
        }
        self.entries.push(entry);
    }

    /// Increments every entry's age by one round.
    pub fn increase_age(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// The entry that has been in the view the longest (ties broken by
    /// position), or `None` when empty.
    pub fn oldest(&self) -> Option<ViewEntry> {
        self.oldest_index().map(|i| self.entries[i])
    }

    fn oldest_index(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.age)
            .map(|(i, _)| i)
    }

    /// Removes and returns the entry for `id`, if present.
    pub fn remove(&mut self, id: NodeId) -> Option<ViewEntry> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(pos))
    }

    /// Uniformly permutes the entry order.
    pub fn permute(&mut self, rng: &mut Xoshiro256StarStar) {
        rng.shuffle(&mut self.entries);
    }

    /// Moves the `h` oldest entries (by age) to the end of the view,
    /// preserving the relative order of the others — step "move oldest H
    /// items to the end" of the framework's active/passive threads.
    pub fn move_oldest_to_end(&mut self, h: usize) {
        if h == 0 || self.entries.is_empty() {
            return;
        }
        let h = h.min(self.entries.len());
        // Select the h oldest indices.
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.entries[i].age));
        let mut oldest: Vec<usize> = order.into_iter().take(h).collect();
        oldest.sort_unstable();
        let mut tail: Vec<ViewEntry> = Vec::with_capacity(h);
        for &i in oldest.iter().rev() {
            tail.push(self.entries.remove(i));
        }
        tail.reverse();
        self.entries.extend(tail);
    }

    /// The first `n` entries in current order (the "head" the framework
    /// sends to the partner).
    pub fn head(&self, n: usize) -> Vec<ViewEntry> {
        self.entries.iter().take(n).copied().collect()
    }

    /// Appends entries without enforcing capacity (used mid-exchange; the
    /// follow-up [`View::shrink_to_capacity`] pipeline restores it).
    /// Duplicates keep the youngest age; the owner ID is still excluded.
    pub fn append_dedup(&mut self, incoming: &[ViewEntry]) {
        for &e in incoming {
            if e.id == self.owner {
                continue;
            }
            if let Some(existing) = self.entries.iter_mut().find(|x| x.id == e.id) {
                if e.age < existing.age {
                    existing.age = e.age;
                }
            } else {
                self.entries.push(e);
            }
        }
    }

    /// Removes up to `n` of the oldest entries, but never shrinks below
    /// `floor` entries. Returns how many were removed.
    pub fn remove_oldest(&mut self, n: usize, floor: usize) -> usize {
        let removable = self.entries.len().saturating_sub(floor).min(n);
        for _ in 0..removable {
            if let Some(i) = self.oldest_index() {
                self.entries.remove(i);
            }
        }
        removable
    }

    /// Removes up to `n` entries from the head, but never below `floor`.
    /// Returns how many were removed.
    pub fn remove_head(&mut self, n: usize, floor: usize) -> usize {
        let removable = self.entries.len().saturating_sub(floor).min(n);
        self.entries.drain(..removable);
        removable
    }

    /// Removes random entries until `len() <= capacity`.
    pub fn shrink_to_capacity(&mut self, rng: &mut Xoshiro256StarStar) {
        while self.entries.len() > self.capacity {
            let i = rng.index(self.entries.len());
            self.entries.swap_remove(i);
        }
    }

    /// Replaces the content with `entries` (applying owner/duplicate
    /// rules), used when renewing the dynamic view in Brahms.
    pub fn replace_with(&mut self, entries: impl IntoIterator<Item = ViewEntry>) {
        self.entries.clear();
        for e in entries {
            self.insert(e);
        }
    }

    /// Selects a uniformly random entry.
    pub fn random(&self, rng: &mut Xoshiro256StarStar) -> Option<ViewEntry> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries[rng.index(self.entries.len())])
        }
    }

    /// Draws `k` distinct random entries.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar, k: usize) -> Vec<ViewEntry> {
        rng.sample(&self.entries, k)
    }

    /// Keeps only the entries satisfying the predicate; returns how many
    /// were removed.
    pub fn retain<F: FnMut(&ViewEntry) -> bool>(&mut self, mut pred: F) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| pred(e));
        before - self.entries.len()
    }

    /// Checks the two structural invariants (unique IDs, no owner entry);
    /// used by tests and debug assertions.
    pub fn invariants_hold(&self) -> bool {
        if self.entries.iter().any(|e| e.id == self.owner) {
            return false;
        }
        let mut ids: Vec<NodeId> = self.ids().collect();
        ids.sort_unstable();
        ids.windows(2).all(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_with(owner: u64, cap: usize, ids: &[u64]) -> View {
        let mut v = View::new(NodeId(owner), cap);
        for &i in ids {
            v.insert_fresh(NodeId(i));
        }
        v
    }

    #[test]
    fn rejects_owner_and_duplicates() {
        let mut v = View::new(NodeId(0), 4);
        assert!(!v.insert_fresh(NodeId(0)), "own ID rejected");
        assert!(v.insert_fresh(NodeId(1)));
        assert!(!v.insert_fresh(NodeId(1)), "duplicate rejected");
        assert_eq!(v.len(), 1);
        assert!(v.invariants_hold());
    }

    #[test]
    fn duplicate_insert_keeps_younger_age() {
        let mut v = View::new(NodeId(0), 4);
        v.insert(ViewEntry {
            id: NodeId(1),
            age: 5,
        });
        v.insert(ViewEntry {
            id: NodeId(1),
            age: 2,
        });
        assert_eq!(v.entries()[0].age, 2);
        v.insert(ViewEntry {
            id: NodeId(1),
            age: 9,
        });
        assert_eq!(
            v.entries()[0].age,
            2,
            "older duplicate must not regress age"
        );
    }

    #[test]
    fn capacity_enforced() {
        let mut v = view_with(0, 2, &[1, 2]);
        assert!(!v.insert_fresh(NodeId(3)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn replace_oldest_evicts_by_age() {
        let mut v = View::new(NodeId(0), 2);
        v.insert(ViewEntry {
            id: NodeId(1),
            age: 9,
        });
        v.insert(ViewEntry {
            id: NodeId(2),
            age: 1,
        });
        v.insert_replacing_oldest(ViewEntry::fresh(NodeId(3)));
        assert!(!v.contains(NodeId(1)), "oldest evicted");
        assert!(v.contains(NodeId(2)) && v.contains(NodeId(3)));
    }

    #[test]
    fn aging_and_oldest() {
        let mut v = view_with(0, 4, &[1, 2]);
        v.increase_age();
        v.insert_fresh(NodeId(3));
        let oldest = v.oldest().unwrap();
        assert_eq!(oldest.age, 1);
        assert!(oldest.id == NodeId(1) || oldest.id == NodeId(2));
    }

    #[test]
    fn move_oldest_to_end_preserves_content() {
        let mut v = View::new(NodeId(0), 8);
        for (i, age) in [(1u64, 3u32), (2, 7), (3, 1), (4, 7), (5, 0)] {
            v.insert(ViewEntry { id: NodeId(i), age });
        }
        v.move_oldest_to_end(2);
        assert_eq!(v.len(), 5);
        // The two age-7 entries must occupy the last two slots.
        let tail: Vec<u32> = v.entries()[3..].iter().map(|e| e.age).collect();
        assert_eq!(tail, vec![7, 7]);
        // Relative order of the others preserved: 1 (age3), 3 (age1), 5 (age0).
        let head: Vec<u64> = v.entries()[..3].iter().map(|e| e.id.0).collect();
        assert_eq!(head, vec![1, 3, 5]);
        assert!(v.invariants_hold());
    }

    #[test]
    fn move_oldest_handles_degenerate_inputs() {
        let mut v = view_with(0, 4, &[1, 2]);
        v.move_oldest_to_end(0);
        assert_eq!(v.len(), 2);
        v.move_oldest_to_end(99); // more than len
        assert_eq!(v.len(), 2);
        let mut empty = View::new(NodeId(0), 4);
        empty.move_oldest_to_end(3);
        assert!(empty.is_empty());
    }

    #[test]
    fn append_dedup_respects_owner_and_duplicates() {
        let mut v = view_with(0, 2, &[1]);
        v.append_dedup(&[
            ViewEntry::fresh(NodeId(0)), // owner: skipped
            ViewEntry {
                id: NodeId(1),
                age: 0,
            },
            ViewEntry::fresh(NodeId(2)),
            ViewEntry::fresh(NodeId(3)),
        ]);
        assert_eq!(v.len(), 3, "append may exceed capacity temporarily");
        assert!(!v.contains(NodeId(0)));
        assert!(v.invariants_hold());
    }

    #[test]
    fn remove_oldest_respects_floor() {
        let mut v = View::new(NodeId(0), 8);
        for i in 1..=4 {
            v.insert(ViewEntry {
                id: NodeId(i),
                age: i as u32,
            });
        }
        let removed = v.remove_oldest(10, 3);
        assert_eq!(removed, 1);
        assert_eq!(v.len(), 3);
        assert!(!v.contains(NodeId(4)), "the oldest (age 4) went first");
    }

    #[test]
    fn remove_head_respects_floor() {
        let mut v = view_with(0, 8, &[1, 2, 3, 4]);
        let removed = v.remove_head(3, 2);
        assert_eq!(removed, 2);
        assert_eq!(v.id_vec(), vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn shrink_to_capacity() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut v = View::new(NodeId(0), 3);
        v.append_dedup(
            &(1..=10)
                .map(|i| ViewEntry::fresh(NodeId(i)))
                .collect::<Vec<_>>(),
        );
        assert_eq!(v.len(), 10);
        v.shrink_to_capacity(&mut rng);
        assert_eq!(v.len(), 3);
        assert!(v.invariants_hold());
    }

    #[test]
    fn replace_with_applies_rules() {
        let mut v = View::new(NodeId(0), 3);
        v.insert_fresh(NodeId(9));
        v.replace_with([
            ViewEntry::fresh(NodeId(0)),
            ViewEntry::fresh(NodeId(1)),
            ViewEntry::fresh(NodeId(1)),
            ViewEntry::fresh(NodeId(2)),
        ]);
        assert_eq!(v.len(), 2);
        assert!(!v.contains(NodeId(9)));
        assert!(v.invariants_hold());
    }

    #[test]
    fn random_and_sample() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let v = view_with(0, 8, &[1, 2, 3, 4, 5]);
        assert!(v.random(&mut rng).is_some());
        let s = v.sample(&mut rng, 3);
        assert_eq!(s.len(), 3);
        let empty = View::new(NodeId(0), 2);
        assert!(empty.random(&mut rng).is_none());
        assert!(empty.sample(&mut rng, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        View::new(NodeId(0), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any sequence of inserts preserves the structural invariants.
        #[test]
        fn inserts_preserve_invariants(ids in proptest::collection::vec(0u64..50, 0..100)) {
            let mut v = View::new(NodeId(7), 10);
            for id in ids {
                v.insert_fresh(NodeId(id));
                prop_assert!(v.invariants_hold());
                prop_assert!(v.len() <= v.capacity());
            }
        }

        /// append_dedup + shrink restores capacity and invariants.
        #[test]
        fn exchange_pipeline_preserves_invariants(
            base in proptest::collection::vec(0u64..50, 0..10),
            incoming in proptest::collection::vec((0u64..50, 0u32..20), 0..30),
            seed in 0u64..1000,
        ) {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            let mut v = View::new(NodeId(7), 8);
            for id in base {
                v.insert_fresh(NodeId(id));
            }
            let entries: Vec<ViewEntry> = incoming
                .into_iter()
                .map(|(id, age)| ViewEntry { id: NodeId(id), age })
                .collect();
            v.append_dedup(&entries);
            prop_assert!(v.invariants_hold());
            v.shrink_to_capacity(&mut rng);
            prop_assert!(v.len() <= 8);
            prop_assert!(v.invariants_hold());
        }

        /// move_oldest_to_end never changes the multiset of entries.
        #[test]
        fn move_oldest_is_a_permutation(
            items in proptest::collection::vec((0u64..100, 0u32..50), 0..20),
            h in 0usize..25,
        ) {
            let mut v = View::new(NodeId(200), 32);
            for (id, age) in items {
                v.insert(ViewEntry { id: NodeId(id), age });
            }
            let mut before: Vec<_> = v.entries().to_vec();
            v.move_oldest_to_end(h);
            let mut after: Vec<_> = v.entries().to_vec();
            before.sort_by_key(|e| e.id);
            after.sort_by_key(|e| e.id);
            prop_assert_eq!(before, after);
        }
    }
}
