//! Named framework instantiations and an in-process round driver.
//!
//! The paper positions RAPTEE's trusted exchange within the lineage of
//! Cyclon and Newscast, both expressible as points in the (peer
//! selection, H, S) design space:
//!
//! | protocol | selection | H | S |
//! |---|---|---|---|
//! | [`cyclon`] | oldest | 0 | c/2 (pure swap) |
//! | [`newscast`] | random | c/2 (aggressive healing) | 0 |
//! | [`raptee_trusted`] | oldest | 0 | c/2, initiator self-insertion |
//!
//! [`Population`] runs any configuration over an in-process node
//! population — the harness behind the gossip unit tests, the overlay
//! metrics and the `overlay_quality` ablation bench.

use crate::exchange::{run_exchange, select_partner, GossipConfig, PeerSelection};
use crate::view::View;
use raptee_net::NodeId;
use raptee_util::rng::Xoshiro256StarStar;

/// Cyclon (Voulgaris, Gavidia & van Steen, 2005): age-based partner
/// selection with pure swapping — excellent in-degree balance and low
/// clustering.
pub fn cyclon(view_size: usize) -> GossipConfig {
    GossipConfig {
        view_size,
        healer: 0,
        swapper: view_size / 2,
        peer_selection: PeerSelection::Oldest,
        pull: true,
    }
}

/// Newscast (Tölgyesi & Jelasity, 2009): random selection with aggressive
/// healing — excellent churn handling at the cost of in-degree balance.
pub fn newscast(view_size: usize) -> GossipConfig {
    GossipConfig {
        view_size,
        healer: view_size / 2,
        swapper: 0,
        peer_selection: PeerSelection::Random,
        pull: true,
    }
}

/// The instantiation RAPTEE uses between trusted nodes (paper Section II):
/// oldest-first probing, half-view exchange with self-insertion, swap
/// semantics.
pub fn raptee_trusted(view_size: usize) -> GossipConfig {
    GossipConfig {
        view_size,
        healer: 0,
        swapper: view_size / 2,
        peer_selection: PeerSelection::Oldest,
        pull: true,
    }
}

/// An in-process population of views evolving under one configuration.
///
/// # Examples
///
/// ```
/// use raptee_gossip::protocols::{cyclon, Population};
/// let mut pop = Population::ring(100, cyclon(8), 42);
/// pop.run_rounds(30);
/// assert!(pop.views().iter().all(|v| v.invariants_hold()));
/// ```
#[derive(Debug)]
pub struct Population {
    config: GossipConfig,
    views: Vec<View>,
    alive: Vec<bool>,
    rng: Xoshiro256StarStar,
    rounds: u64,
}

impl Population {
    /// Bootstraps `n` nodes in a directed ring (each node initially knows
    /// its successors) — the worst-case "thin" bootstrap used to show
    /// convergence to a random overlay.
    pub fn ring(n: usize, config: GossipConfig, seed: u64) -> Self {
        config.validate();
        let views: Vec<View> = (0..n)
            .map(|i| {
                let mut v = View::new(NodeId(i as u64), config.view_size);
                for k in 1..=config.view_size.min(n.saturating_sub(1)) {
                    v.insert_fresh(NodeId(((i + k) % n) as u64));
                }
                v
            })
            .collect();
        Self {
            alive: vec![true; views.len()],
            config,
            views,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            rounds: 0,
        }
    }

    /// Bootstraps `n` nodes with uniformly random initial views — the
    /// bootstrap the paper uses ("a view composed of a uniform random
    /// sample of the global membership").
    pub fn random_bootstrap(n: usize, config: GossipConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let all: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let views: Vec<View> = (0..n)
            .map(|i| {
                let mut v = View::new(NodeId(i as u64), config.view_size);
                // Sample a bit more than c to survive the owner exclusion.
                for id in rng.sample(&all, config.view_size + 2) {
                    if v.len() == config.view_size {
                        break;
                    }
                    v.insert_fresh(id);
                }
                v
            })
            .collect();
        Self {
            alive: vec![true; views.len()],
            config,
            views,
            rng,
            rounds: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The per-node views.
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Runs one synchronous gossip round: every node ages its view, then
    /// each node (in random activation order) initiates one exchange.
    pub fn run_round(&mut self) {
        let n = self.views.len();
        for v in &mut self.views {
            v.increase_age();
        }
        let mut order: Vec<usize> = (0..n).collect();
        self.rng.shuffle(&mut order);
        for i in order {
            if !self.alive[i] {
                continue;
            }
            let partner = {
                let view = &self.views[i];
                select_partner(view, &self.config, &mut self.rng)
            };
            let Some(partner) = partner else { continue };
            let p = partner.index();
            if p == i || p >= n {
                continue;
            }
            if !self.alive[p] {
                // Timeout semantics (as in Cyclon): an unresponsive
                // neighbour is dropped from the view.
                self.views[i].remove(partner);
                continue;
            }
            // Split-borrow the two views.
            let (a, b) = if i < p {
                let (lo, hi) = self.views.split_at_mut(p);
                (&mut lo[i], &mut hi[0])
            } else {
                let (lo, hi) = self.views.split_at_mut(i);
                (&mut hi[0], &mut lo[p])
            };
            run_exchange(a, b, &self.config, &mut self.rng);
        }
        self.rounds += 1;
    }

    /// Runs `k` rounds.
    pub fn run_rounds(&mut self, k: usize) {
        for _ in 0..k {
            self.run_round();
        }
    }

    /// Simulates the crash of `node`: its view is emptied and it stops
    /// initiating; other nodes keep (stale) links to it until healing
    /// removes them. Returns the fraction of views still containing the
    /// node, for use in healing tests.
    pub fn crash(&mut self, node: NodeId) -> f64 {
        self.alive[node.index()] = false;
        self.views[node.index()].replace_with(std::iter::empty());
        self.referencing_fraction(node)
    }

    /// Whether `node` is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Fraction of live views containing `node`.
    pub fn referencing_fraction(&self, node: NodeId) -> f64 {
        let refs = self
            .views
            .iter()
            .enumerate()
            .filter(|(i, v)| *i != node.index() && v.contains(node))
            .count();
        refs as f64 / (self.views.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn configs_are_valid() {
        cyclon(16).validate();
        newscast(16).validate();
        raptee_trusted(16).validate();
        assert_eq!(raptee_trusted(16).swapper, 8);
        assert_eq!(raptee_trusted(16).peer_selection, PeerSelection::Oldest);
    }

    #[test]
    fn ring_converges_to_connected_low_diameter_overlay() {
        let mut pop = Population::ring(200, cyclon(10), 7);
        pop.run_rounds(40);
        assert!(metrics::is_weakly_connected(pop.views()));
        let apl = metrics::avg_path_length(pop.views(), 20, 77);
        // Random graph with out-degree 10 over 200 nodes: APL ≈ ln(200)/ln(10) ≈ 2.3.
        assert!(apl < 4.0, "average path length {apl}");
    }

    #[test]
    fn cyclon_balances_in_degree_better_than_newscast() {
        let n = 300;
        let rounds = 60;
        let mut cy = Population::random_bootstrap(n, cyclon(10), 1);
        let mut nc = Population::random_bootstrap(n, newscast(10), 1);
        cy.run_rounds(rounds);
        nc.run_rounds(rounds);
        let sd_cy = metrics::in_degree_stats(cy.views()).std_dev;
        let sd_nc = metrics::in_degree_stats(nc.views()).std_dev;
        assert!(
            sd_cy < sd_nc,
            "cyclon in-degree sd {sd_cy} should beat newscast {sd_nc}"
        );
    }

    #[test]
    fn views_remain_full_and_valid() {
        let mut pop = Population::random_bootstrap(150, raptee_trusted(12), 3);
        pop.run_rounds(25);
        for v in pop.views() {
            assert_eq!(v.len(), 12);
            assert!(v.invariants_hold());
        }
    }

    #[test]
    fn healing_removes_crashed_node() {
        let mut pop = Population::random_bootstrap(200, newscast(10), 5);
        pop.run_rounds(20);
        let victim = NodeId(17);
        let before = pop.crash(victim);
        assert!(before > 0.0, "node must be referenced before the crash");
        pop.run_rounds(40);
        let after = pop.referencing_fraction(victim);
        assert!(
            after < before / 4.0,
            "healing should purge the dead node: before {before}, after {after}"
        );
    }

    #[test]
    fn dissemination_speed_full_discovery() {
        // A single node's ID must spread: after enough rounds, a fresh
        // joiner appears in many views (the dissemination property RAPTEE
        // exploits for trusted IDs).
        let mut pop = Population::ring(100, cyclon(8), 11);
        pop.run_rounds(30);
        let coverage = pop.referencing_fraction(NodeId(0));
        assert!(
            coverage > 0.04,
            "node 0 should reach ≥ c/n coverage, got {coverage}"
        );
    }

    #[test]
    fn rounds_counter() {
        let mut pop = Population::ring(10, cyclon(4), 1);
        assert_eq!(pop.rounds(), 0);
        pop.run_rounds(3);
        assert_eq!(pop.rounds(), 3);
    }

    #[test]
    fn random_bootstrap_views_are_full() {
        let pop = Population::random_bootstrap(50, cyclon(8), 2);
        for v in pop.views() {
            assert_eq!(v.len(), 8);
        }
    }
}
