//! Gossip-based peer sampling — the Jelasity et al. framework.
//!
//! RAPTEE's *trusted communications* follow "the instantiation of the
//! Gossip-based Peer Sampling framework" of Jelasity, Voulgaris,
//! Guerraoui, Kermarrec & van Steen (TOCS 2007), with the criteria the
//! paper fixes in Section II:
//!
//! 1. partner selection by **age** (probe the entry that has been in the
//!    view longest — an effective round-robin),
//! 2. exchange **half of the view**, with the initiator inserting a fresh
//!    link to itself, and
//! 3. **swap** semantics: a link sent by the initiator is kept only by the
//!    partner and vice-versa.
//!
//! This crate implements the full generic framework — aged partial views,
//! the `H` (healer) and `S` (swapper) parameters, peer-selection and
//! view-propagation policies — plus the classic instantiations the paper
//! cites as related work ([`protocols::cyclon`], [`protocols::newscast`])
//! and the overlay-quality metrics used to sanity-check any peer-sampling
//! service ([`metrics`]: in-degree balance, clustering coefficient,
//! path lengths, connectivity).
//!
//! `raptee` (the core crate) reuses [`View`] and the exchange functions
//! for the trusted view-swap; `raptee-brahms` reuses [`View`] for its
//! dynamic view.

pub mod exchange;
pub mod metrics;
pub mod protocols;
pub mod view;

pub use exchange::{GossipConfig, PeerSelection};
pub use view::{View, ViewEntry};
