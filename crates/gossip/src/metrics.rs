//! Overlay-quality metrics.
//!
//! The peer-sampling literature judges a protocol by how close its
//! who-knows-whom graph is to a random graph of the same out-degree:
//! balanced in-degrees, low clustering coefficient, small diameter, and
//! (weak) connectivity. These metrics back the gossip tests, the
//! `overlay_quality` bench, and the DESIGN.md ablations.

use crate::view::View;
#[cfg(test)]
use raptee_net::NodeId;
use raptee_util::rng::Xoshiro256StarStar;
use raptee_util::stats::OnlineStats;
use std::collections::VecDeque;

/// In-degree of every node (number of views it appears in).
pub fn in_degrees(views: &[View]) -> Vec<usize> {
    let mut deg = vec![0usize; views.len()];
    for v in views {
        for id in v.ids() {
            if id.index() < deg.len() {
                deg[id.index()] += 1;
            }
        }
    }
    deg
}

/// Summary statistics of the in-degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Mean in-degree (equals mean out-degree for full views).
    pub mean: f64,
    /// Standard deviation — the balance indicator.
    pub std_dev: f64,
    /// Minimum in-degree.
    pub min: usize,
    /// Maximum in-degree.
    pub max: usize,
}

/// Computes [`DegreeStats`] for a population.
///
/// # Panics
///
/// Panics when `views` is empty.
pub fn in_degree_stats(views: &[View]) -> DegreeStats {
    assert!(!views.is_empty(), "degree stats of empty population");
    let deg = in_degrees(views);
    let stats: OnlineStats = deg.iter().map(|&d| d as f64).collect();
    DegreeStats {
        mean: stats.mean(),
        std_dev: stats.population_std_dev(),
        min: deg.iter().copied().min().unwrap_or(0),
        max: deg.iter().copied().max().unwrap_or(0),
    }
}

/// Average local clustering coefficient over a random sample of
/// `sample_size` nodes (treating links as undirected, as is conventional
/// for overlay quality). Lower is better for peer sampling; a random
/// graph has ≈ c/n.
pub fn clustering_coefficient(views: &[View], sample_size: usize, seed: u64) -> f64 {
    let n = views.len();
    if n == 0 {
        return 0.0;
    }
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    // Undirected adjacency as sorted vectors for binary-search lookups.
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (i, v) in views.iter().enumerate() {
        for id in v.ids() {
            if id.index() < n {
                adj[i].push(id.0);
                adj[id.index()].push(i as u64);
            }
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    let indices: Vec<usize> = (0..n).collect();
    let sample = rng.sample(&indices, sample_size.min(n));
    let mut acc = 0.0;
    let mut counted = 0usize;
    for &i in &sample {
        let neigh = &adj[i];
        let k = neigh.len();
        if k < 2 {
            continue;
        }
        let mut links = 0usize;
        for (ai, &a) in neigh.iter().enumerate() {
            for &b in &neigh[ai + 1..] {
                if adj[a as usize].binary_search(&b).is_ok() {
                    links += 1;
                }
            }
        }
        acc += 2.0 * links as f64 / (k * (k - 1)) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        acc / counted as f64
    }
}

/// Average directed shortest-path length from a random sample of source
/// nodes to all reachable nodes (BFS). Unreachable pairs are skipped.
pub fn avg_path_length(views: &[View], sources: usize, seed: u64) -> f64 {
    let n = views.len();
    if n == 0 {
        return 0.0;
    }
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let indices: Vec<usize> = (0..n).collect();
    let sample = rng.sample(&indices, sources.min(n));
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &src in &sample {
        let dist = bfs_distances(views, src);
        for (i, d) in dist.iter().enumerate() {
            if i != src {
                if let Some(d) = d {
                    total += *d as u64;
                    pairs += 1;
                }
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

/// Whether the overlay is weakly connected (connected when link direction
/// is ignored) — the property whose loss would mean a successful eclipse
/// or partition.
pub fn is_weakly_connected(views: &[View]) -> bool {
    let n = views.len();
    if n == 0 {
        return true;
    }
    // Undirected adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, v) in views.iter().enumerate() {
        for id in v.ids() {
            if id.index() < n {
                adj[i].push(id.index());
                adj[id.index()].push(i);
            }
        }
    }
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &w in &adj[u] {
            if !seen[w] {
                seen[w] = true;
                count += 1;
                queue.push_back(w);
            }
        }
    }
    count == n
}

/// BFS over directed view links from `src`; `None` marks unreachable.
fn bfs_distances(views: &[View], src: usize) -> Vec<Option<u32>> {
    let n = views.len();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    dist[src] = Some(0);
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for id in views[u].ids() {
            let w = id.index();
            if w < n && dist[w].is_none() {
                dist[w] = Some(du + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::View;

    /// Builds a directed ring: i -> i+1.
    fn ring(n: usize) -> Vec<View> {
        (0..n)
            .map(|i| {
                let mut v = View::new(NodeId(i as u64), 2);
                v.insert_fresh(NodeId(((i + 1) % n) as u64));
                v
            })
            .collect()
    }

    /// Builds a clique over n nodes.
    fn clique(n: usize) -> Vec<View> {
        (0..n)
            .map(|i| {
                let mut v = View::new(NodeId(i as u64), n);
                for j in 0..n {
                    if j != i {
                        v.insert_fresh(NodeId(j as u64));
                    }
                }
                v
            })
            .collect()
    }

    #[test]
    fn ring_in_degrees_are_all_one() {
        let views = ring(10);
        assert_eq!(in_degrees(&views), [1; 10]);
        let s = in_degree_stats(&views);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.max), (1, 1));
    }

    #[test]
    fn star_in_degrees_are_skewed() {
        // Everyone points at node 0.
        let n = 10;
        let views: Vec<View> = (0..n)
            .map(|i| {
                let mut v = View::new(NodeId(i as u64), 2);
                if i != 0 {
                    v.insert_fresh(NodeId(0));
                }
                v
            })
            .collect();
        let s = in_degree_stats(&views);
        assert_eq!(s.max, n - 1);
        assert_eq!(s.min, 0);
        assert!(s.std_dev > 2.0);
    }

    #[test]
    fn clique_clustering_is_one() {
        let views = clique(8);
        let cc = clustering_coefficient(&views, 8, 1);
        assert!((cc - 1.0).abs() < 1e-9, "clique clustering {cc}");
    }

    #[test]
    fn ring_clustering_is_zero() {
        let views = ring(10);
        let cc = clustering_coefficient(&views, 10, 1);
        assert_eq!(cc, 0.0);
    }

    #[test]
    fn ring_path_lengths() {
        let views = ring(10);
        // Directed ring: average distance from any node = (1+..+9)/9 = 5.
        let apl = avg_path_length(&views, 10, 1);
        assert!((apl - 5.0).abs() < 1e-9, "apl {apl}");
    }

    #[test]
    fn connectivity_detection() {
        assert!(is_weakly_connected(&ring(10)));
        // Two disjoint rings.
        let mut views = ring(10);
        let island: Vec<View> = (10u64..20)
            .map(|i| {
                let mut v = View::new(NodeId(i), 2);
                v.insert_fresh(NodeId(if i == 19 { 10 } else { i + 1 }));
                v
            })
            .collect();
        views.extend(island);
        assert!(!is_weakly_connected(&views));
    }

    #[test]
    fn empty_population_edge_cases() {
        assert!(is_weakly_connected(&[]));
        assert_eq!(avg_path_length(&[], 5, 1), 0.0);
        assert_eq!(clustering_coefficient(&[], 5, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn degree_stats_empty_panics() {
        in_degree_stats(&[]);
    }
}
