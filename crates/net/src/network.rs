//! Generic round-based message router.
//!
//! [`Network`] moves typed messages between per-node inboxes. It is
//! synchronous in the gossip sense: the simulation engine drives phases
//! (send pushes → deliver → send pulls → deliver → ...), and the network
//! guarantees deterministic delivery order for a fixed seed.
//!
//! Two cross-cutting concerns live here rather than in protocol code:
//!
//! * **Loss** — an optional uniform drop probability, used by the failure
//!   injection tests (gossip must survive lossy links).
//! * **Observation** — a [`TrafficTap`] records (from, to, kind) triples.
//!   The paper *assumes* the adversary cannot eavesdrop arbitrary links
//!   (Section III-B); the tap lets tests verify what such an adversary
//!   could or could not learn (e.g. that trusted handshakes are
//!   shape-identical to untrusted ones).

use crate::id::NodeId;
use raptee_util::rng::Xoshiro256StarStar;

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender address.
    pub from: NodeId,
    /// Destination address.
    pub to: NodeId,
    /// Protocol payload.
    pub payload: M,
}

/// Sizing/classification hook implemented by protocol message enums so the
/// network can account traffic per kind without knowing the protocol.
pub trait MessageMeter {
    /// A short, static label for the message kind ("push", "pull-req", ...).
    fn kind(&self) -> &'static str;
    /// Approximate wire size in bytes (after encryption; stream ciphers
    /// are length-preserving so plaintext size is wire size plus a
    /// constant header).
    fn size_bytes(&self) -> usize;
}

/// Record of one observed delivery, as seen by a passive global observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapRecord {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Message kind label.
    pub kind: &'static str,
    /// Observed size in bytes.
    pub size: usize,
}

/// A passive wire observer (the eavesdropping adversary of the threat-model
/// discussion). Collects [`TapRecord`]s; contents are *not* visible, which
/// mirrors the fact that all traffic is encrypted.
#[derive(Debug, Default, Clone)]
pub struct TrafficTap {
    records: Vec<TapRecord>,
}

impl TrafficTap {
    /// Creates an empty tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// All records captured so far.
    pub fn records(&self) -> &[TapRecord] {
        &self.records
    }

    /// Drops captured records (e.g. between rounds).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// Per-kind traffic counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TrafficTotals {
    /// (kind, message count, byte count) triples in first-seen order.
    entries: Vec<(&'static str, u64, u64)>,
}

impl TrafficTotals {
    fn add(&mut self, kind: &'static str, bytes: usize) {
        for e in &mut self.entries {
            if e.0 == kind {
                e.1 += 1;
                e.2 += bytes as u64;
                return;
            }
        }
        self.entries.push((kind, 1, bytes as u64));
    }

    /// Message count for a kind (0 if never seen).
    pub fn count(&self, kind: &str) -> u64 {
        self.entries.iter().find(|e| e.0 == kind).map_or(0, |e| e.1)
    }

    /// Byte count for a kind (0 if never seen).
    pub fn bytes(&self, kind: &str) -> u64 {
        self.entries.iter().find(|e| e.0 == kind).map_or(0, |e| e.2)
    }

    /// Total messages across kinds.
    pub fn total_messages(&self) -> u64 {
        self.entries.iter().map(|e| e.1).sum()
    }

    /// Iterates `(kind, count, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.entries.iter().copied()
    }
}

/// The simulated network fabric.
///
/// # Examples
///
/// ```
/// use raptee_net::{Network, NodeId, MessageMeter};
///
/// #[derive(Debug, Clone)]
/// struct Ping;
/// impl MessageMeter for Ping {
///     fn kind(&self) -> &'static str { "ping" }
///     fn size_bytes(&self) -> usize { 8 }
/// }
///
/// let mut net: Network<Ping> = Network::new(4, 99);
/// net.send(NodeId(0), NodeId(3), Ping);
/// let inbox = net.take_inbox(NodeId(3));
/// assert_eq!(inbox.len(), 1);
/// assert_eq!(net.totals().count("ping"), 1);
/// ```
#[derive(Debug)]
pub struct Network<M> {
    inboxes: Vec<Vec<Envelope<M>>>,
    rng: Xoshiro256StarStar,
    drop_probability: f64,
    totals: TrafficTotals,
    dropped: u64,
    tap: Option<TrafficTap>,
}

impl<M: MessageMeter> Network<M> {
    /// Creates a lossless network connecting `n` nodes, seeded for
    /// deterministic loss decisions.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            drop_probability: 0.0,
            totals: TrafficTotals::default(),
            dropped: 0,
            tap: None,
        }
    }

    /// Number of attached nodes.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// True when the network has no attached nodes.
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }

    /// Sets a uniform message-loss probability in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn set_drop_probability(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_probability = p;
    }

    /// Installs a passive observer; see [`TrafficTap`].
    pub fn install_tap(&mut self) {
        self.tap = Some(TrafficTap::new());
    }

    /// Access to the installed tap, if any.
    pub fn tap(&self) -> Option<&TrafficTap> {
        self.tap.as_ref()
    }

    /// Clears the tap's captured records.
    pub fn clear_tap(&mut self) {
        if let Some(t) = &mut self.tap {
            t.clear();
        }
    }

    /// Sends `payload` from `from` to `to`. The message is accounted, may
    /// be dropped by the loss policy, and otherwise lands in `to`'s inbox.
    /// Returns `true` when delivered.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid node index for this network.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) -> bool {
        assert!(
            to.index() < self.inboxes.len(),
            "destination {to} out of range"
        );
        let kind = payload.kind();
        let size = payload.size_bytes();
        self.totals.add(kind, size);
        if self.drop_probability > 0.0 && self.rng.chance(self.drop_probability) {
            self.dropped += 1;
            return false;
        }
        if let Some(t) = &mut self.tap {
            t.records.push(TapRecord {
                from,
                to,
                kind,
                size,
            });
        }
        self.inboxes[to.index()].push(Envelope { from, to, payload });
        true
    }

    /// Removes and returns the inbox of `node` (delivery order = send
    /// order, which keeps the simulation deterministic).
    pub fn take_inbox(&mut self, node: NodeId) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.inboxes[node.index()])
    }

    /// Peeks at the pending messages of `node` without removing them.
    pub fn inbox(&self, node: NodeId) -> &[Envelope<M>] {
        &self.inboxes[node.index()]
    }

    /// Per-kind traffic totals (counts attempted sends, including dropped
    /// messages — the sender pays for the bytes either way).
    pub fn totals(&self) -> &TrafficTotals {
        &self.totals
    }

    /// Number of messages dropped by the loss policy.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Small,
        Big,
    }
    impl MessageMeter for Msg {
        fn kind(&self) -> &'static str {
            match self {
                Msg::Small => "small",
                Msg::Big => "big",
            }
        }
        fn size_bytes(&self) -> usize {
            match self {
                Msg::Small => 16,
                Msg::Big => 1600,
            }
        }
    }

    #[test]
    fn send_and_take() {
        let mut net: Network<Msg> = Network::new(3, 1);
        net.send(NodeId(0), NodeId(2), Msg::Small);
        net.send(NodeId(1), NodeId(2), Msg::Big);
        assert_eq!(net.inbox(NodeId(2)).len(), 2);
        let inbox = net.take_inbox(NodeId(2));
        assert_eq!(inbox[0].from, NodeId(0));
        assert_eq!(inbox[1].payload, Msg::Big);
        assert!(net.inbox(NodeId(2)).is_empty(), "take drains the inbox");
    }

    #[test]
    fn totals_account_per_kind() {
        let mut net: Network<Msg> = Network::new(2, 1);
        net.send(NodeId(0), NodeId(1), Msg::Small);
        net.send(NodeId(0), NodeId(1), Msg::Small);
        net.send(NodeId(0), NodeId(1), Msg::Big);
        assert_eq!(net.totals().count("small"), 2);
        assert_eq!(net.totals().bytes("small"), 32);
        assert_eq!(net.totals().count("big"), 1);
        assert_eq!(net.totals().total_messages(), 3);
        assert_eq!(net.totals().count("absent"), 0);
    }

    #[test]
    fn loss_drops_roughly_the_right_fraction() {
        let mut net: Network<Msg> = Network::new(2, 42);
        net.set_drop_probability(0.3);
        let mut delivered = 0;
        for _ in 0..10_000 {
            if net.send(NodeId(0), NodeId(1), Msg::Small) {
                delivered += 1;
            }
        }
        let rate = delivered as f64 / 10_000.0;
        assert!((rate - 0.7).abs() < 0.02, "delivery rate {rate}");
        assert_eq!(net.dropped() + delivered, 10_000);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_drop_probability_panics() {
        let mut net: Network<Msg> = Network::new(1, 1);
        net.set_drop_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let mut net: Network<Msg> = Network::new(1, 1);
        net.send(NodeId(0), NodeId(9), Msg::Small);
    }

    #[test]
    fn tap_sees_shapes_not_content() {
        let mut net: Network<Msg> = Network::new(2, 1);
        net.install_tap();
        net.send(NodeId(0), NodeId(1), Msg::Big);
        let recs = net.tap().unwrap().records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, "big");
        assert_eq!(recs[0].size, 1600);
        net.clear_tap();
        assert!(net.tap().unwrap().records().is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut net: Network<Msg> = Network::new(2, seed);
            net.set_drop_probability(0.5);
            (0..100)
                .map(|_| net.send(NodeId(0), NodeId(1), Msg::Small))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
