//! Simulated round-based network substrate.
//!
//! The paper evaluates RAPTEE on Grid'5000 with 10,000 OS processes
//! speaking TCP; every reported metric, however, is counted in protocol
//! *rounds* (2.5 s each), not wall-clock time. This crate provides the
//! deterministic, round-based message fabric the simulation runs on:
//!
//! * [`id`] — [`id::NodeId`], the transport address of a simulated node.
//! * [`network`] — [`network::Network`], a generic router with per-node
//!   inboxes, optional message loss, per-kind traffic accounting and an
//!   adversary *tap* modelling the paper's (explicitly excluded, but
//!   testable) global eavesdropper.
//! * [`rate`] — [`rate::PushRateLimiter`], the "limited pushes" defence
//!   Brahms assumes (computational puzzles / virtual currency): it caps
//!   how many pushes any identity can emit per round, which bounds the
//!   adversary's total push volume.
//! * [`channel`] — [`channel::SecureChannel`], symmetric encryption of
//!   node-to-node traffic (paper Section III-B: "communications between
//!   any two nodes, including trusted ones, are cyphered with symmetric
//!   encryption").
//!
//! The network is generic over the payload type `M`, so the protocol
//! crates (`raptee-brahms`, `raptee`) define their own message enums and
//! this crate stays protocol-agnostic.

#![warn(missing_docs)]

pub mod channel;
pub mod id;
pub mod network;
pub mod rate;

pub use channel::SecureChannel;
pub use id::{IdInterner, NodeId, NodeIdx};
pub use network::{Envelope, MessageMeter, Network, TrafficTap};
pub use rate::PushRateLimiter;
