//! The "limited pushes" defence.
//!
//! Brahms (and therefore RAPTEE) *assumes* a mechanism that limits the
//! message-sending rate of nodes — "for example, via computational
//! challenges like Merkle's puzzles, virtual currency, etc." — so that an
//! adversary controlling a fraction `f` of nodes can emit at most a
//! proportional share of the system's total pushes per round. This module
//! implements that mechanism as an explicit per-identity, per-round token
//! budget. The simulation charges every push against it; pushes beyond
//! the budget are rejected exactly as an unsolved puzzle would be.

use crate::id::NodeId;

/// Per-round push budget enforcement.
///
/// # Examples
///
/// ```
/// use raptee_net::{PushRateLimiter, NodeId};
/// let mut rl = PushRateLimiter::new(10, 2);
/// assert!(rl.try_push(NodeId(3)));
/// assert!(rl.try_push(NodeId(3)));
/// assert!(!rl.try_push(NodeId(3)), "budget exhausted");
/// rl.next_round();
/// assert!(rl.try_push(NodeId(3)), "budget refreshed");
/// ```
#[derive(Debug, Clone)]
pub struct PushRateLimiter {
    budget_per_round: u32,
    used: Vec<u32>,
    rejected_total: u64,
}

impl PushRateLimiter {
    /// Creates a limiter for `n` identities, each allowed
    /// `budget_per_round` pushes per round.
    pub fn new(n: usize, budget_per_round: u32) -> Self {
        Self {
            budget_per_round,
            used: vec![0; n],
            rejected_total: 0,
        }
    }

    /// The per-identity budget.
    pub fn budget(&self) -> u32 {
        self.budget_per_round
    }

    /// Attempts to charge one push to `sender`; returns `false` when the
    /// sender's budget for this round is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn try_push(&mut self, sender: NodeId) -> bool {
        let slot = &mut self.used[sender.index()];
        if *slot < self.budget_per_round {
            *slot += 1;
            true
        } else {
            self.rejected_total += 1;
            false
        }
    }

    /// Attempts to charge `n` pushes to `sender` at once; returns how
    /// many were granted (the first `granted` of the batch — the rest
    /// are rejected and counted, exactly as `n` sequential
    /// [`PushRateLimiter::try_push`] calls would).
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn try_push_n(&mut self, sender: NodeId, n: usize) -> usize {
        let slot = &mut self.used[sender.index()];
        let remaining = self.budget_per_round - *slot;
        let granted = remaining.min(u32::try_from(n).unwrap_or(u32::MAX));
        *slot += granted;
        self.rejected_total += n as u64 - u64::from(granted);
        granted as usize
    }

    /// Remaining budget for `sender` this round.
    pub fn remaining(&self, sender: NodeId) -> u32 {
        self.budget_per_round - self.used[sender.index()]
    }

    /// Resets all budgets for the next round.
    pub fn next_round(&mut self) {
        self.used.iter_mut().for_each(|u| *u = 0);
    }

    /// Total pushes rejected since construction (a cheap proxy for "how
    /// hard the adversary tried to flood").
    pub fn rejected_total(&self) -> u64 {
        self.rejected_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_enforced_per_identity() {
        let mut rl = PushRateLimiter::new(3, 1);
        assert!(rl.try_push(NodeId(0)));
        assert!(!rl.try_push(NodeId(0)));
        // Other identities unaffected.
        assert!(rl.try_push(NodeId(1)));
        assert_eq!(rl.remaining(NodeId(2)), 1);
    }

    #[test]
    fn round_reset() {
        let mut rl = PushRateLimiter::new(1, 2);
        assert!(rl.try_push(NodeId(0)));
        assert!(rl.try_push(NodeId(0)));
        assert_eq!(rl.remaining(NodeId(0)), 0);
        rl.next_round();
        assert_eq!(rl.remaining(NodeId(0)), 2);
    }

    #[test]
    fn rejection_counter() {
        let mut rl = PushRateLimiter::new(1, 0);
        assert!(!rl.try_push(NodeId(0)));
        assert!(!rl.try_push(NodeId(0)));
        assert_eq!(rl.rejected_total(), 2);
    }

    #[test]
    fn batched_charge_matches_sequential() {
        let mut a = PushRateLimiter::new(2, 3);
        let mut b = PushRateLimiter::new(2, 3);
        // 5 pushes against a budget of 3: 3 granted, 2 rejected.
        let granted = a.try_push_n(NodeId(0), 5);
        let seq = (0..5).filter(|_| b.try_push(NodeId(0))).count();
        assert_eq!(granted, seq);
        assert_eq!(a.remaining(NodeId(0)), b.remaining(NodeId(0)));
        assert_eq!(a.rejected_total(), b.rejected_total());
        // Empty batch and post-exhaustion batch.
        assert_eq!(a.try_push_n(NodeId(0), 0), 0);
        assert_eq!(a.try_push_n(NodeId(0), 4), 0);
        assert_eq!(a.try_push_n(NodeId(1), 2), 2);
    }

    #[test]
    fn adversary_share_is_proportional() {
        // With n identities and budget b, an adversary owning k identities
        // can push at most k*b per round — the core of the defence.
        let n = 100;
        let byz = 20;
        let budget = 3;
        let mut rl = PushRateLimiter::new(n, budget);
        let mut adversary_pushes = 0;
        for id in 0..byz {
            // The adversary pushes greedily from each identity.
            for _ in 0..1000 {
                if rl.try_push(NodeId(id)) {
                    adversary_pushes += 1;
                }
            }
        }
        assert_eq!(adversary_pushes, byz as u32 * budget);
    }
}
