//! Node identifiers.
//!
//! In the paper "each node is identified by a unique ID, chosen when the
//! node becomes active for the first time". The simulation uses dense
//! integer IDs so that node roles (honest / Byzantine / trusted) can be
//! assigned by index ranges and views can be stored compactly.

/// The unique identifier of a node.
///
/// `NodeId` is a transport-level address: it says nothing about the node's
/// role. Role assignment lives in the simulation layer so the protocol
/// code cannot accidentally "cheat" by inspecting an ID.
///
/// # Examples
///
/// ```
/// use raptee_net::NodeId;
/// let a = NodeId(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The ID as a dense index (for role tables and adjacency vectors).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Stable little-endian byte encoding (for hashing and channel
    /// key-derivation contexts).
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let id = NodeId::from(42u64);
        assert_eq!(u64::from(id), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_bytes(), 42u64.to_le_bytes());
    }

    #[test]
    fn ordering_follows_integer() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5), NodeId(5));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", NodeId(17)), "n17");
    }
}
