//! Node identifiers.
//!
//! In the paper "each node is identified by a unique ID, chosen when the
//! node becomes active for the first time". The simulation uses dense
//! integer IDs so that node roles (honest / Byzantine / trusted) can be
//! assigned by index ranges and views can be stored compactly.

/// The unique identifier of a node.
///
/// `NodeId` is a transport-level address: it says nothing about the node's
/// role. Role assignment lives in the simulation layer so the protocol
/// code cannot accidentally "cheat" by inspecting an ID.
///
/// # Examples
///
/// ```
/// use raptee_net::NodeId;
/// let a = NodeId(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The ID as a dense index (for role tables and adjacency vectors).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Stable little-endian byte encoding (for hashing and channel
    /// key-derivation contexts).
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A dense arena index for a node — the compact (u32) hot-path identity.
///
/// [`NodeId`] stays the wire/public identity (64-bit, sparse, chosen by
/// the node); `NodeIdx` is the simulation-internal arena slot assigned by
/// an [`IdInterner`] at the sim boundary. Arena-sized buffers (push runs,
/// counting-sort scratch, snapshot arenas) store `NodeIdx` and halve
/// their footprint, which is what keeps million-node scratch state in
/// cache-friendly territory.
///
/// # Examples
///
/// ```
/// use raptee_net::{IdInterner, NodeId, NodeIdx};
/// let mut interner = IdInterner::new();
/// let idx = interner.intern(NodeId(7));
/// assert_eq!(interner.resolve(idx), NodeId(7));
/// assert_eq!(idx, interner.intern(NodeId(7))); // stable
/// assert_eq!(NodeIdx(0), interner.intern(NodeId(7)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// The arena slot as a `usize` (for indexing role tables and SoA
    /// arenas).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The explicit `NodeId` ↔ `NodeIdx` mapping at the simulation boundary.
///
/// Interning is first-come-first-served: the k-th distinct `NodeId`
/// interned gets arena slot `NodeIdx(k)`. The simulation interns its
/// population in node order at construction, so a dense population
/// `NodeId(0..n)` maps to the *identity* (`NodeId(i)` ↔ `NodeIdx(i)`) —
/// which is what lets the hot path convert back with a cast instead of a
/// table lookup. The interner still keeps the real map so the boundary
/// stays correct if a future population ever uses sparse wire IDs.
#[derive(Debug, Clone, Default)]
pub struct IdInterner {
    forward: std::collections::HashMap<NodeId, NodeIdx>,
    reverse: Vec<NodeId>,
}

impl IdInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with capacity for `n` ids.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            forward: std::collections::HashMap::with_capacity(n),
            reverse: Vec::with_capacity(n),
        }
    }

    /// The arena index for `id`, assigning the next free slot on first
    /// sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct ids are interned.
    pub fn intern(&mut self, id: NodeId) -> NodeIdx {
        if let Some(&idx) = self.forward.get(&id) {
            return idx;
        }
        let idx = NodeIdx(
            u32::try_from(self.reverse.len())
                .expect("arena overflow: more than u32::MAX distinct node ids"),
        );
        self.forward.insert(id, idx);
        self.reverse.push(id);
        idx
    }

    /// The arena index for `id`, if already interned.
    pub fn lookup(&self, id: NodeId) -> Option<NodeIdx> {
        self.forward.get(&id).copied()
    }

    /// The wire identity stored in arena slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was never assigned.
    pub fn resolve(&self, idx: NodeIdx) -> NodeId {
        self.reverse[idx.index()]
    }

    /// Number of distinct ids interned.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// Whether the interned population maps every `NodeId(i)` to
    /// `NodeIdx(i)` — the dense-identity fast path the simulation
    /// asserts once at construction to justify cast-based conversion in
    /// the hot loop.
    pub fn is_identity(&self) -> bool {
        self.reverse
            .iter()
            .enumerate()
            .all(|(i, id)| id.0 == i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let id = NodeId::from(42u64);
        assert_eq!(u64::from(id), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_bytes(), 42u64.to_le_bytes());
    }

    #[test]
    fn ordering_follows_integer() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5), NodeId(5));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", NodeId(17)), "n17");
        assert_eq!(format!("{}", NodeIdx(17)), "#17");
    }

    #[test]
    fn interner_assigns_dense_slots_in_first_seen_order() {
        let mut interner = IdInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern(NodeId(100));
        let b = interner.intern(NodeId(7));
        assert_eq!(a, NodeIdx(0));
        assert_eq!(b, NodeIdx(1));
        assert_eq!(interner.intern(NodeId(100)), a);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), NodeId(100));
        assert_eq!(interner.resolve(b), NodeId(7));
        assert_eq!(interner.lookup(NodeId(7)), Some(b));
        assert_eq!(interner.lookup(NodeId(8)), None);
    }

    #[test]
    fn dense_population_interns_to_the_identity() {
        let mut interner = IdInterner::with_capacity(10);
        for i in 0..10u64 {
            interner.intern(NodeId(i));
        }
        assert!(interner.is_identity());
        // A sparse population does not.
        let mut sparse = IdInterner::new();
        sparse.intern(NodeId(5));
        assert!(!sparse.is_identity());
    }

    #[test]
    fn empty_interner_is_trivially_identity() {
        assert!(IdInterner::new().is_identity());
    }
}
