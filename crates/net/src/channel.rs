//! Encrypted point-to-point channels.
//!
//! Paper Section III-B: "Communications between any two nodes, including
//! trusted ones, are cyphered with symmetric encryption to protect against
//! an eavesdropping adversary." A [`SecureChannel`] binds a pairwise
//! session key (derived from a shared base key and the two endpoint IDs)
//! and encrypts byte payloads with ChaCha20, with a send-counter nonce so
//! no keystream is ever reused.
//!
//! The round-based simulation moves *typed* messages for speed; the secure
//! channel is exercised by the handshake path, the integration tests and
//! the `secure_channel` example to demonstrate that the byte-level story
//! is complete.

use crate::id::NodeId;
use raptee_crypto::key::SecretKey;

/// A directional encrypted channel between two nodes.
///
/// Each endpoint constructs the channel with the same `base` key and the
/// same (initiator, responder) pair, and both derive the same session key.
/// Nonces are `direction byte || 64-bit counter`, so the two directions
/// never collide.
///
/// # Examples
///
/// ```
/// use raptee_net::{SecureChannel, NodeId};
/// use raptee_crypto::SecretKey;
///
/// let base = SecretKey::from_seed(9);
/// let mut a = SecureChannel::new(&base, NodeId(1), NodeId(2));
/// let mut b = SecureChannel::new(&base, NodeId(1), NodeId(2));
/// let ct = a.seal_from_initiator(b"pull request");
/// assert_eq!(b.open_from_initiator(&ct), b"pull request");
/// ```
#[derive(Debug, Clone)]
pub struct SecureChannel {
    session: SecretKey,
    initiator_counter: u64,
    responder_counter: u64,
    opened_initiator: u64,
    opened_responder: u64,
}

impl SecureChannel {
    /// Derives the session key for the (initiator, responder) pair from a
    /// shared base key. The derivation is order-sensitive: the channel
    /// `(a, b)` differs from `(b, a)`.
    pub fn new(base: &SecretKey, initiator: NodeId, responder: NodeId) -> Self {
        let mut ctx = Vec::with_capacity(16);
        ctx.extend_from_slice(&initiator.to_bytes());
        ctx.extend_from_slice(&responder.to_bytes());
        Self {
            session: base.derive("raptee-channel", &ctx),
            initiator_counter: 0,
            responder_counter: 0,
            opened_initiator: 0,
            opened_responder: 0,
        }
    }

    /// Encrypts a payload travelling initiator → responder.
    pub fn seal_from_initiator(&mut self, plaintext: &[u8]) -> Vec<u8> {
        self.initiator_counter += 1;
        self.session
            .encrypt(&Self::nonce(0, self.initiator_counter), plaintext)
    }

    /// Encrypts a payload travelling responder → initiator.
    pub fn seal_from_responder(&mut self, plaintext: &[u8]) -> Vec<u8> {
        self.responder_counter += 1;
        self.session
            .encrypt(&Self::nonce(1, self.responder_counter), plaintext)
    }

    /// Decrypts the next initiator → responder payload. Ciphertexts must
    /// be opened in send order (the round-based network preserves order).
    pub fn open_from_initiator(&mut self, ciphertext: &[u8]) -> Vec<u8> {
        self.opened_initiator += 1;
        self.session
            .decrypt(&Self::nonce(0, self.opened_initiator), ciphertext)
    }

    /// Decrypts the next responder → initiator payload.
    pub fn open_from_responder(&mut self, ciphertext: &[u8]) -> Vec<u8> {
        self.opened_responder += 1;
        self.session
            .decrypt(&Self::nonce(1, self.opened_responder), ciphertext)
    }

    fn nonce(direction: u8, counter: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[0] = direction;
        n[4..].copy_from_slice(&counter.to_le_bytes());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let base = SecretKey::from_seed(1);
        (
            SecureChannel::new(&base, NodeId(10), NodeId(20)),
            SecureChannel::new(&base, NodeId(10), NodeId(20)),
        )
    }

    #[test]
    fn both_directions_roundtrip() {
        let (mut a, mut b) = pair();
        let c1 = a.seal_from_initiator(b"hello");
        assert_eq!(b.open_from_initiator(&c1), b"hello");
        let c2 = b.seal_from_responder(b"world");
        assert_eq!(a.open_from_responder(&c2), b"world");
    }

    #[test]
    fn sequence_of_messages_uses_fresh_nonces() {
        let (mut a, mut b) = pair();
        let c1 = a.seal_from_initiator(b"same text");
        let c2 = a.seal_from_initiator(b"same text");
        assert_ne!(c1, c2, "identical plaintexts must encrypt differently");
        assert_eq!(b.open_from_initiator(&c1), b"same text");
        assert_eq!(b.open_from_initiator(&c2), b"same text");
    }

    #[test]
    fn directions_do_not_collide() {
        let (mut a, _) = pair();
        let ci = a.seal_from_initiator(b"payload!");
        let mut a2 = pair().0;
        let cr = a2.seal_from_responder(b"payload!");
        assert_ne!(ci, cr);
    }

    #[test]
    fn wrong_base_key_garbles() {
        let base1 = SecretKey::from_seed(1);
        let base2 = SecretKey::from_seed(2);
        let mut tx = SecureChannel::new(&base1, NodeId(1), NodeId(2));
        let mut rx = SecureChannel::new(&base2, NodeId(1), NodeId(2));
        let ct = tx.seal_from_initiator(b"secret view");
        assert_ne!(rx.open_from_initiator(&ct), b"secret view");
    }

    #[test]
    fn channel_is_order_sensitive() {
        let base = SecretKey::from_seed(1);
        let mut ab = SecureChannel::new(&base, NodeId(1), NodeId(2));
        let mut ba = SecureChannel::new(&base, NodeId(2), NodeId(1));
        let ct = ab.seal_from_initiator(b"directional");
        assert_ne!(ba.open_from_initiator(&ct), b"directional");
    }

    #[test]
    fn ciphertext_length_equals_plaintext_length() {
        // Length preservation is what makes trusted and untrusted pulls
        // indistinguishable on the wire for equal view sizes.
        let (mut a, _) = pair();
        for len in [0usize, 1, 100, 1000] {
            let pt = vec![7u8; len];
            assert_eq!(a.seal_from_initiator(&pt).len(), len);
        }
    }
}
