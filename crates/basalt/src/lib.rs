//! BASALT hit-counter peer sampling.
//!
//! An implementation of the sampling core of **BASALT: A Rock-Solid
//! Foundation for Epidemic Consensus Algorithms in Very Large, Very Open
//! Networks** (Auvolat, Bromberg, Frey, Taïani — see PAPERS.md). Where
//! RAPTEE hardens Brahms with trusted execution environments, BASALT
//! resists the same balanced and targeted attacks *purely
//! algorithmically*:
//!
//! * each view slot owns a secret **seeded ranking function** and holds
//!   the observed ID ranking closest to its seed — an adversary cannot
//!   buy slots by repetition, only by genuinely ranking best, which its
//!   population share bounds;
//! * **hit counters** track how often the current sample was confirmed;
//!   exchange partners are chosen least-confirmed-first, so force-push
//!   floods are absorbed as counter increments instead of view churn;
//! * **periodic seed rotation** re-ranks a few slots per interval,
//!   defeating the slow adaptive bias an adversary could accumulate
//!   against long-lived ranking functions.
//!
//! The crate deliberately mirrors the shape of `raptee-brahms`: a
//! [`BasaltNode`] plans pushes and pulls, the caller owns delivery (the
//! `raptee-sim` engine interposes its rate limiter, message loss and
//! adversary exactly as it does for Brahms/RAPTEE), and a round
//! finalisation handles periodic upkeep. This is what lets the simulator
//! run `Protocol::Basalt` as a drop-in third protocol next to Brahms and
//! RAPTEE.
//!
//! Two optional hardenings extend the core for the **BASALT+TEE
//! hybrid** (`Protocol::BasaltTee` in `raptee-sim`):
//!
//! * the **waiting list** (`BasaltConfig::with_wlist`): hearsay IDs from
//!   pull answers are quarantined and only admitted after a rate-limited
//!   verification contact, so the adversary's free all-Byzantine pull
//!   answers cannot outrun its rate-limited pushes (BASALT's
//!   connect-before-integrate refinement);
//! * **trusted nodes** ([`BasaltNode::new_trusted`]): a fraction of
//!   nodes run inside simulated enclaves, provisioned with the RAPTEE
//!   group key through the same `raptee-tee` attestation flow; answers
//!   between mutually authenticated trusted peers bypass the waiting
//!   list ([`BasaltNode::record_pull_answer_trusted`]).

pub mod config;
pub mod node;
pub mod view;
pub mod wlist;

pub use config::BasaltConfig;
pub use node::{BasaltNode, BasaltPlan, BasaltRoundReport};
pub use view::{BasaltView, Slot};
pub use wlist::{WaitingList, WlistReport};
