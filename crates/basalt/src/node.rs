//! The BASALT node state machine.
//!
//! One protocol round, as driven by the caller (simulation engine, test
//! or example) — mirroring the Brahms driver so the two protocols slot
//! into the same engine:
//!
//! ```text
//! plan = node.plan_round()            // push targets + pull targets
//! ... deliver pushes (rate-limited) → receiver.record_push(sender)
//! ... answer pulls: responder.pull_answer()
//!                 → requester.record_pull_answer(responder, ids)
//! report = node.finish_round()        // hit-counter upkeep + seed rotation
//! ```
//!
//! Unlike Brahms there is no view *renewal*: every observed candidate is
//! immediately ranked against every slot and the view is, at all times,
//! the per-slot distance minimum. The round boundary only exists for
//! exchange pacing and periodic seed rotation.

use crate::config::BasaltConfig;
use crate::view::BasaltView;
use raptee_crypto::SecretKey;
use raptee_net::NodeId;
use raptee_util::bitset::IdSet;
use raptee_util::rng::Xoshiro256StarStar;

/// The send targets a node chose for the current round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BasaltPlan {
    /// Destinations of push messages (the node's own ID is the payload).
    pub push_targets: Vec<NodeId>,
    /// Destinations of pull (exchange) requests — the least-confirmed
    /// samples, probed first.
    pub pull_targets: Vec<NodeId>,
}

/// What happened when a round was finalised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasaltRoundReport {
    /// Slots whose ranking seed was rotated this round.
    pub rotated: usize,
    /// Rounds finalised so far (including this one).
    pub round: u64,
}

/// A BASALT node: ranked hit-counter view + deterministic RNG.
///
/// # Examples
///
/// ```
/// use raptee_basalt::{BasaltConfig, BasaltNode};
/// use raptee_net::NodeId;
///
/// let cfg = BasaltConfig::for_view(10, 30);
/// let bootstrap: Vec<NodeId> = (1..=10).map(NodeId).collect();
/// let mut node = BasaltNode::new(NodeId(0), cfg, &bootstrap, 42);
/// let plan = node.plan_round();
/// assert_eq!(plan.push_targets.len(), cfg.push_count);
/// assert!(!plan.pull_targets.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BasaltNode {
    id: NodeId,
    config: BasaltConfig,
    view: BasaltView,
    rng: Xoshiro256StarStar,
    rounds: u64,
    rotations: u64,
    /// Reusable buffers for the per-round distinct-view / probe-order
    /// computations — planning, answering and rotating allocate nothing
    /// in steady state.
    scratch_distinct: Vec<NodeId>,
    scratch_seen: IdSet,
    scratch_order: Vec<u32>,
}

impl BasaltNode {
    /// Creates a node whose slots are initially ranked over `bootstrap`.
    /// The per-slot ranking seeds are derived (HMAC-SHA-256) from a key
    /// expanded out of `seed` and the node identity, so they are
    /// node-local secrets the adversary cannot precompute against.
    pub fn new(id: NodeId, config: BasaltConfig, bootstrap: &[NodeId], seed: u64) -> Self {
        config.validate();
        let rng = Xoshiro256StarStar::seed_from_u64(seed);
        let ranking_key = SecretKey::from_seed(seed).derive("basalt-ranking-key", &id.to_bytes());
        let mut view = BasaltView::new(id, config.view_size, ranking_key);
        view.observe_all(bootstrap.iter().copied());
        Self {
            id,
            config,
            view,
            rng,
            rounds: 0,
            rotations: 0,
            scratch_distinct: Vec::new(),
            scratch_seen: IdSet::new(),
            scratch_order: Vec::new(),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol parameters.
    pub fn config(&self) -> &BasaltConfig {
        &self.config
    }

    /// Read access to the ranked view.
    pub fn view(&self) -> &BasaltView {
        &self.view
    }

    /// Rounds finalised so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total slots rotated so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Chooses this round's targets: `push_count` uniform draws from the
    /// distinct view (with replacement, like Brahms' `rand(V)`), and the
    /// `pull_count` least-confirmed samples as exchange partners.
    pub fn plan_round(&mut self) -> BasaltPlan {
        let mut plan = BasaltPlan::default();
        self.plan_round_into(&mut plan);
        plan
    }

    /// [`BasaltNode::plan_round`] into a caller-owned plan whose target
    /// vectors are cleared and refilled — the engine keeps one plan per
    /// actor alive across rounds, so planning allocates nothing. The RNG
    /// draw sequence is identical to `plan_round`.
    pub fn plan_round_into(&mut self, plan: &mut BasaltPlan) {
        plan.push_targets.clear();
        plan.pull_targets.clear();
        self.view
            .distinct_into(&mut self.scratch_distinct, &mut self.scratch_seen);
        if self.scratch_distinct.is_empty() {
            return;
        }
        for _ in 0..self.config.push_count {
            plan.push_targets
                .push(self.scratch_distinct[self.rng.index(self.scratch_distinct.len())]);
        }
        self.view.least_confirmed_into(
            self.config.pull_count,
            &mut self.scratch_order,
            &mut plan.pull_targets,
        );
    }

    /// Records an incoming push (the sender advertises one ID).
    pub fn record_push(&mut self, advertised: NodeId) {
        self.view.observe(advertised);
    }

    /// Answers a pull request: the distinct current view.
    pub fn pull_answer(&self) -> Vec<NodeId> {
        self.view.distinct_ids()
    }

    /// [`BasaltNode::pull_answer`] into a caller-owned buffer (cleared
    /// first) — the engine's pull loop reuses one reply buffer for the
    /// whole round.
    pub fn pull_answer_into(&mut self, out: &mut Vec<NodeId>) {
        self.view.distinct_into(out, &mut self.scratch_seen);
    }

    /// Records a pull answer: the responder itself (the contact proves it
    /// is reachable) plus every ID it returned, all ranked immediately.
    pub fn record_pull_answer(&mut self, responder: NodeId, ids: &[NodeId]) {
        self.view.observe(responder);
        self.view.observe_all(ids.iter().copied());
    }

    /// Finalises the round: when a rotation is due, rotates
    /// `rotation_count` seeds round-robin and re-ranks the surviving view
    /// into the fresh slots (so rotation re-ranks instead of blanking).
    pub fn finish_round(&mut self) -> BasaltRoundReport {
        self.rounds += 1;
        let mut rotated = 0;
        if self.config.rotation_interval > 0
            && self
                .rounds
                .is_multiple_of(self.config.rotation_interval as u64)
        {
            self.view
                .distinct_into(&mut self.scratch_distinct, &mut self.scratch_seen);
            let indices = self.view.rotate(self.config.rotation_count);
            rotated = indices.len();
            self.rotations += rotated as u64;
            self.view.observe_into(&indices, &self.scratch_distinct);
        }
        BasaltRoundReport {
            rotated,
            round: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    fn node(view: usize, rotation: usize) -> BasaltNode {
        BasaltNode::new(
            NodeId(0),
            BasaltConfig::for_view(view, rotation),
            &ids(1..40),
            7,
        )
    }

    #[test]
    fn bootstrap_fills_view() {
        let n = node(10, 0);
        assert_eq!(n.view().filled(), 10);
        assert!(n.view().invariants_hold());
    }

    #[test]
    fn empty_bootstrap_plans_nothing() {
        let mut n = BasaltNode::new(NodeId(0), BasaltConfig::for_view(10, 0), &[], 7);
        let plan = n.plan_round();
        assert!(plan.push_targets.is_empty());
        assert!(plan.pull_targets.is_empty());
    }

    #[test]
    fn plan_counts_match_config() {
        let mut n = node(10, 0);
        let plan = n.plan_round();
        assert_eq!(plan.push_targets.len(), 4); // ⌈0.4·10⌉
        assert!(plan.pull_targets.len() <= 4);
        assert!(!plan.pull_targets.is_empty());
        for t in plan.push_targets.iter().chain(&plan.pull_targets) {
            assert!(n.view().contains(*t));
        }
    }

    #[test]
    fn rotation_fires_on_schedule() {
        let mut n = node(10, 3);
        assert_eq!(n.finish_round().rotated, 0); // round 1
        assert_eq!(n.finish_round().rotated, 0); // round 2
        let report = n.finish_round(); // round 3
        assert_eq!(report.rotated, 1);
        assert_eq!(report.round, 3);
        assert_eq!(n.rotations(), 1);
        // Rotated slots are refilled from the surviving view.
        assert_eq!(n.view().filled(), 10);
    }

    #[test]
    fn rotation_disabled_with_zero_interval() {
        let mut n = node(10, 0);
        for _ in 0..50 {
            assert_eq!(n.finish_round().rotated, 0);
        }
        assert_eq!(n.rotations(), 0);
    }

    #[test]
    fn pull_answer_is_distinct_view() {
        let n = node(10, 0);
        let mut answer = n.pull_answer();
        answer.sort_unstable();
        let mut dedup = answer.clone();
        dedup.dedup();
        assert_eq!(answer, dedup, "answers never repeat IDs");
        assert!(!answer.is_empty());
    }

    #[test]
    fn exchange_feeds_both_directions() {
        let mut a = BasaltNode::new(NodeId(1), BasaltConfig::for_view(8, 0), &ids(10..20), 1);
        let b = BasaltNode::new(NodeId(2), BasaltConfig::for_view(8, 0), &ids(30..40), 2);
        a.record_pull_answer(b.id(), &b.pull_answer());
        // The responder and at least one of its IDs entered a's ranking.
        let seen = a.view().sample_ids();
        assert!(seen.iter().any(|id| id.0 == 2 || (30..40).contains(&id.0)));
        assert!(a.view().invariants_hold());
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut n = node(10, 5);
            n.record_push(NodeId(77));
            n.record_pull_answer(NodeId(88), &ids(100..120));
            for _ in 0..10 {
                n.finish_round();
            }
            (n.plan_round(), n.view().sample_ids())
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn force_push_flood_cannot_displace() {
        // The force-push concern: an adversary saturating its rate budget
        // at one victim. Repetition only moves hit counters.
        let mut n = node(10, 0);
        for _ in 0..10_000 {
            n.record_push(NodeId(999_999));
        }
        // ID 999999 may legitimately win the slots where it ranks closest
        // — once. The other 9999 pushes change nothing: the flooded view
        // is identical to one that saw the ID a single time.
        let mut n2 = node(10, 0);
        n2.record_push(NodeId(999_999));
        assert_eq!(n.view().sample_ids(), n2.view().sample_ids());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn view_of(stream: &[u64], seed: u64) -> BasaltView {
        let mut n = BasaltNode::new(NodeId(0), BasaltConfig::for_view(8, 0), &[], seed);
        for &id in stream {
            n.record_push(NodeId(id));
        }
        n.view().clone()
    }

    proptest! {
        /// Hit-counter monotonicity: replaying any prefix of an already
        /// observed stream never changes any slot's winner.
        #[test]
        fn replaying_a_prefix_never_changes_winners(
            stream in proptest::collection::vec(1u64..5000, 1..120),
            prefix_len in 0usize..120,
            seed in 0u64..10_000,
        ) {
            let mut n = BasaltNode::new(NodeId(0), BasaltConfig::for_view(8, 0), &[], seed);
            for &id in &stream {
                n.record_push(NodeId(id));
            }
            let winners = n.view().sample_ids();
            let hits_before: Vec<u64> = n.view().slots().iter().map(|s| s.hits()).collect();
            for &id in stream.iter().take(prefix_len) {
                n.record_push(NodeId(id));
            }
            prop_assert_eq!(n.view().sample_ids(), winners);
            // Hit counters may only grow.
            for (s, before) in n.view().slots().iter().zip(hits_before) {
                prop_assert!(s.hits() >= before);
            }
        }

        /// Permutation invariance: with a fixed seed, the final view does
        /// not depend on the order the stream arrived in.
        #[test]
        fn final_view_is_order_invariant(
            mut stream in proptest::collection::vec(1u64..5000, 1..120),
            seed in 0u64..10_000,
        ) {
            let forward = view_of(&stream, seed);
            stream.reverse();
            let backward = view_of(&stream, seed);
            prop_assert_eq!(forward.sample_ids(), backward.sample_ids());
        }

        /// Seed rotation resets exactly the rotated slots: they come back
        /// empty with a bumped generation, every other slot is untouched.
        #[test]
        fn rotation_resets_exactly_the_rotated_slots(
            stream in proptest::collection::vec(1u64..5000, 1..80),
            k in 1usize..8,
            seed in 0u64..10_000,
        ) {
            let mut view = view_of(&stream, seed);
            let before = view.slots().to_vec();
            let rotated = view.rotate(k);
            prop_assert_eq!(rotated.len(), k.min(8));
            for (i, slot) in view.slots().iter().enumerate() {
                if rotated.contains(&i) {
                    prop_assert_eq!(slot.sample(), None);
                    prop_assert_eq!(slot.hits(), 0);
                    prop_assert_eq!(slot.generation(), before[i].generation() + 1);
                } else {
                    prop_assert_eq!(slot, &before[i]);
                }
            }
            prop_assert!(view.invariants_hold());
        }
    }
}
