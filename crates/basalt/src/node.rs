//! The BASALT node state machine.
//!
//! One protocol round, as driven by the caller (simulation engine, test
//! or example) — mirroring the Brahms driver so the two protocols slot
//! into the same engine:
//!
//! ```text
//! plan = node.plan_round()            // push targets + pull targets
//! ... deliver pushes (rate-limited) → receiver.record_push(sender)
//! ... answer pulls: responder.pull_answer()
//!                 → requester.record_pull_answer(responder, ids)
//! report = node.finish_round()        // hit-counter upkeep + seed rotation
//! ```
//!
//! Unlike Brahms there is no view *renewal*: every observed candidate is
//! immediately ranked against every slot and the view is, at all times,
//! the per-slot distance minimum. The round boundary only exists for
//! exchange pacing and periodic seed rotation.

use crate::config::BasaltConfig;
use crate::view::BasaltView;
use crate::wlist::{WaitingList, WlistReport};
use raptee_crypto::SecretKey;
use raptee_net::NodeId;
use raptee_util::bitset::IdSet;
use raptee_util::rng::Xoshiro256StarStar;

/// The send targets a node chose for the current round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BasaltPlan {
    /// Destinations of push messages (the node's own ID is the payload).
    pub push_targets: Vec<NodeId>,
    /// Destinations of pull (exchange) requests — the least-confirmed
    /// samples, probed first.
    pub pull_targets: Vec<NodeId>,
}

/// What happened when a round was finalised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasaltRoundReport {
    /// Slots whose ranking seed was rotated this round.
    pub rotated: usize,
    /// Rounds finalised so far (including this one).
    pub round: u64,
}

/// A BASALT node: ranked hit-counter view + deterministic RNG.
///
/// # Examples
///
/// ```
/// use raptee_basalt::{BasaltConfig, BasaltNode};
/// use raptee_net::NodeId;
///
/// let cfg = BasaltConfig::for_view(10, 30);
/// let bootstrap: Vec<NodeId> = (1..=10).map(NodeId).collect();
/// let mut node = BasaltNode::new(NodeId(0), cfg, &bootstrap, 42);
/// let plan = node.plan_round();
/// assert_eq!(plan.push_targets.len(), cfg.push_count);
/// assert!(!plan.pull_targets.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BasaltNode {
    id: NodeId,
    config: BasaltConfig,
    view: BasaltView,
    rng: Xoshiro256StarStar,
    rounds: u64,
    rotations: u64,
    /// Whether this node runs inside an attested enclave (the
    /// BASALT+TEE hybrid). Trust changes nothing about ranking — it
    /// gates how *peers* treat this node's answers (the engine's
    /// trusted-exchange path) and which answers bypass the wlist.
    trusted: bool,
    /// The attested group key, present iff [`BasaltNode::is_trusted`].
    /// Held for API honesty (proof of provisioning); authentication in
    /// the simulation uses the engine's role shortcut, like the
    /// RAPTEE fast path.
    group_key: Option<SecretKey>,
    /// FIFO waiting list of hearsay candidates (enabled by
    /// `config.wlist_ttl > 0`); see [`WaitingList`].
    wlist: WaitingList,
    /// Reusable buffers for the per-round distinct-view / probe-order
    /// computations — planning, answering and rotating allocate nothing
    /// in steady state.
    scratch_distinct: Vec<NodeId>,
    scratch_seen: IdSet,
    scratch_order: Vec<u32>,
}

impl BasaltNode {
    /// Creates a node whose slots are initially ranked over `bootstrap`.
    /// The per-slot ranking seeds are derived (HMAC-SHA-256) from a key
    /// expanded out of `seed` and the node identity, so they are
    /// node-local secrets the adversary cannot precompute against.
    pub fn new(id: NodeId, config: BasaltConfig, bootstrap: &[NodeId], seed: u64) -> Self {
        Self::with_trust(id, config, bootstrap, seed, None)
    }

    /// Creates a *trusted* node of the BASALT+TEE hybrid, holding the
    /// attested `group_key` (see `raptee::provisioning` — the same
    /// enclave-load → remote-attestation flow RAPTEE trusted nodes use).
    pub fn new_trusted(
        id: NodeId,
        config: BasaltConfig,
        bootstrap: &[NodeId],
        seed: u64,
        group_key: SecretKey,
    ) -> Self {
        Self::with_trust(id, config, bootstrap, seed, Some(group_key))
    }

    fn with_trust(
        id: NodeId,
        config: BasaltConfig,
        bootstrap: &[NodeId],
        seed: u64,
        group_key: Option<SecretKey>,
    ) -> Self {
        config.validate();
        let rng = Xoshiro256StarStar::seed_from_u64(seed);
        let ranking_key = SecretKey::from_seed(seed).derive("basalt-ranking-key", &id.to_bytes());
        let mut view = BasaltView::new(id, config.view_size, ranking_key);
        view.observe_all(bootstrap.iter().copied());
        Self {
            id,
            config,
            view,
            rng,
            rounds: 0,
            rotations: 0,
            trusted: group_key.is_some(),
            group_key,
            wlist: WaitingList::new(config.wlist_ttl, config.wlist_probe),
            scratch_distinct: Vec::new(),
            scratch_seen: IdSet::new(),
            scratch_order: Vec::new(),
        }
    }

    /// Cold rejoin after a crash–restart: fresh node-local ranking
    /// seeds (derived from the new `seed`, so the adversary cannot have
    /// precomputed against them), the view re-ranked over a fresh
    /// bootstrap, and the waiting list emptied — only identity, trust
    /// and the lifetime counters survive. Peers re-learn the rejoiner
    /// by hearsay, so under the hybrid it passes through *their*
    /// waiting-list quarantine like any other unverified candidate.
    pub fn rejoin_cold(&mut self, bootstrap: &[NodeId], seed: u64) {
        self.rng = Xoshiro256StarStar::seed_from_u64(seed);
        let ranking_key =
            SecretKey::from_seed(seed).derive("basalt-ranking-key", &self.id.to_bytes());
        let mut view = BasaltView::new(self.id, self.config.view_size, ranking_key);
        view.observe_all(bootstrap.iter().copied());
        self.view = view;
        self.wlist.clear();
    }

    /// Warm rejoin after a crash–restart: the node resumes from its
    /// persisted ranked view, paying a staleness penalty — one forced
    /// seed rotation re-ranks the survivors under fresh slot seeds (the
    /// BASALT analogue of probe revalidation: stale entries must win
    /// their slots back), and the stale waiting list is discarded
    /// unverified. Returns the number of rotated slots.
    pub fn rejoin_warm(&mut self) -> usize {
        self.wlist.clear();
        self.view
            .distinct_into(&mut self.scratch_distinct, &mut self.scratch_seen);
        let indices = self.view.rotate(self.config.rotation_count);
        let rotated = indices.len();
        self.rotations += rotated as u64;
        self.view.observe_into(&indices, &self.scratch_distinct);
        rotated
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol parameters.
    pub fn config(&self) -> &BasaltConfig {
        &self.config
    }

    /// Read access to the ranked view.
    pub fn view(&self) -> &BasaltView {
        &self.view
    }

    /// Rounds finalised so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Whether this node runs inside an (attested, simulated) enclave.
    pub fn is_trusted(&self) -> bool {
        self.trusted
    }

    /// The attested group key (trusted nodes only).
    pub fn group_key(&self) -> Option<&SecretKey> {
        self.group_key.as_ref()
    }

    /// Hearsay candidates currently quarantined on the waiting list.
    pub fn wlist_len(&self) -> usize {
        self.wlist.len()
    }

    /// Total slots rotated so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Chooses this round's targets: `push_count` uniform draws from the
    /// distinct view (with replacement, like Brahms' `rand(V)`), and the
    /// `pull_count` least-confirmed samples as exchange partners.
    pub fn plan_round(&mut self) -> BasaltPlan {
        let mut plan = BasaltPlan::default();
        self.plan_round_into(&mut plan);
        plan
    }

    /// [`BasaltNode::plan_round`] into a caller-owned plan whose target
    /// vectors are cleared and refilled — the engine keeps one plan per
    /// actor alive across rounds, so planning allocates nothing. The RNG
    /// draw sequence is identical to `plan_round`.
    pub fn plan_round_into(&mut self, plan: &mut BasaltPlan) {
        plan.push_targets.clear();
        plan.pull_targets.clear();
        self.view
            .distinct_into(&mut self.scratch_distinct, &mut self.scratch_seen);
        if self.scratch_distinct.is_empty() {
            return;
        }
        for _ in 0..self.config.push_count {
            plan.push_targets
                .push(self.scratch_distinct[self.rng.index(self.scratch_distinct.len())]);
        }
        self.view.least_confirmed_into(
            self.config.pull_count,
            &mut self.scratch_order,
            &mut plan.pull_targets,
        );
    }

    /// Records an incoming push (the sender advertises one ID).
    pub fn record_push(&mut self, advertised: NodeId) {
        self.view.observe(advertised);
    }

    /// Answers a pull request: the distinct current view.
    pub fn pull_answer(&self) -> Vec<NodeId> {
        self.view.distinct_ids()
    }

    /// [`BasaltNode::pull_answer`] into a caller-owned buffer (cleared
    /// first) — the engine's pull loop reuses one reply buffer for the
    /// whole round.
    pub fn pull_answer_into(&mut self, out: &mut Vec<NodeId>) {
        self.view.distinct_into(out, &mut self.scratch_seen);
    }

    /// Records a pull answer: the responder itself (the contact proves it
    /// is reachable) is ranked immediately; the IDs it returned are
    /// *hearsay*. With the waiting list disabled (`wlist_ttl == 0`) they
    /// also rank immediately — the legacy behaviour. With it enabled,
    /// they are quarantined until [`BasaltNode::drain_wlist`] verifies
    /// them, at the rate-limited probe budget.
    pub fn record_pull_answer(&mut self, responder: NodeId, ids: &[NodeId]) {
        self.view.observe(responder);
        if self.config.wlist_ttl == 0 {
            self.view.observe_all(ids.iter().copied());
            return;
        }
        for &id in ids {
            self.wlist.enqueue(self.id, id, self.rounds);
        }
    }

    /// Records a pull answer from a mutually *authenticated trusted*
    /// peer (the BASALT+TEE hybrid): the responder runs attested code,
    /// so its answer is a genuine view and bypasses the waiting list —
    /// every ID ranks immediately.
    pub fn record_pull_answer_trusted(&mut self, responder: NodeId, ids: &[NodeId]) {
        self.view.observe(responder);
        self.view.observe_all(ids.iter().copied());
    }

    /// Quarantines `id`: evicts it from the ranked view (fresh slot
    /// seeds, see [`BasaltView::evict`]) and purges any pending hearsay
    /// entry from the waiting list, so a convicted peer neither occupies
    /// slots nor re-enters via queued hearsay. Returns the number of
    /// view slots reset.
    pub fn quarantine(&mut self, id: NodeId) -> usize {
        let reset = self.view.evict(id);
        self.wlist.purge(id);
        reset
    }

    /// Verifies waiting-list candidates (oldest first): up to
    /// `wlist_probe` *contact attempts* per round, where `is_alive`
    /// decides whether the connection succeeds. Reachable candidates are
    /// admitted to the ranking; unreachable ones are dropped (the probe
    /// is still spent). Entries whose TTL expired are discarded without
    /// consuming probe budget. No-op while the waiting list is disabled.
    pub fn drain_wlist(&mut self, is_alive: impl FnMut(NodeId) -> bool) -> WlistReport {
        let view = &mut self.view;
        self.wlist.drain(self.rounds, is_alive, |id| {
            view.observe(id);
        })
    }

    /// Finalises the round: when a rotation is due, rotates
    /// `rotation_count` seeds round-robin and re-ranks the surviving view
    /// into the fresh slots (so rotation re-ranks instead of blanking).
    pub fn finish_round(&mut self) -> BasaltRoundReport {
        self.rounds += 1;
        let mut rotated = 0;
        if self.config.rotation_interval > 0
            && self
                .rounds
                .is_multiple_of(self.config.rotation_interval as u64)
        {
            self.view
                .distinct_into(&mut self.scratch_distinct, &mut self.scratch_seen);
            let indices = self.view.rotate(self.config.rotation_count);
            rotated = indices.len();
            self.rotations += rotated as u64;
            self.view.observe_into(&indices, &self.scratch_distinct);
        }
        BasaltRoundReport {
            rotated,
            round: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    fn node(view: usize, rotation: usize) -> BasaltNode {
        BasaltNode::new(
            NodeId(0),
            BasaltConfig::for_view(view, rotation),
            &ids(1..40),
            7,
        )
    }

    #[test]
    fn bootstrap_fills_view() {
        let n = node(10, 0);
        assert_eq!(n.view().filled(), 10);
        assert!(n.view().invariants_hold());
    }

    #[test]
    fn empty_bootstrap_plans_nothing() {
        let mut n = BasaltNode::new(NodeId(0), BasaltConfig::for_view(10, 0), &[], 7);
        let plan = n.plan_round();
        assert!(plan.push_targets.is_empty());
        assert!(plan.pull_targets.is_empty());
    }

    #[test]
    fn plan_counts_match_config() {
        let mut n = node(10, 0);
        let plan = n.plan_round();
        assert_eq!(plan.push_targets.len(), 4); // ⌈0.4·10⌉
        assert!(plan.pull_targets.len() <= 4);
        assert!(!plan.pull_targets.is_empty());
        for t in plan.push_targets.iter().chain(&plan.pull_targets) {
            assert!(n.view().contains(*t));
        }
    }

    #[test]
    fn rotation_fires_on_schedule() {
        let mut n = node(10, 3);
        assert_eq!(n.finish_round().rotated, 0); // round 1
        assert_eq!(n.finish_round().rotated, 0); // round 2
        let report = n.finish_round(); // round 3
        assert_eq!(report.rotated, 1);
        assert_eq!(report.round, 3);
        assert_eq!(n.rotations(), 1);
        // Rotated slots are refilled from the surviving view.
        assert_eq!(n.view().filled(), 10);
    }

    #[test]
    fn rotation_disabled_with_zero_interval() {
        let mut n = node(10, 0);
        for _ in 0..50 {
            assert_eq!(n.finish_round().rotated, 0);
        }
        assert_eq!(n.rotations(), 0);
    }

    #[test]
    fn pull_answer_is_distinct_view() {
        let n = node(10, 0);
        let mut answer = n.pull_answer();
        answer.sort_unstable();
        let mut dedup = answer.clone();
        dedup.dedup();
        assert_eq!(answer, dedup, "answers never repeat IDs");
        assert!(!answer.is_empty());
    }

    #[test]
    fn exchange_feeds_both_directions() {
        let mut a = BasaltNode::new(NodeId(1), BasaltConfig::for_view(8, 0), &ids(10..20), 1);
        let b = BasaltNode::new(NodeId(2), BasaltConfig::for_view(8, 0), &ids(30..40), 2);
        a.record_pull_answer(b.id(), &b.pull_answer());
        // The responder and at least one of its IDs entered a's ranking.
        let seen = a.view().sample_ids();
        assert!(seen.iter().any(|id| id.0 == 2 || (30..40).contains(&id.0)));
        assert!(a.view().invariants_hold());
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut n = node(10, 5);
            n.record_push(NodeId(77));
            n.record_pull_answer(NodeId(88), &ids(100..120));
            for _ in 0..10 {
                n.finish_round();
            }
            (n.plan_round(), n.view().sample_ids())
        };
        assert_eq!(mk(), mk());
    }

    fn wlist_node(ttl: usize) -> BasaltNode {
        BasaltNode::new(
            NodeId(0),
            BasaltConfig::with_wlist(10, 0, ttl),
            &ids(1..40),
            7,
        )
    }

    #[test]
    fn untrusted_node_has_no_key() {
        let n = node(10, 0);
        assert!(!n.is_trusted());
        assert!(n.group_key().is_none());
    }

    #[test]
    fn trusted_node_holds_group_key() {
        let key = SecretKey::from_seed(99);
        let n = BasaltNode::new_trusted(
            NodeId(0),
            BasaltConfig::for_view(10, 0),
            &ids(1..40),
            7,
            key.clone(),
        );
        assert!(n.is_trusted());
        assert_eq!(n.group_key(), Some(&key));
        // Trust changes nothing about the node's own ranking behaviour.
        assert_eq!(n.view().sample_ids(), node(10, 0).view().sample_ids());
    }

    #[test]
    fn wlist_quarantines_hearsay_but_ranks_responder() {
        let mut n = wlist_node(5);
        let view_before = n.view().sample_ids();
        n.record_pull_answer(NodeId(500), &ids(600..620));
        // The responder (direct contact) was ranked immediately …
        assert!(n.view().slots().iter().any(|s| {
            s.sample() == Some(NodeId(500)) || view_before.contains(&s.sample().unwrap())
        }));
        // … the 20 hearsay IDs were not: they sit on the waiting list.
        assert_eq!(n.wlist_len(), 20);
        for id in ids(600..620) {
            assert!(!n.view().contains(id), "{id:?} must wait for verification");
        }
    }

    #[test]
    fn wlist_dedupes_and_skips_own_id() {
        let mut n = wlist_node(5);
        n.record_pull_answer(NodeId(500), &[NodeId(0), NodeId(7), NodeId(7)]);
        assert_eq!(n.wlist_len(), 1, "own ID skipped, duplicate collapsed");
        n.record_pull_answer(NodeId(501), &[NodeId(7)]);
        assert_eq!(n.wlist_len(), 1, "already-queued hearsay not re-queued");
    }

    #[test]
    fn drain_admits_at_probe_rate_and_expires_stale_entries() {
        let mut n = wlist_node(2);
        let probe = n.config().wlist_probe;
        n.record_pull_answer(NodeId(500), &ids(600..620));
        let r = n.drain_wlist(|_| true);
        assert_eq!(r.admitted, probe, "admission is probe-rate-limited");
        assert_eq!(n.wlist_len(), 20 - probe);
        for id in ids(600..(600 + probe as u64)) {
            assert!(n.view().contains(id) || !n.view().contains(id));
        }
        // Two finish_rounds later the TTL has lapsed: the rest expire
        // without consuming probes.
        n.finish_round();
        n.finish_round();
        let r = n.drain_wlist(|_| true);
        assert_eq!(r.admitted, 0);
        assert_eq!(r.dropped, 20 - probe);
        assert_eq!(n.wlist_len(), 0);
    }

    #[test]
    fn drain_drops_unreachable_candidates() {
        let mut n = wlist_node(5);
        n.record_pull_answer(NodeId(500), &ids(600..604));
        let r = n.drain_wlist(|id| id.0 % 2 == 0);
        assert_eq!(r.admitted + r.dropped, 4.min(n.config().wlist_probe));
        assert!(r.dropped >= 1, "odd IDs fail the verification contact");
        assert!(!n.view().contains(NodeId(601)));
    }

    #[test]
    fn drain_is_noop_without_wlist() {
        let mut n = node(10, 0);
        n.record_pull_answer(NodeId(500), &ids(600..620));
        // Legacy path: hearsay ranked immediately, nothing queued.
        assert_eq!(n.wlist_len(), 0);
        assert_eq!(n.drain_wlist(|_| true), WlistReport::default());
    }

    #[test]
    fn trusted_answers_bypass_the_wlist() {
        let mut n = wlist_node(5);
        n.record_pull_answer_trusted(NodeId(500), &ids(600..620));
        assert_eq!(n.wlist_len(), 0);
        // The hearsay ranked immediately: the view now holds whatever of
        // 500/600..620 ranks best alongside the bootstrap.
        let mut both = wlist_node(5);
        both.record_pull_answer(NodeId(500), &ids(600..620));
        both.drain_wlist(|_| true);
        // At minimum, a trusted answer can never leave the view *less*
        // informed than the quarantined path after one drain.
        assert!(n.view().filled() >= both.view().filled());
    }

    #[test]
    fn cold_rejoin_matches_a_freshly_bootstrapped_node() {
        let mut n = wlist_node(5);
        // Life before the crash: pushes, hearsay, rounds — all state the
        // cold restart must shed.
        for id in ids(200..260) {
            n.record_push(id);
        }
        n.record_pull_answer(NodeId(500), &ids(600..620));
        n.finish_round();
        assert!(n.wlist_len() > 0);

        let boot = ids(1000..1030);
        n.rejoin_cold(&boot, 31337);
        let mut fresh = BasaltNode::new(NodeId(0), *n.config(), &boot, 31337);
        assert_eq!(n.view().sample_ids(), fresh.view().sample_ids());
        assert_eq!(n.wlist_len(), 0, "stale quarantine discarded");
        // The reseeded RNG plans identically to the fresh node's.
        assert_eq!(n.plan_round(), fresh.plan_round());
    }

    #[test]
    fn warm_rejoin_forces_a_rotation_and_clears_the_wlist() {
        let mut n = wlist_node(5);
        n.record_pull_answer(NodeId(500), &ids(600..620));
        assert_eq!(n.wlist_len(), 20);
        let survivors = n.view().sample_ids();
        let rotated = n.rejoin_warm();
        assert_eq!(rotated, n.config().rotation_count, "staleness penalty");
        assert_eq!(n.rotations(), rotated as u64);
        assert_eq!(n.wlist_len(), 0, "unverified hearsay does not survive");
        // Rotation re-ranks rather than blanking: the view stays full and
        // every sample still comes from the pre-crash survivors.
        assert_eq!(n.view().filled(), n.config().view_size);
        for id in n.view().sample_ids() {
            assert!(survivors.contains(&id));
        }
    }

    #[test]
    fn force_push_flood_cannot_displace() {
        // The force-push concern: an adversary saturating its rate budget
        // at one victim. Repetition only moves hit counters.
        let mut n = node(10, 0);
        for _ in 0..10_000 {
            n.record_push(NodeId(999_999));
        }
        // ID 999999 may legitimately win the slots where it ranks closest
        // — once. The other 9999 pushes change nothing: the flooded view
        // is identical to one that saw the ID a single time.
        let mut n2 = node(10, 0);
        n2.record_push(NodeId(999_999));
        assert_eq!(n.view().sample_ids(), n2.view().sample_ids());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn view_of(stream: &[u64], seed: u64) -> BasaltView {
        let mut n = BasaltNode::new(NodeId(0), BasaltConfig::for_view(8, 0), &[], seed);
        for &id in stream {
            n.record_push(NodeId(id));
        }
        n.view().clone()
    }

    proptest! {
        /// Hit-counter monotonicity: replaying any prefix of an already
        /// observed stream never changes any slot's winner.
        #[test]
        fn replaying_a_prefix_never_changes_winners(
            stream in proptest::collection::vec(1u64..5000, 1..120),
            prefix_len in 0usize..120,
            seed in 0u64..10_000,
        ) {
            let mut n = BasaltNode::new(NodeId(0), BasaltConfig::for_view(8, 0), &[], seed);
            for &id in &stream {
                n.record_push(NodeId(id));
            }
            let winners = n.view().sample_ids();
            let hits_before: Vec<u64> = n.view().slots().iter().map(|s| s.hits()).collect();
            for &id in stream.iter().take(prefix_len) {
                n.record_push(NodeId(id));
            }
            prop_assert_eq!(n.view().sample_ids(), winners);
            // Hit counters may only grow.
            for (s, before) in n.view().slots().iter().zip(hits_before) {
                prop_assert!(s.hits() >= before);
            }
        }

        /// Permutation invariance: with a fixed seed, the final view does
        /// not depend on the order the stream arrived in.
        #[test]
        fn final_view_is_order_invariant(
            mut stream in proptest::collection::vec(1u64..5000, 1..120),
            seed in 0u64..10_000,
        ) {
            let forward = view_of(&stream, seed);
            stream.reverse();
            let backward = view_of(&stream, seed);
            prop_assert_eq!(forward.sample_ids(), backward.sample_ids());
        }

        /// Seed rotation resets exactly the rotated slots: they come back
        /// empty with a bumped generation, every other slot is untouched.
        #[test]
        fn rotation_resets_exactly_the_rotated_slots(
            stream in proptest::collection::vec(1u64..5000, 1..80),
            k in 1usize..8,
            seed in 0u64..10_000,
        ) {
            let mut view = view_of(&stream, seed);
            let before = view.slots().to_vec();
            let rotated = view.rotate(k);
            prop_assert_eq!(rotated.len(), k.min(8));
            for (i, slot) in view.slots().iter().enumerate() {
                if rotated.contains(&i) {
                    prop_assert_eq!(slot.sample(), None);
                    prop_assert_eq!(slot.hits(), 0);
                    prop_assert_eq!(slot.generation(), before[i].generation() + 1);
                } else {
                    prop_assert_eq!(slot, &before[i]);
                }
            }
            prop_assert!(view.invariants_hold());
        }
    }
}
