//! The waiting-list quarantine for hearsay candidates.
//!
//! BASALT's anti-poisoning refinement (PR 2) keeps IDs merely *heard
//! about* — pull-answer contents, as opposed to directly contacted
//! peers — out of the ranked view until a verification contact succeeds.
//! Candidates queue FIFO with a TTL; each round a bounded probe budget
//! verifies the oldest entries, admitting reachable candidates and
//! dropping unreachable or expired ones.
//!
//! The machinery is protocol-agnostic (a queue, a dedup index and a
//! probe loop), so it is exported as [`WaitingList`] and shared by the
//! BASALT+TEE hybrid ([`crate::BasaltNode`]) and the Honeybee
//! verifiable-random-walk sampler (`raptee-honeybee`), whose walk
//! endpoints pass through the same quarantine before admission.

use raptee_net::NodeId;
use raptee_util::bitset::{IdSet, DENSE_ID_LIMIT};
use std::collections::VecDeque;

/// Outcome of one waiting-list drain (see [`WaitingList::drain`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WlistReport {
    /// Hearsay candidates verified and admitted to the ranking.
    pub admitted: usize,
    /// Candidates dropped: TTL expired before verification, or the
    /// verification contact failed (the candidate was unreachable).
    pub dropped: usize,
}

/// One waiting-list entry: a hearsay candidate and the round at which
/// its TTL expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WlistEntry {
    id: NodeId,
    expires: u64,
}

/// A FIFO quarantine of hearsay candidates with TTL expiry, a dense
/// dedup index and a per-drain probe budget.
///
/// `ttl == 0` disables the list entirely: enqueues are rejected and
/// drains are no-ops, so the disabled configuration carries (and
/// mutates) no state.
#[derive(Debug, Clone, Default)]
pub struct WaitingList {
    ttl: usize,
    probe: usize,
    queue: VecDeque<WlistEntry>,
    members: IdSet,
}

impl WaitingList {
    /// A waiting list quarantining candidates for `ttl` rounds and
    /// probing up to `probe` of them per [`WaitingList::drain`]. A zero
    /// `ttl` disables the list.
    pub fn new(ttl: usize, probe: usize) -> Self {
        Self {
            ttl,
            probe,
            queue: VecDeque::new(),
            members: IdSet::new(),
        }
    }

    /// Whether the quarantine is active (`ttl > 0`).
    pub fn is_enabled(&self) -> bool {
        self.ttl > 0
    }

    /// Candidates currently quarantined.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the list holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues one hearsay candidate at round `now` (deduplicated;
    /// `own` — the holder's identity — is ignored). Returns whether the
    /// candidate was freshly queued.
    pub fn enqueue(&mut self, own: NodeId, id: NodeId, now: u64) -> bool {
        if !self.is_enabled() || id == own {
            return false;
        }
        let idx = id.0 as usize;
        let fresh = if idx < DENSE_ID_LIMIT {
            self.members.insert(idx)
        } else {
            !self.queue.iter().any(|e| e.id == id)
        };
        if !fresh {
            return false;
        }
        self.queue.push_back(WlistEntry {
            id,
            expires: now + self.ttl as u64,
        });
        true
    }

    /// Purges any pending entry for `id` (quarantine-time blacklisting:
    /// a convicted peer must not re-enter via queued hearsay). Returns
    /// whether an entry was removed.
    pub fn purge(&mut self, id: NodeId) -> bool {
        if !self.queue.iter().any(|e| e.id == id) {
            return false;
        }
        self.queue.retain(|e| e.id != id);
        self.forget_member(id);
        true
    }

    /// Discards every queued candidate (crash–restart paths: stale
    /// unverified hearsay does not survive a rejoin).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.members = IdSet::new();
    }

    /// Verifies queued candidates (oldest first) at round `now`: up to
    /// the probe budget of *contact attempts*, where `is_alive` decides
    /// whether the connection succeeds. Reachable candidates are passed
    /// to `admit`; unreachable ones are dropped (the probe is still
    /// spent). Entries whose TTL expired are discarded without
    /// consuming probe budget. No-op while the list is disabled.
    pub fn drain(
        &mut self,
        now: u64,
        mut is_alive: impl FnMut(NodeId) -> bool,
        mut admit: impl FnMut(NodeId),
    ) -> WlistReport {
        let mut report = WlistReport::default();
        if !self.is_enabled() {
            return report;
        }
        let mut probes = 0;
        while probes < self.probe {
            let Some(entry) = self.queue.front().copied() else {
                break;
            };
            self.queue.pop_front();
            self.forget_member(entry.id);
            if entry.expires <= now {
                report.dropped += 1;
                continue; // expired without a probe — free to discard
            }
            probes += 1;
            if is_alive(entry.id) {
                admit(entry.id);
                report.admitted += 1;
            } else {
                report.dropped += 1;
            }
        }
        report
    }

    fn forget_member(&mut self, id: NodeId) {
        let idx = id.0 as usize;
        if idx < DENSE_ID_LIMIT {
            self.members.remove(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_list_rejects_everything() {
        let mut w = WaitingList::new(0, 4);
        assert!(!w.is_enabled());
        assert!(!w.enqueue(NodeId(0), NodeId(1), 0));
        assert_eq!(w.len(), 0);
        assert_eq!(w.drain(0, |_| true, |_| panic!()), WlistReport::default());
    }

    #[test]
    fn enqueue_dedupes_and_skips_owner() {
        let mut w = WaitingList::new(5, 4);
        assert!(!w.enqueue(NodeId(7), NodeId(7), 0), "own ID skipped");
        assert!(w.enqueue(NodeId(7), NodeId(1), 0));
        assert!(!w.enqueue(NodeId(7), NodeId(1), 0), "duplicate collapsed");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn drain_respects_probe_budget_and_ttl() {
        let mut w = WaitingList::new(2, 3);
        for i in 1..=10u64 {
            w.enqueue(NodeId(0), NodeId(i), 0);
        }
        let mut admitted = Vec::new();
        let r = w.drain(0, |_| true, |id| admitted.push(id));
        assert_eq!(r.admitted, 3, "probe-rate-limited");
        assert_eq!(admitted, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(w.len(), 7);
        // Past the TTL the rest expire without consuming probes.
        let r = w.drain(2, |_| true, |_| panic!("expired entries never admit"));
        assert_eq!(r.dropped, 7);
        assert!(w.is_empty());
    }

    #[test]
    fn drain_drops_unreachable() {
        let mut w = WaitingList::new(5, 4);
        for i in 1..=4u64 {
            w.enqueue(NodeId(0), NodeId(i), 0);
        }
        let r = w.drain(0, |id| id.0 % 2 == 0, |_| {});
        assert_eq!(r.admitted, 2);
        assert_eq!(r.dropped, 2);
    }

    #[test]
    fn purge_removes_pending_entries() {
        let mut w = WaitingList::new(5, 4);
        w.enqueue(NodeId(0), NodeId(1), 0);
        w.enqueue(NodeId(0), NodeId(2), 0);
        assert!(w.purge(NodeId(1)));
        assert!(!w.purge(NodeId(1)));
        assert_eq!(w.len(), 1);
        // A purged ID may be re-queued afterwards (fresh hearsay).
        assert!(w.enqueue(NodeId(0), NodeId(1), 0));
    }

    #[test]
    fn clear_discards_everything() {
        let mut w = WaitingList::new(5, 4);
        for i in 1..=10u64 {
            w.enqueue(NodeId(0), NodeId(i), 0);
        }
        w.clear();
        assert!(w.is_empty());
        assert!(w.enqueue(NodeId(0), NodeId(1), 0), "dedup index cleared");
    }
}
