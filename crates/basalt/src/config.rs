//! BASALT protocol parameters.

/// Parameters of a BASALT node.
///
/// The defaults mirror the message budget of the Brahms/RAPTEE scenarios
/// so head-to-head comparisons spend the same bandwidth: `push_count` and
/// `pull_count` are both `round(0.4·v)` — exactly how `BrahmsConfig`
/// computes its `α·l1` pushes and `β·l1` pulls at equal view sizes (and
/// therefore the same per-identity rate-limiter budget).
///
/// # Examples
///
/// ```
/// use raptee_basalt::BasaltConfig;
/// let cfg = BasaltConfig::for_view(20, 30);
/// assert_eq!(cfg.view_size, 20);
/// assert_eq!(cfg.push_count, 8);
/// assert_eq!(cfg.rotation_count, 2);
/// cfg.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasaltConfig {
    /// Number of view slots `v` (each with its own ranking seed).
    pub view_size: usize,
    /// Rounds between seed rotations; `0` disables rotation.
    pub rotation_interval: usize,
    /// Slots rotated per rotation (round-robin over the view).
    pub rotation_count: usize,
    /// Push messages sent per round (own ID advertised to view peers).
    pub push_count: usize,
    /// Pull (exchange) requests sent per round, aimed at the
    /// least-confirmed samples.
    pub pull_count: usize,
}

impl BasaltConfig {
    /// Brahms-budget-parity configuration for a view of `view_size`
    /// slots, rotating `max(1, v/10)` seeds every `rotation_interval`
    /// rounds.
    pub fn for_view(view_size: usize, rotation_interval: usize) -> Self {
        let fanout = ((0.4 * view_size as f64).round() as usize).max(1);
        let cfg = Self {
            view_size,
            rotation_interval,
            rotation_count: (view_size / 10).max(1),
            push_count: fanout,
            pull_count: fanout,
        };
        cfg.validate();
        cfg
    }

    /// Checks parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics when any size is zero or `rotation_count` exceeds the view.
    pub fn validate(&self) {
        assert!(self.view_size > 0, "BASALT view size must be positive");
        assert!(
            self.rotation_count > 0 && self.rotation_count <= self.view_size,
            "rotation count must be in 1..=view_size"
        );
        assert!(self.push_count > 0, "push count must be positive");
        assert!(self.pull_count > 0, "pull count must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_view_matches_brahms_budget() {
        let cfg = BasaltConfig::for_view(16, 30);
        assert_eq!(cfg.push_count, 6); // round(0.4·16) = α·l1 at l1=16
        assert_eq!(cfg.pull_count, 6);
        assert_eq!(cfg.rotation_count, 1);
        assert_eq!(cfg.rotation_interval, 30);
    }

    #[test]
    fn tiny_views_keep_positive_fanout() {
        let cfg = BasaltConfig::for_view(1, 0);
        assert_eq!(cfg.push_count, 1);
        assert_eq!(cfg.rotation_count, 1);
    }

    #[test]
    #[should_panic(expected = "view size must be positive")]
    fn zero_view_rejected() {
        BasaltConfig::for_view(0, 10);
    }

    #[test]
    #[should_panic(expected = "rotation count")]
    fn oversized_rotation_rejected() {
        BasaltConfig {
            view_size: 4,
            rotation_interval: 10,
            rotation_count: 5,
            push_count: 2,
            pull_count: 2,
        }
        .validate();
    }
}
