//! BASALT protocol parameters.

/// Parameters of a BASALT node.
///
/// The defaults mirror the message budget of the Brahms/RAPTEE scenarios
/// so head-to-head comparisons spend the same bandwidth: `push_count` and
/// `pull_count` are both `round(0.4·v)` — exactly how `BrahmsConfig`
/// computes its `α·l1` pushes and `β·l1` pulls at equal view sizes (and
/// therefore the same per-identity rate-limiter budget).
///
/// # Examples
///
/// ```
/// use raptee_basalt::BasaltConfig;
/// let cfg = BasaltConfig::for_view(20, 30);
/// assert_eq!(cfg.view_size, 20);
/// assert_eq!(cfg.push_count, 8);
/// assert_eq!(cfg.rotation_count, 2);
/// cfg.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasaltConfig {
    /// Number of view slots `v` (each with its own ranking seed).
    pub view_size: usize,
    /// Rounds between seed rotations; `0` disables rotation.
    pub rotation_interval: usize,
    /// Slots rotated per rotation (round-robin over the view).
    pub rotation_count: usize,
    /// Push messages sent per round (own ID advertised to view peers).
    pub push_count: usize,
    /// Pull (exchange) requests sent per round, aimed at the
    /// least-confirmed samples.
    pub pull_count: usize,
    /// Rounds a *hearsay* candidate (an ID learned from someone else's
    /// pull answer rather than by direct contact) survives on the
    /// waiting list before being dropped unverified — BASALT's
    /// connect-before-integrate anti-poisoning refinement. `0` disables
    /// the waiting list entirely: hearsay ranks immediately (the legacy
    /// behaviour, kept bit-identical for existing scenarios).
    pub wlist_ttl: usize,
    /// Waiting-list candidates verified (contacted) and admitted to the
    /// ranking per round when the list is enabled. Defaults to
    /// `push_count`, so hearsay admission is rate-limited to exactly the
    /// direct-push budget — the adversary's free all-Byzantine pull
    /// answers stop outrunning its rate-limited pushes.
    pub wlist_probe: usize,
}

impl BasaltConfig {
    /// Brahms-budget-parity configuration for a view of `view_size`
    /// slots, rotating `max(1, v/10)` seeds every `rotation_interval`
    /// rounds.
    pub fn for_view(view_size: usize, rotation_interval: usize) -> Self {
        let fanout = ((0.4 * view_size as f64).round() as usize).max(1);
        let cfg = Self {
            view_size,
            rotation_interval,
            rotation_count: (view_size / 10).max(1),
            push_count: fanout,
            pull_count: fanout,
            wlist_ttl: 0,
            wlist_probe: fanout,
        };
        cfg.validate();
        cfg
    }

    /// [`BasaltConfig::for_view`] with the waiting-list refinement
    /// enabled: hearsay candidates are quarantined for up to `wlist_ttl`
    /// rounds and admitted at the push-budget rate.
    ///
    /// # Panics
    ///
    /// Panics when `wlist_ttl` is zero (use [`BasaltConfig::for_view`]
    /// for the unhardened protocol).
    pub fn with_wlist(view_size: usize, rotation_interval: usize, wlist_ttl: usize) -> Self {
        assert!(wlist_ttl > 0, "wlist TTL must be positive to enable it");
        let cfg = Self {
            wlist_ttl,
            ..Self::for_view(view_size, rotation_interval)
        };
        cfg.validate();
        cfg
    }

    /// Checks parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics when any size is zero or `rotation_count` exceeds the view.
    pub fn validate(&self) {
        assert!(self.view_size > 0, "BASALT view size must be positive");
        assert!(
            self.rotation_count > 0 && self.rotation_count <= self.view_size,
            "rotation count must be in 1..=view_size"
        );
        assert!(self.push_count > 0, "push count must be positive");
        assert!(self.pull_count > 0, "pull count must be positive");
        assert!(
            self.wlist_ttl == 0 || self.wlist_probe > 0,
            "an enabled wlist needs a positive probe budget"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_view_matches_brahms_budget() {
        let cfg = BasaltConfig::for_view(16, 30);
        assert_eq!(cfg.push_count, 6); // round(0.4·16) = α·l1 at l1=16
        assert_eq!(cfg.pull_count, 6);
        assert_eq!(cfg.rotation_count, 1);
        assert_eq!(cfg.rotation_interval, 30);
    }

    #[test]
    fn tiny_views_keep_positive_fanout() {
        let cfg = BasaltConfig::for_view(1, 0);
        assert_eq!(cfg.push_count, 1);
        assert_eq!(cfg.rotation_count, 1);
    }

    #[test]
    #[should_panic(expected = "view size must be positive")]
    fn zero_view_rejected() {
        BasaltConfig::for_view(0, 10);
    }

    #[test]
    #[should_panic(expected = "rotation count")]
    fn oversized_rotation_rejected() {
        BasaltConfig {
            rotation_count: 5,
            ..BasaltConfig::for_view(4, 10)
        }
        .validate();
    }

    #[test]
    fn wlist_defaults_off_and_builder_enables() {
        let plain = BasaltConfig::for_view(16, 30);
        assert_eq!(plain.wlist_ttl, 0, "legacy configs keep the wlist off");
        let hardened = BasaltConfig::with_wlist(16, 30, 8);
        assert_eq!(hardened.wlist_ttl, 8);
        assert_eq!(
            hardened.wlist_probe, hardened.push_count,
            "hearsay admission is rate-limited to the push budget"
        );
        assert_eq!(
            BasaltConfig {
                wlist_ttl: 0,
                ..hardened
            },
            plain,
            "with_wlist only flips the TTL"
        );
    }

    #[test]
    #[should_panic(expected = "wlist TTL must be positive")]
    fn zero_ttl_builder_rejected() {
        BasaltConfig::with_wlist(16, 30, 0);
    }

    #[test]
    #[should_panic(expected = "probe budget")]
    fn enabled_wlist_without_probe_rejected() {
        BasaltConfig {
            wlist_ttl: 5,
            wlist_probe: 0,
            ..BasaltConfig::for_view(8, 0)
        }
        .validate();
    }
}
