//! The BASALT ranked view: per-slot seeded ranking functions with hit
//! counters.
//!
//! Each of the `v` view slots owns a secret *ranking seed* and holds the
//! candidate ID that ranks **closest to that seed** among every ID the
//! node has observed so far (pushes, pull answers, bootstrap). Closeness
//! is measured by a keyed hash distance, so:
//!
//! * the adversary cannot predict which of its IDs rank well for a given
//!   node (seeds are derived from node-local secrets, never revealed);
//! * repeating an ID buys nothing — a slot is replaced only when a
//!   candidate ranks *strictly closer* than the current sample, and a
//!   re-observed sample merely increments the slot's **hit counter**;
//! * the sampling decision is order-invariant: the slot converges to the
//!   distance-minimising ID of the observed set however the stream is
//!   interleaved.
//!
//! Hit counters drive exchange-partner selection (probe the *least
//! confirmed* samples first) and make force-push floods visible without
//! letting them displace anything. Periodic [`BasaltView::rotate`]
//! replaces the seeds of a few slots round-robin, which re-ranks the
//! whole candidate pool and defeats the slow adaptive bias an adversary
//! could otherwise accumulate against long-lived seeds.

use raptee_crypto::SecretKey;
use raptee_net::NodeId;
use raptee_util::bitset::{IdSet, DENSE_ID_LIMIT};
use raptee_util::rng::mix64;
use std::cell::RefCell;

/// One view slot: a ranking seed plus the closest candidate seen so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    seed: u64,
    generation: u32,
    sample: Option<NodeId>,
    distance: u64,
    hits: u64,
}

impl Slot {
    fn new(seed: u64, generation: u32) -> Self {
        Self {
            seed,
            generation,
            sample: None,
            distance: u64::MAX,
            hits: 0,
        }
    }

    /// The keyed distance between `id` and this slot's seed (smaller is
    /// closer): the same SplitMix64-finalizer family the Brahms sampler
    /// uses for its min-wise permutations.
    #[inline]
    pub fn distance_to(&self, id: NodeId) -> u64 {
        mix64(self.seed ^ mix64(id.0.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Considers one candidate: replaces the sample when strictly closer
    /// to the seed, counts a hit when the candidate *is* the sample.
    /// Returns `true` on replacement.
    fn consider(&mut self, id: NodeId) -> bool {
        if self.sample == Some(id) {
            self.hits = self.hits.saturating_add(1);
            return false;
        }
        let d = self.distance_to(id);
        if d < self.distance {
            self.sample = Some(id);
            self.distance = d;
            self.hits = 1;
            return true;
        }
        false
    }

    /// The current sample, if any candidate was observed.
    pub fn sample(&self) -> Option<NodeId> {
        self.sample
    }

    /// How often the current sample has been (re-)observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// How many times this slot's seed has been rotated.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// The full ranked view: `v` slots plus the rotation cursor.
///
/// # Examples
///
/// ```
/// use raptee_basalt::BasaltView;
/// use raptee_crypto::SecretKey;
/// use raptee_net::NodeId;
///
/// let mut v = BasaltView::new(NodeId(0), 8, SecretKey::from_seed(7));
/// v.observe_all((1..100).map(NodeId));
/// assert_eq!(v.sample_ids().len(), 8);
/// // Flooding one ID cannot displace anything.
/// let before = v.sample_ids();
/// for _ in 0..1000 {
///     v.observe(NodeId(50));
/// }
/// assert_eq!(v.sample_ids(), before);
/// ```
#[derive(Debug, Clone)]
pub struct BasaltView {
    owner: NodeId,
    ranking_key: SecretKey,
    slots: Vec<Slot>,
    rotation_cursor: usize,
    /// Lazily rebuilt O(1) membership index over the sampled IDs.
    /// Mutators that can change a slot's sample mark it stale; the next
    /// [`BasaltView::contains`] rebuilds it in one O(v) pass and every
    /// further query is O(1). After convergence (replacements become
    /// rare) membership bursts amortise to constant time.
    members: RefCell<MemberCache>,
}

/// Views with at most this many slots skip both the membership cache
/// and the dense dedup scratch: a scan over ≤ 64 slots is faster than
/// maintaining an [`IdSet`] whose backing words grow with the largest
/// sampled ID — per-node memory that forbids very large populations.
/// Matches the gossip view's linear-scan gate.
pub const LINEAR_SCAN_SLOTS: usize = 64;

#[derive(Debug, Clone)]
struct MemberCache {
    set: IdSet,
    stale: bool,
}

impl Default for MemberCache {
    fn default() -> Self {
        Self {
            set: IdSet::new(),
            stale: true,
        }
    }
}

/// Equality is defined by owner, key, slots and rotation cursor; the
/// membership cache is derived state.
impl PartialEq for BasaltView {
    fn eq(&self, other: &Self) -> bool {
        self.owner == other.owner
            && self.ranking_key == other.ranking_key
            && self.slots == other.slots
            && self.rotation_cursor == other.rotation_cursor
    }
}

impl Eq for BasaltView {}

impl BasaltView {
    /// Creates an empty view of `slots` ranking slots whose seeds are
    /// derived from `ranking_key` (HMAC-SHA-256 through
    /// [`SecretKey::derive`], so seeds are unpredictable to anyone not
    /// holding the key).
    ///
    /// # Panics
    ///
    /// Panics when `slots` is zero.
    pub fn new(owner: NodeId, slots: usize, ranking_key: SecretKey) -> Self {
        assert!(slots > 0, "BASALT view needs at least one slot");
        let mut view = Self {
            owner,
            ranking_key,
            slots: Vec::with_capacity(slots),
            rotation_cursor: 0,
            members: RefCell::new(MemberCache::default()),
        };
        for i in 0..slots {
            let seed = view.derive_seed(i, 0);
            view.slots.push(Slot::new(seed, 0));
        }
        view
    }

    /// Derives the ranking seed for `(slot, generation)` from the secret
    /// ranking key.
    fn derive_seed(&self, slot: usize, generation: u32) -> u64 {
        let mut ctx = [0u8; 20];
        ctx[..8].copy_from_slice(&self.owner.to_bytes());
        ctx[8..16].copy_from_slice(&(slot as u64).to_le_bytes());
        ctx[16..].copy_from_slice(&generation.to_le_bytes());
        let derived = self.ranking_key.derive("basalt-slot-seed", &ctx);
        u64::from_le_bytes(derived.as_bytes()[..8].try_into().expect("8 bytes"))
    }

    /// The view owner (whose own ID is never sampled).
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Number of slots `v`.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently holding a sample.
    pub fn filled(&self) -> usize {
        self.slots.iter().filter(|s| s.sample.is_some()).count()
    }

    /// True when no slot holds a sample yet.
    pub fn is_empty(&self) -> bool {
        self.filled() == 0
    }

    /// Read access to the slots (ranking seeds stay private).
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Feeds one candidate to every slot. Returns how many slots
    /// replaced their sample.
    pub fn observe(&mut self, id: NodeId) -> usize {
        if id == self.owner {
            return 0;
        }
        let replaced: usize = self
            .slots
            .iter_mut()
            .map(|s| usize::from(s.consider(id)))
            .sum();
        if replaced > 0 {
            self.members.get_mut().stale = true;
        }
        replaced
    }

    /// Feeds a batch of candidates.
    pub fn observe_all<I: IntoIterator<Item = NodeId>>(&mut self, ids: I) {
        for id in ids {
            self.observe(id);
        }
    }

    /// Feeds candidates to the given slots only — used to refill freshly
    /// rotated slots from the surviving view without touching the hit
    /// counters of the others.
    pub fn observe_into(&mut self, slots: &[usize], ids: &[NodeId]) {
        for &i in slots {
            if let Some(slot) = self.slots.get_mut(i) {
                for &id in ids {
                    if id != self.owner {
                        slot.consider(id);
                    }
                }
            }
        }
        self.members.get_mut().stale = true;
    }

    /// The per-slot samples in slot order (a multiset: distinct slots can
    /// converge to the same ID, though rarely in large populations).
    pub fn sample_ids(&self) -> Vec<NodeId> {
        self.sample_iter().collect()
    }

    /// Iterator form of [`BasaltView::sample_ids`] (no allocation — used
    /// by the per-round metric bookkeeping).
    pub fn sample_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots.iter().filter_map(Slot::sample)
    }

    /// The distinct sampled IDs, in first-slot order.
    pub fn distinct_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.slots.len());
        let mut seen = IdSet::new();
        self.distinct_into(&mut out, &mut seen);
        out
    }

    /// [`BasaltView::distinct_ids`] into caller-owned buffers: `out` is
    /// cleared and refilled in first-slot order, `seen` is the dedup
    /// scratch. O(v) instead of the O(v²) scan — the planning, answer
    /// and rotation paths of a node reuse one scratch pair.
    pub fn distinct_into(&self, out: &mut Vec<NodeId>, seen: &mut IdSet) {
        out.clear();
        seen.clear();
        // Small views dedup by scanning `out` (≤ v entries) so `seen`
        // never grows — see [`LINEAR_SCAN_SLOTS`].
        let scan = self.slots.len() <= LINEAR_SCAN_SLOTS;
        for s in &self.slots {
            if let Some(id) = s.sample {
                let idx = id.0 as usize;
                let fresh = if !scan && idx < DENSE_ID_LIMIT {
                    seen.insert(idx)
                } else {
                    !out.contains(&id)
                };
                if fresh {
                    out.push(id);
                }
            }
        }
    }

    /// Whether any slot currently samples `id` — amortised O(1) through
    /// the lazily rebuilt membership cache for large views (small views
    /// and IDs beyond the dense range fall back to a slot scan; see
    /// [`LINEAR_SCAN_SLOTS`]).
    pub fn contains(&self, id: NodeId) -> bool {
        let idx = id.0 as usize;
        if idx >= DENSE_ID_LIMIT || self.slots.len() <= LINEAR_SCAN_SLOTS {
            return self.slots.iter().any(|s| s.sample == Some(id));
        }
        let mut cache = self.members.borrow_mut();
        if cache.stale {
            cache.set.clear();
            for s in &self.slots {
                if let Some(sampled) = s.sample {
                    let i = sampled.0 as usize;
                    if i < DENSE_ID_LIMIT {
                        cache.set.insert(i);
                    }
                }
            }
            cache.stale = false;
        }
        cache.set.contains(idx)
    }

    /// Fraction of filled slots whose sample satisfies `pred` (the
    /// Byzantine in-view share of the experiment metrics).
    pub fn fraction_matching<F: Fn(NodeId) -> bool>(&self, pred: F) -> f64 {
        let filled: Vec<NodeId> = self.sample_ids();
        if filled.is_empty() {
            return 0.0;
        }
        filled.iter().filter(|&&id| pred(id)).count() as f64 / filled.len() as f64
    }

    /// Up to `k` distinct sampled IDs ordered by ascending hit counter
    /// (ties by slot index): the least-confirmed samples, probed first by
    /// the exchange loop so stale or fabricated entries are validated or
    /// refreshed soonest.
    pub fn least_confirmed(&self, k: usize) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut out = Vec::with_capacity(k);
        self.least_confirmed_into(k, &mut order, &mut out);
        out
    }

    /// [`BasaltView::least_confirmed`] into caller-owned buffers
    /// (`order` is index scratch, `out` is cleared and refilled) so the
    /// per-round exchange planning allocates nothing.
    pub fn least_confirmed_into(&self, k: usize, order: &mut Vec<u32>, out: &mut Vec<NodeId>) {
        order.clear();
        order.extend(
            (0..self.slots.len() as u32).filter(|&i| self.slots[i as usize].sample.is_some()),
        );
        order.sort_by_key(|&i| (self.slots[i as usize].hits, i));
        out.clear();
        for &i in order.iter() {
            let id = self.slots[i as usize]
                .sample
                .expect("filtered to filled slots");
            if !out.contains(&id) {
                out.push(id);
                if out.len() == k {
                    break;
                }
            }
        }
    }

    /// Rotates the next `k` slots (round-robin over the view): each gets
    /// a freshly derived seed, an empty sample and a zeroed hit counter.
    /// Every other slot is left bit-identical. Returns the rotated slot
    /// indices.
    pub fn rotate(&mut self, k: usize) -> Vec<usize> {
        let v = self.slots.len();
        let k = k.min(v);
        let mut rotated = Vec::with_capacity(k);
        for _ in 0..k {
            let i = self.rotation_cursor;
            self.rotation_cursor = (self.rotation_cursor + 1) % v;
            let generation = self.slots[i].generation + 1;
            let seed = self.derive_seed(i, generation);
            self.slots[i] = Slot::new(seed, generation);
            rotated.push(i);
        }
        if k > 0 {
            self.members.get_mut().stale = true;
        }
        rotated
    }

    /// Evicts `id` from the view: every slot currently sampling it is
    /// reset with a freshly derived seed (new generation, empty sample,
    /// zeroed hit counter), exactly like a [`BasaltView::rotate`] of
    /// those slots — so the evicted ID only wins a slot back if it is
    /// re-observed *and* ranks closest under the fresh seed. All other
    /// slots stay bit-identical. Returns the number of slots reset.
    pub fn evict(&mut self, id: NodeId) -> usize {
        let mut reset = 0;
        for i in 0..self.slots.len() {
            if self.slots[i].sample == Some(id) {
                let generation = self.slots[i].generation + 1;
                let seed = self.derive_seed(i, generation);
                self.slots[i] = Slot::new(seed, generation);
                reset += 1;
            }
        }
        if reset > 0 {
            self.members.get_mut().stale = true;
        }
        reset
    }

    /// Checks the structural invariants: the owner is never sampled and
    /// every stored distance matches its sample.
    pub fn invariants_hold(&self) -> bool {
        self.slots.iter().all(|s| match s.sample {
            None => s.distance == u64::MAX && s.hits == 0,
            Some(id) => id != self.owner && s.distance_to(id) == s.distance && s.hits >= 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(owner: u64, slots: usize) -> BasaltView {
        BasaltView::new(NodeId(owner), slots, SecretKey::from_seed(42))
    }

    #[test]
    fn slots_converge_to_distance_minimum() {
        let mut v = view(0, 4);
        v.observe_all((1..200).map(NodeId));
        for s in v.slots() {
            let argmin = (1..200)
                .map(NodeId)
                .min_by_key(|&id| s.distance_to(id))
                .unwrap();
            assert_eq!(s.sample(), Some(argmin));
        }
        assert!(v.invariants_hold());
    }

    #[test]
    fn owner_is_never_sampled() {
        let mut v = view(7, 8);
        for _ in 0..100 {
            v.observe(NodeId(7));
        }
        assert!(v.is_empty());
        v.observe(NodeId(1));
        assert!(!v.contains(NodeId(7)));
        assert!(v.invariants_hold());
    }

    #[test]
    fn repetition_only_counts_hits() {
        let mut v = view(0, 4);
        v.observe_all((1..50).map(NodeId));
        let before = v.sample_ids();
        let winner = before[0];
        let hits_before = v.slots()[0].hits();
        for _ in 0..1000 {
            v.observe(winner);
        }
        assert_eq!(v.sample_ids(), before, "repetition must not displace");
        assert!(
            v.slots()[0].hits() > hits_before,
            "re-observing the sample must count hits"
        );
    }

    #[test]
    fn observation_order_is_irrelevant() {
        let ids: Vec<NodeId> = (1..100).map(NodeId).collect();
        let mut forward = view(0, 8);
        forward.observe_all(ids.iter().copied());
        let mut backward = view(0, 8);
        backward.observe_all(ids.iter().rev().copied());
        assert_eq!(forward.sample_ids(), backward.sample_ids());
    }

    #[test]
    fn distinct_ids_deduplicate() {
        let mut v = view(0, 16);
        // Two candidates only: slots collapse onto them.
        v.observe(NodeId(1));
        v.observe(NodeId(2));
        assert_eq!(v.sample_ids().len(), 16);
        let distinct = v.distinct_ids();
        assert!(distinct.len() <= 2);
        assert!(distinct.contains(&NodeId(1)) || distinct.contains(&NodeId(2)));
    }

    #[test]
    fn least_confirmed_orders_by_hits() {
        let mut v = view(0, 3);
        v.observe_all((1..100).map(NodeId));
        let samples = v.sample_ids();
        // Confirm slot 0's sample many times.
        for _ in 0..10 {
            v.observe(samples[0]);
        }
        let probes = v.least_confirmed(3);
        assert_eq!(
            probes.last(),
            Some(&samples[0]),
            "the most-confirmed sample is probed last"
        );
        assert!(v.least_confirmed(1).len() == 1);
    }

    #[test]
    fn rotation_resets_round_robin() {
        let mut v = view(0, 4);
        v.observe_all((1..100).map(NodeId));
        let before = v.slots().to_vec();
        let rotated = v.rotate(2);
        assert_eq!(rotated, vec![0, 1]);
        for (i, slot) in v.slots().iter().enumerate() {
            if rotated.contains(&i) {
                assert_eq!(slot.sample(), None);
                assert_eq!(slot.hits(), 0);
                assert_eq!(slot.generation(), before[i].generation() + 1);
            } else {
                assert_eq!(slot, &before[i], "untouched slots stay bit-identical");
            }
        }
        // The cursor wraps.
        assert_eq!(v.rotate(3), vec![2, 3, 0]);
    }

    #[test]
    fn rotation_changes_the_seed() {
        let mut v = view(0, 2);
        v.observe_all((1..100).map(NodeId));
        let old = v.slots()[0].sample();
        v.rotate(1);
        v.observe_all((1..100).map(NodeId));
        // With a fresh seed over 99 candidates, the new argmin is almost
        // surely different; at minimum the slot must be filled again.
        assert!(v.slots()[0].sample().is_some());
        let _ = old; // the re-ranking may or may not pick the same ID
        assert!(v.invariants_hold());
    }

    #[test]
    fn observe_into_fills_only_target_slots() {
        let mut v = view(0, 4);
        v.observe_all((1..50).map(NodeId));
        let rotated = v.rotate(1);
        let untouched = v.slots()[1];
        v.observe_into(&rotated, &(1..50).map(NodeId).collect::<Vec<_>>());
        assert!(v.slots()[0].sample().is_some(), "rotated slot refilled");
        assert_eq!(v.slots()[1], untouched, "other slots' hits untouched");
    }

    #[test]
    fn fraction_matching_counts_filled_slots() {
        let mut v = view(0, 8);
        assert_eq!(v.fraction_matching(|_| true), 0.0);
        v.observe_all((1..100).map(NodeId));
        let f = v.fraction_matching(|id| id.0 < 50);
        assert!((0.0..=1.0).contains(&f));
        assert_eq!(v.fraction_matching(|_| true), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        BasaltView::new(NodeId(0), 0, SecretKey::from_seed(1));
    }

    #[test]
    fn contains_cache_tracks_mutations() {
        let mut v = view(0, 4);
        assert!(!v.contains(NodeId(1)));
        v.observe_all((1..100).map(NodeId));
        let samples = v.sample_ids();
        for &id in &samples {
            assert!(v.contains(id));
        }
        assert!(!v.contains(NodeId(5000)));
        // Rotation blanks slots: membership must follow.
        v.rotate(4);
        for &id in &samples {
            assert!(!v.contains(id), "rotated view no longer samples {id:?}");
        }
        // Refill and check again through the observe_into path.
        v.observe_into(&[0, 1, 2, 3], &(1..50).map(NodeId).collect::<Vec<_>>());
        for s in v.slots() {
            let id = s.sample().expect("refilled");
            assert!(v.contains(id));
        }
    }

    #[test]
    fn large_views_use_the_membership_cache() {
        // Above the linear-scan gate the lazily rebuilt cache answers
        // membership; behaviour must match a slot scan exactly.
        let mut v = view(0, LINEAR_SCAN_SLOTS + 8);
        v.observe_all((1..500).map(NodeId));
        for id in (0..600u64).map(NodeId) {
            let scanned = v.slots().iter().any(|s| s.sample() == Some(id));
            assert_eq!(v.contains(id), scanned, "id {id}");
        }
        assert!(!v.members.borrow().set.is_empty(), "cache was built");
        // Small views never populate the cache.
        let mut small = view(0, LINEAR_SCAN_SLOTS);
        small.observe_all((1..500).map(NodeId));
        let sample = small.sample_ids()[0];
        assert!(small.contains(sample));
        assert!(small.members.borrow().set.is_empty());
    }

    #[test]
    fn scratch_variants_match_allocating_ones() {
        let mut v = view(3, 16);
        v.observe_all((1..40).map(NodeId));
        let mut out = vec![NodeId(999)];
        let mut seen = IdSet::new();
        v.distinct_into(&mut out, &mut seen);
        assert_eq!(out, v.distinct_ids());
        let mut order = Vec::new();
        let mut probes = Vec::new();
        for k in [1usize, 3, 16] {
            v.least_confirmed_into(k, &mut order, &mut probes);
            assert_eq!(probes, v.least_confirmed(k), "k={k}");
        }
    }
}
