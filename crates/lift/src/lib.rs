//! LIFT hub-avoidance peer sampling.
//!
//! A deterministic reconstruction of the hub-resistance idea behind
//! **LIFT**-style unbiased sampling protocols (see PAPERS.md): estimate
//! every peer's in-degree from how often gossip *mentions* it, then
//! bias neighbour replacement and exchange-partner selection away from
//! high-degree hubs. Where BASALT defeats repetition attacks with
//! seeded per-slot ranking, LIFT defeats them with degree estimation —
//! an adversary that floods its IDs merely certifies them as hubs and
//! locks them out of views:
//!
//! * every gossip mention (push sender, pull responder, pull-answer
//!   content) increments the mentioned ID's **hub score**, a bounded
//!   in-degree estimate;
//! * a candidate facing a full view challenges the current *hubbiest*
//!   member and wins with probability proportional to the score gap —
//!   **score-weighted replacement** that structurally favours cold,
//!   rarely-mentioned peers;
//! * exchange partners are drawn lowest-score-first (**hub-avoidance
//!   sampling**), so the protocol probes the quiet edge of the network
//!   rather than the loud centre;
//! * periodic **score fading** halves all counters so estimates track
//!   recent degree, bounding how long stale evidence (or a reformed
//!   hub) is held against a peer.
//!
//! The crate mirrors the caller-owned-delivery shape of
//! `raptee-brahms` and `raptee-basalt`: a [`LiftNode`] plans pushes and
//! pulls, the `raptee-sim` engine interposes its rate limiter, message
//! loss and adversary, and `finish_round` handles periodic upkeep —
//! which is what lets the simulator run `Protocol::Lift` as a drop-in
//! fourth protocol family.

pub mod config;
pub mod node;

pub use config::LiftConfig;
pub use node::{LiftNode, LiftRoundReport};
